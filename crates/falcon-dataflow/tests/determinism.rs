//! Repeated-run determinism of the reduce and combine phases.
//!
//! The reducer below echoes each `(key, values)` group verbatim, so the
//! job output exposes the engine's internal grouping order directly. With
//! the pre-fix `HashMap`-iteration grouping (default `RandomState`), the
//! order varied run-to-run; the engine must now produce byte-identical
//! output on every run and at every worker thread count.

use falcon_dataflow::{run_map_combine_reduce, run_map_reduce, Cluster, ClusterConfig, Emitter};

/// Word-count-shaped job whose output preserves the engine's group order.
fn echo_groups(threads: usize) -> Vec<(String, Vec<u64>)> {
    let cluster = Cluster::new(ClusterConfig::small(4)).with_threads(threads);
    let splits: Vec<Vec<u64>> = (0..6)
        .map(|s| (0..200).map(|i| s * 200 + i).collect())
        .collect();
    let out = run_map_reduce(
        &cluster,
        splits,
        3,
        |x: &u64, e: &mut Emitter<String, u64>| {
            e.emit(format!("k{}", x % 23), *x);
        },
        |k: &String, vs: Vec<u64>, out: &mut Vec<(String, Vec<u64>)>| {
            out.push((k.clone(), vs));
        },
    )
    .expect("job");
    out.output
}

fn echo_combined(threads: usize) -> Vec<(String, Vec<u64>)> {
    let cluster = Cluster::new(ClusterConfig::small(4)).with_threads(threads);
    let splits: Vec<Vec<u64>> = (0..6)
        .map(|s| (0..200).map(|i| s * 200 + i).collect())
        .collect();
    let out = run_map_combine_reduce(
        &cluster,
        splits,
        3,
        |x: &u64, e: &mut Emitter<String, u64>| {
            e.emit(format!("k{}", x % 23), *x);
        },
        |_k: &String, vs: Vec<u64>| vs.iter().sum(),
        |k: &String, vs: Vec<u64>, out: &mut Vec<(String, Vec<u64>)>| {
            out.push((k.clone(), vs));
        },
    )
    .expect("job");
    out.output
}

#[test]
fn reduce_output_order_is_stable_across_runs() {
    let first = echo_groups(4);
    for run in 1..10 {
        assert_eq!(echo_groups(4), first, "run {run} diverged");
    }
}

#[test]
fn reduce_output_order_is_stable_across_thread_counts() {
    let first = echo_groups(1);
    for threads in [2, 4, 8] {
        assert_eq!(echo_groups(threads), first, "{threads} threads diverged");
    }
}

#[test]
fn combiner_output_order_is_stable_across_runs_and_threads() {
    let first = echo_combined(1);
    for run in 1..8 {
        let threads = [1, 2, 4, 8][run % 4];
        assert_eq!(echo_combined(threads), first, "run {run} diverged");
    }
}
