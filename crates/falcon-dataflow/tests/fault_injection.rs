//! The load-bearing fault-tolerance invariant, at the engine level: for a
//! fixed seed, a fault-injected job's *output* is bit-identical to the
//! fault-free job at every fault rate and thread count — injected
//! failures, stragglers and node loss may only change the simulated
//! timeline and the fault counters.

use falcon_dataflow::{
    run_map_combine_reduce, run_map_only, run_map_reduce, Cluster, ClusterConfig, DataflowError,
    Emitter, FaultPlan, FaultStats, Phase,
};
use std::time::Duration;

fn splits() -> Vec<Vec<u64>> {
    let data: Vec<u64> = (0..600u64).map(|i| i.wrapping_mul(0x9e37) % 257).collect();
    data.chunks(37).map(|c| c.to_vec()).collect()
}

/// The canonical job used across the matrix: group by residue, sum.
fn grouped_sums(cluster: &Cluster) -> (Vec<(u64, u64)>, FaultStats) {
    let out = run_map_reduce(
        cluster,
        splits(),
        5,
        |x: &u64, e: &mut Emitter<u64, u64>| e.emit(x % 13, *x),
        |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| out.push((*k, vs.iter().sum())),
    )
    .expect("job");
    (out.output, out.stats.faults)
}

fn mapped(cluster: &Cluster) -> Vec<u64> {
    run_map_only(cluster, splits(), |x: &u64, out: &mut Vec<u64>| {
        out.push(x * 3 + 1);
    })
    .expect("job")
    .output
}

#[test]
fn fault_injected_output_is_bit_identical_across_rates_seeds_threads() {
    let baseline_cluster = Cluster::new(ClusterConfig::small(4)).with_threads(4);
    let baseline_mr = grouped_sums(&baseline_cluster).0;
    let baseline_mo = mapped(&baseline_cluster);

    for &rate in &[0.0, 0.05, 0.3] {
        for seed in [1u64, 42, 1_000_003] {
            for threads in [1usize, 2, 8] {
                // max_attempts 8 keeps P(task exhausts all attempts)
                // negligible even at rate 0.3.
                let plan = FaultPlan::seeded(seed)
                    .with_failure_rate(rate)
                    .with_straggler_rate(0.2)
                    .with_max_attempts(8);
                let cluster = Cluster::new(ClusterConfig::small(4))
                    .with_threads(threads)
                    .with_faults(plan);
                let (out, faults) = grouped_sums(&cluster);
                assert_eq!(
                    out, baseline_mr,
                    "map-reduce output diverged at rate={rate} seed={seed} threads={threads}"
                );
                let out = mapped(&cluster);
                assert_eq!(
                    out, baseline_mo,
                    "map-only output diverged at rate={rate} seed={seed} threads={threads}"
                );
                if rate == 0.0 {
                    assert_eq!(faults.retries, 0, "no retries without failures");
                }
            }
        }
    }
}

#[test]
fn fault_decisions_are_independent_of_thread_count() {
    // Not just the output: the *fault accounting* itself must be a pure
    // function of the seed, so timelines are reproducible.
    let plan = FaultPlan::seeded(7)
        .with_failure_rate(0.3)
        .with_straggler_rate(0.25)
        .with_max_attempts(8);
    let collect = |threads: usize| {
        let cluster = Cluster::new(ClusterConfig::small(4))
            .with_threads(threads)
            .with_faults(plan.clone());
        let (_, faults) = grouped_sums(&cluster);
        (
            faults.attempts,
            faults.retries,
            faults.speculative,
            faults.speculative_wins,
            faults.node_loss_failures,
        )
    };
    let single = collect(1);
    assert_eq!(collect(4), single);
    assert_eq!(collect(8), single);
    // At rate 0.3 over ~22 tasks, retries are all but certain.
    assert!(single.1 > 0, "expected retries at rate 0.3: {single:?}");
}

#[test]
fn stragglers_trigger_speculation_and_inflate_sim_time() {
    let run = |plan: Option<FaultPlan>| {
        let mut cluster = Cluster::new(ClusterConfig::small(4)).with_threads(4);
        if let Some(p) = plan {
            cluster = cluster.with_faults(p);
        }
        let out = run_map_only(
            &cluster,
            (0..8).map(|s| vec![s]).collect::<Vec<Vec<u64>>>(),
            |x: &u64, out: &mut Vec<u64>| {
                std::thread::sleep(Duration::from_millis(2));
                out.push(*x);
            },
        )
        .expect("job");
        (out.stats.sim_duration(&cluster.config), out.stats.faults)
    };
    let (clean_sim, clean_faults) = run(None);
    assert_eq!(clean_faults, FaultStats::default());
    let (faulty_sim, faults) = run(Some(
        FaultPlan::seeded(5)
            .with_failure_rate(0.4)
            .with_straggler_rate(0.5)
            .with_max_attempts(8),
    ));
    assert!(faults.retries > 0 || faults.speculative > 0, "{faults:?}");
    assert!(faults.time_lost > Duration::ZERO);
    assert!(
        faulty_sim > clean_sim,
        "fault time must reach the sim clock: {faulty_sim:?} vs {clean_sim:?}"
    );
}

#[test]
fn node_loss_reexecutes_that_nodes_tasks_with_identical_output() {
    let baseline = {
        let cluster = Cluster::new(ClusterConfig::small(4)).with_threads(4);
        grouped_sums(&cluster).0
    };
    // Node 2 dies during job 0 (the only job this cluster runs).
    let cluster = Cluster::new(ClusterConfig::small(4))
        .with_threads(4)
        .with_faults(FaultPlan::seeded(9).with_node_loss(0, 2));
    let (out, faults) = grouped_sums(&cluster);
    assert_eq!(out, baseline);
    // splits() yields 17 map tasks ({2, 6, 10, 14} sat on node 2) and 5
    // reduce partitions (partition 2 sat on node 2): 5 lost attempts.
    assert_eq!(faults.node_loss_failures, 5, "{faults:?}");
    assert!(faults.retries >= 5);
}

#[test]
fn combine_jobs_inherit_fault_tolerance() {
    let word_count = |cluster: &Cluster| {
        run_map_combine_reduce(
            cluster,
            splits(),
            3,
            |x: &u64, e: &mut Emitter<u64, u64>| e.emit(x % 7, 1),
            |_k: &u64, vs: Vec<u64>| vs.iter().sum(),
            |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| out.push((*k, vs.iter().sum())),
        )
        .expect("job")
    };
    let clean = word_count(&Cluster::new(ClusterConfig::small(4)).with_threads(4));
    let faulty_cluster = Cluster::new(ClusterConfig::small(4))
        .with_threads(4)
        .with_faults(
            FaultPlan::seeded(3)
                .with_failure_rate(0.3)
                .with_max_attempts(8),
        );
    let faulty = word_count(&faulty_cluster);
    assert_eq!(clean.output, faulty.output);
    assert!(faulty.stats.faults.retries > 0);
}

#[test]
fn exhausted_attempts_fail_the_job_with_full_context() {
    let cluster = Cluster::new(ClusterConfig::small(2))
        .with_threads(2)
        .with_faults(
            FaultPlan::seeded(1)
                .with_failure_rate(1.0)
                .with_max_attempts(3),
        );
    let err = run_map_only(&cluster, vec![vec![1u64]], |x: &u64, out: &mut Vec<u64>| {
        out.push(*x);
    })
    .expect_err("rate 1.0 must exhaust every attempt");
    assert_eq!(
        err,
        DataflowError::AttemptsExhausted {
            job: 0,
            phase: Phase::MapOnly,
            task: 0,
            attempts: 3,
        }
    );
    assert!(err.to_string().contains("map-only task 0"), "{err}");
}
