//! Property tests for the MapReduce engine: parallel execution must equal
//! a sequential reference, combiners must not change results, and
//! simulated cluster time must behave monotonically.

use falcon_dataflow::{
    makespan, run_map_combine_reduce, run_map_only, run_map_reduce, Cluster, ClusterConfig,
    Emitter, JobStats,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::small(2)).with_threads(4)
}

fn split(data: Vec<u32>, n: usize) -> Vec<Vec<u32>> {
    if data.is_empty() {
        return Vec::new();
    }
    data.chunks(data.len().div_ceil(n.max(1)).max(1))
        .map(<[u32]>::to_vec)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Grouped sums through the engine equal a sequential fold, for any
    /// split shape and partition count.
    #[test]
    fn map_reduce_equals_sequential(
        data in proptest::collection::vec(0u32..1000, 0..300),
        n_splits in 1usize..8,
        partitions in 1usize..6,
        modulus in 1u32..12,
    ) {
        let expected: HashMap<u32, u64> = data.iter().fold(HashMap::new(), |mut m, &x| {
            *m.entry(x % modulus).or_default() += u64::from(x);
            m
        });
        let out = run_map_reduce(
            &cluster(),
            split(data, n_splits),
            partitions,
            |x: &u32, e: &mut Emitter<u32, u64>| e.emit(x % modulus, u64::from(*x)),
            |k: &u32, vs: Vec<u64>, out: &mut Vec<(u32, u64)>| {
                out.push((*k, vs.iter().sum()));
            },
        );
        prop_assert!(out.is_ok());
        let got: HashMap<u32, u64> = out.unwrap().output.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    /// A sum-combiner never changes the result, and never increases the
    /// shuffle volume.
    #[test]
    fn combiner_preserves_results(
        data in proptest::collection::vec(0u32..50, 1..200),
        n_splits in 1usize..6,
    ) {
        let map = |x: &u32, e: &mut Emitter<u32, u64>| e.emit(x % 5, 1u64);
        let reduce = |k: &u32, vs: Vec<u64>, out: &mut Vec<(u32, u64)>| {
            out.push((*k, vs.iter().sum()));
        };
        let plain = run_map_reduce(&cluster(), split(data.clone(), n_splits), 3, map, reduce).unwrap();
        let combined = run_map_combine_reduce(
            &cluster(),
            split(data, n_splits),
            3,
            map,
            |_k: &u32, vs: Vec<u64>| vs.iter().sum(),
            reduce,
        ).unwrap();
        let norm = |mut v: Vec<(u32, u64)>| { v.sort_unstable(); v };
        prop_assert_eq!(norm(plain.output), norm(combined.output));
        prop_assert!(combined.stats.shuffled_records <= plain.stats.shuffled_records);
    }

    /// Map-only jobs preserve per-split output order and multiplicity.
    #[test]
    fn map_only_order_preserved(
        data in proptest::collection::vec(0u32..1000, 0..200),
        n_splits in 1usize..6,
    ) {
        let expected: Vec<u32> = data.iter().map(|x| x * 2).collect();
        let out = run_map_only(&cluster(), split(data, n_splits), |x: &u32, out| {
            out.push(x * 2);
        }).unwrap();
        prop_assert_eq!(out.output, expected);
    }

    /// LPT makespan: never below max(total/slots, longest task), never
    /// above total; monotone in slots.
    #[test]
    fn makespan_bounds(
        tasks in proptest::collection::vec(1u64..500, 1..40),
        slots in 1usize..12,
    ) {
        let durs: Vec<Duration> = tasks.iter().map(|&t| Duration::from_millis(t)).collect();
        let total: Duration = durs.iter().sum();
        let longest = *durs.iter().max().unwrap();
        let m = makespan(&durs, slots);
        prop_assert!(m <= total);
        prop_assert!(m >= longest);
        prop_assert!(m.as_millis() as u64 >= tasks.iter().sum::<u64>() / slots as u64);
        prop_assert!(makespan(&durs, slots + 1) <= m);
    }

    /// Simulated duration decreases (weakly) with more nodes.
    #[test]
    fn sim_duration_monotone_in_nodes(
        map_ms in proptest::collection::vec(1u64..200, 1..30),
        reduce_ms in proptest::collection::vec(1u64..200, 0..10),
    ) {
        let stats = JobStats {
            map_tasks: map_ms.len(),
            reduce_tasks: reduce_ms.len(),
            map_durations: map_ms.iter().map(|&x| Duration::from_millis(x)).collect(),
            reduce_durations: reduce_ms.iter().map(|&x| Duration::from_millis(x)).collect(),
            ..Default::default()
        };
        let mut prev = None;
        for nodes in [1usize, 2, 4, 8, 16] {
            let cfg = ClusterConfig { nodes, ..ClusterConfig::small(nodes) };
            let d = stats.sim_duration(&cfg);
            if let Some(p) = prev {
                prop_assert!(d <= p, "{:?} > {:?} at {} nodes", d, p, nodes);
            }
            prev = Some(d);
        }
    }
}
