//! Job-side types: the emitter handed to map functions and the statistics /
//! output produced by a job run.

use crate::cluster::ClusterConfig;
use crate::fault::FaultStats;
use crate::sim_time::makespan;
use std::time::Duration;

/// Collector for key-value pairs emitted by a map function.
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    pub(crate) fn new() -> Self {
        Self { pairs: Vec::new() }
    }

    /// Emit one intermediate key-value pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }

    /// Number of pairs emitted so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True iff nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub(crate) fn into_pairs(self) -> Vec<(K, V)> {
        self.pairs
    }
}

/// Statistics for one executed job, including both local wall time and the
/// simulated cluster time for a given [`ClusterConfig`].
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Number of map tasks (input splits).
    pub map_tasks: usize,
    /// Number of reduce tasks (partitions).
    pub reduce_tasks: usize,
    /// Records read by mappers.
    pub input_records: usize,
    /// Intermediate records shuffled from mappers to reducers.
    pub shuffled_records: usize,
    /// Records produced by reducers (or mappers for map-only jobs).
    pub output_records: usize,
    /// Simulated slot durations of each map task: measured local wall
    /// time, inflated by any injected retries, backoff waits and
    /// straggler slowdown, so fault time flows into [`Self::sim_duration`].
    pub map_durations: Vec<Duration>,
    /// Simulated slot durations of each reduce task (see `map_durations`).
    pub reduce_durations: Vec<Duration>,
    /// Total local wall-clock duration of the job.
    pub wall: Duration,
    /// Fault accounting summed over every task of the job (all zeros
    /// when the cluster has no fault plan).
    pub faults: FaultStats,
}

impl JobStats {
    /// Simulated job duration on a cluster: map-phase makespan over the
    /// cluster's map slots, plus reduce-phase makespan over its reduce
    /// slots, plus per-task and per-job overheads.
    pub fn sim_duration(&self, cfg: &ClusterConfig) -> Duration {
        let map_tasks: Vec<Duration> = self
            .map_durations
            .iter()
            .map(|d| *d + cfg.task_overhead)
            .collect();
        let reduce_tasks: Vec<Duration> = self
            .reduce_durations
            .iter()
            .map(|d| *d + cfg.task_overhead)
            .collect();
        cfg.job_overhead
            + makespan(&map_tasks, cfg.map_slots())
            + makespan(&reduce_tasks, cfg.reduce_slots())
    }
}

/// Output of a job run: the produced records plus statistics.
#[derive(Debug)]
pub struct JobOutput<O> {
    /// Records produced by the job.
    pub output: Vec<O>,
    /// Execution statistics.
    pub stats: JobStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_collects() {
        let mut e: Emitter<u32, &str> = Emitter::new();
        assert!(e.is_empty());
        e.emit(1, "a");
        e.emit(2, "b");
        assert_eq!(e.len(), 2);
        assert_eq!(e.into_pairs(), vec![(1, "a"), (2, "b")]);
    }

    #[test]
    fn sim_duration_scales_with_nodes() {
        let stats = JobStats {
            map_tasks: 8,
            map_durations: vec![Duration::from_millis(100); 8],
            reduce_durations: vec![Duration::from_millis(50); 2],
            ..Default::default()
        };
        let small = ClusterConfig {
            nodes: 1,
            map_slots_per_node: 1,
            reduce_slots_per_node: 1,
            job_overhead: Duration::ZERO,
            task_overhead: Duration::ZERO,
            ..ClusterConfig::default()
        };
        let big = ClusterConfig {
            nodes: 8,
            ..small.clone()
        };
        assert!(stats.sim_duration(&big) < stats.sim_duration(&small));
        // 1 node: 8*100 + 2*50 = 900ms.
        assert_eq!(stats.sim_duration(&small), Duration::from_millis(900));
        // 8 nodes: map 100, reduce 100 (2 tasks on... 8 reduce slots -> 50).
        assert_eq!(stats.sim_duration(&big), Duration::from_millis(150));
    }
}
