//! Typed failures surfaced by the dataflow engine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which phase of a job a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// The map side of a map-shuffle-reduce job.
    Map,
    /// The reduce side of a map-shuffle-reduce job.
    Reduce,
    /// A map-only job (no shuffle or reduce).
    MapOnly,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Map => "map",
            Self::Reduce => "reduce",
            Self::MapOnly => "map-only",
        })
    }
}

/// An error produced while executing a MapReduce job.
///
/// The engine runs user map/reduce closures on worker threads; a panic on
/// any worker aborts the job and is reported as a value instead of being
/// propagated, so operators can attach context and drivers can fail a
/// whole workflow cleanly. Every task-level failure carries its full
/// coordinates — job number, phase, split index and attempt count — so a
/// post-retry-exhaustion failure is diagnosable from the error alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// A worker panicked while running a task, and the attempt budget (1
    /// without a fault plan) did not allow a successful re-execution.
    WorkerPanicked {
        /// Cluster-wide job number (submission order).
        job: u64,
        /// Which phase lost the task.
        phase: Phase,
        /// Split / partition index of the failed task.
        task: usize,
        /// Attempts consumed, injected failures included.
        attempts: u32,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Fault injection failed every allowed attempt of a task — the
    /// simulated analogue of a Hadoop job failing after
    /// `mapred.*.max.attempts` re-executions.
    AttemptsExhausted {
        /// Cluster-wide job number (submission order).
        job: u64,
        /// Which phase the task belonged to.
        phase: Phase,
        /// Split / partition index of the failed task.
        task: usize,
        /// The attempt budget that was exhausted.
        attempts: u32,
    },
    /// A reduce partition disappeared before its worker could claim it —
    /// an engine invariant violation, never expected in practice.
    PartitionMissing {
        /// Cluster-wide job number (submission order).
        job: u64,
        /// Which phase lost the partition (always [`Phase::Reduce`]).
        phase: Phase,
        /// Index of the missing partition.
        partition: usize,
    },
}

impl DataflowError {
    /// The task (split) index the error is anchored to, when it has one.
    pub fn task_index(&self) -> Option<usize> {
        match self {
            Self::WorkerPanicked { task, .. } | Self::AttemptsExhausted { task, .. } => Some(*task),
            Self::PartitionMissing { .. } => None,
        }
    }
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WorkerPanicked {
                job,
                phase,
                task,
                attempts,
                message,
            } => {
                write!(
                    f,
                    "job {job}: {phase} task {task} panicked after {attempts} attempt(s): {message}"
                )
            }
            Self::AttemptsExhausted {
                job,
                phase,
                task,
                attempts,
            } => {
                write!(
                    f,
                    "job {job}: {phase} task {task} failed all {attempts} attempt(s)"
                )
            }
            Self::PartitionMissing {
                job,
                phase,
                partition,
            } => {
                write!(
                    f,
                    "job {job}: {phase} partition {partition} was already taken"
                )
            }
        }
    }
}

impl std::error::Error for DataflowError {}
