//! Typed failures surfaced by the dataflow engine.

use std::fmt;

/// An error produced while executing a MapReduce job.
///
/// The engine runs user map/reduce closures on worker threads; a panic on
/// any worker aborts the job and is reported as a value instead of being
/// propagated, so operators can attach context and drivers can fail a
/// whole workflow cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// A worker thread panicked while running the named job phase.
    WorkerPanicked {
        /// Which phase lost a worker (`"map"`, `"reduce"`, `"map-only"`).
        phase: &'static str,
    },
    /// A reduce partition disappeared before its worker could claim it —
    /// an engine invariant violation, never expected in practice.
    PartitionMissing {
        /// Index of the missing partition.
        partition: usize,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WorkerPanicked { phase } => {
                write!(f, "a worker thread panicked during the {phase} phase")
            }
            Self::PartitionMissing { partition } => {
                write!(f, "reduce partition {partition} was already taken")
            }
        }
    }
}

impl std::error::Error for DataflowError {}
