//! Deterministic fault injection: seeded task failures, stragglers,
//! node loss and Hadoop-style retry/speculation accounting.
//!
//! The paper inherits fault tolerance from Hadoop — failed task attempts
//! are re-executed (up to `mapred.map.max.attempts`), slow tasks get
//! speculative duplicate attempts, and a lost node's tasks are re-run
//! elsewhere. This module reproduces that failure model *deterministically*:
//! every fault decision is a pure function of `(seed, job, phase, task,
//! attempt)` drawn from an explicit splitmix64 stream, never from wall
//! clocks or global RNG state. Two consequences the test suite relies on:
//!
//! * fault decisions are identical at any worker-thread count and on any
//!   toolchain, so a fault-injected run's *output* is bit-identical to the
//!   fault-free run — only the simulated timeline (slot durations, retry
//!   and backoff charges) differs;
//! * the per-task attempt counts reported in [`FaultStats`] are exactly
//!   reproducible for a fixed seed, so timelines can be asserted on.
//!
//! Failed attempts do not re-execute the user closure (map/reduce
//! functions are deterministic, so a re-execution would produce the same
//! bytes); they charge the attempt's measured duration plus exponential
//! backoff to the task's *slot time*, which flows through
//! [`JobStats::sim_duration`](crate::job::JobStats::sim_duration) into the
//! driver timeline. Real worker panics, by contrast, are caught and
//! retried for re-runnable phases (map, map-only) and surface as
//! [`DataflowError::WorkerPanicked`](crate::error::DataflowError) with full
//! job/phase/task/attempt context once attempts are exhausted.

use crate::error::{DataflowError, Phase};
use crate::sim_time::wall_now;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A node-loss event: during job number `job` (0-based, in cluster job
/// submission order), the given simulated node dies. Every task of that
/// job placed on the node (tasks are placed round-robin, `task % nodes`)
/// loses its first attempt and is re-executed elsewhere — the Hadoop
/// "TaskTracker lost" path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeLoss {
    /// Which job (0-based submission index) the node dies during.
    pub job: u64,
    /// Which node dies.
    pub node: usize,
}

/// A seeded, deterministic fault model for the simulated cluster.
///
/// All probabilities are per *task attempt* and drawn from an explicit
/// counter-based RNG keyed by `(seed, job, phase, task, attempt)`, so a
/// given plan produces the same faults regardless of thread count,
/// scheduling order or toolchain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability an individual task attempt fails (Hadoop re-executes it).
    pub task_failure_rate: f64,
    /// Probability a task is a straggler (runs `straggler_slowdown`× slower).
    pub straggler_rate: f64,
    /// Slowdown factor applied to straggler tasks (must be ≥ 1).
    pub straggler_slowdown: f64,
    /// Launch speculative duplicate attempts for stragglers (Hadoop's
    /// speculative execution); the first finisher wins and the loser's
    /// work is discarded.
    pub speculation: bool,
    /// When the backup attempt launches, as a fraction of the task's
    /// normal duration (Hadoop launches backups once a task looks slow).
    pub speculation_delay_factor: f64,
    /// Maximum attempts per task before the job fails
    /// (`mapred.*.max.attempts`; Hadoop default 4).
    pub max_attempts: u32,
    /// Base of the exponential retry backoff charged to the sim clock
    /// (attempt `a` waits `backoff_base · 2^a` before re-execution).
    pub backoff_base: Duration,
    /// At most one node-loss event.
    pub node_loss: Option<NodeLoss>,
    /// Seed for every fault decision.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            task_failure_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            speculation: true,
            speculation_delay_factor: 1.0,
            max_attempts: 4,
            backoff_base: Duration::from_millis(100),
            node_loss: None,
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// A plan with the given seed and everything else at defaults (no
    /// faults until rates are raised).
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Set the per-attempt task failure rate.
    pub fn with_failure_rate(mut self, rate: f64) -> Self {
        self.task_failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the straggler rate.
    pub fn with_straggler_rate(mut self, rate: f64) -> Self {
        self.straggler_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the node-loss event.
    pub fn with_node_loss(mut self, job: u64, node: usize) -> Self {
        self.node_loss = Some(NodeLoss { job, node });
        self
    }

    /// Set the per-task attempt cap.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Exponential backoff charged before re-executing attempt `attempt`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.backoff_base * (1u32 << attempt.min(6))
    }
}

/// A splitmix64 counter RNG: the explicit, order-independent randomness
/// source behind every fault decision.
#[derive(Debug, Clone)]
pub struct DetRng(u64);

impl DetRng {
    /// An RNG keyed to one `(seed, job, phase, task, stream)` cell.
    pub fn for_task(seed: u64, job: u64, phase: Phase, task: usize, stream: u64) -> Self {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(job.wrapping_add(1));
        s = s.wrapping_add((phase as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        s = s.wrapping_add((task as u64 + 1).wrapping_mul(0x94d0_49bb_1331_11eb));
        s = s.wrapping_add(stream.wrapping_mul(0xd6e8_feb8_6659_fd93));
        let mut rng = DetRng(s);
        rng.next_u64(); // discard the first output to decorrelate keys
        rng
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// The fault schedule resolved for one task: how many attempts fail
/// before one succeeds, and whether the surviving attempt straggles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskFaultOutcome {
    /// Injected failed attempts preceding the (potentially) successful one.
    pub failed_attempts: u32,
    /// True when the first failure came from the node-loss event.
    pub node_lost: bool,
    /// True when the surviving attempt runs `straggler_slowdown`× slower.
    pub straggler: bool,
}

/// Per-task (and, summed, per-job / per-run) fault accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Task attempts executed or charged (≥ the task count).
    pub attempts: usize,
    /// Failed attempts that were re-executed.
    pub retries: usize,
    /// Speculative duplicate attempts launched.
    pub speculative: usize,
    /// Speculative attempts that finished before the original.
    pub speculative_wins: usize,
    /// First-attempt failures caused by a node loss.
    pub node_loss_failures: usize,
    /// Simulated slot time lost to failed attempts, backoff waits and
    /// straggler slowdown (beyond the clean single-attempt duration).
    pub time_lost: Duration,
}

impl FaultStats {
    /// Fold another stats record into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.speculative += other.speculative;
        self.speculative_wins += other.speculative_wins;
        self.node_loss_failures += other.node_loss_failures;
        self.time_lost += other.time_lost;
    }
}

/// The shared fault-decision engine a [`Cluster`](crate::cluster::Cluster)
/// carries: the plan, the cluster's node count (for task placement) and
/// run-wide fault totals.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    nodes: usize,
    totals: Mutex<FaultStats>,
}

impl FaultInjector {
    /// Build an injector for a cluster with `nodes` simulated nodes.
    pub fn new(plan: FaultPlan, nodes: usize) -> Self {
        Self {
            plan,
            nodes: nodes.max(1),
            totals: Mutex::new(FaultStats::default()),
        }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Run-wide fault totals so far.
    pub fn totals(&self) -> FaultStats {
        *self.totals.lock()
    }

    fn record(&self, stats: &FaultStats) {
        self.totals.lock().absorb(stats);
    }

    /// Resolve the deterministic fault schedule for one task.
    pub fn outcome(&self, job: u64, phase: Phase, task: usize) -> TaskFaultOutcome {
        let p = &self.plan;
        let mut failed = 0u32;
        let mut node_lost = false;
        if let Some(nl) = p.node_loss {
            if nl.job == job && task % self.nodes == nl.node % self.nodes {
                node_lost = true;
                failed = 1;
            }
        }
        while failed < p.max_attempts {
            let mut rng = DetRng::for_task(p.seed, job, phase, task, u64::from(failed));
            if rng.gen_bool(p.task_failure_rate) {
                failed += 1;
            } else {
                break;
            }
        }
        let straggler = p.straggler_rate > 0.0
            && DetRng::for_task(p.seed, job, phase, task, 0xF00D).gen_bool(p.straggler_rate);
        TaskFaultOutcome {
            failed_attempts: failed,
            node_lost,
            straggler,
        }
    }
}

fn scale(d: Duration, factor: f64) -> Duration {
    Duration::from_secs_f64(d.as_secs_f64() * factor.max(0.0))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute one task with fault injection and panic containment.
///
/// Runs `body` once (map/reduce closures are deterministic, so failed
/// attempts charge simulated time instead of burning a re-execution),
/// catches panics, and — when `retry_panics` is set and a [`FaultPlan`]
/// allows more attempts — re-runs a panicked body Hadoop-style. Returns
/// the task's output, the total *slot time* the task occupied (all
/// attempts, backoff waits, straggler slowdown / speculative rescue) and
/// its fault stats; or a fully-contextualized [`DataflowError`].
pub(crate) fn run_attempts<T>(
    injector: Option<&FaultInjector>,
    job: u64,
    phase: Phase,
    task: usize,
    retry_panics: bool,
    mut body: impl FnMut() -> T,
) -> Result<(T, Duration, FaultStats), DataflowError> {
    let outcome = injector.map_or_else(TaskFaultOutcome::default, |f| f.outcome(job, phase, task));
    let plan = injector.map(FaultInjector::plan);
    let max_attempts = plan.map_or(1, |p| p.max_attempts).max(1);

    if outcome.failed_attempts >= max_attempts {
        if let Some(f) = injector {
            f.record(&FaultStats {
                attempts: max_attempts as usize,
                retries: max_attempts as usize,
                node_loss_failures: usize::from(outcome.node_lost),
                ..FaultStats::default()
            });
        }
        return Err(DataflowError::AttemptsExhausted {
            job,
            phase,
            task,
            attempts: max_attempts,
        });
    }

    // Real (panic) failures consume attempts on top of the injected ones.
    let mut panic_failures = 0u32;
    let mut panic_lost = Duration::ZERO;
    loop {
        let t0 = wall_now();
        match catch_unwind(AssertUnwindSafe(&mut body)) {
            Ok(out) => {
                let d = t0.elapsed();
                if injector.is_none() {
                    // No fault plan: no accounting, the slot time is the
                    // plain measured duration.
                    return Ok((out, d, FaultStats::default()));
                }
                let mut stats = FaultStats {
                    attempts: (outcome.failed_attempts + panic_failures + 1) as usize,
                    retries: (outcome.failed_attempts + panic_failures) as usize,
                    node_loss_failures: usize::from(outcome.node_lost),
                    ..FaultStats::default()
                };
                // Injected failed attempts: full re-execution plus backoff.
                let mut slot = panic_lost;
                for a in 0..outcome.failed_attempts {
                    slot += d + plan.map_or(Duration::ZERO, |p| p.backoff(a));
                }
                // The surviving attempt, possibly straggling / rescued.
                let final_dur = match (outcome.straggler, plan) {
                    (true, Some(p)) => {
                        let slow = scale(d, p.straggler_slowdown);
                        if p.speculation {
                            stats.speculative += 1;
                            let backup = scale(d, p.speculation_delay_factor) + d;
                            if backup < slow {
                                stats.speculative_wins += 1;
                                backup
                            } else {
                                slow
                            }
                        } else {
                            slow
                        }
                    }
                    _ => d,
                };
                slot += final_dur;
                stats.time_lost = slot.saturating_sub(d);
                if let Some(f) = injector {
                    f.record(&stats);
                }
                return Ok((out, slot, stats));
            }
            Err(payload) => {
                let attempt = outcome.failed_attempts + panic_failures;
                panic_lost += t0.elapsed() + plan.map_or(Duration::ZERO, |p| p.backoff(attempt));
                panic_failures += 1;
                if !retry_panics || outcome.failed_attempts + panic_failures >= max_attempts {
                    if let Some(f) = injector {
                        f.record(&FaultStats {
                            attempts: (outcome.failed_attempts + panic_failures) as usize,
                            retries: (outcome.failed_attempts + panic_failures) as usize,
                            node_loss_failures: usize::from(outcome.node_lost),
                            time_lost: panic_lost,
                            ..FaultStats::default()
                        });
                    }
                    return Err(DataflowError::WorkerPanicked {
                        job,
                        phase,
                        task,
                        attempts: outcome.failed_attempts + panic_failures,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_are_deterministic_and_key_sensitive() {
        let inj = FaultInjector::new(FaultPlan::seeded(7).with_failure_rate(0.5), 4);
        let a = inj.outcome(0, Phase::Map, 3);
        let b = inj.outcome(0, Phase::Map, 3);
        assert_eq!(a, b);
        // Different cells see independent draws: over many tasks both
        // failure and success must occur at rate 0.5.
        let outcomes: Vec<_> = (0..64).map(|t| inj.outcome(0, Phase::Map, t)).collect();
        assert!(outcomes.iter().any(|o| o.failed_attempts > 0));
        assert!(outcomes.iter().any(|o| o.failed_attempts == 0));
    }

    #[test]
    fn zero_rate_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::seeded(1), 10);
        for t in 0..100 {
            assert_eq!(
                inj.outcome(5, Phase::Reduce, t),
                TaskFaultOutcome::default()
            );
        }
    }

    #[test]
    fn node_loss_fails_exactly_that_nodes_tasks() {
        let inj = FaultInjector::new(FaultPlan::seeded(1).with_node_loss(2, 1), 4);
        for t in 0..16 {
            let o = inj.outcome(2, Phase::Map, t);
            assert_eq!(o.node_lost, t % 4 == 1, "task {t}");
            if o.node_lost {
                assert!(o.failed_attempts >= 1);
            }
        }
        // Other jobs are untouched.
        assert!(!inj.outcome(3, Phase::Map, 1).node_lost);
    }

    #[test]
    fn run_attempts_charges_retries_without_reexecuting() {
        let inj = FaultInjector::new(
            FaultPlan::seeded(11)
                .with_failure_rate(0.9)
                .with_max_attempts(8),
            4,
        );
        let mut calls = 0usize;
        let (out, slot, stats) = run_attempts(Some(&inj), 0, Phase::Map, 0, true, || {
            calls += 1;
            42u32
        })
        .expect("task");
        assert_eq!(out, 42);
        assert_eq!(calls, 1, "injected failures must not re-run the body");
        assert_eq!(stats.attempts, stats.retries + 1);
        if stats.retries > 0 {
            assert!(stats.time_lost > Duration::ZERO);
            assert!(slot > Duration::ZERO);
        }
    }

    #[test]
    fn exhausted_attempts_surface_with_context() {
        let inj = FaultInjector::new(
            FaultPlan::seeded(3)
                .with_failure_rate(1.0)
                .with_max_attempts(3),
            4,
        );
        let err =
            run_attempts(Some(&inj), 9, Phase::Reduce, 5, false, || 0u8).expect_err("must exhaust");
        assert_eq!(
            err,
            DataflowError::AttemptsExhausted {
                job: 9,
                phase: Phase::Reduce,
                task: 5,
                attempts: 3
            }
        );
    }

    #[test]
    fn panics_are_retried_only_when_allowed() {
        let inj = FaultInjector::new(FaultPlan::seeded(5).with_max_attempts(4), 4);
        // A flaky body that panics twice then succeeds.
        let mut calls = 0usize;
        let res = run_attempts(Some(&inj), 0, Phase::Map, 0, true, || {
            calls += 1;
            assert!(calls > 2, "flaky");
            calls
        });
        assert_eq!(res.map(|(v, _, _)| v), Ok(3));
        // Without retry_panics the first panic is fatal, with context.
        let err = run_attempts(Some(&inj), 1, Phase::Reduce, 2, false, || {
            panic!("poisoned")
        })
        .map(|(v, _, _): (u8, _, _)| v)
        .expect_err("panic must surface");
        match err {
            DataflowError::WorkerPanicked {
                job,
                phase,
                task,
                attempts,
                message,
            } => {
                assert_eq!((job, phase, task, attempts), (1, Phase::Reduce, 2, 1));
                assert!(message.contains("poisoned"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn straggler_speculation_rescues_when_profitable() {
        // slowdown 4× with a backup launched after 1× → backup wins at 2×.
        let plan = FaultPlan {
            straggler_rate: 1.0,
            straggler_slowdown: 4.0,
            speculation: true,
            speculation_delay_factor: 1.0,
            ..FaultPlan::seeded(2)
        };
        let inj = FaultInjector::new(plan, 4);
        let (_, slot, stats) = run_attempts(Some(&inj), 0, Phase::Map, 0, true, || {
            std::thread::sleep(Duration::from_millis(5));
        })
        .expect("task");
        assert_eq!(stats.speculative, 1);
        assert_eq!(stats.speculative_wins, 1);
        // Rescued at ~2× instead of 4×.
        assert!(stats.time_lost > Duration::ZERO);
        assert!(slot < Duration::from_millis(5 * 3));
        // Without speculation the full slowdown is charged.
        let plan = FaultPlan {
            speculation: false,
            ..inj.plan().clone()
        };
        let inj2 = FaultInjector::new(plan, 4);
        let (_, slot2, stats2) = run_attempts(Some(&inj2), 0, Phase::Map, 0, true, || {
            std::thread::sleep(Duration::from_millis(5));
        })
        .expect("task");
        assert_eq!(stats2.speculative, 0);
        assert!(slot2 > slot / 2, "{slot2:?} vs {slot:?}");
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = FaultPlan {
            backoff_base: Duration::from_millis(10),
            ..FaultPlan::default()
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(3), Duration::from_millis(80));
        assert_eq!(p.backoff(60), p.backoff(6));
    }
}
