//! Simulated-time accounting: schedule measured task durations onto the
//! simulated cluster's slots and report the makespan.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// A simulated duration (alias kept for API clarity: simulated cluster time
/// as opposed to local wall time).
pub type SimDuration = Duration;

/// Makespan of scheduling `tasks` onto `slots` identical slots using the
/// Longest-Processing-Time-first greedy rule (the classic 4/3-approximation,
/// and a good model of Hadoop's slot scheduler for our purposes).
pub fn makespan(tasks: &[Duration], slots: usize) -> Duration {
    let slots = slots.max(1);
    if tasks.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted: Vec<Duration> = tasks.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    // Min-heap of slot finish times.
    let mut heap: BinaryHeap<Reverse<Duration>> =
        (0..slots).map(|_| Reverse(Duration::ZERO)).collect();
    for t in sorted {
        // The heap holds exactly `slots >= 1` entries throughout.
        let earliest = heap.pop().map_or(Duration::ZERO, |Reverse(d)| d);
        heap.push(Reverse(earliest + t));
    }
    heap.into_iter()
        .map(|Reverse(d)| d)
        .max()
        .unwrap_or(Duration::ZERO)
}

/// The single sanctioned wall-clock read for the workspace.
///
/// Everything outside the bench harness must account time against the
/// *simulated* cluster; the only legitimate uses of real time are the
/// per-task duration measurements that feed [`makespan`]. Those reads are
/// funneled through this function so that `falcon-lint`'s `sim-time` rule
/// can ban `Instant::now` everywhere else and keep accidental wall-clock
/// dependencies out of operator and driver logic.
#[must_use]
pub fn wall_now() -> Instant {
    // falcon-lint: allow(sim-time)
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn single_slot_is_sum() {
        let tasks = [ms(5), ms(10), ms(3)];
        assert_eq!(makespan(&tasks, 1), ms(18));
    }

    #[test]
    fn enough_slots_is_max() {
        let tasks = [ms(5), ms(10), ms(3)];
        assert_eq!(makespan(&tasks, 3), ms(10));
        assert_eq!(makespan(&tasks, 100), ms(10));
    }

    #[test]
    fn lpt_balances() {
        // 4 tasks of 3ms on 2 slots -> 6ms.
        let tasks = [ms(3); 4];
        assert_eq!(makespan(&tasks, 2), ms(6));
        // LPT: [7,5,4,4] on 2 slots -> 7+4=11 vs 5+4=9 -> makespan 11? LPT
        // places 7 | 5, then 4 -> slot2 (9), then 4 -> slot1? slot1=7 < 9
        // so slot1 -> 11. Optimal is 7+4=11 vs 5+4+... also 10 (7+4 | 5+4=9
        // no; sum=20, lower bound 10). LPT gives 11 here.
        let tasks = [ms(7), ms(5), ms(4), ms(4)];
        assert_eq!(makespan(&tasks, 2), ms(11));
    }

    #[test]
    fn empty_and_zero_slots() {
        assert_eq!(makespan(&[], 4), Duration::ZERO);
        assert_eq!(makespan(&[ms(2)], 0), ms(2));
    }

    #[test]
    fn more_slots_never_slower() {
        let tasks: Vec<Duration> = (1..20).map(ms).collect();
        let mut prev = makespan(&tasks, 1);
        for slots in 2..10 {
            let m = makespan(&tasks, slots);
            assert!(m <= prev);
            prev = m;
        }
    }
}
