//! Simulated cluster description and the execution handle.

use crate::fault::{FaultInjector, FaultPlan, FaultStats};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Static description of the simulated Hadoop cluster.
///
/// The defaults mirror the paper's testbed: 10 nodes, 8 cores each split
/// between map and reduce slots, 2 GB of mapper memory (the setting under
/// which `apply_all`/`apply_greedy` fit their indexes in Section 11.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// Memory budget available to each mapper for in-memory indexes.
    pub mapper_memory_bytes: usize,
    /// Memory budget available to each reducer.
    pub reducer_memory_bytes: usize,
    /// Fixed simulated overhead per job (JVM spin-up, scheduling).
    pub job_overhead: Duration,
    /// Fixed simulated overhead per task.
    pub task_overhead: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 10,
            map_slots_per_node: 4,
            reduce_slots_per_node: 2,
            mapper_memory_bytes: 2 << 30,
            reducer_memory_bytes: 2 << 30,
            job_overhead: Duration::from_millis(500),
            task_overhead: Duration::from_millis(20),
        }
    }
}

impl ClusterConfig {
    /// A config scaled for unit tests and small examples: small overheads so
    /// simulated times stay legible.
    pub fn small(nodes: usize) -> Self {
        Self {
            nodes,
            map_slots_per_node: 2,
            reduce_slots_per_node: 1,
            job_overhead: Duration::from_millis(10),
            task_overhead: Duration::from_millis(1),
            ..Self::default()
        }
    }

    /// Total map slots across the cluster.
    pub fn map_slots(&self) -> usize {
        (self.nodes * self.map_slots_per_node).max(1)
    }

    /// Total reduce slots across the cluster.
    pub fn reduce_slots(&self) -> usize {
        (self.nodes * self.reduce_slots_per_node).max(1)
    }
}

/// An execution handle: the simulated configuration plus the real thread
/// budget used to run tasks locally.
///
/// Clones share the job counter and fault injector, so every handle
/// derived from the same `Cluster` sees one consistent job numbering —
/// the coordinate [`FaultPlan`] node-loss events are keyed on.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Simulated cluster description.
    pub config: ClusterConfig,
    threads: usize,
    job_counter: Arc<AtomicU64>,
    faults: Option<Arc<FaultInjector>>,
}

impl Cluster {
    /// Create a cluster handle with the given simulated config; local
    /// execution uses all available host parallelism.
    pub fn new(config: ClusterConfig) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            config,
            threads,
            job_counter: Arc::new(AtomicU64::new(0)),
            faults: None,
        }
    }

    /// Override the number of local worker threads (mainly for tests).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attach a deterministic fault plan; every job run on this handle
    /// (or a clone of it) is subject to the plan's injected failures,
    /// stragglers and node loss.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        let nodes = self.config.nodes;
        self.faults = Some(Arc::new(FaultInjector::new(plan, nodes)));
        self
    }

    /// Number of local worker threads used to actually execute tasks.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Per-mapper memory budget of the simulated cluster.
    pub fn mapper_memory(&self) -> usize {
        self.config.mapper_memory_bytes
    }

    /// The fault injector, when a plan is attached.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_deref()
    }

    /// Run-wide fault totals across every job executed so far, when a
    /// plan is attached.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.totals())
    }

    /// Number of jobs submitted to this cluster (shared across clones).
    pub fn jobs_run(&self) -> u64 {
        self.job_counter.load(Ordering::Relaxed)
    }

    /// Claim the next cluster-wide job number.
    pub(crate) fn next_job_id(&self) -> u64 {
        self.job_counter.fetch_add(1, Ordering::Relaxed)
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new(ClusterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts() {
        let c = ClusterConfig::default();
        assert_eq!(c.map_slots(), 40);
        assert_eq!(c.reduce_slots(), 20);
        let tiny = ClusterConfig {
            nodes: 0,
            ..ClusterConfig::default()
        };
        assert_eq!(tiny.map_slots(), 1);
    }

    #[test]
    fn cluster_threads_positive() {
        let c = Cluster::default();
        assert!(c.threads() >= 1);
        assert_eq!(c.clone().with_threads(0).threads(), 1);
    }

    #[test]
    fn clones_share_job_numbering_and_faults() {
        let a = Cluster::new(ClusterConfig::small(2)).with_faults(FaultPlan::seeded(1));
        let b = a.clone();
        assert_eq!(a.next_job_id(), 0);
        assert_eq!(b.next_job_id(), 1);
        assert_eq!(a.jobs_run(), 2);
        assert!(b.fault_injector().is_some());
        assert_eq!(a.fault_stats(), Some(FaultStats::default()));
        assert_eq!(Cluster::default().fault_stats(), None);
    }
}
