//! Simulated cluster description and the execution handle.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Static description of the simulated Hadoop cluster.
///
/// The defaults mirror the paper's testbed: 10 nodes, 8 cores each split
/// between map and reduce slots, 2 GB of mapper memory (the setting under
/// which `apply_all`/`apply_greedy` fit their indexes in Section 11.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// Memory budget available to each mapper for in-memory indexes.
    pub mapper_memory_bytes: usize,
    /// Memory budget available to each reducer.
    pub reducer_memory_bytes: usize,
    /// Fixed simulated overhead per job (JVM spin-up, scheduling).
    pub job_overhead: Duration,
    /// Fixed simulated overhead per task.
    pub task_overhead: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 10,
            map_slots_per_node: 4,
            reduce_slots_per_node: 2,
            mapper_memory_bytes: 2 << 30,
            reducer_memory_bytes: 2 << 30,
            job_overhead: Duration::from_millis(500),
            task_overhead: Duration::from_millis(20),
        }
    }
}

impl ClusterConfig {
    /// A config scaled for unit tests and small examples: small overheads so
    /// simulated times stay legible.
    pub fn small(nodes: usize) -> Self {
        Self {
            nodes,
            map_slots_per_node: 2,
            reduce_slots_per_node: 1,
            job_overhead: Duration::from_millis(10),
            task_overhead: Duration::from_millis(1),
            ..Self::default()
        }
    }

    /// Total map slots across the cluster.
    pub fn map_slots(&self) -> usize {
        (self.nodes * self.map_slots_per_node).max(1)
    }

    /// Total reduce slots across the cluster.
    pub fn reduce_slots(&self) -> usize {
        (self.nodes * self.reduce_slots_per_node).max(1)
    }
}

/// An execution handle: the simulated configuration plus the real thread
/// budget used to run tasks locally.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Simulated cluster description.
    pub config: ClusterConfig,
    threads: usize,
}

impl Cluster {
    /// Create a cluster handle with the given simulated config; local
    /// execution uses all available host parallelism.
    pub fn new(config: ClusterConfig) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self { config, threads }
    }

    /// Override the number of local worker threads (mainly for tests).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of local worker threads used to actually execute tasks.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Per-mapper memory budget of the simulated cluster.
    pub fn mapper_memory(&self) -> usize {
        self.config.mapper_memory_bytes
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new(ClusterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts() {
        let c = ClusterConfig::default();
        assert_eq!(c.map_slots(), 40);
        assert_eq!(c.reduce_slots(), 20);
        let tiny = ClusterConfig {
            nodes: 0,
            ..ClusterConfig::default()
        };
        assert_eq!(tiny.map_slots(), 1);
    }

    #[test]
    fn cluster_threads_positive() {
        let c = Cluster::default();
        assert!(c.threads() >= 1);
        assert_eq!(c.clone().with_threads(0).threads(), 1);
    }
}
