//! A local, multi-threaded MapReduce engine standing in for the paper's
//! 10-node Hadoop cluster.
//!
//! The engine executes map and reduce tasks on real OS threads (bounded by
//! the host's parallelism) while *accounting* time against a configurable
//! simulated cluster: per-task wall durations are measured and scheduled
//! onto the simulated cluster's map/reduce slots (LPT makespan), plus
//! Hadoop-style per-task and per-job overheads. This is what lets the
//! benchmark harness reproduce the paper's cluster-size sweep (5/10/15/20
//! nodes, Section 11.4) from a single physical machine.
//!
//! Operators interact with the engine exactly the way Falcon's operators
//! interact with Hadoop: they provide map/reduce functions, read the
//! configured per-mapper memory budget (which gates the `apply_*` physical
//! operator selection of Section 10.1), and receive job statistics.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod error;
pub mod fault;
pub mod job;
pub mod runner;
pub mod sim_time;

pub use cluster::{Cluster, ClusterConfig};
pub use error::{DataflowError, Phase};
pub use fault::{DetRng, FaultInjector, FaultPlan, FaultStats, NodeLoss, TaskFaultOutcome};
pub use job::{Emitter, JobOutput, JobStats};
pub use runner::{run_map_combine_reduce, run_map_only, run_map_reduce};
pub use sim_time::{makespan, wall_now, SimDuration};
