//! Threaded execution of MapReduce jobs over in-memory splits.

use crate::cluster::Cluster;
use crate::error::{DataflowError, Phase};
use crate::fault::{self, FaultStats};
use crate::job::{Emitter, JobOutput, JobStats};
use crate::sim_time::wall_now;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// One map task's result: split index, per-reduce-partition buckets of
/// intermediate pairs, the task's simulated slot duration and its fault
/// accounting.
type MapTaskResult<K, V> = (usize, Vec<Vec<(K, V)>>, Duration, FaultStats);

/// A reduce partition handed off to exactly one worker, which `take`s it.
type PartitionSlot<K, V> = Mutex<Option<Vec<(K, V)>>>;

/// One completed task: (task index, output records, measured duration,
/// per-attempt fault accounting).
type TaskResult<O> = (usize, Vec<O>, Duration, FaultStats);

/// FNV-1a with the standard 64-bit offset basis and prime. Unlike
/// `std::collections::hash_map::DefaultHasher`, whose keys are explicitly
/// unstable across Rust releases, this hasher produces the same value on
/// every toolchain — shuffle partitioning (and therefore per-partition
/// sim timings and reduce output order) must be reproducible everywhere.
struct StableHasher(u64);

impl StableHasher {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = StableHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Group `(k, v)` pairs by key, preserving first-seen key order and
/// per-key value arrival order. Hash-map iteration order is never
/// observed, so for a fixed input sequence the output is identical on
/// every run — the reduce and combine phases rely on this to keep job
/// output deterministic (shuffle already concatenates map buckets in
/// split order).
fn group_in_arrival_order<K: Hash + Eq + Clone, V>(pairs: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    let mut slot_of: HashMap<K, usize> = HashMap::new();
    let mut grouped: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in pairs {
        match slot_of.get(&k) {
            Some(&slot) => grouped[slot].1.push(v),
            None => {
                slot_of.insert(k.clone(), grouped.len());
                grouped.push((k, vec![v]));
            }
        }
    }
    grouped
}

/// Record a task-level failure, keeping the error with the smallest task
/// index, and raise the short-circuit flag so workers stop claiming
/// tasks for a job that is already doomed.
fn record_task_error(slot: &Mutex<Option<DataflowError>>, failed: &AtomicBool, err: DataflowError) {
    failed.store(true, Ordering::Relaxed);
    let mut guard = slot.lock();
    let replace = match (&*guard, err.task_index()) {
        (None, _) => true,
        (Some(prev), Some(task)) => prev.task_index().is_some_and(|pt| task < pt),
        _ => false,
    };
    if replace {
        *guard = Some(err);
    }
}

/// A panic escaped the per-task containment (it happened outside task
/// execution, e.g. while a worker pushed its result) — report it with
/// the job coordinates we still know.
fn scope_panic_error(job: u64, phase: Phase) -> DataflowError {
    DataflowError::WorkerPanicked {
        job,
        phase,
        task: 0,
        attempts: 0,
        message: "worker thread died outside task execution".to_string(),
    }
}

/// Run a full map-shuffle-reduce job.
///
/// * `splits` — input splits; each becomes one map task.
/// * `map_fn(record, emitter)` — called per record; emits intermediate pairs.
/// * `reduce_fn(key, values, out)` — called once per distinct key with all
///   its values; pushes output records.
///
/// Map tasks run concurrently on the cluster's local worker threads; so do
/// reduce partitions. Output records are concatenated in partition order;
/// callers needing a total order should sort the output.
///
/// When the cluster carries a [`FaultPlan`](crate::fault::FaultPlan),
/// injected task failures are re-executed Hadoop-style (their time plus
/// exponential backoff is charged to the task's simulated slot duration),
/// stragglers run slowed or speculatively rescued, and a panicking map
/// task is retried until the attempt budget runs out. Job *output* is
/// unaffected by injected faults — map/reduce closures are deterministic,
/// so only the simulated timeline and [`JobStats::faults`] change. A task
/// that fails every attempt surfaces as
/// [`DataflowError::AttemptsExhausted`]; an uncontained panic as
/// [`DataflowError::WorkerPanicked`], both carrying job/phase/task/attempt
/// context.
///
/// ```
/// use falcon_dataflow::{run_map_reduce, Cluster, ClusterConfig, Emitter};
///
/// let cluster = Cluster::new(ClusterConfig::small(2));
/// let out = run_map_reduce(
///     &cluster,
///     vec![vec!["a b", "b"], vec!["a"]],
///     2,
///     |doc: &&str, e: &mut Emitter<String, u32>| {
///         for w in doc.split_whitespace() { e.emit(w.to_string(), 1); }
///     },
///     |w: &String, ones: Vec<u32>, out: &mut Vec<(String, u32)>| {
///         out.push((w.clone(), ones.len() as u32));
///     },
/// ).expect("no worker panicked");
/// let mut counts = out.output;
/// counts.sort();
/// assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 2)]);
/// ```
pub fn run_map_reduce<I, K, V, O, M, R>(
    cluster: &Cluster,
    splits: Vec<Vec<I>>,
    reduce_partitions: usize,
    map_fn: M,
    reduce_fn: R,
) -> Result<JobOutput<O>, DataflowError>
where
    I: Sync,
    K: Hash + Eq + Send + Clone,
    V: Send,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    R: Fn(&K, Vec<V>, &mut Vec<O>) + Sync,
{
    let start = wall_now();
    let job = cluster.next_job_id();
    let injector = cluster.fault_injector();
    let reduce_partitions = reduce_partitions.max(1);
    let n_splits = splits.len();
    let input_records: usize = splits.iter().map(|s| s.len()).sum();

    // ---- Map phase ----
    let map_results: Mutex<Vec<MapTaskResult<K, V>>> = Mutex::new(Vec::with_capacity(n_splits));
    let first_err: Mutex<Option<DataflowError>> = Mutex::new(None);
    let failed = AtomicBool::new(false);
    {
        let next = AtomicUsize::new(0);
        let splits_ref = &splits;
        let map_ref = &map_fn;
        let results_ref = &map_results;
        let err_ref = &first_err;
        let failed_ref = &failed;
        let n_threads = cluster.threads().min(n_splits.max(1));
        crossbeam::thread::scope(|scope| {
            for _ in 0..n_threads {
                scope.spawn(|_| loop {
                    if failed_ref.load(Ordering::Relaxed) {
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n_splits {
                        break;
                    }
                    let attempt = fault::run_attempts(injector, job, Phase::Map, idx, true, || {
                        let mut emitter = Emitter::new();
                        for record in &splits_ref[idx] {
                            map_ref(record, &mut emitter);
                        }
                        let mut buckets: Vec<Vec<(K, V)>> =
                            (0..reduce_partitions).map(|_| Vec::new()).collect();
                        for (k, v) in emitter.into_pairs() {
                            let p = partition_of(&k, reduce_partitions);
                            buckets[p].push((k, v));
                        }
                        buckets
                    });
                    match attempt {
                        Ok((buckets, slot, stats)) => {
                            results_ref.lock().push((idx, buckets, slot, stats));
                        }
                        Err(e) => record_task_error(err_ref, failed_ref, e),
                    }
                });
            }
        })
        .map_err(|_| scope_panic_error(job, Phase::Map))?;
    }
    if let Some(e) = first_err.lock().take() {
        return Err(e);
    }
    let mut map_results = map_results.into_inner();
    map_results.sort_by_key(|(idx, _, _, _)| *idx);
    let map_durations: Vec<Duration> = map_results.iter().map(|(_, _, d, _)| *d).collect();
    let mut fault_totals = FaultStats::default();
    for (_, _, _, stats) in &map_results {
        fault_totals.absorb(stats);
    }

    // ---- Shuffle ----
    // Pre-size each partition to its exact final length so the
    // single-threaded concatenation never reallocates mid-extend.
    let mut bucket_sizes = vec![0usize; reduce_partitions];
    for (_, buckets, _, _) in &map_results {
        for (p, bucket) in buckets.iter().enumerate() {
            bucket_sizes[p] += bucket.len();
        }
    }
    let shuffled_records: usize = bucket_sizes.iter().sum();
    let mut partitions: Vec<Vec<(K, V)>> =
        bucket_sizes.into_iter().map(Vec::with_capacity).collect();
    for (_, buckets, _, _) in map_results {
        for (p, bucket) in buckets.into_iter().enumerate() {
            partitions[p].extend(bucket);
        }
    }

    // ---- Reduce phase ----
    // Each worker takes ownership of a whole partition via Mutex<Option<_>>.
    let reduce_inputs: Vec<PartitionSlot<K, V>> = partitions
        .into_iter()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let reduce_results: Mutex<Vec<TaskResult<O>>> =
        Mutex::new(Vec::with_capacity(reduce_partitions));
    {
        let next = AtomicUsize::new(0);
        let reduce_ref = &reduce_fn;
        let inputs_ref = &reduce_inputs;
        let results_ref = &reduce_results;
        let err_ref = &first_err;
        let failed_ref = &failed;
        let n_threads = cluster.threads().min(reduce_partitions);
        crossbeam::thread::scope(|scope| {
            for _ in 0..n_threads {
                scope.spawn(|_| loop {
                    if failed_ref.load(Ordering::Relaxed) {
                        break;
                    }
                    let pid = next.fetch_add(1, Ordering::Relaxed);
                    if pid >= inputs_ref.len() {
                        break;
                    }
                    // `fetch_add` hands each pid to exactly one worker; a
                    // vacant slot is reported after the scope joins.
                    let Some(pairs) = inputs_ref[pid].lock().take() else {
                        continue;
                    };
                    // The reduce body consumes its partition, so a panicked
                    // attempt cannot be re-executed (`retry_panics: false`);
                    // injected failures never run the body and are charged
                    // to sim time only, so they retry fine.
                    let mut pairs = Some(pairs);
                    let attempt =
                        fault::run_attempts(injector, job, Phase::Reduce, pid, false, || {
                            let mut out = Vec::new();
                            for (k, vs) in group_in_arrival_order(pairs.take().unwrap_or_default())
                            {
                                reduce_ref(&k, vs, &mut out);
                            }
                            out
                        });
                    match attempt {
                        Ok((out, slot, stats)) => {
                            results_ref.lock().push((pid, out, slot, stats));
                        }
                        Err(e) => record_task_error(err_ref, failed_ref, e),
                    }
                });
            }
        })
        .map_err(|_| scope_panic_error(job, Phase::Reduce))?;
    }
    if let Some(e) = first_err.lock().take() {
        return Err(e);
    }
    let mut reduce_results = reduce_results.into_inner();
    reduce_results.sort_by_key(|(pid, _, _, _)| *pid);
    if reduce_results.len() != reduce_partitions {
        let partition = (0..reduce_partitions)
            .find(|p| !reduce_results.iter().any(|(pid, _, _, _)| pid == p))
            .unwrap_or(0);
        return Err(DataflowError::PartitionMissing {
            job,
            phase: Phase::Reduce,
            partition,
        });
    }
    let reduce_durations: Vec<Duration> = reduce_results.iter().map(|(_, _, d, _)| *d).collect();
    for (_, _, _, stats) in &reduce_results {
        fault_totals.absorb(stats);
    }
    let mut output = Vec::new();
    for (_, mut out, _, _) in reduce_results {
        output.append(&mut out);
    }

    let stats = JobStats {
        map_tasks: n_splits,
        reduce_tasks: reduce_partitions,
        input_records,
        shuffled_records,
        output_records: output.len(),
        map_durations,
        reduce_durations,
        wall: start.elapsed(),
        faults: fault_totals,
    };
    Ok(JobOutput { output, stats })
}

/// Run a map-only job: each record maps to zero or more output records, no
/// shuffle or reduce (the implementation of `gen_fvs` and `apply_matcher`
/// in the paper, Sections 8 and 9). Fault injection and panic retry work
/// as in [`run_map_reduce`].
pub fn run_map_only<I, O, M>(
    cluster: &Cluster,
    splits: Vec<Vec<I>>,
    map_fn: M,
) -> Result<JobOutput<O>, DataflowError>
where
    I: Sync,
    O: Send,
    M: Fn(&I, &mut Vec<O>) + Sync,
{
    let start = wall_now();
    let job = cluster.next_job_id();
    let injector = cluster.fault_injector();
    let n_splits = splits.len();
    let input_records: usize = splits.iter().map(|s| s.len()).sum();
    let results: Mutex<Vec<TaskResult<O>>> = Mutex::new(Vec::with_capacity(n_splits));
    let first_err: Mutex<Option<DataflowError>> = Mutex::new(None);
    let failed = AtomicBool::new(false);
    {
        let next = AtomicUsize::new(0);
        let splits_ref = &splits;
        let map_ref = &map_fn;
        let results_ref = &results;
        let err_ref = &first_err;
        let failed_ref = &failed;
        let n_threads = cluster.threads().min(n_splits.max(1));
        crossbeam::thread::scope(|scope| {
            for _ in 0..n_threads {
                scope.spawn(|_| loop {
                    if failed_ref.load(Ordering::Relaxed) {
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n_splits {
                        break;
                    }
                    let attempt =
                        fault::run_attempts(injector, job, Phase::MapOnly, idx, true, || {
                            let mut out = Vec::new();
                            for record in &splits_ref[idx] {
                                map_ref(record, &mut out);
                            }
                            out
                        });
                    match attempt {
                        Ok((out, slot, stats)) => {
                            results_ref.lock().push((idx, out, slot, stats));
                        }
                        Err(e) => record_task_error(err_ref, failed_ref, e),
                    }
                });
            }
        })
        .map_err(|_| scope_panic_error(job, Phase::MapOnly))?;
    }
    if let Some(e) = first_err.lock().take() {
        return Err(e);
    }
    let mut results = results.into_inner();
    results.sort_by_key(|(idx, _, _, _)| *idx);
    let map_durations: Vec<Duration> = results.iter().map(|(_, _, d, _)| *d).collect();
    let mut fault_totals = FaultStats::default();
    for (_, _, _, stats) in &results {
        fault_totals.absorb(stats);
    }
    let mut output = Vec::new();
    for (_, mut out, _, _) in results {
        output.append(&mut out);
    }
    let stats = JobStats {
        map_tasks: n_splits,
        reduce_tasks: 0,
        input_records,
        shuffled_records: 0,
        output_records: output.len(),
        map_durations,
        reduce_durations: Vec::new(),
        wall: start.elapsed(),
        faults: fault_totals,
    };
    Ok(JobOutput { output, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::fault::FaultPlan;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(2)).with_threads(4)
    }

    #[test]
    fn word_count() {
        let docs = vec![vec!["a b a", "c"], vec!["b b", "a c c"]];
        let out = run_map_reduce(
            &cluster(),
            docs,
            3,
            |doc: &&str, e: &mut Emitter<String, u32>| {
                for w in doc.split_whitespace() {
                    e.emit(w.to_string(), 1);
                }
            },
            |k: &String, vs: Vec<u32>, out: &mut Vec<(String, u32)>| {
                out.push((k.clone(), vs.iter().sum()));
            },
        )
        .expect("job");
        let mut counts = out.output;
        counts.sort();
        assert_eq!(
            counts,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 3),
                ("c".to_string(), 3)
            ]
        );
        assert_eq!(out.stats.map_tasks, 2);
        assert_eq!(out.stats.input_records, 4);
        assert_eq!(out.stats.shuffled_records, 9);
        assert_eq!(out.stats.output_records, 3);
        assert_eq!(out.stats.faults, FaultStats::default());
    }

    #[test]
    fn stable_hasher_matches_fnv1a_test_vectors() {
        // Published FNV-1a 64-bit vectors: the partitioner must be
        // identical on every toolchain, unlike DefaultHasher.
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn partitioning_is_stable_and_covers_all_partitions() {
        let assignments: Vec<usize> = (0..64u64).map(|k| partition_of(&k, 4)).collect();
        assert_eq!(
            assignments,
            (0..64u64).map(|k| partition_of(&k, 4)).collect::<Vec<_>>()
        );
        for p in 0..4 {
            assert!(assignments.contains(&p), "partition {p} never used");
        }
    }

    #[test]
    fn map_only_flat_maps() {
        let out = run_map_only(
            &cluster(),
            vec![vec![1, 2], vec![3]],
            |x: &i32, out: &mut Vec<i32>| {
                out.push(x * 10);
                out.push(x * 10 + 1);
            },
        )
        .expect("job");
        assert_eq!(out.output, vec![10, 11, 20, 21, 30, 31]);
        assert_eq!(out.stats.output_records, 6);
    }

    #[test]
    fn empty_input() {
        let out = run_map_reduce(
            &cluster(),
            Vec::<Vec<u32>>::new(),
            4,
            |_: &u32, _: &mut Emitter<u32, u32>| {},
            |_: &u32, _: Vec<u32>, _: &mut Vec<u32>| {},
        )
        .expect("job");
        assert!(out.output.is_empty());
        assert_eq!(out.stats.map_tasks, 0);
    }

    #[test]
    fn map_panic_is_an_error_not_a_crash() {
        let err = run_map_only(
            &cluster(),
            vec![vec![1u32], vec![2]],
            |x: &u32, _out: &mut Vec<u32>| {
                assert!(*x != 2, "poisoned record");
            },
        )
        .expect_err("worker panic must surface");
        match err {
            DataflowError::WorkerPanicked {
                job,
                phase,
                task,
                attempts,
                message,
            } => {
                assert_eq!((job, phase, task, attempts), (0, Phase::MapOnly, 1, 1));
                assert!(message.contains("poisoned record"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reduce_panic_is_an_error_not_a_crash() {
        let err = run_map_reduce(
            &cluster(),
            vec![vec![1u32, 2, 3]],
            2,
            |x: &u32, e: &mut Emitter<u32, u32>| e.emit(*x, *x),
            |k: &u32, _vs: Vec<u32>, _out: &mut Vec<(u32, u32)>| {
                assert!(*k != 2, "poisoned key");
            },
        )
        .expect_err("reducer panic must surface");
        match err {
            DataflowError::WorkerPanicked {
                phase, attempts, ..
            } => {
                assert_eq!(phase, Phase::Reduce);
                assert_eq!(attempts, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn flaky_map_task_is_retried_under_a_fault_plan() {
        // A map body that panics on its first execution of split 1 but
        // succeeds when retried: with a fault plan the job must recover.
        use std::sync::atomic::AtomicUsize;
        let cluster = cluster().with_faults(FaultPlan::seeded(3));
        let crashes = AtomicUsize::new(0);
        let out = run_map_only(
            &cluster,
            vec![vec![1u32], vec![2]],
            |x: &u32, out: &mut Vec<u32>| {
                if *x == 2 && crashes.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                out.push(*x * 10);
            },
        )
        .expect("job must recover via retry");
        assert_eq!(out.output, vec![10, 20]);
        assert_eq!(out.stats.faults.retries, 1);
        assert!(out.stats.faults.time_lost > Duration::ZERO);
    }

    #[test]
    fn all_values_reach_one_reducer_call() {
        // Keys spread over many partitions; every key sees all its values at
        // once.
        let splits: Vec<Vec<u32>> = (0..8)
            .map(|s| (0..100).map(|i| s * 100 + i).collect())
            .collect();
        let out = run_map_reduce(
            &cluster(),
            splits,
            5,
            |x: &u32, e: &mut Emitter<u32, u32>| e.emit(x % 7, *x),
            |k: &u32, vs: Vec<u32>, out: &mut Vec<(u32, usize)>| out.push((*k, vs.len())),
        )
        .expect("job");
        let mut sizes = out.output;
        sizes.sort();
        assert_eq!(sizes.len(), 7);
        let total: usize = sizes.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn sequential_equivalence() {
        // The engine must compute the same grouped aggregation as a
        // sequential reference implementation.
        let data: Vec<u64> = (0..500).map(|i| i * 37 % 101).collect();
        let splits: Vec<Vec<u64>> = data.chunks(61).map(|c| c.to_vec()).collect();
        let out = run_map_reduce(
            &cluster(),
            splits,
            7,
            |x: &u64, e: &mut Emitter<u64, u64>| e.emit(x % 10, *x),
            |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| out.push((*k, vs.iter().sum())),
        )
        .expect("job");
        let mut got = out.output;
        got.sort();
        let mut expect: HashMap<u64, u64> = HashMap::new();
        for x in data {
            *expect.entry(x % 10).or_default() += x;
        }
        let mut expect: Vec<(u64, u64)> = expect.into_iter().collect();
        expect.sort();
        assert_eq!(got, expect);
    }
}

/// Run a map-combine-shuffle-reduce job: like [`run_map_reduce`], but a
/// combiner runs on each map task's output before the shuffle, collapsing
/// each key's local values into one (Hadoop's classic network-traffic
/// optimization — the token-frequency job of the paper's Section 7.5 is
/// the textbook use). Fault injection applies through the underlying
/// map-reduce execution.
pub fn run_map_combine_reduce<I, K, V, O, M, CB, R>(
    cluster: &Cluster,
    splits: Vec<Vec<I>>,
    reduce_partitions: usize,
    map_fn: M,
    combine_fn: CB,
    reduce_fn: R,
) -> Result<JobOutput<O>, DataflowError>
where
    I: Sync,
    K: Hash + Eq + Send + Clone,
    V: Send,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    CB: Fn(&K, Vec<V>) -> V + Sync,
    R: Fn(&K, Vec<V>, &mut Vec<O>) + Sync,
{
    let combine_ref = &combine_fn;
    let map_ref = &map_fn;
    let true_input_records: usize = splits.iter().map(Vec::len).sum();
    // Re-split so each original split becomes a single record: the
    // combiner then runs once per map task, exactly like Hadoop's.
    let wrapped: Vec<Vec<Vec<I>>> = splits.into_iter().map(|s| vec![s]).collect();
    let mut out = run_map_reduce(
        cluster,
        wrapped,
        reduce_partitions,
        move |records: &Vec<I>, emitter: &mut Emitter<K, V>| {
            let mut local = Emitter::new();
            for record in records {
                map_ref(record, &mut local);
            }
            for (k, vs) in group_in_arrival_order(local.into_pairs()) {
                let combined = combine_ref(&k, vs);
                emitter.emit(k, combined);
            }
        },
        reduce_fn,
    )?;
    // input_records counted wrapped splits; restore the true record count.
    out.stats.input_records = true_input_records;
    Ok(out)
}

#[cfg(test)]
mod combiner_tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn combiner_reduces_shuffle_volume_same_answer() {
        let cluster = Cluster::new(ClusterConfig::small(2)).with_threads(2);
        let docs: Vec<Vec<&str>> = vec![vec!["a a a b"], vec!["a b b"]];
        let plain = run_map_reduce(
            &cluster,
            docs.clone(),
            2,
            |doc: &&str, e: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    e.emit(w.to_string(), 1);
                }
            },
            |k: &String, vs: Vec<u64>, out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.iter().sum()));
            },
        )
        .expect("job");
        let combined = run_map_combine_reduce(
            &cluster,
            docs,
            2,
            |doc: &&str, e: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    e.emit(w.to_string(), 1);
                }
            },
            |_k: &String, vs: Vec<u64>| vs.iter().sum(),
            |k: &String, vs: Vec<u64>, out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.iter().sum()));
            },
        )
        .expect("job");
        let norm = |mut v: Vec<(String, u64)>| {
            v.sort();
            v
        };
        assert_eq!(norm(plain.output), norm(combined.output));
        // The combined job shuffles at most one record per (split, key).
        assert!(combined.stats.shuffled_records <= plain.stats.shuffled_records);
        assert_eq!(combined.stats.shuffled_records, 4); // {a,b} × 2 splits
        assert_eq!(plain.stats.shuffled_records, 7); // every token
    }
}
