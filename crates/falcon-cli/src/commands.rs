//! CLI subcommands: `match`, `profile`, `demo`, `serve`.

use falcon::core::features::generate_features;
use falcon::crowd::interactive::InteractiveCrowd;
use falcon::prelude::*;
use falcon::table::csv;
use falcon::table::TableProfile;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

/// Top-level usage text.
pub const USAGE: &str = "\
falcon — hands-off crowdsourced entity matching

USAGE:
    falcon match <a.csv> <b.csv> [OPTIONS]   run end-to-end EM over two CSV tables
    falcon plan check <a.csv> <b.csv> [OPTIONS]  pre-flight plan analysis, no execution
    falcon profile <table.csv>               show inferred attribute characteristics
    falcon demo [products|songs|citations|drugs]  run on a synthetic dataset with ground truth
    falcon serve <manifest>                  run many EM jobs on one shared node pool
    falcon help                              show this message

MATCH / PLAN CHECK OPTIONS:
    --out <path>         write matched pairs as CSV (default: stdout summary only)
    --interactive        you answer the crowd questions at the terminal (y/n)
    --sample <n>         sampler target |S| (default 10000)
    --budget <pairs>     enumeration guard for the baselines (default 50000000)
    --workflow <k>       run k iterative Matcher/Estimator rounds (default 1)
    --nodes <n>          simulated cluster size (plan check; default 10)
    --explain            plan check: list blocking features and print the
                         rationale behind every verifier diagnostic
    --force-filter <i:t> plan check: override blocking feature i's index
                         filter with threshold/width t (repeatable); the
                         static verifier proves the override recall-safe
                         or rejects the plan
    --resume <journal>   checkpoint crowd labels to <journal> and resume a
                         crashed run from it without re-asking questions

DEMO OPTIONS:
    --scale <f>          dataset scale multiplier (default laptop-sized)
    --error <p>          simulated crowd error rate (default 0.05)
    --seed <n>           RNG seed (default 1)
    --fault-rate <p>     inject task failures at rate p (deterministic, seeded)
    --straggler-rate <p> make a fraction p of tasks stragglers (speculation on)
    --resume <journal>   checkpoint / resume, as in `falcon match`

SERVE OPTIONS:
    --policy <p>         fifo | fair | priority | random (default fair)
    --nodes <n>          shared pool size in nodes (default 10)
    --slots <n>          task slots per node (default 4)
    --threads <n>        concurrent tenant drivers; virtual results are
                         identical at any setting (default 4)
    --seed <n>           scheduler seed for --policy random (default 0)
    --journal <path>     commit every scheduler decision to a service
                         journal so a crashed service can be resumed
    --resume <path>      resume a crashed service from its journal: the
                         committed schedule is replayed and verified, and
                         no crowd question is ever re-asked
    --deadline <secs>    default per-job virtual-clock deadline (a job's
                         own deadline= key takes precedence)
    --admission <p>      reject | shed | queue (queue-overflow policy)
    --max-active <n>     max concurrently active tenants (0 = unbounded)
    --max-queue <n>      max tenants waiting beyond the active set
    --queue-deadline <s> deadline stamped on overflow admissions under
                         --admission queue

    Exit status: 0 when every tenant succeeded; 3 when the service ran but
    some tenant failed (deadline / quarantined / shed / rejected — see the
    per-tenant status= lines); 1 when the service itself failed.

    The manifest lists one tenant job per line as key=value pairs
    (blank lines and '#' comments ignored):
        dataset=products scale=1.0 seed=1 error=0.05 priority=0
        dataset=songs latency=900 workflow=2 arrival=60 journal=b.journal
    Keys: dataset (required), scale, seed, error, latency (crowd secs),
    priority, arrival (secs), deadline (secs), workflow (outer rounds),
    journal, name.
";

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn load(path: &str) -> Result<Table, String> {
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    csv::read_table(path, BufReader::new(f)).map_err(|e| format!("parse {path}: {e}"))
}

fn print_report(report: &falcon::core::driver::RunReport) {
    println!("plan           : {:?}", report.plan);
    if let Some(op) = report.physical {
        println!("physical op    : {}", op.name());
    }
    if let Some(c) = report.candidate_size {
        println!("candidates     : {c}");
    }
    println!(
        "blocking rules : {} extracted, {} retained, {} in sequence",
        report.rules_extracted,
        report.rules_retained,
        report.rule_sequence.len()
    );
    println!("matches        : {}", report.matches.len());
    println!(
        "crowd          : {} questions / {} answers / ${:.2}",
        report.ledger.questions, report.ledger.answers, report.ledger.cost
    );
    println!(
        "time           : machine {:?}, crowd {:?}, total {:?}",
        report.machine_time(),
        report.crowd_time(),
        report.total_time()
    );
    if let Some(bs) = &report.blocking {
        println!(
            "probes         : {} examined / {} pruned by signature / {} pruned exact / {} survived",
            bs.pairs_examined(),
            bs.pruned_by_signature(),
            bs.pruned_by_exact(),
            bs.survived()
        );
        for c in &bs.conjuncts {
            println!(
                "  conjunct[{:>2}] : modes [{}], {} examined, {} sig-pruned, {} exact-pruned, {} survived",
                c.conjunct,
                c.modes.join(", "),
                c.pairs_examined,
                c.pruned_by_signature,
                c.pruned_by_exact,
                c.survived
            );
        }
    }
    let f = &report.faults;
    if f.attempts > 0 {
        println!(
            "faults         : {} attempts / {} retries / {} node-loss / {} speculative ({} won), {:?} lost",
            f.attempts, f.retries, f.node_loss_failures, f.speculative, f.speculative_wins, f.time_lost
        );
    }
    if let Some(e) = &report.journal_error {
        println!("journal        : FAILED mid-run ({e}); this run cannot be resumed");
    }
}

/// `falcon match a.csv b.csv [...]`.
pub fn cmd_match(args: &[String]) -> Result<(), String> {
    let [a_path, b_path, ..] = args else {
        return Err(format!("match needs two CSV paths\n\n{USAGE}"));
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    println!(
        "loaded {} ({} rows) and {} ({} rows)",
        a.name(),
        a.len(),
        b.name(),
        b.len()
    );

    let sample: usize = flag_value(args, "--sample")
        .map(|v| v.parse().map_err(|_| "--sample expects a number"))
        .transpose()?
        .unwrap_or(10_000);
    let budget: u128 = flag_value(args, "--budget")
        .map(|v| v.parse().map_err(|_| "--budget expects a number"))
        .transpose()?
        .unwrap_or(50_000_000);
    let workflow: usize = flag_value(args, "--workflow")
        .map(|v| v.parse().map_err(|_| "--workflow expects a number"))
        .transpose()?
        .unwrap_or(1);

    if !has_flag(args, "--interactive") {
        return Err(
            "without ground truth only --interactive labeling is possible; \
             pass --interactive (or use `falcon demo` for simulated crowds)"
                .into(),
        );
    }
    let config = FalconConfig {
        sample_size: sample,
        max_pairs: budget,
        al: falcon::core::ops::al_matcher::AlConfig {
            max_iterations: 8, // human sessions should stay short
            ..Default::default()
        },
        ..FalconConfig::default()
    };
    let crowd = InteractiveCrowd::new(
        a.clone(),
        b.clone(),
        BufReader::new(std::io::stdin()),
        std::io::stdout(),
    );
    let falcon = Falcon::new(config);
    let resume = flag_value(args, "--resume");
    let report = if workflow > 1 {
        let (report, estimates) = match resume {
            Some(journal) => falcon
                .try_run_workflow_resumable(&a, &b, crowd, workflow, journal)
                .map_err(|e| e.to_string())?,
            None => falcon
                .try_run_workflow(&a, &b, crowd, workflow)
                .map_err(|e| e.to_string())?,
        };
        for (i, est) in estimates.iter().enumerate() {
            println!(
                "round {}: est P {:.1}% ±{:.1}, est R {:.1}% ±{:.1}",
                i + 1,
                est.precision * 100.0,
                est.precision_margin * 100.0,
                est.recall * 100.0,
                est.recall_margin * 100.0
            );
        }
        report
    } else {
        match resume {
            Some(journal) => falcon
                .try_run_resumable(&a, &b, crowd, journal)
                .map_err(|e| e.to_string())?,
            None => falcon.try_run(&a, &b, crowd).map_err(|e| e.to_string())?,
        }
    };
    print_report(&report);

    if let Some(out_path) = flag_value(args, "--out") {
        let f = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
        let mut w = BufWriter::new(f);
        writeln!(w, "a_id,b_id").map_err(|e| e.to_string())?;
        for (aid, bid) in &report.matches {
            writeln!(w, "{aid},{bid}").map_err(|e| e.to_string())?;
        }
        println!("wrote {} matches to {out_path}", report.matches.len());
    }
    Ok(())
}

/// `falcon plan check a.csv b.csv [...]`: run the pre-flight analyzer the
/// driver uses as its execution gate, without touching the crowd.
pub fn cmd_plan(args: &[String]) -> Result<(), String> {
    let [sub, a_path, b_path, ..] = args else {
        return Err(format!(
            "plan needs a subcommand and two CSV paths\n\n{USAGE}"
        ));
    };
    if sub != "check" {
        return Err(format!(
            "unknown plan subcommand {sub:?} (expected `check`)\n\n{USAGE}"
        ));
    }
    let a = load(a_path)?;
    let b = load(b_path)?;

    let mut config = FalconConfig {
        sample_size: flag_value(args, "--sample")
            .map(|v| v.parse().map_err(|_| "--sample expects a number"))
            .transpose()?
            .unwrap_or(10_000),
        max_pairs: flag_value(args, "--budget")
            .map(|v| v.parse().map_err(|_| "--budget expects a number"))
            .transpose()?
            .unwrap_or(50_000_000),
        ..FalconConfig::default()
    };
    if let Some(nodes) = flag_value(args, "--nodes") {
        config.cluster.nodes = nodes.parse().map_err(|_| "--nodes expects a number")?;
    }
    let explain = has_flag(args, "--explain");

    // `--force-filter IDX:THRESHOLD` (repeatable): override the index
    // filter of blocking feature IDX. Deliberately constructed without
    // domain guards so recall-unsafe values are *rejected by the
    // verifier*, with a diagnostic, rather than silently dropped.
    let blocking = generate_features(&a, &b).blocking;
    let mut i = 0;
    while let Some(pos) = args[i..].iter().position(|s| s == "--force-filter") {
        let at = i + pos;
        let value = args
            .get(at + 1)
            .ok_or("--force-filter expects IDX:THRESHOLD")?;
        let (idx, threshold) = value
            .split_once(':')
            .ok_or("--force-filter expects IDX:THRESHOLD")?;
        let idx: usize = idx
            .parse()
            .map_err(|_| "--force-filter IDX must be a feature index")?;
        let threshold: f64 = threshold
            .parse()
            .map_err(|_| "--force-filter THRESHOLD must be a number")?;
        let ff = falcon::core::ForcedFilter::for_feature(&blocking, idx, threshold).ok_or_else(
            || {
                format!(
                    "--force-filter references feature {idx} but only {} blocking features exist",
                    blocking.len()
                )
            },
        )?;
        config.force_filters.push(ff);
        i = at + 2;
    }

    let analysis = falcon::core::analyze(&a, &b, &config);
    println!(
        "tables         : {} ({} rows) x {} ({} rows) = {} pairs",
        a.name(),
        a.len(),
        b.name(),
        b.len(),
        analysis.pairs
    );
    println!("plan           : {:?}", analysis.plan);
    if explain {
        if let Some(op) = config.force_physical {
            println!("physical op    : {} — {}", op.name(), op.describe());
        }
        println!(
            "features       : {} blocking / {} matching",
            analysis.blocking_features, analysis.matching_features
        );
        for (i, f) in blocking.features.iter().enumerate() {
            println!("  blocking[{i:>2}] : {}", f.name);
        }
    } else {
        println!(
            "features       : {} blocking / {} matching",
            analysis.blocking_features, analysis.matching_features
        );
    }
    for d in &analysis.diagnostics {
        println!("{d}");
        if explain {
            println!("  explain      : {}", d.explain);
        }
    }
    if analysis.is_ok() {
        println!(
            "plan check     : ok ({} warning(s))",
            analysis.warnings().count()
        );
        Ok(())
    } else {
        for e in &analysis.errors {
            eprintln!("plan error     : {e}");
        }
        Err(format!(
            "plan check failed with {} error(s)",
            analysis.errors.len()
        ))
    }
}

/// `falcon profile table.csv`: the Section 8 attribute analysis.
pub fn cmd_profile(args: &[String]) -> Result<(), String> {
    let [path, ..] = args else {
        return Err(format!("profile needs a CSV path\n\n{USAGE}"));
    };
    let t = load(path)?;
    let p = TableProfile::scan(&t);
    println!(
        "{path}: {} rows, {} attributes",
        t.len(),
        t.schema().arity()
    );
    println!(
        "{:<20} {:>8} {:>18} {:>7} {:>10}",
        "attribute", "type", "characteristic", "fill%", "avg words"
    );
    for attr in &p.attrs {
        println!(
            "{:<20} {:>8} {:>18} {:>6.1} {:>10.2}",
            attr.name,
            format!("{:?}", attr.ty),
            format!("{:?}", attr.characteristic),
            attr.fill_rate * 100.0,
            attr.avg_words
        );
    }
    // Preview what feature generation would produce against itself.
    let lib = generate_features(&t, &t);
    println!(
        "\nfeature generation (vs an identically-shaped table): {} blocking / {} matching",
        lib.blocking.len(),
        lib.matching.len()
    );
    Ok(())
}

/// `falcon demo [dataset]`: simulated end-to-end run with quality report.
pub fn cmd_demo(args: &[String]) -> Result<(), String> {
    let name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map_or("products", String::as_str);
    let default_scale = match name {
        "products" => 0.05,
        "songs" => 0.002,
        "citations" => 0.0015,
        "drugs" => 0.004,
        other => return Err(format!("unknown dataset {other:?}")),
    };
    let scale: f64 = flag_value(args, "--scale")
        .map(|v| v.parse().map_err(|_| "--scale expects a number"))
        .transpose()?
        .unwrap_or(1.0)
        * default_scale;
    let error: f64 = flag_value(args, "--error")
        .map(|v| v.parse().map_err(|_| "--error expects a number"))
        .transpose()?
        .unwrap_or(0.05);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|_| "--seed expects a number"))
        .transpose()?
        .unwrap_or(1);
    let fault_rate: f64 = flag_value(args, "--fault-rate")
        .map(|v| v.parse().map_err(|_| "--fault-rate expects a number"))
        .transpose()?
        .unwrap_or(0.0);
    let straggler_rate: f64 = flag_value(args, "--straggler-rate")
        .map(|v| v.parse().map_err(|_| "--straggler-rate expects a number"))
        .transpose()?
        .unwrap_or(0.0);

    let d = falcon::datagen::generate(name, scale, seed);
    println!(
        "demo {name}: {} x {} tuples, {} true matches, crowd error {:.0}%",
        d.a.len(),
        d.b.len(),
        d.truth.len(),
        error * 100.0
    );
    let truth = GroundTruth::new(d.truth.iter().copied());
    let crowd = RandomWorkerCrowd::new(truth, error, seed);
    let fault = (fault_rate > 0.0 || straggler_rate > 0.0).then(|| {
        FaultPlan::seeded(seed)
            .with_failure_rate(fault_rate)
            .with_straggler_rate(straggler_rate)
    });
    let config = FalconConfig {
        sample_size: 8_000,
        sample_fanout: 20,
        fault,
        ..FalconConfig::default()
    };
    let falcon = Falcon::new(config);
    let report = match flag_value(args, "--resume") {
        Some(journal) => falcon
            .try_run_resumable(&d.a, &d.b, crowd, journal)
            .map_err(|e| e.to_string())?,
        None => falcon
            .try_run(&d.a, &d.b, crowd)
            .map_err(|e| e.to_string())?,
    };
    print_report(&report);
    let q = report.quality(&d.truth);
    println!(
        "quality        : P {:.1}%  R {:.1}%  F1 {:.1}%",
        q.precision * 100.0,
        q.recall * 100.0,
        q.f1 * 100.0
    );
    Ok(())
}

/// One parsed manifest line for `falcon serve`.
fn parse_manifest_line(line: &str, idx: usize) -> Result<JobSpec, String> {
    let mut dataset = None;
    let mut name = None;
    let mut scale = 1.0f64;
    let mut seed = 1u64;
    let mut error = 0.05f64;
    let mut latency: Option<f64> = None;
    let mut priority = 0i32;
    let mut arrival = 0.0f64;
    let mut deadline: Option<f64> = None;
    let mut workflow = 0usize;
    let mut journal: Option<String> = None;
    for field in line.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected key=value, got {field:?}", idx + 1))?;
        let bad = |what: &str| format!("line {}: {key}= expects {what}", idx + 1);
        match key {
            "dataset" => dataset = Some(value.to_string()),
            "name" => name = Some(value.to_string()),
            "scale" => scale = value.parse().map_err(|_| bad("a number"))?,
            "seed" => seed = value.parse().map_err(|_| bad("an integer"))?,
            "error" => error = value.parse().map_err(|_| bad("a number"))?,
            "latency" => latency = Some(value.parse().map_err(|_| bad("seconds"))?),
            "priority" => priority = value.parse().map_err(|_| bad("an integer"))?,
            "arrival" => arrival = value.parse().map_err(|_| bad("seconds"))?,
            "deadline" => deadline = Some(value.parse().map_err(|_| bad("seconds"))?),
            "workflow" => workflow = value.parse().map_err(|_| bad("an integer"))?,
            "journal" => journal = Some(value.to_string()),
            other => return Err(format!("line {}: unknown key {other:?}", idx + 1)),
        }
    }
    let dataset = dataset.ok_or_else(|| format!("line {}: missing dataset=", idx + 1))?;
    let default_scale = match dataset.as_str() {
        "products" => 0.05,
        "songs" => 0.002,
        "citations" => 0.0015,
        "drugs" => 0.004,
        other => return Err(format!("line {}: unknown dataset {other:?}", idx + 1)),
    };
    let d = falcon::datagen::generate(&dataset, scale * default_scale, seed);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let mut crowd = RandomWorkerCrowd::new(truth, error, seed);
    if let Some(secs) = latency {
        crowd = crowd.with_latency(std::time::Duration::from_secs_f64(secs.max(0.0)));
    }
    let config = FalconConfig {
        sample_size: 2_000,
        sample_fanout: 20,
        seed,
        ..FalconConfig::default()
    };
    let mut spec = JobSpec::new(
        name.unwrap_or_else(|| format!("{dataset}-{}", idx + 1)),
        d.a,
        d.b,
        config,
        std::sync::Arc::new(crowd),
    )
    .with_priority(priority)
    .with_arrival(std::time::Duration::from_secs_f64(arrival.max(0.0)));
    if workflow > 0 {
        spec = spec.with_workflow(workflow);
    }
    if let Some(p) = journal {
        spec = spec.with_journal(p);
    }
    if let Some(secs) = deadline {
        spec = spec.with_deadline(std::time::Duration::from_secs_f64(secs.max(0.0)));
    }
    Ok(spec)
}

/// Run `falcon serve`. `Ok(code)` means the service ran: exit 0 when
/// every tenant succeeded, exit 3 when some tenant failed (partial
/// result). `Err` means the service itself failed (exit 1 in `main`).
pub fn cmd_serve(args: &[String]) -> Result<std::process::ExitCode, String> {
    let manifest_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: falcon serve <manifest> [OPTIONS]")?;
    let text =
        std::fs::read_to_string(manifest_path).map_err(|e| format!("read {manifest_path}: {e}"))?;
    let mut jobs: Vec<JobSpec> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .map(|(i, l)| parse_manifest_line(l, i))
        .collect::<Result<_, _>>()?;
    if jobs.is_empty() {
        return Err(format!("{manifest_path}: no jobs in manifest"));
    }

    let policy = match flag_value(args, "--policy") {
        Some(p) => Policy::parse(p).ok_or_else(|| format!("unknown policy {p:?}"))?,
        None => Policy::FairShare,
    };
    let admission = falcon::serve::AdmissionConfig {
        policy: match flag_value(args, "--admission") {
            Some(p) => falcon::serve::AdmissionPolicy::parse(p)
                .ok_or_else(|| format!("unknown admission policy {p:?}"))?,
            None => falcon::serve::AdmissionPolicy::Reject,
        },
        max_active: flag_value(args, "--max-active")
            .map(|v| v.parse().map_err(|_| "--max-active expects an integer"))
            .transpose()?
            .unwrap_or(0),
        max_queue: flag_value(args, "--max-queue")
            .map(|v| v.parse().map_err(|_| "--max-queue expects an integer"))
            .transpose()?
            .unwrap_or(0),
        queue_deadline: flag_value(args, "--queue-deadline")
            .map(|v| {
                v.parse::<f64>()
                    .map(std::time::Duration::from_secs_f64)
                    .map_err(|_| "--queue-deadline expects seconds")
            })
            .transpose()?,
        quota: falcon::serve::TenantQuota::default(),
    };
    // --resume implies --journal at the same path; the committed schedule
    // is replayed and verified before any new decision is made.
    let resume_path = flag_value(args, "--resume");
    let journal = resume_path
        .or(flag_value(args, "--journal"))
        .map(std::path::PathBuf::from);
    let cfg = ServeConfig {
        pool_nodes: flag_value(args, "--nodes")
            .map(|v| v.parse().map_err(|_| "--nodes expects an integer"))
            .transpose()?
            .unwrap_or(10),
        slots_per_node: flag_value(args, "--slots")
            .map(|v| v.parse().map_err(|_| "--slots expects an integer"))
            .transpose()?
            .unwrap_or(4),
        threads: flag_value(args, "--threads")
            .map(|v| v.parse().map_err(|_| "--threads expects an integer"))
            .transpose()?
            .unwrap_or(4),
        seed: flag_value(args, "--seed")
            .map(|v| v.parse().map_err(|_| "--seed expects an integer"))
            .transpose()?
            .unwrap_or(0),
        policy,
        admission,
        journal,
        ..ServeConfig::default()
    };
    if let Some(secs) = flag_value(args, "--deadline") {
        let d: f64 = secs.parse().map_err(|_| "--deadline expects seconds")?;
        for job in jobs.iter_mut() {
            if job.deadline.is_none() {
                job.deadline = Some(std::time::Duration::from_secs_f64(d.max(0.0)));
            }
        }
    }

    println!(
        "serving {} jobs on {} nodes ({:?}, {} driver threads{})",
        jobs.len(),
        cfg.pool_nodes,
        cfg.policy,
        cfg.threads,
        if resume_path.is_some() {
            ", resuming from journal"
        } else {
            ""
        }
    );
    let rep = if resume_path.is_some() {
        falcon::serve::resume(jobs, &cfg)
    } else {
        falcon::serve::serve(jobs, &cfg)
    }
    .map_err(|e| e.to_string())?;
    let mut failed = 0usize;
    for o in &rep.outcomes {
        let status = o.status.as_str();
        match &o.result {
            Ok(r) => println!(
                "tenant {:<16} status={status:<11} prio {:>3}  latency {:>12}  \
                 service {:>12}  matches {:>6}  ${:.2}",
                o.name,
                o.priority,
                fmt_short(o.latency),
                fmt_short(o.machine_service),
                r.matches.len(),
                r.ledger.cost
            ),
            Err(e) => {
                failed += 1;
                let detail = o
                    .service_error
                    .as_ref()
                    .map_or_else(|| e.to_string(), |se| se.to_string());
                println!("tenant {:<16} status={status:<11} {detail}", o.name);
            }
        }
    }
    if rep.replayed_rounds > 0 {
        println!(
            "resumed: {} of {} rounds replayed from the journal",
            rep.replayed_rounds, rep.rounds
        );
    }
    println!(
        "aggregate: makespan {} (serial {}), speedup {:.2}x, \
         utilization {:.1}% (serial {:.1}%), p50 {} p99 {}, {} rounds",
        fmt_short(rep.makespan),
        fmt_short(rep.serial_makespan),
        rep.throughput_speedup(),
        rep.utilization * 100.0,
        rep.serial_utilization * 100.0,
        fmt_short(rep.latency_percentile(50.0)),
        fmt_short(rep.latency_percentile(99.0)),
        rep.rounds
    );
    if failed > 0 {
        eprintln!(
            "{failed} of {} tenants failed; exiting 3 (partial result)",
            rep.outcomes.len()
        );
        return Ok(std::process::ExitCode::from(3));
    }
    Ok(std::process::ExitCode::SUCCESS)
}

/// Render a duration compactly (`2h07m`, `31m52s`, `4.2s`).
fn fmt_short(d: std::time::Duration) -> String {
    let s = d.as_secs();
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{:.1}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = s(&["a.csv", "b.csv", "--sample", "500", "--interactive"]);
        assert_eq!(flag_value(&args, "--sample"), Some("500"));
        assert_eq!(flag_value(&args, "--out"), None);
        assert!(has_flag(&args, "--interactive"));
        assert!(!has_flag(&args, "--workflow"));
    }

    #[test]
    fn match_requires_two_paths() {
        assert!(cmd_match(&s(&["only_one.csv"])).is_err());
    }

    #[test]
    fn match_requires_interactive_or_demo() {
        // Write two tiny CSVs.
        let dir = std::env::temp_dir();
        let pa = dir.join("falcon_cli_test_a.csv");
        let pb = dir.join("falcon_cli_test_b.csv");
        std::fs::write(&pa, "name\nx\n").unwrap();
        std::fs::write(&pb, "name\nx\n").unwrap();
        let err = cmd_match(&s(&[pa.to_str().unwrap(), pb.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("--interactive"), "{err}");
    }

    #[test]
    fn manifest_line_parses_all_keys() {
        let spec = parse_manifest_line(
            "dataset=products scale=0.2 seed=3 error=0.1 latency=120 \
             priority=2 arrival=30 workflow=2 journal=/tmp/x.journal name=acme",
            0,
        )
        .unwrap();
        assert_eq!(spec.name, "acme");
        assert_eq!(spec.priority, 2);
        assert_eq!(spec.arrival, std::time::Duration::from_secs(30));
        assert_eq!(spec.workflow_rounds, 2);
        assert!(spec.journal.is_some());
    }

    #[test]
    fn manifest_line_rejects_garbage() {
        assert!(parse_manifest_line("scale=1.0", 0)
            .unwrap_err()
            .contains("missing dataset"));
        assert!(parse_manifest_line("dataset=products nope", 4)
            .unwrap_err()
            .contains("line 5"));
        assert!(parse_manifest_line("dataset=products bogus=1", 0)
            .unwrap_err()
            .contains("unknown key"));
        assert!(parse_manifest_line("dataset=nothere", 0)
            .unwrap_err()
            .contains("unknown dataset"));
    }

    #[test]
    fn serve_runs_a_tiny_manifest() {
        let dir = std::env::temp_dir();
        let p = dir.join("falcon_cli_serve.manifest");
        std::fs::write(
            &p,
            "# two small tenants\n\
             dataset=products scale=0.3 seed=1\n\
             dataset=products scale=0.3 seed=2 priority=1\n",
        )
        .unwrap();
        assert!(cmd_serve(&s(&[p.to_str().unwrap(), "--threads", "2"])).is_ok());
    }

    #[test]
    fn serve_requires_manifest() {
        assert!(cmd_serve(&s(&["--policy", "fair"])).is_err());
        assert!(cmd_serve(&s(&["/nonexistent/jobs.manifest"])).is_err());
    }

    #[test]
    fn profile_runs_on_csv() {
        let dir = std::env::temp_dir();
        let p = dir.join("falcon_cli_profile.csv");
        std::fs::write(
            &p,
            "title,price\nlong gadget name here,10\nanother item,25\n",
        )
        .unwrap();
        assert!(cmd_profile(&s(&[p.to_str().unwrap()])).is_ok());
    }

    #[test]
    fn demo_rejects_unknown_dataset() {
        assert!(cmd_demo(&s(&["nope"])).is_err());
    }

    fn plan_fixture(tag: &str) -> (String, String) {
        let dir = std::env::temp_dir();
        let pa = dir.join(format!("falcon_cli_plan_a_{tag}.csv"));
        let pb = dir.join(format!("falcon_cli_plan_b_{tag}.csv"));
        let mut rows = String::from("title,price\n");
        for i in 0..40 {
            rows.push_str(&format!("useful gadget number {i},{i}\n"));
        }
        std::fs::write(&pa, &rows).unwrap();
        std::fs::write(&pb, &rows).unwrap();
        (pa.to_str().unwrap().into(), pb.to_str().unwrap().into())
    }

    #[test]
    fn plan_check_accepts_well_formed_input() {
        let (pa, pb) = plan_fixture("ok");
        assert!(cmd_plan(&s(&["check", &pa, &pb])).is_ok());
    }

    #[test]
    fn plan_check_rejects_zero_cluster() {
        let (pa, pb) = plan_fixture("cluster");
        let err = cmd_plan(&s(&["check", &pa, &pb, "--nodes", "0"])).unwrap_err();
        assert!(err.contains("plan check failed"), "{err}");
    }

    #[test]
    fn plan_check_requires_the_check_subcommand() {
        assert!(cmd_plan(&s(&["frobnicate", "a.csv", "b.csv"])).is_err());
    }

    #[test]
    fn plan_check_rejects_a_recall_unsafe_forced_filter() {
        let (pa, pb) = plan_fixture("unsafe_filter");
        // Threshold 0 on any similarity filter violates ThresholdPositive.
        let err = cmd_plan(&s(&[
            "check",
            &pa,
            &pb,
            "--explain",
            "--force-filter",
            "0:0",
        ]))
        .unwrap_err();
        assert!(err.contains("plan check failed"), "{err}");
    }

    #[test]
    fn plan_check_accepts_a_safe_forced_filter_with_explain() {
        let (pa, pb) = plan_fixture("safe_filter");
        assert!(cmd_plan(&s(&[
            "check",
            &pa,
            &pb,
            "--explain",
            "--force-filter",
            "0:0.2",
        ]))
        .is_ok());
    }

    #[test]
    fn plan_check_force_filter_validates_its_syntax() {
        let (pa, pb) = plan_fixture("filter_syntax");
        let err = cmd_plan(&s(&["check", &pa, &pb, "--force-filter", "nope"])).unwrap_err();
        assert!(err.contains("IDX:THRESHOLD"), "{err}");
        let err = cmd_plan(&s(&["check", &pa, &pb, "--force-filter", "999:0.5"])).unwrap_err();
        assert!(err.contains("blocking features exist"), "{err}");
    }
}
