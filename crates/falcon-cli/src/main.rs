//! `falcon` — the command-line face of the EM service the paper's
//! Example 1 describes: "a user can just submit the two tables to be
//! matched ... and specify the crowdsourcing budget".
//!
//! ```text
//! falcon match a.csv b.csv [--out matches.csv] [--interactive | --demo-crowd <err>]
//! falcon plan check a.csv b.csv [--budget pairs] [--nodes n]
//! falcon profile table.csv
//! falcon demo [products|songs|citations] [--scale f]
//! falcon serve jobs.manifest [--policy fair] [--nodes n] [--threads k]
//! ```

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("match") => commands::cmd_match(&args[1..]),
        Some("plan") => commands::cmd_plan(&args[1..]),
        Some("profile") => commands::cmd_profile(&args[1..]),
        Some("demo") => commands::cmd_demo(&args[1..]),
        // `serve` distinguishes per-tenant failure (exit 3) from service
        // failure (exit 1): a cloud batch with one quarantined tenant
        // still produced every other tenant's result.
        Some("serve") => {
            return match commands::cmd_serve(&args[1..]) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
