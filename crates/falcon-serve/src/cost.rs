//! Deterministic stage pricing for the multi-tenant scheduler.
//!
//! The scheduler never prices a machine stage by its *measured* duration
//! — measured wall time is run-to-run noise, and a noisy price would make
//! placements (and therefore per-tenant virtual finish times) depend on
//! host load. Instead every machine stage carries its deterministic shape
//! `(map tasks, input records)` from
//! [`falcon_core::stage::StageEvent`], and this [`CostModel`] converts
//! the shape plus a node grant into a simulated duration the same way
//! the simulated Hadoop cluster does: per-job overhead, then waves of
//! tasks across the granted slots. Crowd stages are priced by their
//! recorded virtual latency, which *is* deterministic.

use falcon_core::stage::{StageEvent, StageKind};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Prices a machine stage from its deterministic shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed simulated overhead per stage (job setup, scheduling).
    pub job_overhead: Duration,
    /// Fixed simulated overhead per task attempt.
    pub task_overhead: Duration,
    /// Simulated compute time per input record.
    pub per_record: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        // Mirrors the simulated cluster's default job/task overheads
        // (`ClusterConfig::default`), with a per-record charge small
        // enough that crowd rounds dominate at paper-like settings.
        Self {
            job_overhead: Duration::from_millis(500),
            task_overhead: Duration::from_millis(20),
            per_record: Duration::from_micros(10),
        }
    }
}

impl CostModel {
    /// A model scaled for unit tests: tiny overheads, legible numbers.
    pub fn small() -> Self {
        Self {
            job_overhead: Duration::from_millis(10),
            task_overhead: Duration::from_millis(1),
            per_record: Duration::from_micros(1),
        }
    }

    /// Map slots a stage could fill: one per task, expressed in nodes.
    pub fn nodes_wanted(event: &StageEvent, slots_per_node: usize) -> usize {
        let tasks = event.tasks.max(1) as usize;
        tasks.div_ceil(slots_per_node.max(1))
    }

    /// Simulated duration of `event` when granted `nodes` nodes with
    /// `slots_per_node` concurrent tasks each. Crowd stages return their
    /// recorded virtual latency untouched; machine stages run
    /// `ceil(tasks / (nodes × slots))` waves of per-task work.
    pub fn duration(&self, event: &StageEvent, nodes: usize, slots_per_node: usize) -> Duration {
        if event.kind == StageKind::CrowdWait {
            return event.dur;
        }
        let tasks = u64::from(event.tasks.max(1));
        let slots = (nodes.max(1) as u64).saturating_mul(slots_per_node.max(1) as u64);
        let waves = tasks.div_ceil(slots);
        let per_task_records = event.records.div_ceil(tasks);
        let per_task = self.task_overhead
            + self
                .per_record
                .saturating_mul(u32::try_from(per_task_records).unwrap_or(u32::MAX));
        self.job_overhead + per_task.saturating_mul(u32::try_from(waves).unwrap_or(u32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(tasks: u32, records: u64) -> StageEvent {
        StageEvent {
            label: "x".into(),
            kind: StageKind::Machine,
            dur: Duration::from_secs(99),
            tasks,
            records,
        }
    }

    #[test]
    fn more_nodes_means_fewer_waves() {
        let cost = CostModel::small();
        let ev = machine(16, 16_000);
        let d1 = cost.duration(&ev, 1, 4); // 4 waves
        let d4 = cost.duration(&ev, 4, 4); // 1 wave
        assert!(d1 > d4);
        assert_eq!(
            d4,
            cost.job_overhead + cost.task_overhead + cost.per_record * 1000
        );
    }

    #[test]
    fn crowd_stages_keep_virtual_latency() {
        let cost = CostModel::default();
        let ev = StageEvent {
            label: "al_matcher".into(),
            kind: StageKind::CrowdWait,
            dur: Duration::from_secs(90),
            tasks: 0,
            records: 0,
        };
        assert_eq!(cost.duration(&ev, 10, 4), Duration::from_secs(90));
    }

    #[test]
    fn nodes_wanted_rounds_up() {
        assert_eq!(CostModel::nodes_wanted(&machine(9, 0), 4), 3);
        assert_eq!(CostModel::nodes_wanted(&machine(1, 0), 4), 1);
    }
}
