//! The lease protocol between a tenant's driver thread and the scheduler.
//!
//! Each tenant job runs the unmodified `falcon-core` driver on its own OS
//! thread, gated by a [`ServeGate`] installed in its
//! [`Timeline`](falcon_core::timeline::Timeline). At every stage boundary
//! the gate reports a [`StageEvent`] to the scheduler over a per-tenant
//! channel; for machine-kind stages it then *blocks* until the scheduler
//! answers with a [`StageControl`] verdict — `Continue` is a node lease
//! for whatever comes next, `Cancel` orders the driver to unwind at its
//! next cancellation point. Crowd-kind stages never block: their latency
//! is virtual, so parking the driver thread on them would serialize
//! tenants for no reason.
//!
//! **Shutdown safety**: if the scheduler side of either channel is gone —
//! the event send fails, or the grant receive disconnects while the
//! tenant is parked — the gate returns
//! [`StageControl::Cancel`]`(`[`CancelReason::Shutdown`]`)` so the driver
//! unwinds with a typed error instead of hanging forever or silently
//! running to completion ungated.
//!
//! Real CPU concurrency is bounded separately by a counting semaphore
//! ([`Permits`]): a tenant holds a permit while actually computing and
//! releases it across its grant wait, so `ServeConfig::threads` caps how
//! many drivers burn CPU at once. Permits are a *real-time* throttle
//! only — the scheduler's lockstep rounds (drain every active tenant,
//! place, grant) make every virtual-time outcome independent of the
//! permit count, which is what the determinism tests pin down.

use falcon_core::stage::{CancelReason, StageControl, StageEvent, StageGate, StageKind};
use parking_lot::Mutex;
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;

/// Counting semaphore over a bounded channel: the buffer holds the
/// permits currently *checked out*, so `send` blocks once `k` holders
/// exist and receiving returns one slot to the pool. (The vendored
/// `parking_lot` stub has no condvar; a bounded channel gives the same
/// blocking discipline with no busy wait.)
pub struct Permits {
    tx: SyncSender<()>,
    rx: Mutex<Receiver<()>>,
}

impl Permits {
    /// A pool of `k` permits (at least one).
    pub fn new(k: usize) -> Arc<Self> {
        let (tx, rx) = sync_channel(k.max(1));
        Arc::new(Self {
            tx,
            rx: Mutex::new(rx),
        })
    }

    /// Block until a permit is free, then hold it.
    pub fn acquire(&self) {
        // The receiver lives in `self`, so send can only fail if the
        // permit pool itself is gone — nothing to hold in that case.
        let _ = self.tx.send(());
    }

    /// Return a held permit.
    pub fn release(&self) {
        let _ = self.rx.lock().try_recv();
    }
}

/// Stage-boundary gate for one tenant (see module docs).
pub struct ServeGate {
    /// Stage reports to the scheduler. `Sender` is wrapped so the gate is
    /// `Sync` on every supported toolchain.
    events: Mutex<Sender<StageEvent>>,
    /// Per-stage verdicts from the scheduler: a node lease or a
    /// cancellation order.
    grants: Mutex<Receiver<StageControl>>,
    /// Real-concurrency throttle shared by all tenants.
    permits: Arc<Permits>,
}

impl ServeGate {
    /// Wire a gate to its scheduler-side channels.
    pub fn new(
        events: Sender<StageEvent>,
        grants: Receiver<StageControl>,
        permits: Arc<Permits>,
    ) -> Self {
        Self {
            events: Mutex::new(events),
            grants: Mutex::new(grants),
            permits,
        }
    }
}

impl StageGate for ServeGate {
    fn on_stage(&self, event: StageEvent) -> StageControl {
        let kind = event.kind;
        if self.events.lock().send(event).is_err() {
            // Scheduler gone (shut down or failed): order a typed unwind
            // rather than running to completion ungated.
            return StageControl::Cancel(CancelReason::Shutdown);
        }
        if kind == StageKind::CrowdWait {
            return StageControl::Continue;
        }
        // Machine-kind boundary: hand the CPU back while waiting for the
        // scheduler to place this stage and issue its verdict.
        self.permits.release();
        let verdict = self.grants.lock().recv();
        self.permits.acquire();
        match verdict {
            Ok(control) => control,
            // Scheduler dropped while we were parked: unpark with a
            // typed shutdown instead of hanging the tenant thread.
            Err(_) => StageControl::Cancel(CancelReason::Shutdown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn ev(kind: StageKind) -> StageEvent {
        StageEvent {
            label: "x".into(),
            kind,
            dur: Duration::from_secs(1),
            tasks: 1,
            records: 0,
        }
    }

    #[test]
    fn crowd_events_do_not_block() {
        let (etx, erx) = channel();
        let (_gtx, grx) = channel();
        let gate = ServeGate::new(etx, grx, Permits::new(1));
        // Would deadlock if crowd events waited for a grant.
        assert_eq!(
            gate.on_stage(ev(StageKind::CrowdWait)),
            StageControl::Continue
        );
        assert_eq!(erx.recv().unwrap().kind, StageKind::CrowdWait);
    }

    #[test]
    fn machine_events_block_until_granted() {
        let (etx, erx) = channel();
        let (gtx, grx) = channel();
        let permits = Permits::new(1);
        permits.acquire();
        let gate = Arc::new(ServeGate::new(etx, grx, permits));
        let g2 = gate.clone();
        let h = std::thread::spawn(move || g2.on_stage(ev(StageKind::Machine)));
        // The event arrives while the worker is parked on the grant.
        assert_eq!(erx.recv().unwrap().kind, StageKind::Machine);
        gtx.send(StageControl::Continue).unwrap();
        assert_eq!(h.join().unwrap(), StageControl::Continue);
    }

    #[test]
    fn cancel_verdicts_pass_through() {
        let (etx, _erx) = channel();
        let (gtx, grx) = channel();
        let gate = ServeGate::new(etx, grx, Permits::new(1));
        gtx.send(StageControl::Cancel(CancelReason::Deadline))
            .unwrap();
        assert_eq!(
            gate.on_stage(ev(StageKind::Machine)),
            StageControl::Cancel(CancelReason::Deadline)
        );
    }

    #[test]
    fn dropped_event_channel_is_typed_shutdown() {
        let (etx, erx) = channel();
        drop(erx);
        let (_gtx, grx) = channel::<StageControl>();
        let gate = ServeGate::new(etx, grx, Permits::new(1));
        assert_eq!(
            gate.on_stage(ev(StageKind::Machine)),
            StageControl::Cancel(CancelReason::Shutdown)
        );
    }

    #[test]
    fn dropped_grant_channel_unparks_with_shutdown() {
        let (etx, erx) = channel();
        let (gtx, grx) = channel::<StageControl>();
        let gate = Arc::new(ServeGate::new(etx, grx, Permits::new(1)));
        let g2 = gate.clone();
        let h = std::thread::spawn(move || g2.on_stage(ev(StageKind::Machine)));
        assert_eq!(erx.recv().unwrap().kind, StageKind::Machine);
        drop(gtx); // scheduler dies while the tenant is parked
        assert_eq!(
            h.join().unwrap(),
            StageControl::Cancel(CancelReason::Shutdown)
        );
    }

    #[test]
    fn permits_bound_holders() {
        let p = Permits::new(2);
        p.acquire();
        p.acquire();
        // A third acquire would block; release frees a slot first.
        p.release();
        p.acquire();
        p.release();
        p.release();
    }
}
