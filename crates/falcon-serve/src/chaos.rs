//! Chaos-matrix harness: kill the service at a chosen round, resume it,
//! and prove nothing changed.
//!
//! A cell of the matrix fixes {kill point × machine fault rate × crowd
//! loss × pool shrink × policy × threads}. [`run_cell`] then runs the
//! same workload three times:
//!
//! 1. **reference** — uninterrupted, journaled;
//! 2. **killed** — identical config plus
//!    [`ServeConfig::kill_after_rounds`], simulating a crash right after
//!    the journal committed that round;
//! 3. **resumed** — [`resume`] over the killed run's journals.
//!
//! and asserts the *resume-identity* contract:
//!
//! * the resumed [`serve_fingerprint`] equals the reference's (per-tenant
//!   reports, statuses, aggregate ledger, makespan — everything);
//! * the resumed service journal is byte-identical to the reference's;
//! * every per-tenant crowd journal is byte-identical to the reference's;
//! * `killed live questions + resumed live questions == reference live
//!   questions` — the crash/resume cycle re-asked the crowd **zero**
//!   questions.
//!
//! Workloads are supplied as a *factory* taking the cell and a scratch
//! directory: simulated crowds advance their RNGs as they answer, so each
//! of the three runs needs fresh crowds with identical seeds, and each
//! needs its crash journals in its own directory. Live crowd draws are
//! counted by transparently wrapping each job's crowd in a
//! [`CountingCrowd`].

use crate::error::{ServeError, SERVICE_TENANT};
use crate::job::JobSpec;
use crate::sched::{resume, serve, Policy, PoolEvent, ServeConfig, ServeReport};
use crate::serve_fingerprint;
use falcon_crowd::Crowd;
use falcon_table::IdPair;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Virtual time at which a cell's pool-shrink event fires.
pub const SHRINK_AT: Duration = Duration::from_secs(60);

/// One cell of the chaos matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosCell {
    /// Placement policy under test.
    pub policy: Policy,
    /// Round after which the service "crashes" (journal committed, grants
    /// never delivered).
    pub kill_round: u64,
    /// Machine-side fault-injection rate the factory should configure.
    pub fault_rate: f64,
    /// Crowd answer-loss rate the factory should configure.
    pub crowd_loss: f64,
    /// Fraction of the pool lost at [`SHRINK_AT`] (`0.0` = stable pool).
    pub pool_shrink: f64,
    /// Scheduler thread count.
    pub threads: usize,
}

impl ChaosCell {
    /// Stable cell label, used for scratch-directory names and reports.
    pub fn label(&self) -> String {
        let policy = match self.policy {
            Policy::Fifo => "fifo",
            Policy::FairShare => "fair",
            Policy::Priority => "prio",
            Policy::Random => "rand",
        };
        format!(
            "{policy}-k{}-f{:03}-l{:03}-s{:03}-t{}",
            self.kill_round,
            (self.fault_rate * 100.0).round() as u32,
            (self.crowd_loss * 100.0).round() as u32,
            (self.pool_shrink * 100.0).round() as u32,
            self.threads
        )
    }
}

/// Cartesian sweep over the matrix axes, in deterministic order.
pub fn sweep(
    policies: &[Policy],
    kill_rounds: &[u64],
    fault_rates: &[f64],
    crowd_losses: &[f64],
    pool_shrinks: &[f64],
    threads: &[usize],
) -> Vec<ChaosCell> {
    let mut cells = Vec::new();
    for &policy in policies {
        for &kill_round in kill_rounds {
            for &fault_rate in fault_rates {
                for &crowd_loss in crowd_losses {
                    for &pool_shrink in pool_shrinks {
                        for &t in threads {
                            cells.push(ChaosCell {
                                policy,
                                kill_round,
                                fault_rate,
                                crowd_loss,
                                pool_shrink,
                                threads: t,
                            });
                        }
                    }
                }
            }
        }
    }
    cells
}

/// A [`Crowd`] wrapper counting **live** draws (`try_answer` calls).
/// Journal replay goes through [`Crowd::fast_forward`] and is not
/// counted — which is exactly what makes the counter the right witness
/// for the zero-re-asked-questions assertion.
pub struct CountingCrowd {
    inner: Arc<dyn Crowd>,
    live: Arc<AtomicUsize>,
}

impl CountingCrowd {
    /// Wrap `inner`, accumulating live draws into `live`.
    pub fn new(inner: Arc<dyn Crowd>, live: Arc<AtomicUsize>) -> Self {
        Self { inner, live }
    }
}

impl Crowd for CountingCrowd {
    fn answer(&self, pair: IdPair) -> bool {
        self.live.fetch_add(1, Ordering::Relaxed);
        self.inner.answer(pair)
    }
    fn try_answer(&self, pair: IdPair) -> Option<bool> {
        self.live.fetch_add(1, Ordering::Relaxed);
        self.inner.try_answer(pair)
    }
    fn fast_forward(&self, draws: usize) {
        self.inner.fast_forward(draws);
    }
    fn latency_per_round(&self) -> Duration {
        self.inner.latency_per_round()
    }
    fn cost_per_answer(&self) -> f64 {
        self.inner.cost_per_answer()
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// What one kill/resume cell proved and measured.
#[derive(Debug)]
pub struct CellOutcome {
    /// Cell label.
    pub cell: String,
    /// Resumed fingerprint equals the reference fingerprint.
    pub resume_identical: bool,
    /// First differing fingerprint key, when not identical.
    pub mismatch: Option<String>,
    /// Resumed service-journal bytes equal the reference's.
    pub service_journal_identical: bool,
    /// Every per-tenant crowd journal is byte-identical to the reference.
    pub crowd_journals_identical: bool,
    /// Live crowd draws of the reference run.
    pub ref_live_questions: usize,
    /// Live draws before the kill.
    pub killed_live_questions: usize,
    /// Live draws after resume.
    pub resumed_live_questions: usize,
    /// Rounds the resumed run verified against the journal.
    pub replayed_rounds: u64,
    /// Round the killed run stopped at.
    pub killed_at_round: Option<u64>,
    /// Wall-clock time of the reference run.
    pub ref_wall: Duration,
    /// Wall-clock time of the killed run.
    pub kill_wall: Duration,
    /// Wall-clock time of the resumed run (replay + live tail).
    pub resume_wall: Duration,
    /// The reference report (virtual makespan, utilization, …).
    pub ref_report: ServeReport,
    /// The resumed report.
    pub resumed_report: ServeReport,
}

impl CellOutcome {
    /// Did every resume-identity assertion hold?
    pub fn holds(&self) -> bool {
        self.resume_identical
            && self.service_journal_identical
            && self.crowd_journals_identical
            && self.zero_reasked()
    }

    /// `killed + resumed == reference` live draws: no crowd question was
    /// ever asked twice.
    pub fn zero_reasked(&self) -> bool {
        self.killed_live_questions + self.resumed_live_questions == self.ref_live_questions
    }

    /// Wall-clock cost of crashing and recovering, relative to running
    /// uninterrupted: `(kill + resume) / reference`.
    pub fn recovery_overhead(&self) -> f64 {
        let base = self.ref_wall.as_secs_f64();
        if base == 0.0 {
            return 1.0;
        }
        (self.kill_wall + self.resume_wall).as_secs_f64() / base
    }
}

fn io_err(e: std::io::Error, what: &str) -> ServeError {
    ServeError::ServiceJournal {
        tenant: SERVICE_TENANT.to_string(),
        round: 0,
        message: format!("{what}: {e}"),
    }
}

/// Wrap every job's crowd in a [`CountingCrowd`] feeding one shared
/// counter, returning the counter.
fn attach_counter(jobs: &mut [JobSpec]) -> Arc<AtomicUsize> {
    let live = Arc::new(AtomicUsize::new(0));
    for job in jobs {
        job.crowd = Arc::new(CountingCrowd::new(job.crowd.clone(), live.clone()));
    }
    live
}

fn fresh_dir(dir: &Path) -> Result<(), ServeError> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).map_err(|e| io_err(e, "chaos scratch dir"))
}

fn read_bytes(path: &Path) -> Result<Vec<u8>, ServeError> {
    std::fs::read(path).map_err(|e| io_err(e, "chaos journal read"))
}

/// Run one kill/resume cell. `make_jobs(cell, dir)` must return a fresh,
/// identically-seeded workload whose per-tenant crash journals (if any)
/// live under `dir`; it is called once for the reference run and once for
/// the kill/resume pair. `base` supplies the pool shape; the cell's
/// policy, threads and pool shrink are overlaid on it.
pub fn run_cell<F>(
    cell: &ChaosCell,
    base: &ServeConfig,
    scratch: &Path,
    make_jobs: F,
) -> Result<CellOutcome, ServeError>
where
    F: Fn(&ChaosCell, &Path) -> Vec<JobSpec>,
{
    let mut cfg = base.clone();
    cfg.policy = cell.policy;
    cfg.threads = cell.threads.max(1);
    if cell.pool_shrink > 0.0 {
        let lost = ((cfg.pool_nodes as f64) * cell.pool_shrink).round() as i64;
        if lost > 0 {
            cfg.pool_events.push(PoolEvent {
                at: SHRINK_AT,
                delta: -lost,
            });
        }
    }

    let ref_dir = scratch.join(format!("{}-ref", cell.label()));
    let kill_dir = scratch.join(format!("{}-kill", cell.label()));
    fresh_dir(&ref_dir)?;
    fresh_dir(&kill_dir)?;

    // 1. Reference: uninterrupted, journaled.
    let mut ref_jobs = make_jobs(cell, &ref_dir);
    let ref_crowd_journals: Vec<PathBuf> =
        ref_jobs.iter().filter_map(|j| j.journal.clone()).collect();
    let ref_live = attach_counter(&mut ref_jobs);
    let mut ref_cfg = cfg.clone();
    ref_cfg.journal = Some(ref_dir.join("service.journal"));
    ref_cfg.kill_after_rounds = None;
    // Wall-clock on purpose: recovery overhead prices the harness's
    // own replay cost, not simulated time.
    // falcon-lint: allow(sim-time)
    let t0 = Instant::now();
    let ref_report = serve(ref_jobs, &ref_cfg)?;
    let ref_wall = t0.elapsed();

    // 2. Killed: same workload, crash after `kill_round`.
    let mut kill_jobs = make_jobs(cell, &kill_dir);
    let kill_crowd_journals: Vec<PathBuf> =
        kill_jobs.iter().filter_map(|j| j.journal.clone()).collect();
    let kill_live = attach_counter(&mut kill_jobs);
    let mut kill_cfg = cfg.clone();
    kill_cfg.journal = Some(kill_dir.join("service.journal"));
    kill_cfg.kill_after_rounds = Some(cell.kill_round);
    // Wall-clock on purpose: recovery overhead prices the harness's
    // own replay cost, not simulated time.
    // falcon-lint: allow(sim-time)
    let t1 = Instant::now();
    let killed_report = serve(kill_jobs, &kill_cfg)?;
    let kill_wall = t1.elapsed();

    // 3. Resumed: fresh identically-seeded jobs over the killed run's
    // journals; tenants replay their crowd journals, the scheduler
    // verifies its own journal, and the live tail completes the run.
    let mut resume_jobs = make_jobs(cell, &kill_dir);
    let resume_live = attach_counter(&mut resume_jobs);
    let mut resume_cfg = cfg.clone();
    resume_cfg.journal = kill_cfg.journal.clone();
    // Wall-clock on purpose: recovery overhead prices the harness's
    // own replay cost, not simulated time.
    // falcon-lint: allow(sim-time)
    let t2 = Instant::now();
    let resumed_report = resume(resume_jobs, &resume_cfg)?;
    let resume_wall = t2.elapsed();

    // ---- Identity checks -------------------------------------------
    let want = serve_fingerprint(&ref_report);
    let got = serve_fingerprint(&resumed_report);
    let mismatch = want
        .iter()
        .zip(got.iter())
        .find(|(a, b)| a != b)
        .map(|(a, b)| format!("{}: {} vs {}={}", a.0, a.1, b.0, b.1))
        .or_else(|| {
            (want.len() != got.len()).then(|| {
                format!(
                    "fingerprint length {} vs {} (tenant set changed)",
                    want.len(),
                    got.len()
                )
            })
        });
    let resume_identical = mismatch.is_none();

    let ref_sj = read_bytes(&ref_dir.join("service.journal"))?;
    let res_sj = read_bytes(&kill_dir.join("service.journal"))?;
    let service_journal_identical = ref_sj == res_sj;

    let mut crowd_journals_identical = ref_crowd_journals.len() == kill_crowd_journals.len();
    if crowd_journals_identical {
        for (r, k) in ref_crowd_journals.iter().zip(&kill_crowd_journals) {
            if read_bytes(r)? != read_bytes(k)? {
                crowd_journals_identical = false;
                break;
            }
        }
    }

    Ok(CellOutcome {
        cell: cell.label(),
        resume_identical,
        mismatch,
        service_journal_identical,
        crowd_journals_identical,
        ref_live_questions: ref_live.load(Ordering::Relaxed),
        killed_live_questions: kill_live.load(Ordering::Relaxed),
        resumed_live_questions: resume_live.load(Ordering::Relaxed),
        replayed_rounds: resumed_report.replayed_rounds,
        killed_at_round: killed_report.killed_at_round,
        ref_wall,
        kill_wall,
        resume_wall,
        ref_report,
        resumed_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_full_cartesian_product() {
        let cells = sweep(
            &[Policy::Fifo, Policy::Priority],
            &[1, 3],
            &[0.0],
            &[0.0, 0.25],
            &[0.0, 0.5],
            &[4],
        );
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        // Labels are unique.
        let mut labels: Vec<String> = cells.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cells.len());
    }

    #[test]
    fn counting_crowd_counts_live_draws_only() {
        struct Always;
        impl Crowd for Always {
            fn answer(&self, _: IdPair) -> bool {
                true
            }
            fn latency_per_round(&self) -> Duration {
                Duration::from_secs(1)
            }
            fn cost_per_answer(&self) -> f64 {
                0.0
            }
            fn name(&self) -> &str {
                "always"
            }
        }
        let live = Arc::new(AtomicUsize::new(0));
        let c = CountingCrowd::new(Arc::new(Always), live.clone());
        assert_eq!(c.try_answer((1, 2)), Some(true));
        assert!(c.answer((1, 2)));
        c.fast_forward(100); // replay path: not counted
        assert_eq!(live.load(Ordering::Relaxed), 2);
    }
}
