//! Admission control and backpressure for the multi-tenant scheduler.
//!
//! A production service cannot start every job the moment it arrives: the
//! pool is finite, and an unbounded backlog just converts overload into
//! unbounded latency. `falcon-serve` models the standard discipline:
//!
//! * at most [`AdmissionConfig::max_active`] tenants run concurrently
//!   (0 = unbounded, the pre-admission behaviour);
//! * everyone else waits in a bounded queue of capacity
//!   [`AdmissionConfig::max_queue`] (0 = unbounded);
//! * when the queue is full, [`AdmissionPolicy`] decides who loses:
//!   reject the newcomer, shed the lowest-priority waiter, or admit
//!   anyway but stamp the newcomer with a queue deadline so it cancels
//!   itself rather than rot in the backlog.
//!
//! Per-tenant quotas ([`TenantQuota`]) bound what an admitted job may
//! consume: a stage-count budget (attempt-budget overruns show up here)
//! and a node-seconds budget. Quota overruns cancel just that tenant —
//! the isolation tests pin down that every *other* tenant's bytes are
//! unchanged.
//!
//! All decisions are functions of `(job list, config)` only — no wall
//! clock — so admission replays bit-identically on crash-resume and is
//! journaled/verified like every other scheduler decision.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// What to do with a new job when the wait queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Refuse the newcomer with [`ServeError::QueueFull`](crate::ServeError).
    Reject,
    /// Evict the lowest-priority queued job (ties: latest arrival) to
    /// make room; the evicted job is reported as shed.
    ShedLowestPriority,
    /// Admit the newcomer anyway, but stamp it with
    /// [`AdmissionConfig::queue_deadline`] so overload converts into
    /// deadline cancellations instead of an unbounded backlog.
    QueueWithDeadline,
}

impl AdmissionPolicy {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reject" => Some(Self::Reject),
            "shed" | "shed-lowest-priority" => Some(Self::ShedLowestPriority),
            "queue" | "queue-with-deadline" => Some(Self::QueueWithDeadline),
            _ => None,
        }
    }

    /// Stable CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Reject => "reject",
            Self::ShedLowestPriority => "shed-lowest-priority",
            Self::QueueWithDeadline => "queue-with-deadline",
        }
    }
}

/// Per-tenant consumption budgets. `None` = unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Maximum machine-kind stages a tenant may run (a coarse
    /// attempt-budget: a fault-looping driver burns stages fast).
    pub max_stages: Option<u64>,
    /// Maximum node-seconds of machine service (`Σ duration × nodes`).
    pub node_seconds: Option<Duration>,
}

/// Admission-control configuration. The default disables every limit, so
/// existing callers see the pre-admission behaviour unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Queue-overflow policy.
    pub policy: AdmissionPolicy,
    /// Max concurrently active tenants (0 = unbounded).
    pub max_active: usize,
    /// Max jobs waiting beyond the active set (0 = unbounded).
    pub max_queue: usize,
    /// Deadline stamped on overflow admissions under
    /// [`AdmissionPolicy::QueueWithDeadline`], relative to arrival.
    pub queue_deadline: Option<Duration>,
    /// Per-tenant consumption budgets.
    pub quota: TenantQuota,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            policy: AdmissionPolicy::Reject,
            max_active: 0,
            max_queue: 0,
            queue_deadline: None,
            quota: TenantQuota::default(),
        }
    }
}

impl AdmissionConfig {
    /// Effective active-set bound.
    pub(crate) fn active_cap(&self) -> usize {
        if self.max_active == 0 {
            usize::MAX
        } else {
            self.max_active
        }
    }

    /// Effective queue bound.
    pub(crate) fn queue_cap(&self) -> usize {
        if self.max_queue == 0 {
            usize::MAX
        } else {
            self.max_queue
        }
    }
}

/// Admission-time verdict for one job, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Starts immediately (an activation slot was free at arrival).
    Active,
    /// Waits for a slot.
    Queued,
    /// Waits for a slot under a freshly stamped queue deadline.
    QueuedWithDeadline,
    /// Refused: queue full under [`AdmissionPolicy::Reject`].
    Rejected,
    /// Evicted from the queue by a higher-priority arrival.
    Shed,
}

impl AdmitDecision {
    /// Stable journal tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Active => "active",
            Self::Queued => "queued",
            Self::QueuedWithDeadline => "queued-deadline",
            Self::Rejected => "rejected",
            Self::Shed => "shed",
        }
    }
}

/// Compute admission decisions for jobs presented in arrival order.
/// `priorities[i]` is job `i`'s priority (higher = more important).
/// Returns one [`AdmitDecision`] per job.
pub(crate) fn admit(cfg: &AdmissionConfig, priorities: &[i32]) -> Vec<AdmitDecision> {
    let active_cap = cfg.active_cap();
    let queue_cap = cfg.queue_cap();
    let mut decisions = vec![AdmitDecision::Active; priorities.len()];
    let mut active = 0usize;
    // Queue members by job index; decisions are revised when a waiter is
    // shed by a later, more important arrival.
    let mut queue: Vec<usize> = Vec::new();
    for (i, &prio) in priorities.iter().enumerate() {
        if active < active_cap {
            active += 1;
            decisions[i] = AdmitDecision::Active;
            continue;
        }
        if queue.len() < queue_cap {
            decisions[i] = AdmitDecision::Queued;
            queue.push(i);
            continue;
        }
        match cfg.policy {
            AdmissionPolicy::Reject => decisions[i] = AdmitDecision::Rejected,
            AdmissionPolicy::ShedLowestPriority => {
                // Find the least important waiter (lowest priority;
                // ties broken toward the latest arrival, so earlier
                // equals are favoured). The newcomer competes too.
                let mut victim = i;
                let mut victim_prio = prio;
                for &q in &queue {
                    if priorities[q] < victim_prio
                        || (priorities[q] == victim_prio && q > victim && victim == i)
                    {
                        victim = q;
                        victim_prio = priorities[q];
                    }
                }
                // Among queued with equal lowest priority, shed the
                // latest arrival.
                if victim != i {
                    for &q in &queue {
                        if priorities[q] == victim_prio && q > victim {
                            victim = q;
                        }
                    }
                }
                decisions[victim] = AdmitDecision::Shed;
                if victim != i {
                    queue.retain(|&q| q != victim);
                    decisions[i] = AdmitDecision::Queued;
                    queue.push(i);
                }
            }
            AdmissionPolicy::QueueWithDeadline => {
                decisions[i] = AdmitDecision::QueuedWithDeadline;
                queue.push(i);
            }
        }
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: AdmissionPolicy, max_active: usize, max_queue: usize) -> AdmissionConfig {
        AdmissionConfig {
            policy,
            max_active,
            max_queue,
            queue_deadline: Some(Duration::from_secs(60)),
            quota: TenantQuota::default(),
        }
    }

    #[test]
    fn unbounded_admits_everyone() {
        let d = admit(&AdmissionConfig::default(), &[0, 1, 2, 3]);
        assert!(d.iter().all(|x| *x == AdmitDecision::Active));
    }

    #[test]
    fn overflow_rejects_under_reject() {
        let d = admit(&cfg(AdmissionPolicy::Reject, 1, 1), &[0, 0, 0]);
        assert_eq!(
            d,
            vec![
                AdmitDecision::Active,
                AdmitDecision::Queued,
                AdmitDecision::Rejected
            ]
        );
    }

    #[test]
    fn shed_evicts_lowest_priority_waiter() {
        // Active: job0. Queue cap 1: job1 (prio 1) queues; job2 (prio 5)
        // arrives -> job1 is shed, job2 takes the slot.
        let d = admit(&cfg(AdmissionPolicy::ShedLowestPriority, 1, 1), &[9, 1, 5]);
        assert_eq!(
            d,
            vec![
                AdmitDecision::Active,
                AdmitDecision::Shed,
                AdmitDecision::Queued
            ]
        );
    }

    #[test]
    fn shed_drops_newcomer_when_least_important() {
        let d = admit(&cfg(AdmissionPolicy::ShedLowestPriority, 1, 1), &[9, 5, 1]);
        assert_eq!(
            d,
            vec![
                AdmitDecision::Active,
                AdmitDecision::Queued,
                AdmitDecision::Shed
            ]
        );
    }

    #[test]
    fn shed_ties_evict_latest_arrival() {
        let d = admit(
            &cfg(AdmissionPolicy::ShedLowestPriority, 1, 2),
            &[9, 3, 3, 3],
        );
        // job3 ties with job1/job2 at priority 3; the newcomer (latest
        // arrival) loses.
        assert_eq!(d[3], AdmitDecision::Shed);
    }

    #[test]
    fn queue_with_deadline_never_refuses() {
        let d = admit(
            &cfg(AdmissionPolicy::QueueWithDeadline, 1, 1),
            &[0, 0, 0, 0],
        );
        assert_eq!(
            d,
            vec![
                AdmitDecision::Active,
                AdmitDecision::Queued,
                AdmitDecision::QueuedWithDeadline,
                AdmitDecision::QueuedWithDeadline
            ]
        );
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            AdmissionPolicy::Reject,
            AdmissionPolicy::ShedLowestPriority,
            AdmissionPolicy::QueueWithDeadline,
        ] {
            assert_eq!(AdmissionPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(AdmissionPolicy::parse("bogus"), None);
    }
}
