//! The multi-tenant scheduler: lockstep rounds over gated drivers, a
//! discrete-event *elastic* node pool, admission control, deadlines,
//! quarantine, and crash-resume from a service journal.
//!
//! # Lockstep rounds
//!
//! Every tenant runs the ordinary `falcon-core` driver on its own OS
//! thread, gated at stage boundaries (see [`crate::gate`]). The
//! scheduler loops in *rounds*: drain each active tenant's event channel
//! until the tenant is parked on a machine-kind boundary (crowd events
//! are folded into its virtual clocks on the way) or its channel
//! disconnects (the run finished); then place every parked stage on the
//! shared [`PoolSim`] in policy order; then grant all parked tenants
//! their next lease. Because a round's content never depends on *when*
//! threads ran — only on the order events sit in per-tenant FIFO
//! channels, which is each driver's program order — every virtual-time
//! outcome is identical at any `threads` setting. The permit count
//! throttles real CPU use and nothing else.
//!
//! # Virtual time
//!
//! Per tenant the scheduler keeps two clocks: `machine_ready` (when its
//! last machine stage finished) and `crowd_free` (when its pending crowd
//! rounds complete). A crowd stage starts at `max(machine_ready,
//! crowd_free)` and pushes `crowd_free`; it occupies **zero** nodes. A
//! masked machine stage may start at `machine_ready` — under the
//! tenant's own open crowd window — while an unmasked one must wait for
//! `max(machine_ready, crowd_free)`. Either kind then waits for enough
//! free nodes in the shared pool. One tenant's crowd waits therefore
//! leave nodes free exactly when another tenant's machine stages want
//! them: the paper's single-job masking optimization, generalized across
//! tenants.
//!
//! # Fault tolerance
//!
//! Everything the scheduler decides is a pure function of the job list
//! and [`ServeConfig`], so the service survives by *recording decisions
//! and re-deriving them*:
//!
//! * **Admission** ([`crate::admission`]) bounds the active set and the
//!   wait queue; overflow is rejected, shed, or queued under a deadline.
//! * **Deadlines and quotas** are enforced at round boundaries: the
//!   scheduler answers the tenant's parked stage with
//!   [`StageControl::Cancel`] and the driver unwinds through its
//!   cancellation points with the crowd journal finalized.
//! * **Quarantine**: a tenant whose driver errors (including dataflow
//!   attempt-budget overruns) is isolated; its outcome records the
//!   failure and no other tenant's bytes change.
//! * **Elastic pool**: seeded [`PoolEvent`]s shrink or grow [`PoolSim`]
//!   capacity mid-run; parked stages re-place on whatever capacity
//!   remains, and a [`DegradedPolicy`] sheds speculative (masked) work
//!   first when capacity drops below a threshold.
//! * **Crash-resume**: with [`ServeConfig::journal`] set, every round is
//!   committed to a [`ServeJournal`](crate::journal::ServeJournal);
//!   [`resume`] re-executes the schedule, verifies each regenerated
//!   round against the record (tenants replay their own crowd journals,
//!   so no crowd question is re-asked), and continues live where the
//!   record ends. Any divergence is a typed [`ServeError`].

use crate::admission::{admit, AdmitDecision};
use crate::cost::CostModel;
use crate::error::{ServeError, SERVICE_TENANT};
use crate::gate::{Permits, ServeGate};
use crate::job::JobSpec;
use crate::journal::{fnv64, ServeJournal};
use falcon_core::driver::{Falcon, RunReport};
use falcon_core::error::FalconError;
use falcon_core::stage::{CancelReason, StageControl, StageEvent, StageKind};
use falcon_crowd::{CrowdJournal, Ledger};
use falcon_dataflow::{DataflowError, DetRng, Phase};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How parked stages are ordered within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Policy {
    /// Earliest arrival first (ties: tenant index).
    Fifo,
    /// Least machine service so far first, and each stage's node grant is
    /// capped at `pool / active_tenants`.
    #[default]
    FairShare,
    /// Highest [`JobSpec::priority`] first (ties: least machine service).
    Priority,
    /// Seeded random order, keyed by `(seed, round, tenant)` through
    /// [`DetRng::for_task`] — reproducible at any thread count.
    Random,
}

impl Policy {
    /// Parse a policy name as used by the CLI manifest.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(Self::Fifo),
            "fair" | "fairshare" | "fair-share" => Some(Self::FairShare),
            "priority" => Some(Self::Priority),
            "random" => Some(Self::Random),
            _ => None,
        }
    }
}

/// One seeded capacity change applied to the shared pool mid-run: a node
/// join (`delta > 0`) or node loss (`delta < 0`) at virtual time `at`.
/// Capacity never drops below one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolEvent {
    /// Virtual time of the change.
    pub at: Duration,
    /// Signed node-count change.
    pub delta: i64,
}

/// What the scheduler sheds first when the pool degrades.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedPolicy {
    /// Enter degraded mode when current capacity falls below
    /// `threshold × pool_nodes` (`0.0` disables).
    pub threshold: f64,
    /// Node cap applied to masked (speculative/prebuild) stages while
    /// degraded; they are also sorted after all critical-path stages.
    pub masked_node_cap: usize,
}

impl Default for DegradedPolicy {
    fn default() -> Self {
        Self {
            threshold: 0.0,
            masked_node_cap: 1,
        }
    }
}

/// Service configuration: the shared pool and scheduling knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ServeConfig {
    /// Nodes in the shared pool at start.
    pub pool_nodes: usize,
    /// Concurrent tasks per node (used to size node grants).
    pub slots_per_node: usize,
    /// Placement policy.
    pub policy: Policy,
    /// Real-concurrency cap: how many tenant drivers may compute at
    /// once. Affects wall-clock time only — never virtual outcomes.
    pub threads: usize,
    /// Seed for [`Policy::Random`].
    pub seed: u64,
    /// Stage pricing.
    pub cost: CostModel,
    /// Admission control and per-tenant quotas.
    pub admission: crate::admission::AdmissionConfig,
    /// Seeded mid-run capacity changes (node loss / node join).
    pub pool_events: Vec<PoolEvent>,
    /// Degraded-mode shedding policy.
    pub degraded: DegradedPolicy,
    /// Service journal path; enables crash-resume.
    pub journal: Option<PathBuf>,
    /// Chaos harness: simulate a service crash by killing the scheduler
    /// right after journaling round `k` (grants for that round are never
    /// delivered — every live tenant unwinds with
    /// [`CancelReason::Kill`]).
    pub kill_after_rounds: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            pool_nodes: 10,
            slots_per_node: 4,
            policy: Policy::FairShare,
            threads: 4,
            seed: 0,
            cost: CostModel::default(),
            admission: crate::admission::AdmissionConfig::default(),
            pool_events: Vec::new(),
            degraded: DegradedPolicy::default(),
            journal: None,
            kill_after_rounds: None,
        }
    }
}

impl ServeConfig {
    fn digest(&self) -> u64 {
        // Wall-clock-only and per-run knobs (threads, journal path, kill
        // point) are excluded so a resumed run matches its original.
        fnv64(&format!(
            "{} {} {:?} {} {:?} {:?} {:?} {:?}",
            self.pool_nodes,
            self.slots_per_node,
            self.policy,
            self.seed,
            self.cost,
            self.admission,
            self.pool_events,
            self.degraded,
        ))
    }
}

/// Discrete-event view of the shared node pool: step functions of node
/// *usage* and node *capacity* over virtual time, stored as sorted delta
/// maps. Capacity is elastic — [`PoolEvent`]s raise or lower it mid-run.
#[derive(Debug)]
struct PoolSim {
    /// Capacity after the last [`PoolEvent`] (steady state).
    final_cap: i64,
    /// `time (ns) → capacity delta`; entry at 0 holds the initial size.
    caps: BTreeMap<u64, i64>,
    /// `time (ns) → usage delta`; a stage on `[s, e)` adds `+n` at `s`
    /// and `-n` at `e`, so usage at `t` is the prefix sum through `t`.
    deltas: BTreeMap<u64, i64>,
    /// Node·nanoseconds committed (for utilization).
    busy: u128,
    /// Latest committed stage end.
    horizon: u64,
}

impl PoolSim {
    fn new(nodes: usize, events: &[PoolEvent]) -> Self {
        let nodes = nodes.max(1) as i64;
        let mut caps = BTreeMap::new();
        caps.insert(0u64, nodes);
        let mut sorted: Vec<&PoolEvent> = events.iter().collect();
        sorted.sort_by_key(|e| ns(e.at));
        let mut cap = nodes;
        for e in sorted {
            // Capacity is clamped at one node: a "total outage" still
            // makes progress, just slowly — the degraded-mode tests pin
            // this down.
            let next = (cap + e.delta).max(1);
            let d = next - cap;
            if d != 0 {
                *caps.entry(ns(e.at)).or_insert(0) += d;
                cap = next;
            }
        }
        caps.retain(|t, d| *t == 0 || *d != 0);
        Self {
            final_cap: cap,
            caps,
            deltas: BTreeMap::new(),
            busy: 0,
            horizon: 0,
        }
    }

    /// Capacity at virtual time `t`.
    fn cap_at(&self, t: u64) -> i64 {
        self.caps.range(..=t).map(|(_, d)| *d).sum()
    }

    /// Largest capacity at any time `≥ t` (bounds what a stage ready at
    /// `t` could ever be granted).
    fn max_cap_from(&self, t: u64) -> i64 {
        let mut cap = self.cap_at(t);
        let mut best = cap;
        for (_, d) in self.caps.range(t + 1..) {
            cap += d;
            best = best.max(cap);
        }
        best.max(1)
    }

    /// Free nodes (capacity − usage) at virtual time `t`.
    fn free_at(&self, t: u64) -> i64 {
        self.cap_at(t) - self.deltas.range(..=t).map(|(_, d)| *d).sum::<i64>()
    }

    /// Earliest `start ≥ ready` at which `want` nodes stay free for
    /// `dur` ns, or `None` when free capacity never again reaches
    /// `want` (the pool shrank for good). Single forward sweep over the
    /// merged usage/capacity delta maps: candidates only move right, so
    /// the scan is linear in committed stages plus capacity events.
    fn try_earliest(&self, ready: u64, want: i64, dur: u64) -> Option<u64> {
        // Merge both step functions into free-node deltas after `ready`.
        let mut merged: BTreeMap<u64, i64> = BTreeMap::new();
        for (k, d) in self.caps.range(ready + 1..) {
            *merged.entry(*k).or_insert(0) += *d;
        }
        for (k, d) in self.deltas.range(ready + 1..) {
            *merged.entry(*k).or_insert(0) -= *d;
        }
        let events: Vec<(u64, i64)> = merged.into_iter().filter(|(_, d)| *d != 0).collect();
        let mut free = self.free_at(ready);
        let mut cand = ready;
        let mut i = 0;
        loop {
            if free >= want {
                // Check the whole window [cand, cand + dur).
                let end = cand.saturating_add(dur);
                let mut window_free = free;
                let mut j = i;
                let mut conflict = None;
                while j < events.len() && events[j].0 < end {
                    window_free += events[j].1;
                    if window_free < want {
                        conflict = Some(j);
                        break;
                    }
                    j += 1;
                }
                match conflict {
                    None => return Some(cand),
                    Some(j) => {
                        // Jump the candidate to the conflict point; the
                        // outer loop keeps advancing until free recovers.
                        while i <= j {
                            free += events[i].1;
                            i += 1;
                        }
                        cand = events[j].0;
                    }
                }
            } else if i < events.len() {
                free += events[i].1;
                cand = events[i].0;
                i += 1;
            } else {
                // Past every event all commitments have ended, so free
                // equals the steady-state capacity — if that still can't
                // fit the stage, nothing ever will.
                return None;
            }
        }
    }

    /// Commit `want` nodes over `[start, end)`.
    fn commit(&mut self, start: u64, end: u64, want: i64) {
        if end <= start || want <= 0 {
            return;
        }
        *self.deltas.entry(start).or_insert(0) += want;
        *self.deltas.entry(end).or_insert(0) -= want;
        self.deltas.retain(|_, d| *d != 0);
        self.busy += u128::from(end - start) * want.unsigned_abs() as u128;
        self.horizon = self.horizon.max(end);
    }

    /// Node·nanoseconds of capacity over `[0, makespan)` — the
    /// utilization denominator under an elastic pool.
    fn node_time(&self, makespan: u64) -> u128 {
        let mut total: u128 = 0;
        let mut cap: i64 = 0;
        let mut prev: u64 = 0;
        for (&t, &d) in &self.caps {
            let t_clamped = t.min(makespan);
            if t_clamped > prev {
                total += u128::from(t_clamped - prev) * cap.unsigned_abs() as u128;
            }
            prev = prev.max(t_clamped);
            cap += d;
        }
        if makespan > prev {
            total += u128::from(makespan - prev) * cap.unsigned_abs() as u128;
        }
        total
    }

    /// Fraction of available node·time spent busy.
    fn utilization(&self, makespan: u64) -> f64 {
        let denom = self.node_time(makespan);
        if denom == 0 {
            return 0.0;
        }
        self.busy as f64 / denom as f64
    }
}

/// One tenant's virtual clocks.
#[derive(Debug, Clone, Copy)]
struct TenantClock {
    machine_ready: u64,
    crowd_free: u64,
    /// Node·nanoseconds of machine service consumed (fair-share key).
    machine_service: u128,
}

impl TenantClock {
    fn at(arrival: u64) -> Self {
        Self {
            machine_ready: arrival,
            crowd_free: arrival,
            machine_service: 0,
        }
    }

    fn finish(&self) -> u64 {
        self.machine_ready.max(self.crowd_free)
    }
}

/// Where a placed stage landed (journal record content).
#[derive(Debug, Clone, Copy)]
struct Placed {
    start: u64,
    end: u64,
    nodes: i64,
}

/// Place one stage for one tenant; shared by the live loop and the
/// serial replay so both price work identically.
fn apply_stage(
    clock: &mut TenantClock,
    pool: &mut PoolSim,
    cost: &CostModel,
    slots_per_node: usize,
    node_cap: usize,
    ev: &StageEvent,
) -> Placed {
    match ev.kind {
        StageKind::CrowdWait => {
            let start = clock.finish();
            clock.crowd_free = start.saturating_add(ns(ev.dur));
            Placed {
                start,
                end: clock.crowd_free,
                nodes: 0,
            }
        }
        StageKind::Machine | StageKind::MaskedMachine => {
            let ready = if ev.kind == StageKind::MaskedMachine {
                clock.machine_ready
            } else {
                clock.finish()
            };
            let mut want = CostModel::nodes_wanted(ev, slots_per_node)
                .min(node_cap.max(1))
                .max(1) as i64;
            want = want.min(pool.max_cap_from(ready));
            let mut dur = ns(cost.duration(ev, want as usize, slots_per_node)).max(1);
            let start = match pool.try_earliest(ready, want, dur) {
                Some(s) => s,
                None => {
                    // The pool's peak window can't hold this grant for
                    // its whole duration (capacity shrank for good):
                    // re-place on the steady-state capacity — fewer
                    // nodes, more waves, but guaranteed to fit.
                    want = want.min(pool.final_cap).max(1);
                    dur = ns(cost.duration(ev, want as usize, slots_per_node)).max(1);
                    pool.try_earliest(ready, want, dur)
                        .unwrap_or(pool.horizon.max(ready))
                }
            };
            let end = start.saturating_add(dur);
            pool.commit(start, end, want);
            clock.machine_ready = end;
            clock.machine_service += u128::from(dur) * want.unsigned_abs() as u128;
            Placed {
                start,
                end,
                nodes: want,
            }
        }
    }
}

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Service-level disposition of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantStatus {
    /// Completed normally; the [`RunReport`] is bit-identical to a solo
    /// run.
    Ok,
    /// Cancelled because its virtual-clock deadline passed.
    Deadline,
    /// Isolated after a driver failure (error or attempt-budget overrun).
    Quarantined,
    /// Shed by admission control or a quota.
    Shed,
    /// Refused at admission (queue full).
    Rejected,
    /// Cut short by a simulated service crash (chaos kill point).
    Killed,
}

impl TenantStatus {
    /// Stable lowercase tag (journal `f` lines, CLI `status=` output).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Deadline => "deadline",
            Self::Quarantined => "quarantined",
            Self::Shed => "shed",
            Self::Rejected => "rejected",
            Self::Killed => "killed",
        }
    }
}

/// One tenant's service-level outcome.
#[derive(Debug)]
pub struct TenantOutcome {
    /// Tenant name from the [`JobSpec`].
    pub name: String,
    /// Scheduling priority the tenant ran with.
    pub priority: i32,
    /// Virtual submission time.
    pub arrival: Duration,
    /// Virtual completion time on the shared pool.
    pub finish: Duration,
    /// `finish − arrival`.
    pub latency: Duration,
    /// Node·time of machine service consumed.
    pub machine_service: Duration,
    /// Stage boundaries observed (machine + masked + crowd).
    pub stages: usize,
    /// Service-level disposition.
    pub status: TenantStatus,
    /// The service error that removed the tenant, when one did.
    pub service_error: Option<ServeError>,
    /// The tenant's run result — a full [`RunReport`] on success. Gating
    /// never alters a report, so this is bit-identical to a solo run.
    pub result: Result<RunReport, FalconError>,
}

/// Aggregate service report, with the run-jobs-serially baseline replayed
/// from the recorded stage traces.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-tenant outcomes in submission order.
    pub outcomes: Vec<TenantOutcome>,
    /// Virtual completion time of the last tenant on the shared pool.
    pub makespan: Duration,
    /// Virtual makespan of the same stage traces run one job at a time.
    pub serial_makespan: Duration,
    /// Busy fraction of available node·time over the shared makespan.
    pub utilization: f64,
    /// Busy fraction over the serial makespan.
    pub serial_utilization: f64,
    /// Per-tenant latencies of the serial baseline, in submission order.
    pub serial_latencies: Vec<Duration>,
    /// Scheduler rounds executed (replayed + live).
    pub rounds: u64,
    /// Rounds verified against the service journal on resume.
    pub replayed_rounds: u64,
    /// Round after which a simulated crash cut the run short, if any.
    pub killed_at_round: Option<u64>,
    /// Pool size the report was produced with.
    pub pool_nodes: usize,
}

impl ServeReport {
    /// Aggregate-throughput speedup over running the jobs serially.
    pub fn throughput_speedup(&self) -> f64 {
        let shared = self.makespan.as_secs_f64();
        if shared == 0.0 {
            return 1.0;
        }
        self.serial_makespan.as_secs_f64() / shared
    }

    /// `p`-th percentile (0–100, nearest-rank) of shared-pool latencies.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        percentile(self.outcomes.iter().map(|o| o.latency).collect(), p)
    }

    /// `p`-th percentile of the serial baseline's latencies.
    pub fn serial_latency_percentile(&self, p: f64) -> Duration {
        percentile(self.serial_latencies.clone(), p)
    }

    /// Sum of every successful tenant's crowd ledger — the service-wide
    /// crowd bill. Resume-identity tests pin this aggregate down.
    pub fn aggregate_ledger(&self) -> Ledger {
        let mut total = Ledger::default();
        for o in &self.outcomes {
            if let Ok(rep) = &o.result {
                let l = &rep.ledger;
                total.questions += l.questions;
                total.answers += l.answers;
                total.lost_answers += l.lost_answers;
                total.escalations += l.escalations;
                total.hits += l.hits;
                total.rounds += l.rounds;
                total.cost += l.cost;
                total.crowd_time += l.crowd_time;
            }
        }
        total
    }
}

fn percentile(mut xs: Vec<Duration>, p: f64) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    xs.sort_unstable();
    let rank = ((p / 100.0) * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

/// Per-tenant scheduler state.
struct Tenant {
    name: String,
    meta_priority: i32,
    arrival_ns: u64,
    /// Absolute virtual-clock deadline, when the job has one.
    deadline_ns: Option<u64>,
    /// The job, held until activation spawns its driver thread.
    job: Option<JobSpec>,
    events: Option<Receiver<StageEvent>>,
    grants: Option<Sender<StageControl>>,
    handle: Option<JoinHandle<Result<RunReport, FalconError>>>,
    clock: TenantClock,
    trace: Vec<StageEvent>,
    /// Stage events observed so far (journal sequence key).
    seq: u64,
    /// Machine-kind stages placed (stage-quota key).
    machine_stages: u64,
    finished: bool,
    /// Pending cancellation; sticky once set.
    cancel: Option<CancelReason>,
    status: TenantStatus,
    service_error: Option<ServeError>,
    result: Option<Result<RunReport, FalconError>>,
}

impl Tenant {
    fn started(&self) -> bool {
        self.events.is_some()
    }
}

fn run_job(job: &JobSpec, gate: Arc<ServeGate>) -> Result<RunReport, FalconError> {
    let journal = match &job.journal {
        Some(p) => Some(CrowdJournal::open(p)?),
        None => None,
    };
    let falcon = Falcon::new(job.config.clone());
    if job.workflow_rounds > 0 {
        falcon
            .try_run_workflow_gated(
                &job.a,
                &job.b,
                job.crowd.clone(),
                job.workflow_rounds,
                journal,
                gate,
            )
            .map(|(r, _)| r)
    } else {
        falcon.try_run_gated(&job.a, &job.b, job.crowd.clone(), journal, gate)
    }
}

/// Spawn `t`'s driver thread, activating it at virtual time `start_ns`.
fn spawn_tenant(t: &mut Tenant, permits: &Arc<Permits>, start_ns: u64) {
    let Some(job) = t.job.take() else { return };
    let (ev_tx, ev_rx) = channel();
    let (grant_tx, grant_rx) = channel();
    let gate = Arc::new(ServeGate::new(ev_tx, grant_rx, permits.clone()));
    let permits_for_thread = permits.clone();
    t.events = Some(ev_rx);
    t.grants = Some(grant_tx);
    t.clock = TenantClock::at(start_ns);
    t.handle = Some(std::thread::spawn(move || {
        permits_for_thread.acquire();
        let res = run_job(&job, gate.clone());
        // Disconnect the event channel *before* releasing the permit
        // so the scheduler sees a clean end-of-stream.
        drop(gate);
        permits_for_thread.release();
        res
    }));
}

/// Run `jobs` on one shared node pool under full service semantics:
/// admission control, deadlines, quotas, quarantine, elastic capacity,
/// and (with [`ServeConfig::journal`]) crash-resume.
///
/// Index order is submission order. The call returns `Ok` when every
/// admitted tenant has completed or been removed — one tenant's failure
/// never aborts the others; per-tenant failures live in
/// [`TenantOutcome::status`]. `Err` means the *service* failed: an
/// unusable or diverging service journal.
pub fn serve(jobs: Vec<JobSpec>, cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    let permits = Permits::new(cfg.threads);

    // ---- Admission (pure) -------------------------------------------
    let priorities: Vec<i32> = jobs.iter().map(|j| j.priority).collect();
    let decisions = admit(&cfg.admission, &priorities);
    let mut prefix: Vec<String> = vec![format!("config {:016x}", cfg.digest())];
    for (i, (job, d)) in jobs.iter().zip(&decisions).enumerate() {
        prefix.push(format!(
            "admit {i} {} {} {} {}",
            job.name,
            ns(job.arrival),
            job.priority,
            d.tag()
        ));
    }

    // ---- Journal open + prefix verify/write -------------------------
    let mut journal: Option<ServeJournal> = match &cfg.journal {
        Some(p) => Some(
            ServeJournal::open(p).map_err(|e| ServeError::ServiceJournal {
                tenant: SERVICE_TENANT.to_string(),
                round: 0,
                message: e.to_string(),
            })?,
        ),
        None => None,
    };
    if let Some(j) = journal.as_mut() {
        if j.is_fresh() {
            j.write_prefix(&prefix)
                .map_err(|e| ServeError::ServiceJournal {
                    tenant: SERVICE_TENANT.to_string(),
                    round: 0,
                    message: e.to_string(),
                })?;
        } else if j.prefix() != prefix.as_slice() {
            return Err(ServeError::ServiceJournal {
                tenant: SERVICE_TENANT.to_string(),
                round: 0,
                message: format!(
                    "journal belongs to a different service run: recorded prefix {:?} vs {:?}",
                    j.prefix(),
                    prefix
                ),
            });
        }
    }

    // ---- Build tenants ----------------------------------------------
    let mut tenants: Vec<Tenant> = Vec::with_capacity(jobs.len());
    let mut wait_q: VecDeque<usize> = VecDeque::new();
    for (i, (job, d)) in jobs.into_iter().zip(decisions.iter().copied()).enumerate() {
        let arrival_ns = ns(job.arrival);
        let mut deadline_ns = job.deadline.map(|dl| arrival_ns.saturating_add(ns(dl)));
        if d == AdmitDecision::QueuedWithDeadline {
            if let Some(q) = cfg.admission.queue_deadline {
                let qd = arrival_ns.saturating_add(ns(q));
                deadline_ns = Some(deadline_ns.map_or(qd, |dl| dl.min(qd)));
            }
        }
        let name = job.name.clone();
        let mut t = Tenant {
            name: name.clone(),
            meta_priority: job.priority,
            arrival_ns,
            deadline_ns,
            job: Some(job),
            events: None,
            grants: None,
            handle: None,
            clock: TenantClock::at(arrival_ns),
            trace: Vec::new(),
            seq: 0,
            machine_stages: 0,
            finished: false,
            cancel: None,
            status: TenantStatus::Ok,
            service_error: None,
            result: None,
        };
        match d {
            AdmitDecision::Active => spawn_tenant(&mut t, &permits, arrival_ns),
            AdmitDecision::Queued | AdmitDecision::QueuedWithDeadline => wait_q.push_back(i),
            AdmitDecision::Rejected => {
                t.finished = true;
                t.status = TenantStatus::Rejected;
                t.job = None;
                t.result = Some(Err(FalconError::Cancelled {
                    reason: CancelReason::Admission,
                }));
                t.service_error = Some(ServeError::QueueFull {
                    tenant: name,
                    round: 0,
                    queued: cfg.admission.max_queue,
                    max_queue: cfg.admission.max_queue,
                });
            }
            AdmitDecision::Shed => {
                t.finished = true;
                t.status = TenantStatus::Shed;
                t.job = None;
                t.result = Some(Err(FalconError::Cancelled {
                    reason: CancelReason::Admission,
                }));
                t.service_error = Some(ServeError::Shed {
                    tenant: name,
                    round: 0,
                    by: "queue overflow",
                });
            }
        }
        tenants.push(t);
    }

    // ---- Round loop -------------------------------------------------
    let mut pool = PoolSim::new(cfg.pool_nodes, &cfg.pool_events);
    let mut round: u64 = 0;
    let mut replayed_rounds: u64 = 0;
    let mut killed_at: Option<u64> = None;

    loop {
        if !tenants.iter().any(|t| t.started() && !t.finished) {
            break;
        }
        let mut lines: Vec<String> = Vec::new();
        let mut pending: Vec<(usize, u64, StageEvent)> = Vec::new();

        // Drain each active tenant to its next machine boundary (or to
        // completion), folding crowd events into its clocks.
        for idx in 0..tenants.len() {
            if !tenants[idx].started() || tenants[idx].finished {
                continue;
            }
            // Not `while let`: the receiver borrow must end before the
            // body mutates `tenants[idx]` (seq bump, trace push, finish).
            #[allow(clippy::while_let_loop)]
            loop {
                let msg = match tenants[idx].events.as_ref() {
                    Some(rx) => rx.recv(),
                    None => break,
                };
                match msg {
                    Ok(ev) => {
                        if let Some(reason) = tenants[idx].cancel {
                            // Already cancelled: keep answering its
                            // parked stages with the same verdict until
                            // the driver unwinds; drop its events so a
                            // cancelled tenant perturbs nothing.
                            if ev.kind != StageKind::CrowdWait {
                                if let Some(g) = tenants[idx].grants.as_ref() {
                                    let _ = g.send(StageControl::Cancel(reason));
                                }
                                lines.push(format!("x {idx} {reason:?}"));
                            }
                            continue;
                        }
                        tenants[idx].seq += 1;
                        let seq = tenants[idx].seq;
                        if ev.kind == StageKind::CrowdWait {
                            let t = &mut tenants[idx];
                            let placed = apply_stage(
                                &mut t.clock,
                                &mut pool,
                                &cfg.cost,
                                cfg.slots_per_node,
                                cfg.pool_nodes,
                                &ev,
                            );
                            lines.push(format!(
                                "c {idx} {seq} {} {} {} {} {} {}",
                                ev.label,
                                ns(ev.dur),
                                ev.tasks,
                                ev.records,
                                placed.start,
                                placed.end
                            ));
                            t.trace.push(ev);
                        } else {
                            tenants[idx].trace.push(ev.clone());
                            pending.push((idx, seq, ev));
                            break;
                        }
                    }
                    Err(_) => {
                        let res = join_tenant(tenants[idx].handle.take());
                        finish_tenant(&mut tenants[idx], idx, res, round, &mut lines);
                        let freed_at = tenants[idx].clock.finish();
                        activate_waiters(
                            &mut tenants,
                            &mut wait_q,
                            freed_at,
                            round,
                            &permits,
                            &mut lines,
                        );
                        break;
                    }
                }
            }
        }

        // Deadline and quota checks at the round boundary: cancelled
        // tenants get their verdict instead of a lease.
        let mut kept: Vec<(usize, u64, StageEvent)> = Vec::with_capacity(pending.len());
        for (idx, seq, ev) in pending {
            let verdict = boundary_verdict(&tenants[idx], &cfg.admission.quota, round);
            match verdict {
                Some((reason, err)) => {
                    let t = &mut tenants[idx];
                    t.cancel = Some(reason);
                    t.service_error.get_or_insert(err);
                    if let Some(g) = t.grants.as_ref() {
                        let _ = g.send(StageControl::Cancel(reason));
                    }
                    lines.push(format!("x {idx} {reason:?}"));
                }
                None => kept.push((idx, seq, ev)),
            }
        }
        let mut pending = kept;

        // Degraded mode: when capacity at the round's earliest ready
        // time has fallen below the threshold, critical-path stages go
        // first and masked (speculative/prebuild) work is node-capped.
        let degraded = cfg.degraded.threshold > 0.0
            && pending
                .iter()
                .map(|(idx, _, ev)| stage_ready(&tenants[*idx].clock, ev.kind))
                .min()
                .map(|t0| {
                    (pool.cap_at(t0) as f64) < cfg.degraded.threshold * cfg.pool_nodes.max(1) as f64
                })
                .unwrap_or(false);

        // Policy order, then place sequentially against the shared pool.
        let active = tenants
            .iter()
            .filter(|t| t.started() && !t.finished)
            .count()
            .max(1);
        let node_cap = match cfg.policy {
            Policy::FairShare => (cfg.pool_nodes / active).max(1),
            _ => cfg.pool_nodes,
        };
        sort_pending(&mut pending, &tenants, cfg, round);
        if degraded {
            // Stable partition: unmasked (critical-path) stages keep
            // their policy order ahead of every masked stage.
            pending.sort_by_key(|(_, _, ev)| ev.kind == StageKind::MaskedMachine);
        }
        for (idx, seq, ev) in &pending {
            let stage_cap = if degraded && ev.kind == StageKind::MaskedMachine {
                node_cap.min(cfg.degraded.masked_node_cap.max(1))
            } else {
                node_cap
            };
            let t = &mut tenants[*idx];
            let placed = apply_stage(
                &mut t.clock,
                &mut pool,
                &cfg.cost,
                cfg.slots_per_node,
                stage_cap,
                ev,
            );
            t.machine_stages += 1;
            let kind = match ev.kind {
                StageKind::Machine => "m",
                StageKind::MaskedMachine => "k",
                StageKind::CrowdWait => "w",
            };
            // Journal the cost-model duration, never the measured
            // `ev.dur`: measured wall time is run-to-run noise and would
            // break byte-identical resume.
            lines.push(format!(
                "p {idx} {seq} {kind} {} {} {} {} {} {} {}",
                ev.label,
                placed.end.saturating_sub(placed.start),
                ev.tasks,
                ev.records,
                placed.start,
                placed.end,
                placed.nodes
            ));
        }

        // Journal: verify against the record while resuming, append once
        // live. Writes happen *before* grants so a crash between the two
        // is recoverable (the grants regenerate on resume).
        let mut replayed_this_round = false;
        if let Some(j) = journal.as_mut() {
            match j.next_round() {
                Some((_, recorded)) => {
                    replayed_this_round = true;
                    replayed_rounds += 1;
                    if recorded != lines {
                        let err = divergence_error(&tenants, round, &recorded, &lines);
                        shutdown_tenants(&mut tenants);
                        return Err(err);
                    }
                }
                None => {
                    if killed_at.is_none() {
                        if let Err(e) = j.write_round(round, &lines) {
                            let err = ServeError::ServiceJournal {
                                tenant: SERVICE_TENANT.to_string(),
                                round,
                                message: e.to_string(),
                            };
                            shutdown_tenants(&mut tenants);
                            return Err(err);
                        }
                    }
                }
            }
        }

        // Chaos kill point: the journal has committed this round, but
        // its grants are never delivered — exactly the state a crash
        // between commit and grant leaves behind.
        if cfg.kill_after_rounds == Some(round) && !replayed_this_round && killed_at.is_none() {
            killed_at = Some(round);
            for t in tenants.iter_mut() {
                if t.started() && !t.finished && t.cancel.is_none() {
                    t.cancel = Some(CancelReason::Kill);
                    t.service_error.get_or_insert(ServeError::Shutdown {
                        tenant: t.name.clone(),
                        round,
                    });
                }
            }
            for (idx, _, _) in &pending {
                if let Some(g) = tenants[*idx].grants.as_ref() {
                    let _ = g.send(StageControl::Cancel(CancelReason::Kill));
                }
            }
            // Queued jobs never start after the crash.
            while let Some(widx) = wait_q.pop_front() {
                let t = &mut tenants[widx];
                t.finished = true;
                t.status = TenantStatus::Killed;
                t.job = None;
                t.result = Some(Err(FalconError::Cancelled {
                    reason: CancelReason::Kill,
                }));
                t.service_error.get_or_insert(ServeError::Shutdown {
                    tenant: t.name.clone(),
                    round,
                });
            }
            round += 1;
            continue;
        }

        // Release every surviving parked tenant for its next stage.
        for (idx, _, _) in &pending {
            if let Some(g) = tenants[*idx].grants.as_ref() {
                let _ = g.send(StageControl::Continue);
            }
        }
        round += 1;
    }

    // ---- Assemble the report ----------------------------------------
    let mut makespan_ns: u64 = 0;
    let mut outcomes = Vec::with_capacity(tenants.len());
    for t in tenants.iter_mut() {
        let finish = t.clock.finish();
        if t.started() {
            makespan_ns = makespan_ns.max(finish);
        }
        outcomes.push(TenantOutcome {
            name: t.name.clone(),
            priority: t.meta_priority,
            arrival: Duration::from_nanos(t.arrival_ns),
            finish: Duration::from_nanos(finish),
            latency: Duration::from_nanos(finish.saturating_sub(t.arrival_ns)),
            machine_service: Duration::from_nanos(
                u64::try_from(t.clock.machine_service).unwrap_or(u64::MAX),
            ),
            stages: t.trace.len(),
            status: t.status,
            service_error: t.service_error.clone(),
            result: t.result.take().unwrap_or(Err(FalconError::EmptyInput {
                what: "tenant result",
            })),
        });
    }
    let utilization = pool.utilization(makespan_ns);
    let (serial_makespan_ns, serial_utilization, serial_latencies) = replay_serial(&tenants, cfg);

    Ok(ServeReport {
        outcomes,
        makespan: Duration::from_nanos(makespan_ns),
        serial_makespan: Duration::from_nanos(serial_makespan_ns),
        utilization,
        serial_utilization,
        serial_latencies,
        rounds: round,
        replayed_rounds,
        killed_at_round: killed_at,
        pool_nodes: cfg.pool_nodes,
    })
}

/// Resume a journaled service run after a crash: requires
/// [`ServeConfig::journal`] and replays the committed schedule before
/// going live. Pure sugar over [`serve`] that rejects a config without a
/// journal and refuses to re-kill.
pub fn resume(jobs: Vec<JobSpec>, cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    if cfg.journal.is_none() {
        return Err(ServeError::ServiceJournal {
            tenant: SERVICE_TENANT.to_string(),
            round: 0,
            message: "resume requires ServeConfig::journal".to_string(),
        });
    }
    let mut cfg = cfg.clone();
    cfg.kill_after_rounds = None;
    serve(jobs, &cfg)
}

/// Deadline/quota verdict for a tenant parked at a round boundary.
fn boundary_verdict(
    t: &Tenant,
    quota: &crate::admission::TenantQuota,
    round: u64,
) -> Option<(CancelReason, ServeError)> {
    let finish = t.clock.finish();
    if let Some(d) = t.deadline_ns {
        if finish > d {
            return Some((
                CancelReason::Deadline,
                ServeError::DeadlineExceeded {
                    tenant: t.name.clone(),
                    round,
                    deadline: Duration::from_nanos(d),
                    reached: Duration::from_nanos(finish),
                },
            ));
        }
    }
    if let Some(max) = quota.max_stages {
        if t.machine_stages >= max {
            return Some((
                CancelReason::Quota,
                ServeError::QuotaExceeded {
                    tenant: t.name.clone(),
                    round,
                    what: "stages",
                    limit: max,
                },
            ));
        }
    }
    if let Some(budget) = quota.node_seconds {
        if t.clock.machine_service >= budget.as_nanos() {
            return Some((
                CancelReason::Quota,
                ServeError::QuotaExceeded {
                    tenant: t.name.clone(),
                    round,
                    what: "node-seconds",
                    limit: budget.as_secs(),
                },
            ));
        }
    }
    None
}

/// Ready time of a parked stage (mirrors [`apply_stage`]).
fn stage_ready(clock: &TenantClock, kind: StageKind) -> u64 {
    if kind == StageKind::MaskedMachine {
        clock.machine_ready
    } else {
        clock.finish()
    }
}

/// Record a tenant's completion: classify its result, stash the outcome
/// fields, and journal the `f` line.
fn finish_tenant(
    t: &mut Tenant,
    idx: usize,
    res: Result<RunReport, FalconError>,
    round: u64,
    lines: &mut Vec<String>,
) {
    t.finished = true;
    t.status = match (t.cancel, &res) {
        (None, Ok(_)) => TenantStatus::Ok,
        (Some(CancelReason::Deadline), _) => TenantStatus::Deadline,
        (Some(CancelReason::Quota), _) => TenantStatus::Shed,
        (Some(CancelReason::Kill | CancelReason::Shutdown), _) => TenantStatus::Killed,
        (Some(CancelReason::Admission), _) => TenantStatus::Rejected,
        (None, Err(FalconError::Cancelled { reason })) => match reason {
            CancelReason::Deadline => TenantStatus::Deadline,
            CancelReason::Quota => TenantStatus::Shed,
            CancelReason::Admission => TenantStatus::Rejected,
            _ => TenantStatus::Killed,
        },
        (None, Err(_)) => TenantStatus::Quarantined,
    };
    if t.status == TenantStatus::Quarantined {
        if let Err(e) = &res {
            t.service_error.get_or_insert(ServeError::Quarantined {
                tenant: t.name.clone(),
                round,
                cause: e.to_string(),
            });
        }
    }
    t.result = Some(res);
    lines.push(format!(
        "f {idx} {} {}",
        t.clock.finish(),
        t.status.as_str()
    ));
}

/// A tenant finished at `freed_at`: start the longest-waiting queued job
/// on the freed activation slot, expiring waiters whose deadline already
/// passed.
fn activate_waiters(
    tenants: &mut [Tenant],
    wait_q: &mut VecDeque<usize>,
    freed_at: u64,
    round: u64,
    permits: &Arc<Permits>,
    lines: &mut Vec<String>,
) {
    while let Some(widx) = wait_q.pop_front() {
        let start = tenants[widx].arrival_ns.max(freed_at);
        if let Some(d) = tenants[widx].deadline_ns {
            if start >= d {
                // Expired in the queue: never start it, slot stays free
                // for the next waiter.
                let t = &mut tenants[widx];
                t.finished = true;
                t.status = TenantStatus::Deadline;
                t.job = None;
                t.result = Some(Err(FalconError::Cancelled {
                    reason: CancelReason::Deadline,
                }));
                t.service_error = Some(ServeError::DeadlineExceeded {
                    tenant: t.name.clone(),
                    round,
                    deadline: Duration::from_nanos(d),
                    reached: Duration::from_nanos(start),
                });
                lines.push(format!("f {widx} {start} deadline"));
                continue;
            }
        }
        spawn_tenant(&mut tenants[widx], permits, start);
        lines.push(format!("a {widx} {start}"));
        break;
    }
}

/// Unwind every live tenant before the service returns an error: drop
/// grant channels (parked gates unpark with a typed shutdown), drain
/// events to end-of-stream, join threads.
fn shutdown_tenants(tenants: &mut [Tenant]) {
    for t in tenants.iter_mut() {
        t.grants = None;
    }
    for t in tenants.iter_mut() {
        if let Some(rx) = t.events.take() {
            while rx.recv().is_ok() {}
        }
        if t.handle.is_some() {
            let _ = join_tenant(t.handle.take());
        }
    }
}

/// Build the typed divergence error for a resume mismatch, attributing
/// it to the tenant named in the first differing line.
fn divergence_error(
    tenants: &[Tenant],
    round: u64,
    recorded: &[String],
    regenerated: &[String],
) -> ServeError {
    let mut tenant = SERVICE_TENANT.to_string();
    let mut detail = String::new();
    for i in 0..recorded.len().max(regenerated.len()) {
        let rec = recorded.get(i).map(String::as_str).unwrap_or("<missing>");
        let gen = regenerated
            .get(i)
            .map(String::as_str)
            .unwrap_or("<missing>");
        if rec != gen {
            detail = format!("recorded {rec:?} vs re-executed {gen:?}");
            let line = if rec == "<missing>" { gen } else { rec };
            if let Some(idx) = line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse::<usize>().ok())
            {
                if let Some(t) = tenants.get(idx) {
                    tenant = t.name.clone();
                }
            }
            break;
        }
    }
    ServeError::ServiceJournal {
        tenant,
        round,
        message: format!("schedule diverges from journal at round {round}: {detail}"),
    }
}

fn join_tenant(
    handle: Option<JoinHandle<Result<RunReport, FalconError>>>,
) -> Result<RunReport, FalconError> {
    let Some(handle) = handle else {
        return Err(FalconError::EmptyInput {
            what: "tenant thread",
        });
    };
    match handle.join() {
        Ok(res) => res,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "tenant driver thread panicked".to_string());
            Err(FalconError::Dataflow(DataflowError::WorkerPanicked {
                job: 0,
                phase: Phase::Map,
                task: 0,
                attempts: 1,
                message,
            }))
        }
    }
}

fn sort_pending(
    pending: &mut [(usize, u64, StageEvent)],
    tenants: &[Tenant],
    cfg: &ServeConfig,
    round: u64,
) {
    match cfg.policy {
        Policy::Fifo => pending.sort_by_key(|(idx, _, _)| (tenants[*idx].arrival_ns, *idx)),
        Policy::FairShare => pending.sort_by_key(|(idx, _, _)| {
            (
                tenants[*idx].clock.machine_service,
                u128::from(tenants[*idx].arrival_ns),
                *idx as u128,
            )
        }),
        Policy::Priority => pending.sort_by_key(|(idx, _, _)| {
            (
                std::cmp::Reverse(tenants[*idx].meta_priority),
                tenants[*idx].clock.machine_service,
                *idx as u128,
            )
        }),
        Policy::Random => pending.sort_by(|(x, _, _), (y, _, _)| {
            let key = |idx: usize| DetRng::for_task(cfg.seed, round, Phase::Map, idx, 0).gen_f64();
            key(*x).total_cmp(&key(*y)).then_with(|| x.cmp(y))
        }),
    }
}

fn replay_serial(tenants: &[Tenant], cfg: &ServeConfig) -> (u64, f64, Vec<Duration>) {
    let mut pool = PoolSim::new(cfg.pool_nodes, &cfg.pool_events);
    // Serve in submission order, respecting arrivals: the next job starts
    // no earlier than its arrival or the previous job's finish.
    let mut clock_base: u64 = 0;
    let mut latencies = Vec::with_capacity(tenants.len());
    for t in tenants {
        let start = clock_base.max(t.arrival_ns);
        let mut clock = TenantClock::at(start);
        for ev in &t.trace {
            apply_stage(
                &mut clock,
                &mut pool,
                &cfg.cost,
                cfg.slots_per_node,
                cfg.pool_nodes,
                ev,
            );
        }
        clock_base = clock.finish();
        latencies.push(Duration::from_nanos(
            clock_base.saturating_sub(t.arrival_ns),
        ));
    }
    (clock_base, pool.utilization(clock_base), latencies)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: StageKind, dur_s: u64, tasks: u32, records: u64) -> StageEvent {
        StageEvent {
            label: "t".into(),
            kind,
            dur: Duration::from_secs(dur_s),
            tasks,
            records,
        }
    }

    fn fixed(nodes: usize) -> PoolSim {
        PoolSim::new(nodes, &[])
    }

    #[test]
    fn pool_places_at_ready_when_free() {
        let pool = fixed(4);
        assert_eq!(pool.try_earliest(100, 4, 50), Some(100));
    }

    #[test]
    fn pool_waits_for_capacity() {
        let mut pool = fixed(4);
        pool.commit(0, 100, 3);
        // Wants 2, only 1 free until 100.
        assert_eq!(pool.try_earliest(0, 2, 10), Some(100));
        // Wants 1: fits immediately.
        assert_eq!(pool.try_earliest(0, 1, 10), Some(0));
    }

    #[test]
    fn pool_backfills_gaps() {
        let mut pool = fixed(4);
        pool.commit(100, 200, 4);
        // A 50ns stage fits before the existing commitment.
        assert_eq!(pool.try_earliest(0, 2, 50), Some(0));
        // A 150ns stage cannot: it must wait out the busy window.
        assert_eq!(pool.try_earliest(0, 2, 150), Some(200));
    }

    #[test]
    fn utilization_counts_node_time() {
        let mut pool = fixed(2);
        pool.commit(0, 100, 1);
        assert!((pool.utilization(100) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn node_loss_shrinks_capacity() {
        let pool = PoolSim::new(
            4,
            &[PoolEvent {
                at: Duration::from_nanos(100),
                delta: -3,
            }],
        );
        assert_eq!(pool.cap_at(0), 4);
        assert_eq!(pool.cap_at(100), 1);
        assert_eq!(pool.final_cap, 1);
        // A 4-node stage fits only before the loss.
        assert_eq!(pool.try_earliest(0, 4, 50), Some(0));
        // ... and never after it.
        assert_eq!(pool.try_earliest(60, 4, 50), None);
        // One node always works.
        assert_eq!(pool.try_earliest(60, 1, 50), Some(60));
    }

    #[test]
    fn node_join_restores_capacity() {
        let pool = PoolSim::new(
            2,
            &[
                PoolEvent {
                    at: Duration::from_nanos(50),
                    delta: -1,
                },
                PoolEvent {
                    at: Duration::from_nanos(200),
                    delta: 3,
                },
            ],
        );
        // 4 nodes exist only after the join at t=200.
        assert_eq!(pool.try_earliest(0, 4, 10), Some(200));
        assert_eq!(pool.max_cap_from(0), 4);
    }

    #[test]
    fn capacity_never_below_one() {
        let pool = PoolSim::new(
            2,
            &[PoolEvent {
                at: Duration::from_nanos(10),
                delta: -99,
            }],
        );
        assert_eq!(pool.cap_at(10), 1);
        assert_eq!(pool.final_cap, 1);
    }

    #[test]
    fn elastic_node_time_integrates_capacity() {
        let pool = PoolSim::new(
            4,
            &[PoolEvent {
                at: Duration::from_nanos(100),
                delta: -2,
            }],
        );
        // 4 nodes × 100ns + 2 nodes × 100ns.
        assert_eq!(pool.node_time(200), 600);
        // Events beyond the makespan contribute nothing.
        assert_eq!(pool.node_time(50), 200);
    }

    #[test]
    fn stage_replaces_on_shrunken_pool() {
        // Pool shrinks to 1 node at t=0 ns effectively; a stage wanting
        // 4 nodes is clamped and still placed.
        let mut pool = PoolSim::new(
            4,
            &[PoolEvent {
                at: Duration::from_nanos(1),
                delta: -3,
            }],
        );
        let cost = CostModel::small();
        let mut clock = TenantClock::at(1000);
        let placed = apply_stage(
            &mut clock,
            &mut pool,
            &cost,
            4,
            4,
            &ev(StageKind::Machine, 1, 16, 100),
        );
        assert_eq!(placed.nodes, 1);
        assert!(placed.end > placed.start);
    }

    #[test]
    fn masked_stages_run_under_crowd_windows() {
        let cost = CostModel::small();
        let mut pool = fixed(4);
        let mut clock = TenantClock::at(0);
        apply_stage(
            &mut clock,
            &mut pool,
            &cost,
            4,
            4,
            &ev(StageKind::CrowdWait, 100, 0, 0),
        );
        let crowd_free = clock.crowd_free;
        apply_stage(
            &mut clock,
            &mut pool,
            &cost,
            4,
            4,
            &ev(StageKind::MaskedMachine, 999, 4, 100),
        );
        // The masked stage started before the crowd window closed.
        assert!(clock.machine_ready < crowd_free);
        // An unmasked stage must wait for the crowd.
        apply_stage(
            &mut clock,
            &mut pool,
            &cost,
            4,
            4,
            &ev(StageKind::Machine, 999, 4, 100),
        );
        assert!(clock.machine_ready > crowd_free);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<Duration> = (1..=10).map(Duration::from_secs).collect();
        assert_eq!(percentile(xs.clone(), 50.0), Duration::from_secs(5));
        assert_eq!(percentile(xs.clone(), 99.0), Duration::from_secs(10));
        assert_eq!(percentile(xs, 100.0), Duration::from_secs(10));
        assert_eq!(percentile(Vec::new(), 50.0), Duration::ZERO);
    }

    #[test]
    fn config_digest_ignores_run_only_knobs() {
        let a = ServeConfig::default();
        let mut b = a.clone();
        b.threads = 16;
        b.journal = Some(PathBuf::from("/tmp/x"));
        b.kill_after_rounds = Some(3);
        assert_eq!(a.digest(), b.digest());
        let mut c = a.clone();
        c.pool_nodes = 99;
        assert_ne!(a.digest(), c.digest());
    }
}
