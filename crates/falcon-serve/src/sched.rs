//! The multi-tenant scheduler: lockstep rounds over gated drivers, a
//! discrete-event node pool, and the serial replay baseline.
//!
//! # Lockstep rounds
//!
//! Every tenant runs the ordinary `falcon-core` driver on its own OS
//! thread, gated at stage boundaries (see [`crate::gate`]). The
//! scheduler loops in *rounds*: drain each active tenant's event channel
//! until the tenant is parked on a machine-kind boundary (crowd events
//! are folded into its virtual clocks on the way) or its channel
//! disconnects (the run finished); then place every parked stage on the
//! shared [`PoolSim`] in policy order; then grant all parked tenants
//! their next lease. Because a round's content never depends on *when*
//! threads ran — only on the order events sit in per-tenant FIFO
//! channels, which is each driver's program order — every virtual-time
//! outcome is identical at any `threads` setting. The permit count
//! throttles real CPU use and nothing else.
//!
//! # Virtual time
//!
//! Per tenant the scheduler keeps two clocks: `machine_ready` (when its
//! last machine stage finished) and `crowd_free` (when its pending crowd
//! rounds complete). A crowd stage starts at `max(machine_ready,
//! crowd_free)` and pushes `crowd_free`; it occupies **zero** nodes. A
//! masked machine stage may start at `machine_ready` — under the
//! tenant's own open crowd window — while an unmasked one must wait for
//! `max(machine_ready, crowd_free)`. Either kind then waits for enough
//! free nodes in the shared pool. One tenant's crowd waits therefore
//! leave nodes free exactly when another tenant's machine stages want
//! them: the paper's single-job masking optimization, generalized across
//! tenants.

use crate::cost::CostModel;
use crate::gate::{Permits, ServeGate};
use crate::job::JobSpec;
use falcon_core::driver::{Falcon, RunReport};
use falcon_core::error::FalconError;
use falcon_core::stage::{StageEvent, StageKind};
use falcon_crowd::CrowdJournal;
use falcon_dataflow::{DataflowError, DetRng, Phase};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How parked stages are ordered within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Earliest arrival first (ties: tenant index).
    Fifo,
    /// Least machine service so far first, and each stage's node grant is
    /// capped at `pool / active_tenants`.
    FairShare,
    /// Highest [`JobSpec::priority`] first (ties: least machine service).
    Priority,
    /// Seeded random order, keyed by `(seed, round, tenant)` through
    /// [`DetRng::for_task`] — reproducible at any thread count.
    Random,
}

impl Policy {
    /// Parse a policy name as used by the CLI manifest.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(Self::Fifo),
            "fair" | "fairshare" | "fair-share" => Some(Self::FairShare),
            "priority" => Some(Self::Priority),
            "random" => Some(Self::Random),
            _ => None,
        }
    }
}

/// Service configuration: the shared pool and scheduling knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Nodes in the shared pool.
    pub pool_nodes: usize,
    /// Concurrent tasks per node (used to size node grants).
    pub slots_per_node: usize,
    /// Placement policy.
    pub policy: Policy,
    /// Real-concurrency cap: how many tenant drivers may compute at
    /// once. Affects wall-clock time only — never virtual outcomes.
    pub threads: usize,
    /// Seed for [`Policy::Random`].
    pub seed: u64,
    /// Stage pricing.
    pub cost: CostModel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            pool_nodes: 10,
            slots_per_node: 4,
            policy: Policy::FairShare,
            threads: 4,
            seed: 0,
            cost: CostModel::default(),
        }
    }
}

/// Discrete-event view of the shared node pool: a step function of node
/// usage over virtual time, stored as a sorted delta map.
#[derive(Debug)]
struct PoolSim {
    nodes: i64,
    /// `time (ns) → usage delta`; a stage on `[s, e)` adds `+n` at `s`
    /// and `-n` at `e`, so usage at `t` is the prefix sum through `t`.
    deltas: BTreeMap<u64, i64>,
    /// Node·nanoseconds committed (for utilization).
    busy: u128,
    /// Latest committed stage end.
    horizon: u64,
}

impl PoolSim {
    fn new(nodes: usize) -> Self {
        Self {
            nodes: nodes.max(1) as i64,
            deltas: BTreeMap::new(),
            busy: 0,
            horizon: 0,
        }
    }

    /// Earliest `start ≥ ready` at which `want` nodes stay free for
    /// `dur` ns. Single forward sweep over the delta map: candidates
    /// only move right, so the scan is linear in committed stages.
    fn earliest_start(&self, ready: u64, want: i64, dur: u64) -> u64 {
        let cap = self.nodes - want.min(self.nodes);
        let mut usage: i64 = self.deltas.range(..=ready).map(|(_, d)| *d).sum();
        let events: Vec<(u64, i64)> = self
            .deltas
            .range(ready + 1..)
            .map(|(k, d)| (*k, *d))
            .collect();
        let mut cand = ready;
        let mut i = 0;
        loop {
            if usage <= cap {
                // Check the whole window [cand, cand + dur).
                let end = cand.saturating_add(dur);
                let mut window_usage = usage;
                let mut j = i;
                let mut conflict = None;
                while j < events.len() && events[j].0 < end {
                    window_usage += events[j].1;
                    if window_usage > cap {
                        conflict = Some(j);
                        break;
                    }
                    j += 1;
                }
                match conflict {
                    None => return cand,
                    Some(j) => {
                        // Jump the candidate to the conflict point; the
                        // outer loop keeps advancing until usage drops.
                        while i <= j {
                            usage += events[i].1;
                            i += 1;
                        }
                        cand = events[j].0;
                    }
                }
            } else if i < events.len() {
                usage += events[i].1;
                cand = events[i].0;
                i += 1;
            } else {
                // All commitments end eventually; past the horizon the
                // pool is empty.
                return cand.max(self.horizon);
            }
        }
    }

    /// Commit `want` nodes over `[start, end)`.
    fn commit(&mut self, start: u64, end: u64, want: i64) {
        if end <= start || want <= 0 {
            return;
        }
        *self.deltas.entry(start).or_insert(0) += want;
        *self.deltas.entry(end).or_insert(0) -= want;
        self.deltas.retain(|_, d| *d != 0);
        self.busy += u128::from(end - start) * want.unsigned_abs() as u128;
        self.horizon = self.horizon.max(end);
    }

    /// Fraction of `nodes × makespan` spent busy.
    fn utilization(&self, makespan: u64) -> f64 {
        if makespan == 0 {
            return 0.0;
        }
        self.busy as f64 / (self.nodes as f64 * makespan as f64)
    }
}

/// One tenant's virtual clocks.
#[derive(Debug, Clone, Copy)]
struct TenantClock {
    machine_ready: u64,
    crowd_free: u64,
    /// Node·nanoseconds of machine service consumed (fair-share key).
    machine_service: u128,
}

impl TenantClock {
    fn at(arrival: u64) -> Self {
        Self {
            machine_ready: arrival,
            crowd_free: arrival,
            machine_service: 0,
        }
    }

    fn finish(&self) -> u64 {
        self.machine_ready.max(self.crowd_free)
    }
}

/// Place one stage for one tenant; shared by the live loop and the
/// serial replay so both price work identically.
fn apply_stage(
    clock: &mut TenantClock,
    pool: &mut PoolSim,
    cost: &CostModel,
    slots_per_node: usize,
    node_cap: usize,
    ev: &StageEvent,
) {
    match ev.kind {
        StageKind::CrowdWait => {
            let start = clock.finish();
            clock.crowd_free = start.saturating_add(ns(ev.dur));
        }
        StageKind::Machine | StageKind::MaskedMachine => {
            let ready = if ev.kind == StageKind::MaskedMachine {
                clock.machine_ready
            } else {
                clock.finish()
            };
            let want = CostModel::nodes_wanted(ev, slots_per_node)
                .min(node_cap.max(1))
                .max(1) as i64;
            let want = want.min(pool.nodes);
            let dur = ns(cost.duration(ev, want as usize, slots_per_node)).max(1);
            let start = pool.earliest_start(ready, want, dur);
            let end = start.saturating_add(dur);
            pool.commit(start, end, want);
            clock.machine_ready = end;
            clock.machine_service += u128::from(dur) * want.unsigned_abs() as u128;
        }
    }
}

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One tenant's service-level outcome.
#[derive(Debug)]
pub struct TenantOutcome {
    /// Tenant name from the [`JobSpec`].
    pub name: String,
    /// Scheduling priority the tenant ran with.
    pub priority: i32,
    /// Virtual submission time.
    pub arrival: Duration,
    /// Virtual completion time on the shared pool.
    pub finish: Duration,
    /// `finish − arrival`.
    pub latency: Duration,
    /// Node·time of machine service consumed.
    pub machine_service: Duration,
    /// Stage boundaries observed (machine + masked + crowd).
    pub stages: usize,
    /// The tenant's run result — a full [`RunReport`] on success. Gating
    /// never alters a report, so this is bit-identical to a solo run.
    pub result: Result<RunReport, FalconError>,
}

/// Aggregate service report, with the run-jobs-serially baseline replayed
/// from the recorded stage traces.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-tenant outcomes in submission order.
    pub outcomes: Vec<TenantOutcome>,
    /// Virtual completion time of the last tenant on the shared pool.
    pub makespan: Duration,
    /// Virtual makespan of the same stage traces run one job at a time.
    pub serial_makespan: Duration,
    /// Busy fraction of the pool over the shared makespan.
    pub utilization: f64,
    /// Busy fraction of the pool over the serial makespan.
    pub serial_utilization: f64,
    /// Per-tenant latencies of the serial baseline, in submission order.
    pub serial_latencies: Vec<Duration>,
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Pool size the report was produced with.
    pub pool_nodes: usize,
}

impl ServeReport {
    /// Aggregate-throughput speedup over running the jobs serially.
    pub fn throughput_speedup(&self) -> f64 {
        let shared = self.makespan.as_secs_f64();
        if shared == 0.0 {
            return 1.0;
        }
        self.serial_makespan.as_secs_f64() / shared
    }

    /// `p`-th percentile (0–100, nearest-rank) of shared-pool latencies.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        percentile(self.outcomes.iter().map(|o| o.latency).collect(), p)
    }

    /// `p`-th percentile of the serial baseline's latencies.
    pub fn serial_latency_percentile(&self, p: f64) -> Duration {
        percentile(self.serial_latencies.clone(), p)
    }
}

fn percentile(mut xs: Vec<Duration>, p: f64) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    xs.sort_unstable();
    let rank = ((p / 100.0) * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

/// Per-tenant scheduler state.
struct Tenant {
    meta_priority: i32,
    arrival_ns: u64,
    events: Receiver<StageEvent>,
    grants: Sender<()>,
    handle: Option<JoinHandle<Result<RunReport, FalconError>>>,
    clock: TenantClock,
    trace: Vec<StageEvent>,
    finished: bool,
    result: Option<Result<RunReport, FalconError>>,
}

fn run_job(job: &JobSpec, gate: Arc<ServeGate>) -> Result<RunReport, FalconError> {
    let journal = match &job.journal {
        Some(p) => Some(CrowdJournal::open(p)?),
        None => None,
    };
    let falcon = Falcon::new(job.config.clone());
    if job.workflow_rounds > 0 {
        falcon
            .try_run_workflow_gated(
                &job.a,
                &job.b,
                job.crowd.clone(),
                job.workflow_rounds,
                journal,
                gate,
            )
            .map(|(r, _)| r)
    } else {
        falcon.try_run_gated(&job.a, &job.b, job.crowd.clone(), journal, gate)
    }
}

/// Run `jobs` concurrently on one shared node pool.
///
/// Admission is the vector itself: index order is submission order. The
/// call returns when every tenant has completed (successfully or not) —
/// one tenant's failure never aborts the others.
pub fn serve(jobs: Vec<JobSpec>, cfg: &ServeConfig) -> ServeReport {
    let permits = Permits::new(cfg.threads);
    let mut tenants: Vec<Tenant> = Vec::with_capacity(jobs.len());
    let mut names: Vec<String> = Vec::with_capacity(jobs.len());

    for job in jobs {
        let (ev_tx, ev_rx) = channel();
        let (grant_tx, grant_rx) = channel();
        let gate = Arc::new(ServeGate::new(ev_tx, grant_rx, permits.clone()));
        let permits_for_thread = permits.clone();
        names.push(job.name.clone());
        let tenant = Tenant {
            meta_priority: job.priority,
            arrival_ns: ns(job.arrival),
            events: ev_rx,
            grants: grant_tx,
            handle: None,
            clock: TenantClock::at(ns(job.arrival)),
            trace: Vec::new(),
            finished: false,
            result: None,
        };
        let handle = std::thread::spawn(move || {
            permits_for_thread.acquire();
            let res = run_job(&job, gate.clone());
            // Disconnect the event channel *before* releasing the permit
            // so the scheduler sees a clean end-of-stream.
            drop(gate);
            permits_for_thread.release();
            res
        });
        let mut tenant = tenant;
        tenant.handle = Some(handle);
        tenants.push(tenant);
    }

    let mut pool = PoolSim::new(cfg.pool_nodes);
    let mut round: u64 = 0;

    loop {
        // Drain every active tenant to its next machine boundary (or to
        // completion), folding crowd events into its clocks in program
        // order. `pending` holds (tenant index, parked stage).
        let mut pending: Vec<(usize, StageEvent)> = Vec::new();
        let mut any_active = false;
        for (idx, t) in tenants.iter_mut().enumerate() {
            if t.finished {
                continue;
            }
            any_active = true;
            loop {
                match t.events.recv() {
                    Ok(ev) if ev.kind == StageKind::CrowdWait => {
                        apply_stage(
                            &mut t.clock,
                            &mut pool,
                            &cfg.cost,
                            cfg.slots_per_node,
                            cfg.pool_nodes,
                            &ev,
                        );
                        t.trace.push(ev);
                    }
                    Ok(ev) => {
                        t.trace.push(ev.clone());
                        pending.push((idx, ev));
                        break;
                    }
                    Err(_) => {
                        t.finished = true;
                        t.result = Some(join_tenant(t.handle.take()));
                        break;
                    }
                }
            }
        }
        if !any_active {
            break;
        }
        if pending.is_empty() {
            round += 1;
            continue;
        }

        // Policy order, then place sequentially against the shared pool.
        let active = tenants.iter().filter(|t| !t.finished).count().max(1);
        let node_cap = match cfg.policy {
            Policy::FairShare => (cfg.pool_nodes / active).max(1),
            _ => cfg.pool_nodes,
        };
        sort_pending(&mut pending, &tenants, cfg, round);
        for (idx, ev) in &pending {
            let t = &mut tenants[*idx];
            apply_stage(
                &mut t.clock,
                &mut pool,
                &cfg.cost,
                cfg.slots_per_node,
                node_cap,
                ev,
            );
        }
        // Release every parked tenant for its next stage.
        for (idx, _) in &pending {
            let _ = tenants[*idx].grants.send(());
        }
        round += 1;
    }

    // Assemble outcomes; the shared makespan is the last virtual finish.
    let mut makespan_ns: u64 = 0;
    let mut outcomes = Vec::with_capacity(tenants.len());
    for (t, name) in tenants.iter_mut().zip(names) {
        let finish = t.clock.finish();
        makespan_ns = makespan_ns.max(finish);
        outcomes.push(TenantOutcome {
            name,
            priority: t.meta_priority,
            arrival: Duration::from_nanos(t.arrival_ns),
            finish: Duration::from_nanos(finish),
            latency: Duration::from_nanos(finish.saturating_sub(t.arrival_ns)),
            machine_service: Duration::from_nanos(
                u64::try_from(t.clock.machine_service).unwrap_or(u64::MAX),
            ),
            stages: t.trace.len(),
            result: t.result.take().unwrap_or(Err(FalconError::EmptyInput {
                what: "tenant result",
            })),
        });
    }
    let utilization = pool.utilization(makespan_ns);

    // Serial baseline: replay the recorded traces one tenant at a time
    // against a fresh pool — pure virtual-time arithmetic, no re-run.
    let (serial_makespan_ns, serial_utilization, serial_latencies) = replay_serial(&tenants, cfg);

    ServeReport {
        outcomes,
        makespan: Duration::from_nanos(makespan_ns),
        serial_makespan: Duration::from_nanos(serial_makespan_ns),
        utilization,
        serial_utilization,
        serial_latencies,
        rounds: round,
        pool_nodes: cfg.pool_nodes,
    }
}

fn join_tenant(
    handle: Option<JoinHandle<Result<RunReport, FalconError>>>,
) -> Result<RunReport, FalconError> {
    let Some(handle) = handle else {
        return Err(FalconError::EmptyInput {
            what: "tenant thread",
        });
    };
    match handle.join() {
        Ok(res) => res,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "tenant driver thread panicked".to_string());
            Err(FalconError::Dataflow(DataflowError::WorkerPanicked {
                job: 0,
                phase: Phase::Map,
                task: 0,
                attempts: 1,
                message,
            }))
        }
    }
}

fn sort_pending(
    pending: &mut [(usize, StageEvent)],
    tenants: &[Tenant],
    cfg: &ServeConfig,
    round: u64,
) {
    match cfg.policy {
        Policy::Fifo => pending.sort_by_key(|(idx, _)| (tenants[*idx].arrival_ns, *idx)),
        Policy::FairShare => pending.sort_by_key(|(idx, _)| {
            (
                tenants[*idx].clock.machine_service,
                u128::from(tenants[*idx].arrival_ns),
                *idx as u128,
            )
        }),
        Policy::Priority => pending.sort_by_key(|(idx, _)| {
            (
                std::cmp::Reverse(tenants[*idx].meta_priority),
                tenants[*idx].clock.machine_service,
                *idx as u128,
            )
        }),
        Policy::Random => pending.sort_by(|(x, _), (y, _)| {
            let key = |idx: usize| DetRng::for_task(cfg.seed, round, Phase::Map, idx, 0).gen_f64();
            key(*x).total_cmp(&key(*y)).then_with(|| x.cmp(y))
        }),
    }
}

fn replay_serial(tenants: &[Tenant], cfg: &ServeConfig) -> (u64, f64, Vec<Duration>) {
    let mut pool = PoolSim::new(cfg.pool_nodes);
    // Serve in submission order, respecting arrivals: the next job starts
    // no earlier than its arrival or the previous job's finish.
    let mut clock_base: u64 = 0;
    let mut latencies = Vec::with_capacity(tenants.len());
    for t in tenants {
        let start = clock_base.max(t.arrival_ns);
        let mut clock = TenantClock::at(start);
        for ev in &t.trace {
            apply_stage(
                &mut clock,
                &mut pool,
                &cfg.cost,
                cfg.slots_per_node,
                cfg.pool_nodes,
                ev,
            );
        }
        clock_base = clock.finish();
        latencies.push(Duration::from_nanos(
            clock_base.saturating_sub(t.arrival_ns),
        ));
    }
    (clock_base, pool.utilization(clock_base), latencies)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: StageKind, dur_s: u64, tasks: u32, records: u64) -> StageEvent {
        StageEvent {
            label: "t".into(),
            kind,
            dur: Duration::from_secs(dur_s),
            tasks,
            records,
        }
    }

    #[test]
    fn pool_places_at_ready_when_free() {
        let pool = PoolSim::new(4);
        assert_eq!(pool.earliest_start(100, 4, 50), 100);
    }

    #[test]
    fn pool_waits_for_capacity() {
        let mut pool = PoolSim::new(4);
        pool.commit(0, 100, 3);
        // Wants 2, only 1 free until 100.
        assert_eq!(pool.earliest_start(0, 2, 10), 100);
        // Wants 1: fits immediately.
        assert_eq!(pool.earliest_start(0, 1, 10), 0);
    }

    #[test]
    fn pool_backfills_gaps() {
        let mut pool = PoolSim::new(4);
        pool.commit(100, 200, 4);
        // A 50ns stage fits before the existing commitment.
        assert_eq!(pool.earliest_start(0, 2, 50), 0);
        // A 150ns stage cannot: it must wait out the busy window.
        assert_eq!(pool.earliest_start(0, 2, 150), 200);
    }

    #[test]
    fn utilization_counts_node_time() {
        let mut pool = PoolSim::new(2);
        pool.commit(0, 100, 1);
        assert!((pool.utilization(100) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn masked_stages_run_under_crowd_windows() {
        let cost = CostModel::small();
        let mut pool = PoolSim::new(4);
        let mut clock = TenantClock::at(0);
        apply_stage(
            &mut clock,
            &mut pool,
            &cost,
            4,
            4,
            &ev(StageKind::CrowdWait, 100, 0, 0),
        );
        let crowd_free = clock.crowd_free;
        apply_stage(
            &mut clock,
            &mut pool,
            &cost,
            4,
            4,
            &ev(StageKind::MaskedMachine, 999, 4, 100),
        );
        // The masked stage started before the crowd window closed.
        assert!(clock.machine_ready < crowd_free);
        // An unmasked stage must wait for the crowd.
        apply_stage(
            &mut clock,
            &mut pool,
            &cost,
            4,
            4,
            &ev(StageKind::Machine, 999, 4, 100),
        );
        assert!(clock.machine_ready > crowd_free);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<Duration> = (1..=10).map(Duration::from_secs).collect();
        assert_eq!(percentile(xs.clone(), 50.0), Duration::from_secs(5));
        assert_eq!(percentile(xs.clone(), 99.0), Duration::from_secs(10));
        assert_eq!(percentile(xs, 100.0), Duration::from_secs(10));
        assert_eq!(percentile(Vec::new(), 50.0), Duration::ZERO);
    }
}
