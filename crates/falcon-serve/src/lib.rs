//! # falcon-serve — Falcon as a multi-tenant cloud service
//!
//! The paper's Section 10.2 masks a *single* job's machine time under its
//! own crowd waits. A cloud service runs **many** EM jobs at once, and
//! the same idea generalizes: while tenant A waits on the crowd, its
//! share of the node pool is idle — so give those nodes to tenant B's
//! machine stages. This crate is that generalization:
//!
//! * [`JobSpec`] — one tenant's admission request: tables, driver
//!   config (fault plan included), crowd, priority, arrival, optional
//!   crash journal;
//! * [`serve`] — runs a batch of jobs concurrently on one shared
//!   simulated node pool, decomposing each into stages via the
//!   `falcon-core` stage gate and scheduling machine stages with a
//!   [`Policy`] (FIFO / fair-share / priority / seeded random);
//! * [`ServeReport`] — per-tenant outcomes (virtual latency, machine
//!   service, the tenant's full `RunReport`) plus aggregate makespan,
//!   pool utilization, and a run-jobs-serially baseline replayed from
//!   the recorded stage traces.
//!
//! The service layer on top of the scheduler makes it production-shaped:
//!
//! * **admission control** ([`AdmissionConfig`]) — a bounded active set
//!   and wait queue, with reject / shed-lowest-priority /
//!   queue-with-deadline overflow policies and per-tenant quotas;
//! * **deadlines and cancellation** — per-job virtual-clock deadlines
//!   enforced at round boundaries; the driver unwinds cooperatively with
//!   its crowd journal finalized;
//! * **quarantine** — an erroring tenant is isolated without perturbing
//!   any other tenant's bytes;
//! * **elastic pool** ([`PoolEvent`], [`DegradedPolicy`]) — seeded node
//!   loss/join mid-run, with degraded mode shedding speculative work
//!   first;
//! * **crash-resume** ([`resume`]) — every scheduler decision is
//!   committed to an append-only service journal; resume re-executes and
//!   verifies the schedule, reaching byte-identical reports without
//!   re-asking a single crowd question;
//! * **chaos harness** ([`chaos`]) — a kill-point × fault × pool-shrink
//!   matrix asserting resume-identity and isolation per cell.
//!
//! Three properties the tests pin down:
//!
//! * **isolation** — gating never changes what a run computes, each
//!   tenant gets its own simulated cluster and journal, and scheduler
//!   state is per-tenant, so one tenant's node loss, crowd loss, crash
//!   recovery, deadline or quarantine cannot perturb another tenant's
//!   bit-identical results;
//! * **determinism** — the scheduler drains tenants in lockstep rounds
//!   and prices stages from deterministic shapes, so placements, ledgers
//!   and every virtual-time statistic are identical at any
//!   [`ServeConfig::threads`] setting;
//! * **resume-identity** — kill the service after any journaled round,
//!   resume, and every per-tenant report, crowd journal and the
//!   aggregate ledger is byte-identical to an uninterrupted run.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod chaos;
pub mod cost;
pub mod error;
pub mod gate;
pub mod job;
pub mod journal;
pub mod sched;

pub use admission::{AdmissionConfig, AdmissionPolicy, TenantQuota};
pub use cost::CostModel;
pub use error::{ServeError, SERVICE_TENANT};
pub use job::JobSpec;
pub use sched::{
    resume, serve, DegradedPolicy, Policy, PoolEvent, ServeConfig, ServeReport, TenantOutcome,
    TenantStatus,
};

use falcon_table::IdPair;

/// Everything in a [`ServeReport`] that must be invariant across thread
/// counts and kill/resume, flattened to an easily-diffable form:
/// per-tenant virtual times, service, stage counts, statuses, match
/// digests and ledger counters, plus the aggregates. Shared by the
/// determinism proptest, the chaos harness and the `serve_chaos` bench so
/// they all assert the same notion of identity.
pub fn serve_fingerprint(rep: &ServeReport) -> Vec<(String, u128)> {
    let mut fp = Vec::new();
    for o in &rep.outcomes {
        fp.push((format!("{}/finish", o.name), o.finish.as_nanos()));
        fp.push((format!("{}/latency", o.name), o.latency.as_nanos()));
        fp.push((format!("{}/service", o.name), o.machine_service.as_nanos()));
        fp.push((format!("{}/stages", o.name), o.stages as u128));
        fp.push((format!("{}/status", o.name), o.status as u128));
        match &o.result {
            Ok(report) => {
                fp.push((
                    format!("{}/matches", o.name),
                    u128::from(match_digest(&report.matches)),
                ));
                fp.push((
                    format!("{}/questions", o.name),
                    report.ledger.questions as u128,
                ));
                fp.push((
                    format!("{}/cost_cents", o.name),
                    (report.ledger.cost * 100.0).round() as u128,
                ));
                fp.push((
                    format!("{}/crowd_time", o.name),
                    report.ledger.crowd_time.as_nanos(),
                ));
            }
            Err(e) => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in e.to_string().bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                fp.push((format!("{}/error", o.name), u128::from(h)));
            }
        }
    }
    let agg = rep.aggregate_ledger();
    fp.push(("agg/questions".into(), agg.questions as u128));
    fp.push(("agg/answers".into(), agg.answers as u128));
    fp.push(("agg/cost_cents".into(), (agg.cost * 100.0).round() as u128));
    fp.push(("agg/crowd_time".into(), agg.crowd_time.as_nanos()));
    fp.push(("makespan".into(), rep.makespan.as_nanos()));
    fp.push(("serial_makespan".into(), rep.serial_makespan.as_nanos()));
    fp.push((
        "utilization_ppm".into(),
        (rep.utilization * 1e6).round() as u128,
    ));
    fp
}

/// Order-sensitive 64-bit digest of a match set, for cheap bit-identity
/// assertions across solo and shared-pool runs (FNV-1a over the pairs).
pub fn match_digest(pairs: &[IdPair]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (a, b) in pairs {
        eat(u64::from(*a));
        eat(u64::from(*b));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let x = vec![(1, 2), (3, 4)];
        let y = vec![(3, 4), (1, 2)];
        assert_ne!(match_digest(&x), match_digest(&y));
        assert_eq!(match_digest(&x), match_digest(&x.clone()));
        assert_ne!(match_digest(&x), match_digest(&[]));
    }
}
