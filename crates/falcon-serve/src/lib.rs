//! # falcon-serve — Falcon as a multi-tenant cloud service
//!
//! The paper's Section 10.2 masks a *single* job's machine time under its
//! own crowd waits. A cloud service runs **many** EM jobs at once, and
//! the same idea generalizes: while tenant A waits on the crowd, its
//! share of the node pool is idle — so give those nodes to tenant B's
//! machine stages. This crate is that generalization:
//!
//! * [`JobSpec`] — one tenant's admission request: tables, driver
//!   config (fault plan included), crowd, priority, arrival, optional
//!   crash journal;
//! * [`serve`] — runs a batch of jobs concurrently on one shared
//!   simulated node pool, decomposing each into stages via the
//!   `falcon-core` stage gate and scheduling machine stages with a
//!   [`Policy`] (FIFO / fair-share / priority / seeded random);
//! * [`ServeReport`] — per-tenant outcomes (virtual latency, machine
//!   service, the tenant's full `RunReport`) plus aggregate makespan,
//!   pool utilization, and a run-jobs-serially baseline replayed from
//!   the recorded stage traces.
//!
//! Two properties the tests pin down:
//!
//! * **isolation** — gating never changes what a run computes, each
//!   tenant gets its own simulated cluster and journal, and scheduler
//!   state is per-tenant, so one tenant's node loss, crowd loss or crash
//!   recovery cannot perturb another tenant's bit-identical results;
//! * **determinism** — the scheduler drains tenants in lockstep rounds
//!   and prices stages from deterministic shapes, so placements, ledgers
//!   and every virtual-time statistic are identical at any
//!   [`ServeConfig::threads`] setting.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
mod gate;
pub mod job;
pub mod sched;

pub use cost::CostModel;
pub use job::JobSpec;
pub use sched::{serve, Policy, ServeConfig, ServeReport, TenantOutcome};

use falcon_table::IdPair;

/// Order-sensitive 64-bit digest of a match set, for cheap bit-identity
/// assertions across solo and shared-pool runs (FNV-1a over the pairs).
pub fn match_digest(pairs: &[IdPair]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (a, b) in pairs {
        eat(u64::from(*a));
        eat(u64::from(*b));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let x = vec![(1, 2), (3, 4)];
        let y = vec![(3, 4), (1, 2)];
        assert_ne!(match_digest(&x), match_digest(&y));
        assert_eq!(match_digest(&x), match_digest(&x.clone()));
        assert_ne!(match_digest(&x), match_digest(&[]));
    }
}
