//! Crash-resumable service journal (`falcon-serve-journal v1`).
//!
//! The scheduler's entire decision stream is deterministic given the job
//! list and [`ServeConfig`](crate::ServeConfig): admissions, per-round
//! stage placements, crowd folds, cancellations, finishes. The journal
//! records that stream as plain text, one decision per line, with a
//! commit marker per round:
//!
//! ```text
//! falcon-serve-journal v1
//! config <fnv64-of-config>
//! admit <idx> <name> <arrival_ns> <priority> <decision>
//! round 0
//! c <idx> <seq> <label> <dur_ns> <tasks> <records> <start> <end>
//! p <idx> <seq> <kind> <label> <dur_ns> <tasks> <records> <start> <end> <nodes>
//! x <idx> <reason>
//! f <idx> <finish_ns> <status>
//! end 0
//! round 1
//! ...
//! ```
//!
//! `c` lines fold a crowd wait into the tenant's clock, `p` lines place a
//! machine-kind stage on the pool, `x` lines record a cancellation grant,
//! `f` lines record a tenant finishing. A round is *committed* by its
//! `end` marker.
//!
//! **Resume = re-execute + verify.** Because every decision is a pure
//! function of the inputs, [`Scheduler::resume`](crate::serve) replays
//! completed rounds by re-running the same drain/place logic (tenant
//! drivers replay their own crowd journals, so no crowd question is ever
//! re-asked) and *string-compares* each regenerated line against the
//! recorded one. Any mismatch — a stale crowd journal, an edited config,
//! a different job list — surfaces as a typed
//! [`ServeError::ServiceJournal`](crate::ServeError) divergence instead
//! of silently forking history.
//!
//! **Torn tails.** Only `\n`-terminated lines are trusted, mirroring
//! `falcon-crowd`'s journal: a crash mid-round leaves a `round` group
//! with no `end` marker, and `open` drops the whole group (truncating
//! the file back to the last commit) so the round re-runs live on
//! resume. Structural damage *before* the tail — missing header, round
//! numbering gaps, stray `end` — is corruption, not a torn tail, and
//! fails typed.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const HEADER: &str = "falcon-serve-journal v1";

/// Why the journal itself (not the schedule) is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalFailure {
    /// Underlying I/O failure.
    Io {
        /// Rendered `io::Error`.
        message: String,
    },
    /// Structural corruption before the torn tail.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What is wrong with it.
        message: String,
    },
    /// The file's header names a format we do not speak.
    Version {
        /// The header found.
        found: String,
    },
}

impl fmt::Display for JournalFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { message } => write!(f, "journal I/O: {message}"),
            Self::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            Self::Version { found } => write!(f, "unsupported journal version: {found:?}"),
        }
    }
}

impl From<std::io::Error> for JournalFailure {
    fn from(e: std::io::Error) -> Self {
        Self::Io {
            message: e.to_string(),
        }
    }
}

/// One committed round: its number and its decision lines (markers
/// excluded).
pub(crate) type RoundLines = (u64, Vec<String>);

/// The service journal: recorded history on open, append sink while
/// running live.
#[derive(Debug)]
pub struct ServeJournal {
    path: PathBuf,
    file: File,
    /// Byte offset of the end of trusted content.
    end_offset: u64,
    /// Recorded `config`/`admit` lines (empty when fresh).
    prefix: Vec<String>,
    /// Committed rounds awaiting replay.
    rounds: VecDeque<RoundLines>,
}

impl ServeJournal {
    /// Open or create a journal at `path`, trusting only committed
    /// content and truncating any torn tail.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, JournalFailure> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        if text.is_empty() {
            file.write_all(format!("{HEADER}\n").as_bytes())?;
            file.flush()?;
            return Ok(Self {
                path,
                end_offset: (HEADER.len() + 1) as u64,
                file,
                prefix: Vec::new(),
                rounds: VecDeque::new(),
            });
        }
        let (prefix, rounds, end_offset) = parse(&text)?;
        if end_offset < text.len() as u64 {
            // Torn tail: drop everything after the last commit so the
            // next append continues from trusted state.
            file.set_len(end_offset)?;
        }
        file.seek(SeekFrom::Start(end_offset))?;
        Ok(Self {
            path,
            file,
            end_offset,
            prefix,
            rounds,
        })
    }

    /// Path the journal lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when the journal holds no committed history (fresh run).
    pub fn is_fresh(&self) -> bool {
        self.prefix.is_empty() && self.rounds.is_empty()
    }

    /// Committed rounds still awaiting replay.
    pub fn pending_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Recorded `config`/`admit` lines (empty when fresh).
    pub(crate) fn prefix(&self) -> &[String] {
        &self.prefix
    }

    /// Pop the next committed round for replay verification.
    pub(crate) fn next_round(&mut self) -> Option<RoundLines> {
        self.rounds.pop_front()
    }

    /// Append the `config`/`admit` prefix of a fresh run.
    pub(crate) fn write_prefix(&mut self, lines: &[String]) -> Result<(), JournalFailure> {
        let mut buf = String::new();
        for l in lines {
            buf.push_str(l);
            buf.push('\n');
        }
        self.append(&buf)
    }

    /// Append one committed round: `round n`, its lines, `end n`, then
    /// flush + sync so a crash can lose at most the round in flight.
    pub(crate) fn write_round(&mut self, n: u64, lines: &[String]) -> Result<(), JournalFailure> {
        let mut buf = format!("round {n}\n");
        for l in lines {
            buf.push_str(l);
            buf.push('\n');
        }
        buf.push_str(&format!("end {n}\n"));
        self.append(&buf)?;
        self.file.sync_all()?;
        Ok(())
    }

    fn append(&mut self, buf: &str) -> Result<(), JournalFailure> {
        self.file.write_all(buf.as_bytes())?;
        self.file.flush()?;
        self.end_offset += buf.len() as u64;
        Ok(())
    }
}

/// Parse trusted journal text into `(prefix, committed rounds, trusted
/// byte length)`.
#[allow(clippy::type_complexity)]
fn parse(text: &str) -> Result<(Vec<String>, VecDeque<RoundLines>, u64), JournalFailure> {
    // Only `\n`-terminated lines are trusted.
    let mut lines: Vec<(usize, &str, u64)> = Vec::new(); // (line no, text, end offset)
    let mut offset = 0u64;
    for (i, l) in text.split_inclusive('\n').enumerate() {
        offset += l.len() as u64;
        if let Some(stripped) = l.strip_suffix('\n') {
            lines.push((i + 1, stripped, offset));
        }
    }
    let Some(&(_, first, header_end)) = lines.first() else {
        return Err(JournalFailure::Corrupt {
            line: 1,
            message: "unterminated header".into(),
        });
    };
    if first != HEADER {
        return Err(JournalFailure::Version {
            found: first.to_string(),
        });
    }
    let mut prefix = Vec::new();
    let mut rounds = VecDeque::new();
    let mut trusted = header_end;
    let mut current: Option<(u64, Vec<String>)> = None;
    let mut expected_round = 0u64;
    for &(no, l, end) in &lines[1..] {
        if let Some(rest) = l.strip_prefix("round ") {
            if current.is_some() {
                return Err(JournalFailure::Corrupt {
                    line: no,
                    message: "round opened inside an uncommitted round".into(),
                });
            }
            let n: u64 = rest.parse().map_err(|_| JournalFailure::Corrupt {
                line: no,
                message: format!("bad round number {rest:?}"),
            })?;
            if n != expected_round {
                return Err(JournalFailure::Corrupt {
                    line: no,
                    message: format!("round {n} where round {expected_round} was expected"),
                });
            }
            current = Some((n, Vec::new()));
        } else if let Some(rest) = l.strip_prefix("end ") {
            let Some((n, body)) = current.take() else {
                return Err(JournalFailure::Corrupt {
                    line: no,
                    message: "end marker outside a round".into(),
                });
            };
            if rest.parse::<u64>() != Ok(n) {
                return Err(JournalFailure::Corrupt {
                    line: no,
                    message: format!("end {rest} closes round {n}"),
                });
            }
            rounds.push_back((n, body));
            expected_round = n + 1;
            trusted = end; // commit point
        } else if let Some((_, body)) = current.as_mut() {
            body.push(l.to_string());
        } else if rounds.is_empty() {
            prefix.push(l.to_string());
            trusted = end;
        } else {
            return Err(JournalFailure::Corrupt {
                line: no,
                message: "decision line between rounds".into(),
            });
        }
    }
    // An open `current` is the torn tail: dropped by leaving `trusted`
    // at the last commit.
    Ok((prefix, rounds, trusted))
}

/// FNV-1a over a string, for compact config digests in journal lines.
pub(crate) fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "falcon-serve-journal-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn fresh_then_reopen_round_trips() {
        let p = tmp("fresh");
        {
            let mut j = ServeJournal::open(&p).unwrap();
            assert!(j.is_fresh());
            j.write_prefix(&["config 1".into(), "admit 0 a 0 0 active".into()])
                .unwrap();
            j.write_round(0, &["p 0 0 m x 1 1 0 0 1 1".into()]).unwrap();
            j.write_round(1, &[]).unwrap();
        }
        let mut j = ServeJournal::open(&p).unwrap();
        assert!(!j.is_fresh());
        assert_eq!(j.prefix(), ["config 1", "admit 0 a 0 0 active"]);
        assert_eq!(j.pending_rounds(), 2);
        assert_eq!(
            j.next_round(),
            Some((0, vec!["p 0 0 m x 1 1 0 0 1 1".into()]))
        );
        assert_eq!(j.next_round(), Some((1, vec![])));
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn torn_mid_round_tail_is_dropped_and_truncated() {
        let p = tmp("torn");
        {
            let mut j = ServeJournal::open(&p).unwrap();
            j.write_prefix(&["config 7".into()]).unwrap();
            j.write_round(0, &["c 0 0 al 5 0 0 0 5".into()]).unwrap();
        }
        // Crash mid-round-1: a round marker, one decision, no commit,
        // and a half-written final line.
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(b"round 1\np 0 1 m x 1 1 0 5 6 1\np 0 2 m y 9")
            .unwrap();
        drop(f);
        let before = fs::read_to_string(&p).unwrap();
        let j = ServeJournal::open(&p).unwrap();
        assert_eq!(j.pending_rounds(), 1);
        let after = fs::read_to_string(&p).unwrap();
        assert!(before.len() > after.len());
        assert!(after.ends_with("end 0\n"));
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn round_numbering_gap_is_corrupt_not_torn() {
        let p = tmp("gap");
        fs::write(&p, format!("{HEADER}\nround 0\nend 0\nround 2\nend 2\n")).unwrap();
        match ServeJournal::open(&p) {
            Err(JournalFailure::Corrupt { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected corruption, got {other:?}"),
        }
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn stray_end_marker_is_corrupt() {
        let p = tmp("stray");
        fs::write(&p, format!("{HEADER}\nend 0\n")).unwrap();
        assert!(matches!(
            ServeJournal::open(&p),
            Err(JournalFailure::Corrupt { .. })
        ));
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn wrong_header_is_version_error() {
        let p = tmp("version");
        fs::write(&p, "falcon-serve-journal v9\n").unwrap();
        assert!(matches!(
            ServeJournal::open(&p),
            Err(JournalFailure::Version { .. })
        ));
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64("abc"), fnv64("abc"));
        assert_ne!(fnv64("abc"), fnv64("abd"));
    }
}
