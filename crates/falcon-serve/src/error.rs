//! Typed service-level errors.
//!
//! Every variant carries the `(tenant, round)` pair that locates the
//! failure in the scheduler's lockstep execution — the same discipline
//! `falcon-lint`'s `error-context` rule enforces for
//! `DataflowError::{job, phase}`. Service-scoped failures (journal
//! corruption before any tenant ran, say) use the reserved tenant name
//! `"service"`.

use std::fmt;
use std::time::Duration;

/// Reserved tenant name for failures not attributable to one tenant.
pub const SERVICE_TENANT: &str = "service";

/// A service-level failure, always located at `(tenant, round)`.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission refused: the wait queue is full.
    QueueFull {
        /// Tenant whose admission was refused.
        tenant: String,
        /// Scheduler round (0 for admission-time decisions).
        round: u64,
        /// Jobs already waiting.
        queued: usize,
        /// Configured queue bound.
        max_queue: usize,
    },
    /// A per-tenant quota (stage count or node-seconds budget) ran out.
    QuotaExceeded {
        /// Tenant that exhausted its quota.
        tenant: String,
        /// Round at which the quota check fired.
        round: u64,
        /// Which quota: `"stages"` or `"node-seconds"`.
        what: &'static str,
        /// The configured limit, in the quota's own unit.
        limit: u64,
    },
    /// The job's virtual-clock deadline passed.
    DeadlineExceeded {
        /// Tenant whose deadline passed.
        tenant: String,
        /// Round at which the deadline check fired.
        round: u64,
        /// The absolute deadline (virtual time since service start).
        deadline: Duration,
        /// Virtual time the tenant had reached when cancelled.
        reached: Duration,
    },
    /// The tenant's driver failed (error or attempt-budget overrun) and
    /// was isolated from the rest of the service.
    Quarantined {
        /// Tenant that was quarantined.
        tenant: String,
        /// Round at which the failure surfaced.
        round: u64,
        /// The underlying driver failure, rendered.
        cause: String,
    },
    /// The job was shed by admission control to make room for others.
    Shed {
        /// Tenant that was shed.
        tenant: String,
        /// Round (0 for admission-time shedding).
        round: u64,
        /// What shed it (e.g. `"queue overflow"`).
        by: &'static str,
    },
    /// The scheduler shut down while the tenant still had live work.
    Shutdown {
        /// Tenant whose work was cut short.
        tenant: String,
        /// Round at which shutdown reached the tenant.
        round: u64,
    },
    /// The service journal is unusable: I/O failure, structural
    /// corruption, or divergence between the journal and the re-executed
    /// schedule on resume.
    ServiceJournal {
        /// Tenant implicated by the failing record ([`SERVICE_TENANT`]
        /// when no single tenant is).
        tenant: String,
        /// Round of the failing record (0 when outside any round).
        round: u64,
        /// What went wrong.
        message: String,
    },
}

impl ServeError {
    /// The tenant this error is attributed to.
    pub fn tenant(&self) -> &str {
        match self {
            Self::QueueFull { tenant, .. }
            | Self::QuotaExceeded { tenant, .. }
            | Self::DeadlineExceeded { tenant, .. }
            | Self::Quarantined { tenant, .. }
            | Self::Shed { tenant, .. }
            | Self::Shutdown { tenant, .. }
            | Self::ServiceJournal { tenant, .. } => tenant,
        }
    }

    /// The scheduler round this error is located at.
    pub fn round(&self) -> u64 {
        match self {
            Self::QueueFull { round, .. }
            | Self::QuotaExceeded { round, .. }
            | Self::DeadlineExceeded { round, .. }
            | Self::Quarantined { round, .. }
            | Self::Shed { round, .. }
            | Self::Shutdown { round, .. }
            | Self::ServiceJournal { round, .. } => *round,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull {
                tenant,
                round,
                queued,
                max_queue,
            } => write!(
                f,
                "tenant {tenant} (round {round}): admission queue full ({queued}/{max_queue})"
            ),
            Self::QuotaExceeded {
                tenant,
                round,
                what,
                limit,
            } => write!(
                f,
                "tenant {tenant} (round {round}): {what} quota exhausted (limit {limit})"
            ),
            Self::DeadlineExceeded {
                tenant,
                round,
                deadline,
                reached,
            } => write!(
                f,
                "tenant {tenant} (round {round}): deadline {deadline:?} exceeded at {reached:?}"
            ),
            Self::Quarantined {
                tenant,
                round,
                cause,
            } => write!(f, "tenant {tenant} (round {round}): quarantined: {cause}"),
            Self::Shed { tenant, round, by } => {
                write!(f, "tenant {tenant} (round {round}): shed by {by}")
            }
            Self::Shutdown { tenant, round } => {
                write!(f, "tenant {tenant} (round {round}): scheduler shut down")
            }
            Self::ServiceJournal {
                tenant,
                round,
                message,
            } => write!(
                f,
                "tenant {tenant} (round {round}): service journal: {message}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_carries_tenant_and_round() {
        let errs = [
            ServeError::QueueFull {
                tenant: "a".into(),
                round: 0,
                queued: 3,
                max_queue: 3,
            },
            ServeError::QuotaExceeded {
                tenant: "b".into(),
                round: 2,
                what: "stages",
                limit: 10,
            },
            ServeError::DeadlineExceeded {
                tenant: "c".into(),
                round: 5,
                deadline: Duration::from_secs(60),
                reached: Duration::from_secs(90),
            },
            ServeError::Quarantined {
                tenant: "d".into(),
                round: 1,
                cause: "worker panicked".into(),
            },
            ServeError::Shed {
                tenant: "e".into(),
                round: 0,
                by: "queue overflow",
            },
            ServeError::Shutdown {
                tenant: "f".into(),
                round: 7,
            },
            ServeError::ServiceJournal {
                tenant: SERVICE_TENANT.into(),
                round: 3,
                message: "divergence".into(),
            },
        ];
        for (i, e) in errs.iter().enumerate() {
            let shown = e.to_string();
            assert!(shown.contains("tenant "), "{shown}");
            assert!(shown.contains("round "), "{shown}");
            assert_eq!(e.round(), [0, 2, 5, 1, 0, 7, 3][i]);
        }
        assert_eq!(errs[0].tenant(), "a");
    }
}
