//! One tenant's admission request: a complete EM job plus service-level
//! metadata (priority, virtual arrival time, crash journal).

use falcon_core::driver::{Falcon, FalconConfig, RunReport};
use falcon_core::error::FalconError;
use falcon_crowd::Crowd;
use falcon_table::Table;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A tenant job submitted to the service.
///
/// The crowd is held as `Arc<dyn Crowd>` so heterogeneous tenants (MTurk
/// workers, in-house experts, oracles) can share one queue; the blanket
/// `impl Crowd for Arc<C>` means the driver consumes it unchanged.
pub struct JobSpec {
    /// Tenant name, used in reports and manifests.
    pub name: String,
    /// Table A.
    pub a: Table,
    /// Table B.
    pub b: Table,
    /// Full driver configuration, fault plan included. Each tenant gets
    /// its own simulated cluster built from this config, so one tenant's
    /// fault plan or job numbering can never leak into another's run.
    pub config: FalconConfig,
    /// The tenant's crowd.
    pub crowd: Arc<dyn Crowd>,
    /// Scheduling priority (higher = served first under
    /// [`Policy::Priority`](crate::sched::Policy)).
    pub priority: i32,
    /// Virtual submission time (default: all jobs arrive at `t = 0`).
    pub arrival: Duration,
    /// `> 0` runs the accuracy-driven workflow with this outer-round cap
    /// instead of a single pass.
    pub workflow_rounds: usize,
    /// Optional per-tenant crash-recovery journal path.
    pub journal: Option<PathBuf>,
    /// Optional virtual-clock deadline, relative to [`JobSpec::arrival`].
    /// The scheduler cancels the job at the first round boundary past it.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A job with default service metadata (priority 0, arrival 0,
    /// single-pass, no journal).
    pub fn new(
        name: impl Into<String>,
        a: Table,
        b: Table,
        config: FalconConfig,
        crowd: Arc<dyn Crowd>,
    ) -> Self {
        Self {
            name: name.into(),
            a,
            b,
            config,
            crowd,
            priority: 0,
            arrival: Duration::ZERO,
            workflow_rounds: 0,
            journal: None,
            deadline: None,
        }
    }

    /// Set the scheduling priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Set the virtual arrival time.
    pub fn with_arrival(mut self, arrival: Duration) -> Self {
        self.arrival = arrival;
        self
    }

    /// Run the accuracy-driven workflow with this many outer rounds.
    pub fn with_workflow(mut self, rounds: usize) -> Self {
        self.workflow_rounds = rounds;
        self
    }

    /// Attach a crash-recovery journal at `path`.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Set a virtual-clock deadline relative to arrival.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Run this job alone, ungated — the reference a tenant's shared-pool
    /// report must match bit-for-bit. Uses the same journal handling as
    /// the gated path.
    ///
    /// Note that stateful simulated crowds advance their RNG as they
    /// answer; for identity comparisons construct a *fresh* crowd with
    /// the same seed rather than reusing one that already served.
    pub fn run_solo(&self) -> Result<RunReport, FalconError> {
        let falcon = Falcon::new(self.config.clone());
        if self.workflow_rounds > 0 {
            match &self.journal {
                Some(p) => falcon
                    .try_run_workflow_resumable(
                        &self.a,
                        &self.b,
                        self.crowd.clone(),
                        self.workflow_rounds,
                        p,
                    )
                    .map(|(r, _)| r),
                None => falcon
                    .try_run_workflow(&self.a, &self.b, self.crowd.clone(), self.workflow_rounds)
                    .map(|(r, _)| r),
            }
        } else {
            match &self.journal {
                Some(p) => falcon.try_run_resumable(&self.a, &self.b, self.crowd.clone(), p),
                None => falcon.try_run(&self.a, &self.b, self.crowd.clone()),
            }
        }
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("a", &self.a.len())
            .field("b", &self.b.len())
            .field("crowd", &self.crowd.name())
            .field("priority", &self.priority)
            .field("arrival", &self.arrival)
            .field("workflow_rounds", &self.workflow_rounds)
            .field("journal", &self.journal)
            .field("deadline", &self.deadline)
            .finish()
    }
}
