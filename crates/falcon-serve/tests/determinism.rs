//! Scheduler determinism: the same job set, seed and policy must produce
//! identical stage interleavings, ledgers and aggregate counters at any
//! scheduler thread count. The permit count throttles real CPU use only;
//! every virtual-time quantity comes out of the lockstep rounds.

use falcon_core::driver::FalconConfig;
use falcon_core::plan::PlanKind;
use falcon_crowd::sim::{GroundTruth, RandomWorkerCrowd};
use falcon_dataflow::ClusterConfig;
use falcon_serve::{serve, serve_fingerprint, JobSpec, Policy, ServeConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn em_config(seed: u64) -> FalconConfig {
    FalconConfig {
        sample_size: 200,
        sample_fanout: 20,
        cluster: ClusterConfig::small(4),
        force_plan: Some(PlanKind::BlockAndMatch),
        seed,
        ..FalconConfig::default()
    }
}

/// Three tenants over the products dataset with distinct data seeds,
/// priorities and arrivals. Crowds are constructed fresh per call so
/// every invocation starts from the same RNG state.
fn make_jobs(seed: u64) -> Vec<JobSpec> {
    (0..3u64)
        .map(|i| {
            let data = falcon_datagen::generate("products", 0.015, seed.wrapping_add(i));
            let truth = GroundTruth::new(data.truth.iter().copied());
            let crowd = Arc::new(RandomWorkerCrowd::new(truth, 0.05, seed ^ (i + 1)));
            JobSpec::new(
                format!("tenant-{i}"),
                data.a,
                data.b,
                em_config(seed.wrapping_mul(31).wrapping_add(i)),
                crowd,
            )
            .with_priority(i as i32)
            .with_arrival(Duration::from_secs(i * 60))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn outcomes_invariant_across_thread_counts(
        seed in 0u64..1_000,
        policy_idx in 0usize..4,
    ) {
        let policy = [Policy::Fifo, Policy::FairShare, Policy::Priority, Policy::Random]
            [policy_idx];
        let mut prints = Vec::new();
        for threads in [1usize, 4, 8] {
            let cfg = ServeConfig {
                threads,
                policy,
                seed,
                ..ServeConfig::default()
            };
            let rep = serve(make_jobs(seed), &cfg).unwrap();
            prints.push(serve_fingerprint(&rep));
        }
        prop_assert_eq!(&prints[0], &prints[1]);
        prop_assert_eq!(&prints[1], &prints[2]);
    }
}

/// The shared run beats the serial baseline once crowd latency dominates:
/// tenant crowd waits overlap instead of stacking end to end.
#[test]
fn crowd_dominated_workload_masks_across_tenants() {
    let jobs: Vec<JobSpec> = (0..6u64)
        .map(|i| {
            let data = falcon_datagen::generate("products", 0.015, i);
            let truth = GroundTruth::new(data.truth.iter().copied());
            let crowd = Arc::new(
                RandomWorkerCrowd::new(truth, 0.05, i + 1).with_latency(Duration::from_secs(900)),
            );
            JobSpec::new(format!("t{i}"), data.a, data.b, em_config(i), crowd)
        })
        .collect();
    let rep = serve(
        jobs,
        &ServeConfig {
            threads: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for o in &rep.outcomes {
        assert!(o.result.is_ok(), "tenant {} failed", o.name);
    }
    assert!(
        rep.throughput_speedup() >= 2.0,
        "expected ≥2× over serial, got {:.2}× (shared {:?}, serial {:?})",
        rep.throughput_speedup(),
        rep.makespan,
        rep.serial_makespan
    );
    assert!(rep.utilization >= rep.serial_utilization);
}
