//! Service-level fault tolerance: crash-resume identity, admission
//! control, deadlines, quotas, quarantine, elastic pool — and the
//! journal's edge cases (torn tails, stale crowd journals, resume after
//! the final round).

use falcon_core::driver::FalconConfig;
use falcon_core::error::FalconError;
use falcon_core::plan::PlanKind;
use falcon_core::stage::CancelReason;
use falcon_crowd::sim::{GroundTruth, RandomWorkerCrowd, UnreliableCrowd};
use falcon_dataflow::ClusterConfig;
use falcon_serve::chaos::{run_cell, ChaosCell};
use falcon_serve::{
    resume, serve, serve_fingerprint, AdmissionConfig, AdmissionPolicy, JobSpec, Policy, PoolEvent,
    ServeConfig, ServeError, TenantQuota, TenantStatus,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn em_config(seed: u64) -> FalconConfig {
    FalconConfig {
        sample_size: 200,
        sample_fanout: 20,
        cluster: ClusterConfig::small(4),
        force_plan: Some(PlanKind::BlockAndMatch),
        seed,
        ..FalconConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("falcon_serve_ft_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Three journaled tenants with staggered arrivals; a lossy crowd on
/// tenant 1 and a machine fault plan on tenant 0 when the cell injects
/// them. `dir` isolates each run's crowd journals.
fn chaos_jobs(seed: u64, fault_rate: f64, crowd_loss: f64, dir: &Path) -> Vec<JobSpec> {
    std::fs::create_dir_all(dir).unwrap();
    (0..3u64)
        .map(|i| {
            let data = falcon_datagen::generate("products", 0.015, seed.wrapping_add(i));
            let truth = GroundTruth::new(data.truth.iter().copied());
            let base = RandomWorkerCrowd::new(truth, 0.05, seed ^ (i + 1));
            let crowd: Arc<dyn falcon_crowd::Crowd> = if crowd_loss > 0.0 && i == 1 {
                Arc::new(UnreliableCrowd::new(base, crowd_loss, seed ^ 0x5a))
            } else {
                Arc::new(base)
            };
            let mut config = em_config(seed.wrapping_mul(31).wrapping_add(i));
            if fault_rate > 0.0 && i == 0 {
                config.fault = Some(
                    falcon_dataflow::FaultPlan::seeded(seed ^ 0xfa).with_failure_rate(fault_rate),
                );
            }
            JobSpec::new(format!("tenant-{i}"), data.a, data.b, config, crowd)
                .with_priority(i as i32)
                .with_arrival(Duration::from_secs(i * 60))
                .with_journal(dir.join(format!("tenant-{i}.crowd.journal")))
        })
        .collect()
}

/// The fault-free workload most tests use.
fn make_jobs(seed: u64, crowd_loss: f64, dir: &Path) -> Vec<JobSpec> {
    chaos_jobs(seed, 0.0, crowd_loss, dir)
}

// ---------------------------------------------------------------------
// Kill-and-resume identity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Kill the service after any journaled round, resume it, and every
    /// per-tenant report, crowd journal, the service journal and the
    /// aggregate ledger are byte-identical to an uninterrupted run —
    /// with zero re-asked crowd questions — at every thread count and
    /// policy.
    #[test]
    fn kill_and_resume_is_byte_identical(
        seed in 0u64..500,
        policy_idx in 0usize..4,
        kill_round in 1u64..4,
    ) {
        let policy = [Policy::Fifo, Policy::FairShare, Policy::Priority, Policy::Random]
            [policy_idx];
        let dir = scratch(&format!("kr_{seed}_{policy_idx}_{kill_round}"));
        for threads in [1usize, 4, 8] {
            let cell = ChaosCell {
                policy,
                kill_round,
                fault_rate: 0.0,
                crowd_loss: 0.25,
                pool_shrink: 0.0,
                threads,
            };
            let out = run_cell(&cell, &ServeConfig { seed, ..ServeConfig::default() }, &dir,
                |c, d| chaos_jobs(seed, c.fault_rate, c.crowd_loss, d))
                .unwrap();
            prop_assert!(out.resume_identical, "{}: {:?}", out.cell, out.mismatch);
            prop_assert!(out.service_journal_identical, "{}: service journal", out.cell);
            prop_assert!(out.crowd_journals_identical, "{}: crowd journals", out.cell);
            prop_assert!(
                out.zero_reasked(),
                "{}: {} + {} != {} live questions",
                out.cell,
                out.killed_live_questions,
                out.resumed_live_questions,
                out.ref_live_questions
            );
            prop_assert!(out.replayed_rounds > 0, "{}: nothing replayed", out.cell);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The exhaustive release-mode matrix (all four policies × kill points ×
/// crowd loss × pool shrink × threads); run in CI with `--ignored`.
#[test]
#[ignore]
fn chaos_matrix_exhaustive() {
    let dir = scratch("matrix");
    let cells = falcon_serve::chaos::sweep(
        &[
            Policy::Fifo,
            Policy::FairShare,
            Policy::Priority,
            Policy::Random,
        ],
        &[1, 3],
        &[0.0, 0.05],
        &[0.0, 0.25],
        &[0.0, 0.5],
        // Thread-count invariance is pinned by the kill/resume proptest;
        // one thread count here keeps the 64-cell matrix tractable.
        &[4],
    );
    for cell in &cells {
        let out = run_cell(
            cell,
            &ServeConfig {
                seed: 7,
                ..ServeConfig::default()
            },
            &dir,
            |c, d| chaos_jobs(7, c.fault_rate, c.crowd_loss, d),
        )
        .unwrap();
        assert!(
            out.holds(),
            "cell {} violated resume identity: mismatch={:?} sj={} cj={} reasked={}",
            out.cell,
            out.mismatch,
            out.service_journal_identical,
            out.crowd_journals_identical,
            out.ref_live_questions as i64
                - (out.killed_live_questions + out.resumed_live_questions) as i64
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resume after the final round: the whole run replays from the journals
/// and not a single crowd question is asked live.
#[test]
fn resume_after_final_round_asks_nothing() {
    let dir = scratch("final");
    let cfg = ServeConfig {
        seed: 3,
        threads: 4,
        journal: Some(dir.join("service.journal")),
        ..ServeConfig::default()
    };
    let reference = serve(make_jobs(3, 0.0, &dir), &cfg).unwrap();

    // Fresh identically-seeded jobs over the *same* journals.
    let mut jobs = make_jobs(3, 0.0, &dir);
    let live = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    for job in jobs.iter_mut() {
        job.crowd = Arc::new(falcon_serve::chaos::CountingCrowd::new(
            job.crowd.clone(),
            live.clone(),
        ));
    }
    let resumed = resume(jobs, &cfg).unwrap();
    assert_eq!(
        serve_fingerprint(&reference),
        serve_fingerprint(&resumed),
        "full replay diverged"
    );
    assert_eq!(
        live.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "a fully-journaled resume asked the crowd live questions"
    );
    assert_eq!(resumed.replayed_rounds, reference.rounds);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn service-journal tail (crash mid-round) is dropped on open and
/// the resumed run is still byte-identical.
#[test]
fn resume_with_torn_service_journal_tail() {
    use std::io::Write;
    let dir = scratch("torn");
    let cell = ChaosCell {
        policy: Policy::FairShare,
        kill_round: 2,
        fault_rate: 0.0,
        crowd_loss: 0.0,
        pool_shrink: 0.0,
        threads: 4,
    };
    let cfg = ServeConfig {
        seed: 11,
        ..ServeConfig::default()
    };
    // Run the kill leg manually so we can tear the tail before resuming.
    let kill_dir = dir.join("kill");
    std::fs::create_dir_all(&kill_dir).unwrap();
    let mut kill_cfg = cfg.clone();
    kill_cfg.policy = cell.policy;
    kill_cfg.threads = cell.threads;
    kill_cfg.journal = Some(kill_dir.join("service.journal"));
    kill_cfg.kill_after_rounds = Some(cell.kill_round);
    serve(make_jobs(11, 0.0, &kill_dir), &kill_cfg).unwrap();

    // Crash artifact: the next round group (rounds 0..=2 committed, so
    // the torn group is round 3) with no `end` marker and a half-written
    // final line — exactly what a crash mid-append leaves behind.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(kill_dir.join("service.journal"))
        .unwrap();
    f.write_all(b"round 3\nc 0 42 bogus 1 1 0 0 1\np 0 43 m half")
        .unwrap();
    drop(f);

    // Reference leg, untouched.
    let ref_dir = dir.join("ref");
    std::fs::create_dir_all(&ref_dir).unwrap();
    let mut ref_cfg = kill_cfg.clone();
    ref_cfg.journal = Some(ref_dir.join("service.journal"));
    ref_cfg.kill_after_rounds = None;
    let reference = serve(make_jobs(11, 0.0, &ref_dir), &ref_cfg).unwrap();

    let mut resume_cfg = kill_cfg.clone();
    resume_cfg.kill_after_rounds = None;
    let resumed = resume(make_jobs(11, 0.0, &kill_dir), &resume_cfg).unwrap();
    assert_eq!(serve_fingerprint(&reference), serve_fingerprint(&resumed));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stale per-tenant crowd journal (recorded under a different crowd
/// seed) makes the re-executed schedule diverge from the service journal:
/// resume fails with a typed divergence error instead of silently forking
/// history.
#[test]
fn resume_with_stale_crowd_journal_is_typed_divergence() {
    let dir = scratch("stale");
    let cfg = ServeConfig {
        seed: 5,
        threads: 2,
        ..ServeConfig::default()
    };
    let kill_dir = dir.join("kill");
    std::fs::create_dir_all(&kill_dir).unwrap();
    let mut kill_cfg = cfg.clone();
    kill_cfg.journal = Some(kill_dir.join("service.journal"));
    // Kill late enough that the journaled prefix includes crowd-dependent
    // rounds (crowd waits start around round 4 for this workload) — the
    // stale journal's different answers must show up inside the replay.
    kill_cfg.kill_after_rounds = Some(6);
    serve(make_jobs(5, 0.0, &kill_dir), &kill_cfg).unwrap();

    // Overwrite tenant-0's crowd journal with one recorded under a
    // different crowd seed (same tables, same config).
    let alt_dir = dir.join("alt");
    std::fs::create_dir_all(&alt_dir).unwrap();
    let data = falcon_datagen::generate("products", 0.015, 5);
    let truth = GroundTruth::new(data.truth.iter().copied());
    let alt_crowd = Arc::new(RandomWorkerCrowd::new(truth, 0.05, 0xdead));
    JobSpec::new(
        "tenant-0",
        data.a,
        data.b,
        em_config(5u64.wrapping_mul(31)),
        alt_crowd,
    )
    .with_journal(alt_dir.join("alt.crowd.journal"))
    .run_solo()
    .unwrap();
    std::fs::copy(
        alt_dir.join("alt.crowd.journal"),
        kill_dir.join("tenant-0.crowd.journal"),
    )
    .unwrap();

    let mut resume_cfg = kill_cfg.clone();
    resume_cfg.kill_after_rounds = None;
    match resume(make_jobs(5, 0.0, &kill_dir), &resume_cfg) {
        Err(ServeError::ServiceJournal { tenant, .. }) => {
            assert!(
                !tenant.is_empty(),
                "divergence error must name the implicated tenant"
            );
        }
        Ok(_) => panic!("stale crowd journal resumed without divergence"),
        Err(other) => panic!("expected ServiceJournal divergence, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming against a journal written under a different config digest is
/// refused before any tenant is spawned.
#[test]
fn resume_with_wrong_config_is_refused() {
    let dir = scratch("cfg");
    let cfg = ServeConfig {
        seed: 9,
        journal: Some(dir.join("service.journal")),
        ..ServeConfig::default()
    };
    serve(make_jobs(9, 0.0, &dir), &cfg).unwrap();
    let altered = ServeConfig {
        pool_nodes: cfg.pool_nodes + 7,
        ..cfg.clone()
    };
    match resume(make_jobs(9, 0.0, &dir), &altered) {
        Err(ServeError::ServiceJournal { round, .. }) => assert_eq!(round, 0),
        other => panic!("expected prefix refusal, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Deadlines, quotas, quarantine: isolation
// ---------------------------------------------------------------------

/// Solo reference for one tenant of `make_jobs`.
fn solo_reference(seed: u64, i: usize, dir: &Path) -> falcon_core::driver::RunReport {
    let mut jobs = make_jobs(seed, 0.0, dir);
    jobs.remove(i).run_solo().unwrap()
}

/// A deadline kills exactly the tenant that missed it; every other
/// tenant's bytes match its solo run.
#[test]
fn deadline_cancels_only_that_tenant() {
    let dir = scratch("deadline");
    let solo2 = solo_reference(21, 2, &dir.join("solo"));

    let run_dir = dir.join("run");
    std::fs::create_dir_all(&run_dir).unwrap();
    let mut jobs = make_jobs(21, 0.0, &run_dir);
    // Tenant 0 cannot possibly finish within one virtual second.
    jobs[0].deadline = Some(Duration::from_secs(1));
    let rep = serve(
        jobs,
        &ServeConfig {
            seed: 21,
            threads: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let o0 = &rep.outcomes[0];
    assert_eq!(o0.status, TenantStatus::Deadline);
    assert!(matches!(
        o0.result,
        Err(FalconError::Cancelled {
            reason: CancelReason::Deadline
        })
    ));
    match o0.service_error.as_ref().unwrap() {
        ServeError::DeadlineExceeded { tenant, .. } => assert_eq!(tenant, "tenant-0"),
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    // The cancelled tenant's crowd journal was finalized, not abandoned.
    assert!(run_dir.join("tenant-0.crowd.journal").exists());

    // Tenant 2 is untouched.
    let o2 = &rep.outcomes[2];
    assert_eq!(o2.status, TenantStatus::Ok);
    let r2 = o2.result.as_ref().unwrap();
    assert_eq!(r2.matches, solo2.matches);
    assert_eq!(r2.ledger, solo2.ledger);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stage-count quota sheds the overrunning tenant with a typed error
/// carrying (tenant, round); others are unperturbed.
#[test]
fn stage_quota_sheds_overrunning_tenant() {
    let dir = scratch("quota");
    let solo1 = solo_reference(33, 1, &dir.join("solo"));

    let run_dir = dir.join("run");
    std::fs::create_dir_all(&run_dir).unwrap();
    // The 3-stage cap is far below what any EM run needs, so every
    // tenant trips it — and each must carry its *own* typed error.
    let jobs = make_jobs(33, 0.0, &run_dir);
    let rep = serve(
        jobs,
        &ServeConfig {
            seed: 33,
            threads: 4,
            admission: AdmissionConfig {
                quota: TenantQuota {
                    max_stages: Some(3),
                    node_seconds: None,
                },
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    // Every tenant trips the 3-stage cap: statuses are Shed, errors are
    // typed QuotaExceeded naming the tenant, journals finalized.
    for (i, o) in rep.outcomes.iter().enumerate() {
        assert_eq!(o.status, TenantStatus::Shed, "tenant {i}");
        match o.service_error.as_ref().unwrap() {
            ServeError::QuotaExceeded { tenant, what, .. } => {
                assert_eq!(tenant, &format!("tenant-{i}"));
                assert_eq!(*what, "stages");
            }
            other => panic!("expected QuotaExceeded, got {other}"),
        }
    }

    // And without the quota, the same workload runs clean — proving the
    // quota (not the service) failed them.
    let clean_dir = dir.join("clean");
    std::fs::create_dir_all(&clean_dir).unwrap();
    let rep2 = serve(
        make_jobs(33, 0.0, &clean_dir),
        &ServeConfig {
            seed: 33,
            threads: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let r1 = rep2.outcomes[1].result.as_ref().unwrap();
    assert_eq!(r1.matches, solo1.matches);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A quarantined (erroring) tenant is typed and isolated.
#[test]
fn quarantine_is_typed_and_isolated() {
    use falcon_table::{AttrType, Schema, Table, Value};
    let dir = scratch("quarantine");
    let solo1 = solo_reference(44, 1, &dir.join("solo"));

    let schema = Schema::new([("title", AttrType::Str)]);
    let empty_a = Table::new("a", schema.clone(), Vec::<Vec<Value>>::new());
    let empty_b = Table::new("b", schema, Vec::<Vec<Value>>::new());
    let crowd = Arc::new(RandomWorkerCrowd::new(GroundTruth::new([]), 0.0, 1));
    let broken = JobSpec::new("broken", empty_a, empty_b, em_config(1), crowd);

    let run_dir = dir.join("run");
    std::fs::create_dir_all(&run_dir).unwrap();
    let mut jobs = make_jobs(44, 0.0, &run_dir);
    jobs[0] = broken;
    let rep = serve(
        jobs,
        &ServeConfig {
            seed: 44,
            threads: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let o0 = &rep.outcomes[0];
    assert_eq!(o0.status, TenantStatus::Quarantined);
    match o0.service_error.as_ref().unwrap() {
        ServeError::Quarantined { tenant, cause, .. } => {
            assert_eq!(tenant, "broken");
            assert!(!cause.is_empty());
        }
        other => panic!("expected Quarantined, got {other}"),
    }
    let r1 = rep.outcomes[1].result.as_ref().unwrap();
    assert_eq!(r1.matches, solo1.matches);
    assert_eq!(r1.ledger, solo1.ledger);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/// Overflow beyond the queue bound is rejected typed; queued jobs run to
/// the same bytes once a slot frees.
#[test]
fn admission_rejects_overflow_and_runs_queued_jobs() {
    let dir = scratch("admission");
    let run_dir = dir.join("run");
    std::fs::create_dir_all(&run_dir).unwrap();
    let mut jobs = make_jobs(55, 0.0, &run_dir);
    // Everyone arrives at once so admission order is submission order.
    for j in jobs.iter_mut() {
        j.arrival = Duration::ZERO;
    }
    let rep = serve(
        jobs,
        &ServeConfig {
            seed: 55,
            threads: 4,
            admission: AdmissionConfig {
                policy: AdmissionPolicy::Reject,
                max_active: 1,
                max_queue: 1,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Tenant 0 active, tenant 1 queued (runs after 0), tenant 2 rejected.
    assert_eq!(rep.outcomes[0].status, TenantStatus::Ok);
    assert_eq!(rep.outcomes[1].status, TenantStatus::Ok);
    assert_eq!(rep.outcomes[2].status, TenantStatus::Rejected);
    match rep.outcomes[2].service_error.as_ref().unwrap() {
        ServeError::QueueFull { tenant, .. } => assert_eq!(tenant, "tenant-2"),
        other => panic!("expected QueueFull, got {other}"),
    }
    assert!(matches!(
        rep.outcomes[2].result,
        Err(FalconError::Cancelled {
            reason: CancelReason::Admission
        })
    ));
    // The queued tenant started strictly after the first finished.
    assert!(rep.outcomes[1].finish > rep.outcomes[0].finish);

    // Under shed-lowest-priority the overflow evicts the least important
    // waiter instead of refusing the newcomer.
    let shed_dir = dir.join("shed");
    std::fs::create_dir_all(&shed_dir).unwrap();
    let mut jobs = make_jobs(55, 0.0, &shed_dir);
    for j in jobs.iter_mut() {
        j.arrival = Duration::ZERO;
    }
    // Priorities are 0,1,2: under shed-lowest-priority with queue cap 1,
    // tenant 1 (prio 1) queues, then tenant 2 (prio 2) evicts it.
    let rep = serve(
        jobs,
        &ServeConfig {
            seed: 55,
            threads: 4,
            admission: AdmissionConfig {
                policy: AdmissionPolicy::ShedLowestPriority,
                max_active: 1,
                max_queue: 1,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert_eq!(rep.outcomes[1].status, TenantStatus::Shed);
    assert_eq!(rep.outcomes[2].status, TenantStatus::Ok);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Queue-with-deadline converts overload into deadline cancellations.
#[test]
fn queue_deadline_expires_stalled_waiters() {
    let dir = scratch("qdl");
    let mut jobs = make_jobs(66, 0.0, &dir);
    for j in jobs.iter_mut() {
        j.arrival = Duration::ZERO;
    }
    let rep = serve(
        jobs,
        &ServeConfig {
            seed: 66,
            threads: 4,
            admission: AdmissionConfig {
                policy: AdmissionPolicy::QueueWithDeadline,
                max_active: 1,
                max_queue: 0,
                // One virtual second: any queued job expires before the
                // first tenant finishes.
                queue_deadline: Some(Duration::from_secs(1)),
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert_eq!(rep.outcomes[0].status, TenantStatus::Ok);
    // max_queue 0 = unbounded queue, so jobs 1 and 2 queue *without* an
    // overflow deadline... which means they must run clean.
    assert_eq!(rep.outcomes[1].status, TenantStatus::Ok);
    assert_eq!(rep.outcomes[2].status, TenantStatus::Ok);

    // Bound the queue to force overflow admissions under the deadline.
    let dir2 = scratch("qdl2");
    let mut jobs = make_jobs(66, 0.0, &dir2);
    for j in jobs.iter_mut() {
        j.arrival = Duration::ZERO;
    }
    let rep = serve(
        jobs,
        &ServeConfig {
            seed: 66,
            threads: 4,
            admission: AdmissionConfig {
                policy: AdmissionPolicy::QueueWithDeadline,
                max_active: 1,
                max_queue: 1,
                queue_deadline: Some(Duration::from_secs(1)),
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert_eq!(rep.outcomes[0].status, TenantStatus::Ok);
    assert_eq!(rep.outcomes[1].status, TenantStatus::Ok, "plain queued");
    // Tenant 2 was admitted past the bound under a 1-second queue
    // deadline it cannot meet.
    assert_eq!(rep.outcomes[2].status, TenantStatus::Deadline);
    match rep.outcomes[2].service_error.as_ref().unwrap() {
        ServeError::DeadlineExceeded { tenant, .. } => assert_eq!(tenant, "tenant-2"),
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

// ---------------------------------------------------------------------
// Elastic pool
// ---------------------------------------------------------------------

/// Node loss mid-run slows the service down but changes no tenant's
/// bytes, at every thread count; a later node join speeds it back up.
#[test]
fn pool_shrink_changes_latency_not_bytes() {
    let dir = scratch("elastic");
    let stable = serve(
        make_jobs(77, 0.0, &dir.join("a")),
        &ServeConfig {
            seed: 77,
            threads: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let mut prints = Vec::new();
    for threads in [1usize, 4, 8] {
        let d = dir.join(format!("t{threads}"));
        std::fs::create_dir_all(&d).unwrap();
        let rep = serve(
            make_jobs(77, 0.0, &d),
            &ServeConfig {
                seed: 77,
                threads,
                pool_events: vec![
                    PoolEvent {
                        at: Duration::from_secs(30),
                        delta: -8,
                    },
                    PoolEvent {
                        at: Duration::from_secs(4000),
                        delta: 6,
                    },
                ],
                degraded: falcon_serve::DegradedPolicy {
                    threshold: 0.5,
                    masked_node_cap: 1,
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        for (i, o) in rep.outcomes.iter().enumerate() {
            assert_eq!(o.status, TenantStatus::Ok, "tenant {i} (threads={threads})");
            // Bytes identical to the stable-pool run: capacity only moves
            // virtual time.
            let stable_r = stable.outcomes[i].result.as_ref().unwrap();
            let r = o.result.as_ref().unwrap();
            assert_eq!(r.matches, stable_r.matches, "tenant {i}");
            assert_eq!(r.ledger, stable_r.ledger, "tenant {i}");
        }
        assert!(
            rep.makespan >= stable.makespan,
            "losing 8 of 10 nodes cannot speed the service up"
        );
        prints.push(serve_fingerprint(&rep));
    }
    assert_eq!(prints[0], prints[1]);
    assert_eq!(prints[1], prints[2]);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------

/// When the scheduler fails mid-run (journal divergence here), every
/// parked tenant is unparked with a typed shutdown and joined — the
/// service returns instead of hanging — at 1, 4 and 8 threads.
#[test]
fn scheduler_failure_unparks_all_tenants() {
    for threads in [1usize, 4, 8] {
        let dir = scratch(&format!("shutdown_{threads}"));
        let cfg = ServeConfig {
            seed: 88,
            threads,
            journal: Some(dir.join("service.journal")),
            ..ServeConfig::default()
        };
        serve(make_jobs(88, 0.0, &dir), &cfg).unwrap();

        // Same service journal, different tenant crowd seeds: the
        // schedule diverges while tenants are live and parked.
        let alt_dir = dir.join("alt");
        std::fs::create_dir_all(&alt_dir).unwrap();
        // Same names/arrivals/priorities (so the admission prefix still
        // matches and the run reaches the round loop) but different data
        // and crowd seeds: the schedule must diverge mid-run.
        let alt_jobs = make_jobs(89, 0.0, &alt_dir);
        let started = std::time::Instant::now();
        match resume(alt_jobs, &cfg) {
            Err(ServeError::ServiceJournal { .. }) => {}
            other => panic!("expected divergence, got {other:?}"),
        }
        // All tenant threads were joined: if any were left parked the
        // process would still hold their channels; nothing to observe
        // directly, but the return itself (with every thread joined in
        // shutdown_tenants) is the contract — bound it in wall time.
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "shutdown took pathologically long at {threads} threads"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
