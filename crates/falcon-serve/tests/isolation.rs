//! Per-tenant fault isolation: injecting node loss and crowd loss into
//! tenant A must leave tenant B's report — matches, ledger, crash
//! journal — byte-identical to B running alone, at every scheduler
//! thread count.

use falcon_core::driver::FalconConfig;
use falcon_core::plan::PlanKind;
use falcon_crowd::sim::{GroundTruth, RandomWorkerCrowd, UnreliableCrowd};
use falcon_dataflow::{ClusterConfig, FaultPlan};
use falcon_serve::{serve, JobSpec, Policy, ServeConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn em_config(seed: u64) -> FalconConfig {
    FalconConfig {
        sample_size: 200,
        sample_fanout: 20,
        cluster: ClusterConfig::small(4),
        force_plan: Some(PlanKind::BlockAndMatch),
        seed,
        ..FalconConfig::default()
    }
}

/// Tenant B: a clean job over the products dataset.
fn job_b(journal: Option<PathBuf>) -> JobSpec {
    let data = falcon_datagen::generate("products", 0.02, 11);
    let truth = GroundTruth::new(data.truth.iter().copied());
    let crowd = Arc::new(RandomWorkerCrowd::new(truth, 0.05, 77));
    let mut spec = JobSpec::new("tenant-b", data.a, data.b, em_config(21), crowd);
    if let Some(p) = journal {
        spec = spec.with_journal(p);
    }
    spec
}

/// Tenant A: same shape of job, but with a node-loss fault plan *and* a
/// lossy crowd layered over its workers.
fn job_a_faulty() -> JobSpec {
    let data = falcon_datagen::generate("products", 0.02, 5);
    let truth = GroundTruth::new(data.truth.iter().copied());
    let crowd = Arc::new(UnreliableCrowd::new(
        RandomWorkerCrowd::new(truth, 0.05, 13),
        0.25,
        13,
    ));
    let mut config = em_config(9);
    config.fault = Some(
        FaultPlan::seeded(3)
            .with_failure_rate(0.05)
            .with_node_loss(2, 1),
    );
    JobSpec::new("tenant-a", data.a, data.b, config, crowd)
}

#[test]
fn tenant_b_unperturbed_by_tenant_a_faults() {
    let tmp = std::env::temp_dir().join(format!("falcon_serve_iso_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();

    // Solo reference for tenant B, journaled.
    let solo_journal = tmp.join("solo_b.journal");
    let _ = std::fs::remove_file(&solo_journal);
    let solo = job_b(Some(solo_journal.clone())).run_solo().unwrap();
    let solo_journal_bytes = std::fs::read(&solo_journal).unwrap();
    assert!(!solo.matches.is_empty(), "reference run found no matches");
    assert!(!solo_journal_bytes.is_empty(), "reference journal is empty");

    for threads in [1usize, 4, 8] {
        let b_journal = tmp.join(format!("b_{threads}.journal"));
        let _ = std::fs::remove_file(&b_journal);
        let jobs = vec![job_a_faulty(), job_b(Some(b_journal.clone()))];
        let cfg = ServeConfig {
            threads,
            policy: Policy::FairShare,
            ..ServeConfig::default()
        };
        let rep = serve(jobs, &cfg).unwrap();

        // Tenant A really was perturbed: its fault machinery fired.
        let a = rep.outcomes[0].result.as_ref().unwrap();
        assert!(
            a.faults.retries > 0 || a.faults.node_loss_failures > 0,
            "fault injection did not fire for tenant A (threads={threads})"
        );
        assert!(a.ledger.lost_answers > 0, "crowd loss did not fire");

        // Tenant B is bit-identical to its solo run.
        let b = rep.outcomes[1].result.as_ref().unwrap();
        assert_eq!(
            b.matches, solo.matches,
            "matches diverged (threads={threads})"
        );
        assert_eq!(b.ledger, solo.ledger, "ledger diverged (threads={threads})");
        assert_eq!(b.faults, solo.faults, "fault stats diverged");
        assert_eq!(b.journal_error, solo.journal_error);
        let b_journal_bytes = std::fs::read(&b_journal).unwrap();
        assert_eq!(
            b_journal_bytes, solo_journal_bytes,
            "journal bytes diverged (threads={threads})"
        );
        let _ = std::fs::remove_file(&b_journal);
    }
    let _ = std::fs::remove_file(&solo_journal);
}

/// A tenant whose plan analysis fails (empty inputs) must surface its own
/// error while leaving a concurrent healthy tenant untouched.
#[test]
fn failing_tenant_does_not_abort_others() {
    use falcon_table::{AttrType, Schema, Table};
    let schema = Schema::new([("title", AttrType::Str)]);
    let empty_a = Table::new("a", schema.clone(), Vec::<Vec<falcon_table::Value>>::new());
    let empty_b = Table::new("b", schema, Vec::<Vec<falcon_table::Value>>::new());
    let truth = GroundTruth::new([]);
    let crowd = Arc::new(RandomWorkerCrowd::new(truth, 0.0, 1));
    let broken = JobSpec::new("broken", empty_a, empty_b, em_config(1), crowd);

    let solo = job_b(None).run_solo().unwrap();
    let rep = serve(
        vec![broken, job_b(None)],
        &ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert!(rep.outcomes[0].result.is_err(), "empty job should fail");
    let healthy = rep.outcomes[1].result.as_ref().unwrap();
    assert_eq!(healthy.matches, solo.matches);
    assert_eq!(healthy.ledger, solo.ledger);
}
