//! All six physical implementations of `apply_blocking_rules` — and the
//! Corleone single-machine baseline — must produce *exactly* the same
//! candidate set: the index filters are necessary conditions and the
//! reducers evaluate the exact rule sequence.

use falcon_core::corleone::corleone_blocking;
use falcon_core::features::generate_features;
use falcon_core::indexing::{BuiltIndexes, ConjunctSpecs};
use falcon_core::physical::{self, PhysicalOp};
use falcon_core::rules::{Predicate, Rule, RuleSequence};
use falcon_dataflow::{Cluster, ClusterConfig};
use falcon_datagen::products;
use falcon_forest::SplitOp;
use falcon_table::IdPair;
use falcon_textsim::{SimFunction, Tokenizer};

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::small(4)).with_threads(4)
}

/// Build a realistic rule sequence by hand over the products blocking
/// features: mixed set-sim, exact-match, range, and an unfilterable
/// dissimilarity predicate.
fn fixture() -> (
    falcon_table::Table,
    falcon_table::Table,
    falcon_core::features::FeatureSet,
    RuleSequence,
) {
    let d = products::generate(0.02, 11);
    let lib = generate_features(&d.a, &d.b);
    let find = |sim: SimFunction, attr: &str| {
        lib.blocking
            .features
            .iter()
            .position(|f| f.sim == sim && f.a_attr == attr)
            .unwrap_or_else(|| panic!("missing feature {sim:?} on {attr}"))
    };
    let jac_title = find(SimFunction::Jaccard(Tokenizer::QGram(3)), "title");
    let em_brand = find(SimFunction::ExactMatch, "brand");
    let abs_price = find(SimFunction::AbsDiff, "price");
    let seq = RuleSequence::new(vec![
        // jaccard_3gram(title) <= 0.3 -> drop  (complement filterable)
        Rule {
            predicates: vec![Predicate {
                feature: jac_title,
                op: SplitOp::Le,
                threshold: 0.3,
                nan_is_high: true,
            }],
        },
        // exact_match(brand) <= 0.5 AND abs_diff(price) > 50 -> drop
        Rule {
            predicates: vec![
                Predicate {
                    feature: em_brand,
                    op: SplitOp::Le,
                    threshold: 0.5,
                    nan_is_high: true,
                },
                Predicate {
                    feature: abs_price,
                    op: SplitOp::Gt,
                    threshold: 50.0,
                    nan_is_high: false,
                },
            ],
        },
    ]);
    (d.a, d.b, lib.blocking, seq)
}

#[test]
fn all_physical_operators_agree() {
    let (a, b, features, seq) = fixture();
    let cluster = cluster();
    let conjuncts = ConjunctSpecs::derive(&seq, &features);
    assert!(!conjuncts.filterable().is_empty());
    let mut built = BuiltIndexes::new();
    for spec in conjuncts.all_specs() {
        built.build_spec(&cluster, &a, &spec).expect("build");
    }
    let sels = vec![0.3, 0.5];
    let reference = corleone_blocking(&a, &b, &features, &seq, 1 << 40)
        .unwrap()
        .candidates;
    assert!(!reference.is_empty(), "fixture should keep some candidates");
    assert!(
        reference.len() < a.len() * b.len(),
        "rules should drop pairs"
    );
    for op in [
        PhysicalOp::ApplyAll,
        PhysicalOp::ApplyGreedy,
        PhysicalOp::ApplyConjunct,
        PhysicalOp::ApplyPredicate,
        PhysicalOp::MapSide,
        PhysicalOp::ReduceSplit,
    ] {
        let out = physical::execute(
            op,
            &cluster,
            &a,
            &b,
            &features,
            &seq,
            &conjuncts,
            &built,
            &sels,
            1 << 40,
        )
        .unwrap_or_else(|e| panic!("{op:?} failed: {e}"));
        assert_eq!(
            out.candidates, reference,
            "{op:?} disagrees with the exhaustive baseline"
        );
    }
}

#[test]
fn blocking_preserves_recall() {
    // With missing-is-similar semantics the rules cannot drop pairs with
    // missing values, so recall of this hand-built sequence is high.
    let d = products::generate(0.02, 11);
    let (a, b, features, seq) = fixture();
    let cluster = cluster();
    let conjuncts = ConjunctSpecs::derive(&seq, &features);
    let mut built = BuiltIndexes::new();
    for spec in conjuncts.all_specs() {
        built.build_spec(&cluster, &a, &spec).expect("build");
    }
    let out = physical::execute(
        PhysicalOp::ApplyAll,
        &cluster,
        &a,
        &b,
        &features,
        &seq,
        &conjuncts,
        &built,
        &[0.3, 0.5],
        1 << 40,
    )
    .unwrap();
    let recall = falcon_core::metrics::blocking_recall(&out.candidates, &d.truth);
    assert!(recall > 0.85, "blocking recall {recall}");
    // And shrink the candidate space substantially.
    let full = a.len() * b.len();
    assert!(
        out.candidates.len() < full / 4,
        "{} of {} pairs survived",
        out.candidates.len(),
        full
    );
}

#[test]
fn enumeration_baselines_respect_pair_budget() {
    let (a, b, features, seq) = fixture();
    let cluster = cluster();
    let conjuncts = ConjunctSpecs::derive(&seq, &features);
    let built = BuiltIndexes::new();
    for op in [PhysicalOp::MapSide, PhysicalOp::ReduceSplit] {
        let err = physical::execute(
            op,
            &cluster,
            &a,
            &b,
            &features,
            &seq,
            &conjuncts,
            &built,
            &[0.5, 0.5],
            100,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            falcon_core::physical::BlockingError::TooManyPairs { .. }
        ));
    }
}

#[test]
fn physical_selection_follows_memory_budget() {
    let (a, b, features, seq) = fixture();
    let _ = b;
    let cluster = cluster();
    let conjuncts = ConjunctSpecs::derive(&seq, &features);
    let mut built = BuiltIndexes::new();
    for spec in conjuncts.all_specs() {
        built.build_spec(&cluster, &a, &spec).expect("build");
    }
    let sels = [0.3, 0.9];
    // Plenty of memory, sequence much more selective than any single
    // conjunct -> apply-all.
    let op = physical::select_physical(
        &conjuncts,
        &built,
        &sels,
        0.2,
        1 << 30,
        physical::estimate_table_bytes(&a),
        0.8,
    );
    assert_eq!(op, PhysicalOp::ApplyAll);
    // Sequence selectivity close to best conjunct's -> apply-greedy.
    let op = physical::select_physical(
        &conjuncts,
        &built,
        &sels,
        0.28,
        1 << 30,
        physical::estimate_table_bytes(&a),
        0.8,
    );
    // 0.28 / 0.3 = 0.93 >= 0.8.
    assert_eq!(op, PhysicalOp::ApplyGreedy);
    // No memory at all -> fall through to enumeration.
    let op = physical::select_physical(&conjuncts, &built, &sels, 0.1, 0, usize::MAX, 0.8);
    assert_eq!(op, PhysicalOp::ReduceSplit);
}

#[test]
fn empty_rule_sequence_keeps_everything() {
    let (a, b, features, _) = fixture();
    let cluster = cluster();
    let seq = RuleSequence::default();
    let conjuncts = ConjunctSpecs::derive(&seq, &features);
    let built = BuiltIndexes::new();
    let out = physical::execute(
        PhysicalOp::MapSide,
        &cluster,
        &a,
        &b,
        &features,
        &seq,
        &conjuncts,
        &built,
        &[],
        1 << 40,
    )
    .unwrap();
    assert_eq!(out.candidates.len(), a.len() * b.len());
    let all: Vec<IdPair> = (0..a.len() as u32)
        .flat_map(|x| (0..b.len() as u32).map(move |y| (x, y)))
        .collect();
    assert_eq!(out.candidates, all);
}
