//! Property test for the token-profile layer: feature vectors computed via
//! pre-tokenized profiles (sorted-id kernels + rendered-value cache) must
//! be **bit-identical** to the legacy render-and-tokenize-per-feature
//! path, across random tables, every similarity measure, and both
//! tokenizers — including `Null`s, punctuation-only strings (non-empty
//! string, empty token set), numeric strings with whitespace, and masked
//! (partial-coverage) profile builds.

use falcon_core::features::{Feature, FeatureSet};
use falcon_core::ops::gen_fvs::{gen_fvs_with, tfidf_model_for, FvMode};
use falcon_core::tokens::build_pair_profiles_seq;
use falcon_dataflow::{Cluster, ClusterConfig};
use falcon_table::{AttrType, IdPair, Schema, Table, TableRepr, Value};
use falcon_textsim::{SimContext, SimFunction, Tokenizer};
use proptest::prelude::*;

/// Values that exercise every branch of the missing/empty/numeric logic.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        // Possibly empty, possibly punctuation-only (empty token set).
        "[a-e.!? ]{0,12}".prop_map(Value::str),
        proptest::collection::vec("[a-e]{1,4}", 0..6).prop_map(|v| Value::str(v.join(" "))),
        (-100.0f64..100.0).prop_map(Value::num),
        "[0-9]{1,3}".prop_map(Value::str),
        Just(Value::str(" 42 ")),
    ]
}

/// Every measure, over both attribute correspondences plus a crossed one.
fn all_features() -> FeatureSet {
    use SimFunction::*;
    let sims = [
        ExactMatch,
        Jaccard(Tokenizer::Word),
        Jaccard(Tokenizer::QGram(3)),
        Dice(Tokenizer::Word),
        Dice(Tokenizer::QGram(3)),
        Overlap(Tokenizer::Word),
        Overlap(Tokenizer::QGram(3)),
        Cosine(Tokenizer::Word),
        Cosine(Tokenizer::QGram(3)),
        Levenshtein,
        Jaro,
        JaroWinkler,
        MongeElkan,
        NeedlemanWunsch,
        SmithWaterman,
        SmithWatermanGotoh,
        TfIdf,
        SoftTfIdf,
        AbsDiff,
        RelDiff,
    ];
    let mut fs = FeatureSet::default();
    for (ai, bi) in [(0usize, 0usize), (1, 1), (0, 1)] {
        for sim in sims {
            fs.features.push(Feature {
                name: format!("{}({ai},{bi})", sim.name()),
                a_attr: "x".into(),
                b_attr: "y".into(),
                sim,
                a_idx: ai,
                b_idx: bi,
            });
        }
    }
    fs
}

fn table(name: &str, rows: Vec<(Value, Value)>) -> Table {
    let schema = Schema::new([("x", AttrType::Str), ("y", AttrType::Str)]);
    Table::new(name, schema, rows.into_iter().map(|(x, y)| vec![x, y]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `FeatureSet::vector` with profiles attached equals the string path
    /// bit for bit (NaNs included, via `to_bits`).
    #[test]
    fn vectors_bit_identical_with_profiles(
        a_rows in proptest::collection::vec((value(), value()), 1..6),
        b_rows in proptest::collection::vec((value(), value()), 1..6),
    ) {
        let a = table("a", a_rows);
        let b = table("b", b_rows);
        let fs = all_features();
        let tfidf = tfidf_model_for(&fs, &a, &b);
        let base = match &tfidf {
            Some(m) => SimContext::with_tfidf(m),
            None => SimContext::empty(),
        };
        let profiles = build_pair_profiles_seq(&a, &b, &fs.features);
        let profiled = base.with_profiles(&profiles.a, &profiles.b);
        for at in a.rows() {
            for bt in b.rows() {
                let legacy_fv = fs.vector(at, bt, &base);
                let fast_fv = fs.vector(at, bt, &profiled);
                for (k, (x, y)) in fast_fv.iter().zip(&legacy_fv).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "pair ({},{}) feature {} ({} vs {})",
                        at.id, bt.id, fs.get(k).name, x, y
                    );
                }
            }
        }
    }

    /// `gen_fvs` in TokenProfile mode (masked parallel profile build)
    /// equals Legacy mode bit for bit on a random subset of pairs.
    #[test]
    fn gen_fvs_modes_bit_identical(
        a_rows in proptest::collection::vec((value(), value()), 1..5),
        b_rows in proptest::collection::vec((value(), value()), 1..5),
        salt in 0u32..1000,
    ) {
        let a = table("a", a_rows);
        let b = table("b", b_rows);
        let fs = all_features();
        // Sparse pair subset so part of each table stays unprofiled
        // (exercises the coverage mask).
        let pairs: Vec<IdPair> = (0..a.len() as u32)
            .flat_map(|i| (0..b.len() as u32).map(move |j| (i, j)))
            .filter(|(i, j)| (i * 7 + j * 13 + salt) % 3 != 0)
            .collect();
        let cluster = Cluster::new(ClusterConfig::small(2)).with_threads(2);
        let fast = gen_fvs_with(&cluster, &a, &b, &pairs, &fs, FvMode::TokenProfile)
            .expect("token-profile mode");
        let slow = gen_fvs_with(&cluster, &a, &b, &pairs, &fs, FvMode::Legacy)
            .expect("legacy mode");
        prop_assert_eq!(&fast.fvs.pairs, &slow.fvs.pairs);
        for (pair, (fv_fast, fv_slow)) in
            fast.fvs.pairs.iter().zip(fast.fvs.fvs.iter().zip(&slow.fvs.fvs))
        {
            for (k, (x, y)) in fv_fast.iter().zip(fv_slow).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "pair {:?} feature {} ({} vs {})",
                    pair, fs.get(k).name, x, y
                );
            }
        }
    }

    /// The table representation is invisible to feature generation: the
    /// same pairs scored over columnar and legacy (row) tables produce
    /// bit-identical vectors, in both fv modes.
    #[test]
    fn gen_fvs_is_representation_invariant(
        a_rows in proptest::collection::vec((value(), value()), 1..5),
        b_rows in proptest::collection::vec((value(), value()), 1..5),
    ) {
        let a = table("a", a_rows);
        let b = table("b", b_rows);
        let a_leg = a.to_repr(TableRepr::Legacy);
        let b_leg = b.to_repr(TableRepr::Legacy);
        let a_col = a_leg.to_repr(TableRepr::Columnar);
        let b_col = b_leg.to_repr(TableRepr::Columnar);
        let fs = all_features();
        let pairs: Vec<IdPair> = (0..a.len() as u32)
            .flat_map(|i| (0..b.len() as u32).map(move |j| (i, j)))
            .collect();
        let cluster = Cluster::new(ClusterConfig::small(2)).with_threads(2);
        for mode in [FvMode::TokenProfile, FvMode::Legacy] {
            let col = gen_fvs_with(&cluster, &a_col, &b_col, &pairs, &fs, mode)
                .expect("columnar tables");
            let leg = gen_fvs_with(&cluster, &a_leg, &b_leg, &pairs, &fs, mode)
                .expect("legacy tables");
            prop_assert_eq!(&col.fvs.pairs, &leg.fvs.pairs);
            for (pair, (fv_col, fv_leg)) in
                col.fvs.pairs.iter().zip(col.fvs.fvs.iter().zip(&leg.fvs.fvs))
            {
                for (k, (x, y)) in fv_col.iter().zip(fv_leg).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "mode {:?} pair {:?} feature {} ({} vs {})",
                        mode, pair, fs.get(k).name, x, y
                    );
                }
            }
        }
    }
}
