//! Forcing every signature index into one probe mode via
//! `FALCON_PROBE_MODE` must not change the final candidate pairs: `Gate`
//! shrinks and `Dense` grows the *intermediate* per-predicate candidate
//! sets, but exact rule evaluation downstream makes the surviving pairs
//! identical. A single test per process — the override is read once and
//! cached, so it cannot be varied within one binary.

use falcon_core::corleone::corleone_blocking;
use falcon_core::features::generate_features;
use falcon_core::indexing::{BuiltIndexes, ConjunctSpecs, PreFilterConfig};
use falcon_core::physical::{self, PhysicalOp};
use falcon_core::rules::{Predicate, Rule, RuleSequence};
use falcon_dataflow::{Cluster, ClusterConfig};
use falcon_datagen::products;
use falcon_forest::SplitOp;
use falcon_textsim::{SimFunction, Tokenizer};

#[test]
fn dense_forced_probes_keep_final_candidates_identical() {
    std::env::set_var("FALCON_PROBE_MODE", "dense");
    let d = products::generate(0.02, 11);
    let lib = generate_features(&d.a, &d.b);
    let jac_title = lib
        .blocking
        .features
        .iter()
        .position(|f| f.sim == SimFunction::Jaccard(Tokenizer::Word) && f.a_attr == "title")
        .expect("jaccard(title) feature");
    let seq = RuleSequence::new(vec![Rule {
        predicates: vec![Predicate {
            feature: jac_title,
            op: SplitOp::Le,
            threshold: 0.4,
            nan_is_high: true,
        }],
    }]);
    let reference = corleone_blocking(&d.a, &d.b, &lib.blocking, &seq, 1 << 40)
        .unwrap()
        .candidates;
    assert!(!reference.is_empty());
    let cluster = Cluster::new(ClusterConfig::small(4)).with_threads(4);
    let conjuncts =
        ConjunctSpecs::derive(&seq, &lib.blocking).with_signatures(&PreFilterConfig::default());
    let mut built = BuiltIndexes::new();
    for spec in conjuncts.all_specs() {
        built.build_spec(&cluster, &d.a, &spec).expect("build");
    }
    for op in [PhysicalOp::ApplyAll, PhysicalOp::ApplyPredicate] {
        let out = physical::execute(
            op,
            &cluster,
            &d.a,
            &d.b,
            &lib.blocking,
            &seq,
            &conjuncts,
            &built,
            &[0.3],
            1 << 40,
        )
        .unwrap_or_else(|e| panic!("{op:?} failed: {e}"));
        assert_eq!(
            out.candidates, reference,
            "{op:?} under forced-dense probing disagrees with baseline"
        );
        // The forced mode is visible in the recorded plan.
        assert!(out
            .blocking
            .conjuncts
            .iter()
            .any(|c| c.modes.iter().any(|m| m == "dense")));
    }
}
