//! Pre-flight gate tests: `Falcon::try_run` must reject statically
//! malformed configurations as [`FalconError::Plan`] *before* issuing any
//! MapReduce job or crowd question.

use falcon_core::analyze::PlanAnalysisError;
use falcon_core::driver::{Falcon, FalconConfig, ForcedFilter};
use falcon_core::error::FalconError;
use falcon_core::features::generate_features;
use falcon_core::plan::PlanKind;
use falcon_crowd::sim::{GroundTruth, OracleCrowd};
use falcon_crowd::Crowd;
use falcon_dataflow::ClusterConfig;
use falcon_datagen::products;

fn small_config() -> FalconConfig {
    FalconConfig {
        cluster: ClusterConfig::small(4),
        sample_size: 2_000,
        sample_fanout: 20,
        ..FalconConfig::default()
    }
}

/// A crowd that panics on contact: proves the gate fires before any
/// crowdsourcing starts.
struct UnreachableCrowd;

impl Crowd for UnreachableCrowd {
    fn answer(&self, _pair: falcon_table::IdPair) -> bool {
        panic!("pre-flight gate must reject the run before the crowd is asked")
    }
    fn latency_per_round(&self) -> std::time::Duration {
        std::time::Duration::ZERO
    }
    fn cost_per_answer(&self) -> f64 {
        0.0
    }
    fn name(&self) -> &str {
        "unreachable"
    }
}

#[test]
fn malformed_operator_config_is_rejected_before_the_crowd() {
    let d = products::generate(0.05, 3);
    let cfg = FalconConfig {
        sample_fanout: 1, // y must be >= 2
        ..small_config()
    };
    let err = Falcon::new(cfg)
        .try_run(&d.a, &d.b, UnreachableCrowd)
        .expect_err("fan-out 1 must be rejected");
    let FalconError::Plan(errors) = err else {
        panic!("expected FalconError::Plan, got {err:?}");
    };
    assert!(errors.iter().any(|e| matches!(
        e,
        PlanAnalysisError::InvalidOperatorConfig {
            op: "sample_pairs",
            field: "sample_fanout",
            ..
        }
    )));
}

#[test]
fn infeasible_forced_plan_is_rejected_before_the_crowd() {
    let d = products::generate(0.05, 3);
    let cfg = FalconConfig {
        force_plan: Some(PlanKind::MatchOnly),
        max_pairs: 10,
        ..small_config()
    };
    let err = Falcon::new(cfg)
        .try_run(&d.a, &d.b, UnreachableCrowd)
        .expect_err("over-budget match-only plan must be rejected");
    assert!(matches!(err, FalconError::Plan(ref errors)
        if errors.iter().any(|e| matches!(e, PlanAnalysisError::PairBudgetExceeded { .. }))));
}

#[test]
fn zero_cluster_is_rejected_by_the_workflow_entry_point_too() {
    let d = products::generate(0.05, 3);
    let mut cfg = small_config();
    cfg.cluster.nodes = 0;
    let err = Falcon::new(cfg)
        .try_run_workflow(&d.a, &d.b, UnreachableCrowd, 2)
        .expect_err("zero-node cluster must be rejected");
    assert!(matches!(err, FalconError::Plan(ref errors)
        if errors.contains(&PlanAnalysisError::InvalidClusterConfig { field: "nodes" })));
}

#[test]
fn recall_unsafe_forced_filter_is_rejected_before_the_crowd() {
    // The exact configuration falcon-index/tests/lossless.rs would catch
    // dynamically (a set-similarity filter with a non-positive threshold
    // prunes zero-overlap pairs that still satisfy `sim > t`) — here it
    // must be refused statically, before any job or crowd question.
    let d = products::generate(0.05, 3);
    let blocking = generate_features(&d.a, &d.b).blocking;
    let jac = blocking
        .features
        .iter()
        .position(|f| matches!(f.sim, falcon_textsim::SimFunction::Jaccard(_)))
        .expect("jaccard blocking feature");
    let cfg = FalconConfig {
        force_filters: vec![ForcedFilter::for_feature(&blocking, jac, -0.5).expect("in range")],
        ..small_config()
    };
    let err = Falcon::new(cfg)
        .try_run(&d.a, &d.b, UnreachableCrowd)
        .expect_err("recall-unsafe forced filter must be rejected");
    let FalconError::Plan(errors) = err else {
        panic!("expected FalconError::Plan, got {err:?}");
    };
    assert!(
        errors.iter().any(
            |e| matches!(e, PlanAnalysisError::UnsafeFilter { feature, .. } if *feature == jac)
        ),
        "{errors:?}"
    );
    // The rendered error names the failed obligation.
    assert!(
        errors.iter().any(|e| e.to_string().contains("obligation")),
        "{errors:?}"
    );
}

#[test]
fn recall_safe_forced_filter_passes_the_gate_and_stays_lossless() {
    // A weaker-threshold override is a provably safe substitution: the
    // run must complete and still find matches.
    let d = products::generate(0.05, 3);
    let blocking = generate_features(&d.a, &d.b).blocking;
    let jac = blocking
        .features
        .iter()
        .position(|f| matches!(f.sim, falcon_textsim::SimFunction::Jaccard(_)))
        .expect("jaccard blocking feature");
    let cfg = FalconConfig {
        force_filters: vec![ForcedFilter::for_feature(&blocking, jac, 0.05).expect("in range")],
        ..small_config()
    };
    let truth = GroundTruth::new(d.truth.iter().copied());
    let report = Falcon::new(cfg)
        .try_run(&d.a, &d.b, OracleCrowd::new(truth))
        .expect("safe forced filter must pass the gate and run");
    assert!(!report.matches.is_empty());
}

#[test]
fn well_formed_run_still_succeeds_through_try_run() {
    let d = products::generate(0.05, 3);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let report = Falcon::new(small_config())
        .try_run(&d.a, &d.b, OracleCrowd::new(truth))
        .expect("valid config must pass the gate and run");
    assert!(!report.matches.is_empty());
}
