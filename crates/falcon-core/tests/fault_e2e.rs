//! End-to-end fault-injection tests: the load-bearing invariant is that a
//! seeded fault plan changes *when* work happens (retries, backoff,
//! stragglers, a lost node) but never *what* is computed — the matched
//! pairs are bit-identical to a fault-free run.

use falcon_core::driver::{Falcon, FalconConfig};
use falcon_core::plan::PlanKind;
use falcon_crowd::sim::{GroundTruth, RandomWorkerCrowd};
use falcon_dataflow::{ClusterConfig, FaultPlan};
use falcon_datagen::citations;

fn config(fault: Option<FaultPlan>) -> FalconConfig {
    FalconConfig {
        cluster: ClusterConfig::small(4),
        sample_size: 4_000,
        sample_fanout: 20,
        max_pairs: 20_000_000,
        force_plan: Some(PlanKind::BlockAndMatch),
        fault,
        ..FalconConfig::default()
    }
}

#[test]
fn heavy_faults_leave_the_matched_pairs_bit_identical() {
    let d = citations::generate(0.0015, 3);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let crowd = || RandomWorkerCrowd::new(truth.clone(), 0.05, 42);

    let clean = Falcon::new(config(None)).run(&d.a, &d.b, crowd());
    assert_eq!(clean.faults, Default::default(), "no plan, no faults");

    // 30% of attempts fail, 10% straggle (speculation on), and node 0
    // dies during job 1 — the acceptance scenario of the fault model.
    // (Node 0 always hosts task 0, so the loss is guaranteed to hit.)
    let plan = FaultPlan::seeded(7)
        .with_failure_rate(0.3)
        .with_straggler_rate(0.1)
        .with_node_loss(1, 0)
        .with_max_attempts(8);
    let faulty = Falcon::new(config(Some(plan))).run(&d.a, &d.b, crowd());

    assert_eq!(
        faulty.matches, clean.matches,
        "faults must not change output"
    );
    assert_eq!(faulty.candidate_size, clean.candidate_size);
    assert_eq!(faulty.ledger, clean.ledger, "crowd spend is untouched");

    // Per-conjunct probe counters sum per-task deltas over a fixed task
    // set, so retries/stragglers/node loss must not move them either, and
    // each conjunct's buckets account for every examined probe.
    assert_eq!(
        faulty.blocking, clean.blocking,
        "probe counters are schedule-independent"
    );
    if let Some(bs) = &clean.blocking {
        for c in &bs.conjuncts {
            assert_eq!(
                c.pairs_examined,
                c.pruned_by_signature + c.pruned_by_exact + c.survived,
                "conjunct {} counters do not balance",
                c.conjunct
            );
        }
    }

    // The report carries the run-wide fault accounting.
    let f = &faulty.faults;
    assert!(f.retries > 0, "{f:?}");
    assert!(f.node_loss_failures > 0, "{f:?}");
    assert!(f.speculative > 0, "{f:?}");
    assert!(f.attempts > f.retries, "{f:?}");
    assert!(f.time_lost > std::time::Duration::ZERO, "{f:?}");
}

#[test]
fn fault_injected_runs_are_reproducible_for_a_fixed_seed() {
    let d = citations::generate(0.001, 5);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let plan = FaultPlan::seeded(99)
        .with_failure_rate(0.2)
        .with_straggler_rate(0.2);
    let run = || {
        Falcon::new(config(Some(plan.clone()))).run(
            &d.a,
            &d.b,
            RandomWorkerCrowd::new(truth.clone(), 0.05, 8),
        )
    };
    let (r1, r2) = (run(), run());
    assert_eq!(r1.matches, r2.matches);
    assert_eq!(r1.blocking, r2.blocking);
    // The fault *schedule* is seed-deterministic; `time_lost` is derived
    // from measured task durations and so varies run to run.
    let counters = |r: &falcon_core::driver::RunReport| {
        let f = r.faults;
        (
            f.attempts,
            f.retries,
            f.speculative,
            f.speculative_wins,
            f.node_loss_failures,
        )
    };
    assert_eq!(counters(&r1), counters(&r2));
}

#[test]
fn faults_inflate_simulated_machine_time() {
    let d = citations::generate(0.001, 6);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let crowd = || RandomWorkerCrowd::new(truth.clone(), 0.0, 4);
    let clean = Falcon::new(config(None)).run(&d.a, &d.b, crowd());
    // Retries with a long backoff dominate the (tiny) real task times.
    let mut plan = FaultPlan::seeded(13)
        .with_failure_rate(0.4)
        .with_max_attempts(10);
    plan.backoff_base = std::time::Duration::from_secs(1);
    let faulty = Falcon::new(config(Some(plan))).run(&d.a, &d.b, crowd());
    assert_eq!(faulty.matches, clean.matches);
    assert!(
        faulty.machine_time() > clean.machine_time(),
        "faulty {:?} <= clean {:?}",
        faulty.machine_time(),
        clean.machine_time()
    );
}
