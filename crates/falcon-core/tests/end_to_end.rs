//! End-to-end driver tests: the full Figure 3 plans on synthetic datasets
//! with simulated crowds.

use falcon_core::driver::{Falcon, FalconConfig};
use falcon_core::optimizer::OptFlags;
use falcon_core::plan::PlanKind;
use falcon_crowd::session::paper_cost_cap;
use falcon_crowd::sim::{GroundTruth, OracleCrowd, RandomWorkerCrowd};
use falcon_dataflow::ClusterConfig;
use falcon_datagen::{products, songs};

fn small_config() -> FalconConfig {
    FalconConfig {
        cluster: ClusterConfig::small(4),
        sample_size: 4_000,
        sample_fanout: 20,
        max_pairs: 20_000_000,
        ..FalconConfig::default()
    }
}

#[test]
fn block_and_match_reaches_high_f1_with_oracle() {
    // The paper's Products result is P 90.9 / R 74.5 / F1 81.9 — its
    // hardest dataset. We assert the same shape at reduced scale.
    let d = products::generate(0.05, 5);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let mut cfg = small_config();
    cfg.sample_size = 10_000;
    cfg.force_plan = Some(PlanKind::BlockAndMatch);
    let report = Falcon::new(cfg).run(&d.a, &d.b, OracleCrowd::new(truth));
    let q = report.quality(&d.truth);
    assert!(
        q.f1 > 0.75,
        "F1 = {:.3} (P {:.3} R {:.3})",
        q.f1,
        q.precision,
        q.recall
    );
    // Blocking actually pruned the space.
    let cand = report.candidate_size.unwrap();
    assert!(cand < d.a.len() * d.b.len() / 4, "{cand} candidates");
    assert!(report.rules_extracted > 0);
    assert_eq!(report.plan, PlanKind::BlockAndMatch);
    assert!(report.physical.is_some());
}

#[test]
fn match_only_plan_works_on_tiny_tables() {
    let d = products::generate(0.004, 6);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let mut cfg = small_config();
    cfg.force_plan = Some(PlanKind::MatchOnly);
    let report = Falcon::new(cfg).run(&d.a, &d.b, OracleCrowd::new(truth));
    assert_eq!(report.plan, PlanKind::MatchOnly);
    assert!(report.candidate_size.is_none());
    let q = report.quality(&d.truth);
    assert!(q.f1 > 0.7, "F1 = {:.3}", q.f1);
}

#[test]
fn noisy_crowd_degrades_gracefully() {
    let d = songs::generate(0.002, 7);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let mut cfg = small_config();
    cfg.force_plan = Some(PlanKind::BlockAndMatch);
    let report = Falcon::new(cfg).run(&d.a, &d.b, RandomWorkerCrowd::new(truth, 0.05, 99));
    let q = report.quality(&d.truth);
    assert!(q.f1 > 0.6, "F1 = {:.3} under 5% crowd error", q.f1);
}

#[test]
fn masking_never_changes_matches() {
    let d = products::generate(0.015, 8);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let mut on = small_config();
    on.force_plan = Some(PlanKind::BlockAndMatch);
    on.opt = OptFlags::default();
    // Masked pair selection approximates AL (the paper accepts that), so
    // for exact-output comparison keep O3 off and compare O1+O2 vs none.
    on.opt.mask_pair_selection = false;
    let mut off = on.clone();
    off.opt = OptFlags::none();
    let r_on = Falcon::new(on).run(&d.a, &d.b, OracleCrowd::new(truth.clone()));
    let r_off = Falcon::new(off).run(&d.a, &d.b, OracleCrowd::new(truth));
    assert_eq!(r_on.matches, r_off.matches);
    assert_eq!(r_on.candidate_size, r_off.candidate_size);
    // Optimizations reduce (or keep equal) unmasked machine time.
    assert!(r_on.unmasked_machine_time() <= r_off.unmasked_machine_time());
}

#[test]
fn crowd_cost_stays_under_cap() {
    let d = products::generate(0.01, 9);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let mut cfg = small_config();
    cfg.force_plan = Some(PlanKind::BlockAndMatch);
    let report = Falcon::new(cfg).run(&d.a, &d.b, RandomWorkerCrowd::new(truth, 0.05, 3));
    assert!(
        report.ledger.cost <= paper_cost_cap(),
        "{}",
        report.ledger.cost
    );
    assert!(report.ledger.questions > 0);
    // Crowd time dominates totals (the paper's structure).
    assert!(report.crowd_time() > report.unmasked_machine_time());
}

#[test]
fn report_times_are_consistent() {
    let d = products::generate(0.01, 10);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let mut cfg = small_config();
    cfg.force_plan = Some(PlanKind::BlockAndMatch);
    let report = Falcon::new(cfg).run(&d.a, &d.b, OracleCrowd::new(truth));
    assert_eq!(
        report.total_time(),
        report.crowd_time() + report.unmasked_machine_time()
    );
    assert!(report.machine_time() >= report.unmasked_machine_time());
    let ops = report.op_times();
    assert!(ops.contains_key("al_matcher_b"));
    assert!(ops.contains_key("apply_block_rules"));
}
