//! Property-based tests for the core rule machinery: DNF→CNF exactness,
//! simplification soundness, bitmap coverage calculus and timeline
//! masking arithmetic.

use falcon_core::ops::bitmap::Bitmap;
use falcon_core::rules::{Predicate, Rule, RuleSequence};
use falcon_core::timeline::Timeline;
use falcon_forest::SplitOp;
use proptest::prelude::*;
use std::time::Duration;

/// `nan_is_high` is a per-*feature* property (it encodes the feature's
/// orientation), so the generator draws one orientation vector per case
/// and every predicate on feature `f` shares `orient[f]`.
fn predicate_strategy(arity: usize) -> impl Strategy<Value = (usize, SplitOp, f64)> {
    (
        0..arity,
        prop_oneof![Just(SplitOp::Le), Just(SplitOp::Gt)],
        0.0f64..1.0,
    )
}

fn orient_strategy(arity: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), arity..=arity)
}

fn build_rule(parts: Vec<(usize, SplitOp, f64)>, orient: &[bool]) -> Rule {
    Rule {
        predicates: parts
            .into_iter()
            .map(|(feature, op, threshold)| Predicate {
                feature,
                op,
                threshold,
                nan_is_high: orient[feature],
            })
            .collect(),
    }
}

fn rule_strategy(arity: usize) -> impl Strategy<Value = Rule> {
    (
        proptest::collection::vec(predicate_strategy(arity), 1..4),
        orient_strategy(arity),
    )
        .prop_map(|(parts, orient)| build_rule(parts, &orient))
}

fn seq_strategy(arity: usize) -> impl Strategy<Value = RuleSequence> {
    (
        proptest::collection::vec(
            proptest::collection::vec(predicate_strategy(arity), 1..4),
            0..4,
        ),
        orient_strategy(arity),
    )
        .prop_map(|(ruleparts, orient)| {
            RuleSequence::new(
                ruleparts
                    .into_iter()
                    .map(|parts| build_rule(parts, &orient))
                    .collect(),
            )
        })
}

/// Feature vectors with occasional NaN (missing) entries.
fn fv_strategy(arity: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![4 => (0.0f64..1.0).boxed(), 1 => Just(f64::NAN).boxed()],
        arity..=arity,
    )
}

const ARITY: usize = 4;

proptest! {
    /// The positive CNF rule is satisfied exactly when the negative rule
    /// sequence keeps the pair — including on missing values.
    #[test]
    fn cnf_is_exact_complement(
        seq in seq_strategy(ARITY),
        fvs in proptest::collection::vec(fv_strategy(ARITY), 1..30),
    ) {
        let cnf = seq.to_cnf();
        for fv in &fvs {
            prop_assert_eq!(seq.keeps(fv), cnf.satisfied(fv), "fv = {:?}", fv);
        }
    }

    /// Predicate simplification never changes rule semantics.
    #[test]
    fn simplification_preserves_semantics(
        rule in rule_strategy(ARITY),
        fvs in proptest::collection::vec(fv_strategy(ARITY), 1..30),
    ) {
        let simplified = rule.simplified();
        for fv in &fvs {
            prop_assert_eq!(rule.fires(fv), simplified.fires(fv), "fv = {:?}", fv);
        }
    }

    /// Complementing a predicate twice is the identity, and a predicate
    /// and its complement never agree.
    #[test]
    fn complement_involution(
        parts in proptest::collection::vec(predicate_strategy(ARITY), 1..2),
        orient in orient_strategy(ARITY),
        fvs in proptest::collection::vec(fv_strategy(ARITY), 1..30),
    ) {
        let p = build_rule(parts, &orient).predicates[0];
        prop_assert_eq!(p.complement().complement(), p);
        for fv in &fvs {
            prop_assert_ne!(p.eval(fv), p.complement().eval(fv), "fv = {:?}", fv);
        }
    }

    /// A rule never fires on a pair whose referenced features are all
    /// missing *in its firing direction*: a fully-NaN vector can only fire
    /// a rule if every predicate's missing-semantics allows it; with
    /// similarity-oriented Le predicates it never does.
    #[test]
    fn missing_never_fires_similarity_le_rules(
        thresholds in proptest::collection::vec(0.0f64..1.0, 1..4),
    ) {
        let rule = Rule {
            predicates: thresholds
                .iter()
                .enumerate()
                .map(|(i, &t)| Predicate {
                    feature: i % ARITY,
                    op: SplitOp::Le,
                    threshold: t,
                    nan_is_high: true,
                })
                .collect(),
        };
        let all_missing = vec![f64::NAN; ARITY];
        prop_assert!(!rule.fires(&all_missing));
    }

    /// Bitmap OR-calculus equals brute-force coverage of a sequence.
    #[test]
    fn bitmap_union_equals_bruteforce(
        seq in seq_strategy(ARITY).prop_filter("nonempty", |s| !s.is_empty()),
        fvs in proptest::collection::vec(fv_strategy(ARITY), 1..60),
    ) {
        // Per-rule bitmaps.
        let mut union = Bitmap::zeros(fvs.len());
        for rule in &seq.rules {
            let mut bm = Bitmap::zeros(fvs.len());
            for (i, fv) in fvs.iter().enumerate() {
                if rule.fires(fv) {
                    bm.set(i);
                }
            }
            union.or_with(&bm);
        }
        // Sequence coverage = OR of rule coverages.
        for (i, fv) in fvs.iter().enumerate() {
            prop_assert_eq!(union.get(i), !seq.keeps(fv), "i = {}", i);
        }
    }

    /// Timeline arithmetic: total = crowd + unmasked; unmasked <= machine;
    /// masking never increases any of the three.
    #[test]
    fn timeline_arithmetic(ops in proptest::collection::vec((0u8..3, 1u64..1000), 1..40)) {
        let mut t = Timeline::new();
        for (kind, ms) in ops {
            let d = Duration::from_millis(ms);
            match kind {
                0 => t.crowd("c", d),
                1 => t.machine("m", d),
                _ => {
                    t.masked_machine("x", d);
                }
            }
        }
        prop_assert_eq!(t.total_time(), t.crowd_time() + t.unmasked_machine_time());
        prop_assert!(t.unmasked_machine_time() <= t.machine_time());
        let by_op: Duration = t.by_operator().values().sum();
        prop_assert!(by_op <= t.crowd_time() + t.machine_time());
    }
}
