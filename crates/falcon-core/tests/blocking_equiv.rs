//! The signature pre-filter must be invisible in the final output: for
//! every pre-filter width — and with the pre-filter disabled — the
//! candidate pairs surviving `apply_blocking_rules` are byte-identical to
//! the exhaustive single-machine baseline, across operators and thread
//! counts. The pre-filter may only change *how much work* the probes do,
//! which the per-conjunct blocking counters account for exactly.

use falcon_core::corleone::corleone_blocking;
use falcon_core::features::generate_features;
use falcon_core::indexing::{BuiltIndexes, ConjunctSpecs, PreFilterConfig};
use falcon_core::physical::{self, PhysicalOp};
use falcon_core::rules::{Predicate, Rule, RuleSequence};
use falcon_dataflow::{Cluster, ClusterConfig};
use falcon_datagen::products;
use falcon_forest::SplitOp;
use falcon_textsim::{SimFunction, Tokenizer};

fn fixture() -> (
    falcon_table::Table,
    falcon_table::Table,
    falcon_core::features::FeatureSet,
    RuleSequence,
) {
    let d = products::generate(0.02, 11);
    let lib = generate_features(&d.a, &d.b);
    let find = |sim: SimFunction, attr: &str| {
        lib.blocking
            .features
            .iter()
            .position(|f| f.sim == sim && f.a_attr == attr)
            .unwrap_or_else(|| panic!("missing feature {sim:?} on {attr}"))
    };
    let jac_title = find(SimFunction::Jaccard(Tokenizer::Word), "title");
    let em_brand = find(SimFunction::ExactMatch, "brand");
    let abs_price = find(SimFunction::AbsDiff, "price");
    let seq = RuleSequence::new(vec![
        Rule {
            predicates: vec![Predicate {
                feature: jac_title,
                op: SplitOp::Le,
                threshold: 0.4,
                nan_is_high: true,
            }],
        },
        Rule {
            predicates: vec![
                Predicate {
                    feature: em_brand,
                    op: SplitOp::Le,
                    threshold: 0.5,
                    nan_is_high: true,
                },
                Predicate {
                    feature: abs_price,
                    op: SplitOp::Gt,
                    threshold: 50.0,
                    nan_is_high: false,
                },
            ],
        },
    ]);
    (d.a, d.b, lib.blocking, seq)
}

fn run(
    op: PhysicalOp,
    threads: usize,
    a: &falcon_table::Table,
    b: &falcon_table::Table,
    features: &falcon_core::features::FeatureSet,
    seq: &RuleSequence,
    prefilter: &PreFilterConfig,
) -> physical::BlockingOutput {
    let cluster = Cluster::new(ClusterConfig::small(threads)).with_threads(threads);
    let conjuncts = ConjunctSpecs::derive(seq, features).with_signatures(prefilter);
    let mut built = BuiltIndexes::new();
    for spec in conjuncts.all_specs() {
        built.build_spec(&cluster, a, &spec).expect("build");
    }
    physical::execute(
        op,
        &cluster,
        a,
        b,
        features,
        seq,
        &conjuncts,
        &built,
        &[0.3, 0.5],
        1 << 40,
    )
    .unwrap_or_else(|e| panic!("{op:?} failed: {e}"))
}

#[test]
fn prefilter_widths_never_change_final_candidates() {
    let (a, b, features, seq) = fixture();
    let reference = corleone_blocking(&a, &b, &features, &seq, 1 << 40)
        .unwrap()
        .candidates;
    assert!(!reference.is_empty());
    assert!(reference.len() < a.len() * b.len());
    let configs = [
        PreFilterConfig {
            enabled: false,
            words: 0,
        },
        PreFilterConfig {
            enabled: true,
            words: 1,
        },
        PreFilterConfig::default(),
        PreFilterConfig {
            enabled: true,
            words: 8,
        },
    ];
    for prefilter in &configs {
        for op in [
            PhysicalOp::ApplyAll,
            PhysicalOp::ApplyGreedy,
            PhysicalOp::ApplyConjunct,
            PhysicalOp::ApplyPredicate,
        ] {
            let out = run(op, 4, &a, &b, &features, &seq, prefilter);
            assert_eq!(
                out.candidates, reference,
                "{op:?} with prefilter {prefilter:?} disagrees with baseline"
            );
        }
    }
}

#[test]
fn final_candidates_stable_across_thread_counts() {
    let (a, b, features, seq) = fixture();
    let prefilter = PreFilterConfig::default();
    let reference = run(PhysicalOp::ApplyAll, 1, &a, &b, &features, &seq, &prefilter);
    for threads in [2, 4] {
        let out = run(
            PhysicalOp::ApplyAll,
            threads,
            &a,
            &b,
            &features,
            &seq,
            &prefilter,
        );
        assert_eq!(out.candidates, reference.candidates);
        // The probe counters are sums over per-task deltas of a fixed task
        // set, so they are deterministic across thread counts too.
        assert_eq!(out.blocking, reference.blocking);
    }
}

#[test]
fn blocking_counters_balance_per_conjunct() {
    let (a, b, features, seq) = fixture();
    for prefilter in [
        PreFilterConfig {
            enabled: false,
            words: 0,
        },
        PreFilterConfig::default(),
    ] {
        let out = run(PhysicalOp::ApplyAll, 4, &a, &b, &features, &seq, &prefilter);
        assert!(!out.blocking.conjuncts.is_empty());
        for c in &out.blocking.conjuncts {
            assert_eq!(
                c.pairs_examined,
                c.pruned_by_signature + c.pruned_by_exact + c.survived,
                "conjunct {} counters do not balance: {c:?}",
                c.conjunct
            );
            assert!(!c.modes.is_empty());
            for m in &c.modes {
                assert!(
                    matches!(m.as_str(), "off" | "gate" | "dense"),
                    "unknown probe mode {m}"
                );
            }
        }
        assert!(out.blocking.pairs_examined() > 0);
        if !prefilter.enabled {
            // Without signatures no probe can be pruned by one.
            assert_eq!(out.blocking.pruned_by_signature(), 0);
            for c in &out.blocking.conjuncts {
                assert!(c.modes.iter().all(|m| m == "off"));
            }
        }
    }
}
