//! Kill-and-resume tests: a run that crashes mid-flight resumes from its
//! crowd journal to the exact output of an uninterrupted run, without
//! re-asking any journaled question.

use falcon_core::driver::{Falcon, FalconConfig};
use falcon_core::plan::PlanKind;
use falcon_crowd::sim::{GroundTruth, RandomWorkerCrowd};
use falcon_crowd::Crowd;
use falcon_dataflow::ClusterConfig;
use falcon_datagen::citations;
use falcon_table::IdPair;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn config() -> FalconConfig {
    FalconConfig {
        cluster: ClusterConfig::small(4),
        sample_size: 4_000,
        sample_fanout: 20,
        max_pairs: 20_000_000,
        force_plan: Some(PlanKind::BlockAndMatch),
        ..FalconConfig::default()
    }
}

fn journal_path(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "falcon-resume-{tag}-{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// A crowd that dies (panics) after a fixed number of live draws — the
/// simulated "kill -9" in the middle of a labeling batch.
struct LethalCrowd<C: Crowd> {
    inner: C,
    remaining: AtomicUsize,
}

impl<C: Crowd> LethalCrowd<C> {
    fn new(inner: C, budget: usize) -> Self {
        Self {
            inner,
            remaining: AtomicUsize::new(budget),
        }
    }

    fn tick(&self) {
        if self.remaining.fetch_sub(1, Ordering::Relaxed) == 0 {
            panic!("simulated crash: crowd worker process died");
        }
    }
}

impl<C: Crowd> Crowd for LethalCrowd<C> {
    fn answer(&self, pair: IdPair) -> bool {
        self.tick();
        self.inner.answer(pair)
    }
    fn try_answer(&self, pair: IdPair) -> Option<bool> {
        self.tick();
        self.inner.try_answer(pair)
    }
    fn fast_forward(&self, draws: usize) {
        self.inner.fast_forward(draws);
    }
    fn latency_per_round(&self) -> Duration {
        self.inner.latency_per_round()
    }
    fn cost_per_answer(&self) -> f64 {
        self.inner.cost_per_answer()
    }
    fn name(&self) -> &str {
        "lethal"
    }
}

/// Counts live draws (replayed/fast-forwarded draws are *not* counted) to
/// prove a resumed run never re-asks a journaled question.
struct CountingCrowd<C: Crowd> {
    inner: C,
    live: AtomicUsize,
}

impl<C: Crowd> CountingCrowd<C> {
    fn new(inner: C) -> Self {
        Self {
            inner,
            live: AtomicUsize::new(0),
        }
    }

    fn live_draws(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }
}

impl<C: Crowd> Crowd for CountingCrowd<C> {
    fn answer(&self, pair: IdPair) -> bool {
        self.live.fetch_add(1, Ordering::Relaxed);
        self.inner.answer(pair)
    }
    fn try_answer(&self, pair: IdPair) -> Option<bool> {
        self.live.fetch_add(1, Ordering::Relaxed);
        self.inner.try_answer(pair)
    }
    fn fast_forward(&self, draws: usize) {
        self.inner.fast_forward(draws);
    }
    fn latency_per_round(&self) -> Duration {
        self.inner.latency_per_round()
    }
    fn cost_per_answer(&self) -> f64 {
        self.inner.cost_per_answer()
    }
    fn name(&self) -> &str {
        "counting"
    }
}

#[test]
fn killed_run_resumes_to_the_identical_report() {
    let d = citations::generate(0.001, 11);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let crowd = || RandomWorkerCrowd::new(truth.clone(), 0.1, 21);
    let falcon = Falcon::new(config());

    // Uninterrupted baseline (no journal at all).
    let baseline = falcon.try_run(&d.a, &d.b, crowd()).expect("baseline");
    let total_draws = baseline.ledger.answers + baseline.ledger.lost_answers;
    assert!(total_draws > 40, "need a few batches to crash between");

    // Journaled run killed roughly halfway through its crowd draws —
    // well past the first labeled batches.
    let path = journal_path("run");
    let killed = catch_unwind(AssertUnwindSafe(|| {
        falcon.try_run_resumable(
            &d.a,
            &d.b,
            LethalCrowd::new(crowd(), total_draws / 2),
            &path,
        )
    }));
    assert!(killed.is_err(), "the crash must abort the run");

    // Resume from the journal with a fresh (same-seed) crowd.
    let counting = CountingCrowd::new(crowd());
    let resumed = falcon
        .try_run_resumable(&d.a, &d.b, &counting, &path)
        .expect("resumed run");

    assert_eq!(resumed.matches, baseline.matches, "bit-identical output");
    assert_eq!(resumed.candidate_size, baseline.candidate_size);
    assert_eq!(resumed.ledger, baseline.ledger, "same total spend");
    assert_eq!(resumed.journal_error, None);
    // The journaled prefix was replayed, not re-asked: the live crowd
    // answered the post-crash tail plus at most the one partial batch
    // that was in flight when the run died (a batch checkpoints only
    // once fully labeled), so roughly half the draws were saved.
    assert!(
        counting.live_draws() < total_draws * 3 / 4,
        "{} live draws of {total_draws}",
        counting.live_draws()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn killed_workflow_resumes_to_the_identical_report() {
    let d = citations::generate(0.0008, 12);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let crowd = || RandomWorkerCrowd::new(truth.clone(), 0.1, 33);
    let falcon = Falcon::new(config());

    let (baseline, base_est) = falcon
        .try_run_workflow(&d.a, &d.b, crowd(), 2)
        .expect("baseline workflow");
    let total_draws = baseline.ledger.answers + baseline.ledger.lost_answers;

    let path = journal_path("workflow");
    let killed = catch_unwind(AssertUnwindSafe(|| {
        falcon.try_run_workflow_resumable(
            &d.a,
            &d.b,
            LethalCrowd::new(crowd(), total_draws / 2),
            2,
            &path,
        )
    }));
    assert!(killed.is_err(), "the crash must abort the workflow");

    let counting = CountingCrowd::new(crowd());
    let (resumed, est) = falcon
        .try_run_workflow_resumable(&d.a, &d.b, &counting, 2, &path)
        .expect("resumed workflow");

    assert_eq!(resumed.matches, baseline.matches);
    assert_eq!(resumed.ledger, baseline.ledger);
    assert_eq!(est.len(), base_est.len());
    for (r, b) in est.iter().zip(&base_est) {
        assert_eq!((r.f1, r.precision, r.recall), (b.f1, b.precision, b.recall));
    }
    assert!(counting.live_draws() < total_draws);
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_completed_journal_replays_the_whole_run_for_free() {
    let d = citations::generate(0.0008, 13);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let crowd = || RandomWorkerCrowd::new(truth.clone(), 0.05, 44);
    let falcon = Falcon::new(config());

    let path = journal_path("full");
    let first = falcon
        .try_run_resumable(&d.a, &d.b, crowd(), &path)
        .expect("first run");
    assert_eq!(first.journal_error, None);

    // Re-running against the completed journal asks nothing at all.
    let counting = CountingCrowd::new(crowd());
    let second = falcon
        .try_run_resumable(&d.a, &d.b, &counting, &path)
        .expect("replayed run");
    assert_eq!(second.matches, first.matches);
    assert_eq!(second.ledger, first.ledger);
    assert_eq!(counting.live_draws(), 0, "everything came from the journal");
    std::fs::remove_file(&path).ok();
}
