//! The full iterative EM workflow (Figure 1): Blocker → (Matcher →
//! Accuracy Estimator → Difficult Pairs' Locator)*.

use falcon_core::driver::{Falcon, FalconConfig};
use falcon_core::plan::PlanKind;
use falcon_crowd::sim::{GroundTruth, OracleCrowd, RandomWorkerCrowd};
use falcon_dataflow::ClusterConfig;
use falcon_datagen::products;

fn config() -> FalconConfig {
    FalconConfig {
        cluster: ClusterConfig::small(4),
        sample_size: 6_000,
        sample_fanout: 20,
        force_plan: Some(PlanKind::BlockAndMatch),
        ..FalconConfig::default()
    }
}

#[test]
fn workflow_terminates_and_reports_estimates() {
    let d = products::generate(0.03, 71);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let (report, estimates) =
        Falcon::new(config()).run_workflow(&d.a, &d.b, OracleCrowd::new(truth), 3);
    assert!(!estimates.is_empty());
    assert!(estimates.len() <= 3);
    let q = report.quality(&d.truth);
    assert!(q.f1 > 0.6, "F1 {:.3}", q.f1);
    // Crowd-estimated quality should be in the neighbourhood of the true
    // quality (oracle crowd, so estimation noise only from sampling).
    let est = estimates.last().unwrap();
    assert!(
        (est.precision - q.precision).abs() < 0.25,
        "est P {:.3} vs true {:.3}",
        est.precision,
        q.precision
    );
}

#[test]
fn workflow_never_worse_than_single_pass_by_much() {
    let d = products::generate(0.03, 72);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let single =
        Falcon::new(config()).run(&d.a, &d.b, RandomWorkerCrowd::new(truth.clone(), 0.05, 4));
    let (multi, _) =
        Falcon::new(config()).run_workflow(&d.a, &d.b, RandomWorkerCrowd::new(truth, 0.05, 4), 3);
    let qs = single.quality(&d.truth);
    let qm = multi.quality(&d.truth);
    assert!(
        qm.f1 >= qs.f1 - 0.1,
        "multi {:.3} vs single {:.3}",
        qm.f1,
        qs.f1
    );
}

#[test]
fn workflow_spends_more_crowd_budget_per_extra_round() {
    let d = products::generate(0.02, 73);
    let truth = GroundTruth::new(d.truth.iter().copied());
    let (r1, _) =
        Falcon::new(config()).run_workflow(&d.a, &d.b, OracleCrowd::new(truth.clone()), 1);
    let (r3, e3) = Falcon::new(config()).run_workflow(&d.a, &d.b, OracleCrowd::new(truth), 3);
    if e3.len() > 1 {
        assert!(r3.ledger.questions > r1.ledger.questions);
    } else {
        // Converged in one round: budgets equal.
        assert_eq!(r3.ledger.rounds, r1.ledger.rounds);
    }
}
