//! The physical operators of `apply_blocking_rules` (Sections 7, 10.1).
//!
//! Four index-based solutions balance mapper memory against reducer work:
//!
//! * [`PhysicalOp::ApplyAll`] — every filterable conjunct's indexes in
//!   each mapper; reducers evaluate the rule sequence on the surviving
//!   pairs,
//! * [`PhysicalOp::ApplyGreedy`] — only the most selective conjunct's
//!   indexes map-side,
//! * [`PhysicalOp::ApplyConjunct`] — one probing wave per conjunct (each
//!   wave holds a single conjunct's indexes); waves are intersected,
//! * [`PhysicalOp::ApplyPredicate`] — one probing wave per *predicate*
//!   (smallest memory footprint; most post-processing),
//!
//! plus the two prior-work baselines that enumerate `A × B`:
//! [`PhysicalOp::MapSide`] (table `A` in mapper memory) and
//! [`PhysicalOp::ReduceSplit`] (pairs shuffled to reducers) — both guarded
//! by a pair budget, mirroring how the paper "had to kill" them on the
//! large datasets.
//!
//! All six produce *identical* candidate sets (the filters are necessary
//! conditions and the reducers evaluate the exact rule sequence);
//! integration tests assert this equivalence.
//!
//! Two of the paper's Section 7.3 engine optimizations are structural
//! here: mappers emit only `(a_id, b_id)` pairs (never whole `B` tuples —
//! the "reducing intermediate output size" optimization; reducers resolve
//! ids against shared table handles), and every mapper processes both
//! probing and pass-through work from the same interleaved split stream
//! (the "load balancing at map phase" optimization falls out of the
//! engine's work-stealing split queue).

use crate::features::FeatureSet;
use crate::indexing::{BuiltIndexes, ConjunctSpecs};
use crate::rules::RuleSequence;
use crate::tokens::{build_pair_profiles_seq, PairProfiles};
use falcon_dataflow::{run_map_only, run_map_reduce, Cluster, DataflowError, Emitter, JobStats};
use falcon_index::spec::Candidates;
use falcon_index::{CandidateBitmap, PredicateIndex, ProbeMode, ProbeStats};
use falcon_table::{IdPair, Table, TupleId};
use falcon_textsim::SimContext;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The physical operator choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhysicalOp {
    /// All filterable conjuncts' indexes in every mapper.
    ApplyAll,
    /// Only the most selective conjunct's indexes.
    ApplyGreedy,
    /// One probing wave per conjunct.
    ApplyConjunct,
    /// One probing wave per predicate.
    ApplyPredicate,
    /// Prior work: table A in mapper memory, enumerate `A × B`.
    MapSide,
    /// Prior work: shuffle all of `A × B` to reducers.
    ReduceSplit,
}

impl PhysicalOp {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PhysicalOp::ApplyAll => "apply-all",
            PhysicalOp::ApplyGreedy => "apply-greedy",
            PhysicalOp::ApplyConjunct => "apply-conjunct",
            PhysicalOp::ApplyPredicate => "apply-predicate",
            PhysicalOp::MapSide => "map-side",
            PhysicalOp::ReduceSplit => "reduce-split",
        }
    }

    /// One-line description of what the operator does and what it costs,
    /// for `falcon plan check --explain`.
    pub fn describe(self) -> &'static str {
        match self {
            PhysicalOp::ApplyAll => {
                "probe every filterable conjunct's indexes in each mapper; \
                 needs all indexes to fit mapper memory"
            }
            PhysicalOp::ApplyGreedy => {
                "probe only the most selective conjunct's indexes, then \
                 evaluate the rest of the sequence on the survivors"
            }
            PhysicalOp::ApplyConjunct => {
                "one probing wave per conjunct; bounds mapper memory at one \
                 conjunct's indexes per wave"
            }
            PhysicalOp::ApplyPredicate => {
                "one probing wave per predicate; smallest memory footprint, \
                 most waves"
            }
            PhysicalOp::MapSide => {
                "prior-work baseline: broadcast table A into every mapper \
                 and enumerate A x B"
            }
            PhysicalOp::ReduceSplit => "prior-work baseline: shuffle all of A x B to reducers",
        }
    }
}

/// Errors from blocking execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockingError {
    /// A Cartesian-enumeration baseline exceeded the pair budget (the
    /// in-harness analog of "did not complete / had to be killed").
    TooManyPairs {
        /// Pairs the operator would enumerate.
        pairs: u128,
        /// The configured budget.
        budget: u128,
    },
    /// The chosen operator needs at least one filterable conjunct.
    NoFilterableConjunct,
    /// The underlying dataflow engine failed (worker panic, lost split).
    Dataflow(DataflowError),
}

impl std::fmt::Display for BlockingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockingError::TooManyPairs { pairs, budget } => {
                write!(f, "would enumerate {pairs} pairs (budget {budget})")
            }
            BlockingError::NoFilterableConjunct => write!(f, "no filterable conjunct"),
            BlockingError::Dataflow(e) => write!(f, "dataflow failure: {e}"),
        }
    }
}

impl std::error::Error for BlockingError {}

impl From<DataflowError> for BlockingError {
    fn from(e: DataflowError) -> Self {
        BlockingError::Dataflow(e)
    }
}

/// Result of one blocking execution.
#[derive(Debug)]
pub struct BlockingOutput {
    /// Surviving candidate pairs, sorted.
    pub candidates: Vec<IdPair>,
    /// The operator that ran.
    pub op: PhysicalOp,
    /// Simulated cluster duration of all jobs involved.
    pub duration: Duration,
    /// Per-job statistics.
    pub jobs: Vec<JobStats>,
    /// Per-conjunct probe instrumentation (empty for the `A × B`
    /// enumeration baselines, which never probe an index).
    pub blocking: BlockingStats,
}

/// Per-conjunct blocking counters: how many candidate probes the conjunct
/// examined and where they were eliminated. The balance invariant
/// `pairs_examined == pruned_by_signature + pruned_by_exact + survived`
/// holds by construction (every examined probe lands in exactly one
/// bucket).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctStats {
    /// Conjunct position within the rule sequence.
    pub conjunct: usize,
    /// Planned probe mode per predicate of the conjunct
    /// ("off" / "gate" / "dense").
    pub modes: Vec<String>,
    /// Candidate probes examined (postings walked, signatures scanned, or
    /// scalar-index hits considered).
    pub pairs_examined: u64,
    /// Probes refuted by the signature popcount bound alone, before any
    /// exact filter ran.
    pub pruned_by_signature: u64,
    /// Probes refuted by the exact filters (length / position / range
    /// bounds) after surviving or bypassing the signature.
    pub pruned_by_exact: u64,
    /// Probes emitted into the candidate union.
    pub survived: u64,
}

/// Blocking-wide roll-up: one [`ConjunctStats`] entry per conjunct that
/// probed at least once.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingStats {
    /// Per-conjunct counters, ordered by conjunct position.
    pub conjuncts: Vec<ConjunctStats>,
}

impl BlockingStats {
    /// Total probes examined across conjuncts.
    pub fn pairs_examined(&self) -> u64 {
        self.conjuncts.iter().map(|c| c.pairs_examined).sum()
    }

    /// Total probes pruned by the signature pre-filter.
    pub fn pruned_by_signature(&self) -> u64 {
        self.conjuncts.iter().map(|c| c.pruned_by_signature).sum()
    }

    /// Total probes pruned by the exact filters.
    pub fn pruned_by_exact(&self) -> u64 {
        self.conjuncts.iter().map(|c| c.pruned_by_exact).sum()
    }

    /// Total probes that survived into candidate unions.
    pub fn survived(&self) -> u64 {
        self.conjuncts.iter().map(|c| c.survived).sum()
    }
}

/// Lock-free sink for per-conjunct probe counters shared by all map
/// tasks. Only order-independent sums are stored, so the totals are
/// deterministic for any thread count, split order or fault schedule
/// (the dataflow layer executes each map body exactly once per task,
/// even under injected faults).
struct StatsCollector {
    cells: Vec<[AtomicU64; 4]>,
}

impl StatsCollector {
    fn new(conjuncts: usize) -> Self {
        Self {
            cells: std::iter::repeat_with(Default::default)
                .take(conjuncts)
                .collect(),
        }
    }

    fn add(&self, ci: usize, s: &ProbeStats) {
        if s.pairs_examined == 0 && s.survived == 0 {
            return;
        }
        let Some(c) = self.cells.get(ci) else { return };
        c[0].fetch_add(s.pairs_examined, Ordering::Relaxed);
        c[1].fetch_add(s.pruned_by_signature, Ordering::Relaxed);
        c[2].fetch_add(s.pruned_by_exact, Ordering::Relaxed);
        c[3].fetch_add(s.survived, Ordering::Relaxed);
    }

    /// Assemble the final stats; `modes[ci]` carries the per-predicate
    /// probe modes recorded when conjunct `ci`'s bundle was assembled.
    fn finish(&self, modes: &[Vec<String>]) -> BlockingStats {
        let conjuncts = self
            .cells
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| {
                let v: Vec<u64> = c.iter().map(|a| a.load(Ordering::Relaxed)).collect();
                let modes = modes.get(ci).cloned().unwrap_or_default();
                if v.iter().all(|&x| x == 0) && modes.is_empty() {
                    return None; // conjunct never probed
                }
                Some(ConjunctStats {
                    conjunct: ci,
                    modes,
                    pairs_examined: v[0],
                    pruned_by_signature: v[1],
                    pruned_by_exact: v[2],
                    survived: v[3],
                })
            })
            .collect();
        BlockingStats { conjuncts }
    }
}

/// Record the probe modes of each bundle's predicates into the
/// per-conjunct mode table (appending, so the per-predicate waves of
/// `ApplyPredicate` accumulate one entry each).
fn record_modes(modes: &mut [Vec<String>], bundles: &[Bundle]) {
    for bu in bundles {
        if let Some(slot) = modes.get_mut(bu.ci) {
            slot.extend(bu.preds.iter().map(|(_, _, m)| m.name().to_string()));
        }
    }
}

/// Rough in-memory footprint of a table (gates MapSide). Computed
/// column-at-a-time over rendered lengths; the formula (32 bytes per
/// row plus 24 per cell plus rendered length) is
/// representation-invariant so the optimizer picks the same physical
/// plan under either table layout.
pub fn estimate_table_bytes(t: &Table) -> usize {
    let mut total = 32 * t.len();
    let mut scratch = String::new();
    for idx in 0..t.schema().arity() {
        t.for_each_value(idx, |_, v| {
            total += 24;
            match v.as_str() {
                Some(s) => total += s.len(),
                None => {
                    scratch.clear();
                    v.render_into(&mut scratch);
                    total += scratch.len();
                }
            }
        });
    }
    total
}

/// Shared exact rule-sequence evaluator used by every reducer/mapper:
/// computes only the features the sequence references (the computation
/// caching of Section 7.3).
pub struct PairEvaluator {
    a: Table,
    b: Table,
    features: FeatureSet,
    seq: RuleSequence,
    needed: Vec<usize>,
    arity: usize,
    /// Full-table token profiles for the needed features' columns, so the
    /// per-pair evaluation uses the sorted-id kernels instead of
    /// re-tokenizing each value for every pair it appears in.
    profiles: PairProfiles,
}

impl PairEvaluator {
    /// Build an evaluator. Pre-tokenizes both tables for the columns the
    /// sequence's features need (blocking sequences reference only a
    /// handful of features, so this is a short full-table pass amortized
    /// over up to `|A| × |B|` evaluations).
    pub fn new(a: &Table, b: &Table, features: &FeatureSet, seq: &RuleSequence) -> Self {
        let needed: Vec<usize> = seq.features().into_iter().collect();
        let profiles = build_pair_profiles_seq(a, b, needed.iter().map(|&i| features.get(i)));
        Self {
            a: a.clone(),
            b: b.clone(),
            features: features.clone(),
            seq: seq.clone(),
            needed,
            arity: features.len(),
            profiles,
        }
    }

    /// True iff the pair survives the rule sequence.
    pub fn keeps(&self, aid: TupleId, bid: TupleId) -> bool {
        let mut fv = Vec::new();
        self.keeps_scratch(aid, bid, &mut fv)
    }

    /// [`PairEvaluator::keeps`] with a caller-owned feature-vector
    /// buffer, so hot loops evaluate pairs without a per-pair allocation.
    pub fn keeps_scratch(&self, aid: TupleId, bid: TupleId, fv: &mut Vec<f64>) -> bool {
        // A pair referencing an unknown id cannot be a match of real
        // tuples; dropping it is exact, not lossy.
        if aid as usize >= self.a.len() || bid as usize >= self.b.len() {
            return false;
        }
        let ctx = SimContext::empty().with_profiles(&self.profiles.a, &self.profiles.b);
        fv.clear();
        fv.resize(self.arity, f64::NAN);
        for &i in &self.needed {
            let f = self.features.get(i);
            fv[i] = f.compute_at(&self.a, &self.b, aid, bid, &ctx);
        }
        self.seq.keeps(fv)
    }
}

/// One conjunct's probe bundle: `(index, B-side attribute index, planned
/// probe mode)` per predicate, tagged with the conjunct's sequence
/// position so stats land on the right counter row.
struct Bundle {
    ci: usize,
    preds: Vec<(Arc<PredicateIndex>, usize, ProbeMode)>,
}

/// Assemble probe bundles for the given conjunct indices, planning each
/// predicate's probe mode once up front (the planner hook: signature
/// density and postings statistics decide per predicate whether the
/// pre-filter pays off).
///
/// A conjunct whose spec or built index is missing is skipped *whole*:
/// dropping an entire conjunct only weakens the filter (more candidates
/// pass), which preserves recall. Dropping a single predicate inside a
/// conjunct would instead shrink the probe union and could lose matches.
/// The probe mode for `idx`: normally [`PredicateIndex::plan_probe_mode`],
/// but the `FALCON_PROBE_MODE` environment variable (`off` | `gate` |
/// `dense`) forces one mode process-wide on every signature-wrapped index
/// for differential testing — every mode is lossless, so final candidate
/// pairs cannot change. Read once and cached so a run never mixes modes.
fn planned_mode(idx: &PredicateIndex) -> ProbeMode {
    static FORCED: std::sync::OnceLock<Option<ProbeMode>> = std::sync::OnceLock::new();
    let forced = *FORCED.get_or_init(|| match std::env::var("FALCON_PROBE_MODE").as_deref() {
        Ok("off") => Some(ProbeMode::Off),
        Ok("gate") => Some(ProbeMode::Gate),
        Ok("dense") => Some(ProbeMode::Dense),
        _ => None,
    });
    match forced {
        Some(mode) if matches!(idx, PredicateIndex::Signature { .. }) => mode,
        _ => idx.plan_probe_mode(),
    }
}

fn bundles_for(conjuncts: &ConjunctSpecs, built: &BuiltIndexes, which: &[usize]) -> Vec<Bundle> {
    which
        .iter()
        .filter_map(|&ci| {
            let preds = conjuncts.specs[ci]
                .iter()
                .enumerate()
                .map(|(pi, s)| {
                    let (_, b_idx) = s.as_ref()?;
                    // Cache lookup through the key hoisted at spec
                    // derivation — no per-conjunct key formatting here.
                    let idx = built.get_by_key(conjuncts.key_of(ci, pi)?)?;
                    let mode = planned_mode(&idx);
                    Some((idx, *b_idx, mode))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Bundle { ci, preds })
        })
        .collect()
}

/// Reusable per-map-task probe state: the bitmap union / intersection
/// buffers, the sorted emit vector, and per-conjunct counter deltas
/// flushed to the shared [`StatsCollector`] once per chunk. Marking ids
/// in a bitmap deduplicates for free, intersection is a word-wise AND,
/// and iteration yields ascending ids — the whole union/dedup/intersect
/// pipeline runs without a single sort or per-tuple allocation.
struct ProbeScratch {
    union: CandidateBitmap,
    acc: CandidateBitmap,
    out: Vec<TupleId>,
    locals: Vec<ProbeStats>,
    /// Feature-vector buffer for evaluator stages (kept here so the
    /// pool recycles one allocation set for probe *and* evaluate work).
    fv: Vec<f64>,
}

impl ProbeScratch {
    fn empty() -> Self {
        Self {
            union: CandidateBitmap::new(0),
            acc: CandidateBitmap::new(0),
            out: Vec::new(),
            locals: Vec::new(),
            fv: Vec::new(),
        }
    }

    /// Make the scratch ready for a task over `a_len` A-tuples and
    /// `n_bundles` conjunct bundles, keeping existing allocations.
    fn prepare(&mut self, a_len: usize, n_bundles: usize) {
        self.union.reset(a_len);
        self.acc.reset(a_len);
        self.out.clear();
        self.locals.clear();
        self.locals.resize(n_bundles, ProbeStats::default());
        self.fv.clear();
    }

    /// Flush the accumulated per-conjunct deltas and zero them.
    fn flush(&mut self, bundles: &[Bundle], collector: &StatsCollector) {
        for (local, bu) in self.locals.iter_mut().zip(bundles) {
            collector.add(bu.ci, local);
            *local = ProbeStats::default();
        }
    }
}

/// Pool of [`ProbeScratch`] buffers, shared by the map tasks of one or
/// more blocking executions. The bitmaps inside a scratch are sized to
/// `|A|`, so recycling them across the optimizer's speculative stages
/// (one `execute` per candidate rule over the same `A`) avoids
/// re-zeroing multi-kilobyte buffers per stage — the single-job masking
/// cost the stage-yielding driver must not regress.
#[derive(Default)]
pub struct ScratchPool {
    slots: parking_lot::Mutex<Vec<ProbeScratch>>,
}

impl ScratchPool {
    /// Fresh shared pool.
    pub fn new() -> Arc<ScratchPool> {
        Arc::new(Self::default())
    }

    fn checkout(&self, a_len: usize, n_bundles: usize) -> ProbeScratch {
        let mut scratch = self.slots.lock().pop().unwrap_or_else(ProbeScratch::empty);
        scratch.prepare(a_len, n_bundles);
        scratch
    }

    fn restore(&self, scratch: ProbeScratch) {
        self.slots.lock().push(scratch);
    }
}

/// Candidate A-ids for one B tuple across the given bundles, collected
/// into `scratch.out` (ascending, deduplicated). Returns `false` when
/// every bundle probed to "All" — the caller pairs `bid` with all of `A`.
fn candidates_for(
    b: &Table,
    bid: TupleId,
    a_len: usize,
    bundles: &[Bundle],
    scratch: &mut ProbeScratch,
) -> bool {
    let mut restricted = false;
    for (bi, bundle) in bundles.iter().enumerate() {
        scratch.union.reset(a_len);
        let mut unrestricted = false;
        let stats = &mut scratch.locals[bi];
        for (idx, b_idx, mode) in &bundle.preds {
            let bv = b.value_ref(bid, *b_idx).unwrap_or_default();
            match idx.probe_ref_stats(bv, *mode, stats) {
                Candidates::All => {
                    unrestricted = true;
                    break;
                }
                Candidates::Some(ids) => {
                    for id in ids {
                        scratch.union.insert(id);
                    }
                }
                Candidates::Bitmap(bm) => scratch.union.union_with(&bm),
            }
        }
        if unrestricted {
            continue;
        }
        if restricted {
            scratch.acc.intersect(&scratch.union);
        } else {
            scratch.acc.copy_from(&scratch.union);
            restricted = true;
        }
        if scratch.acc.ones() == 0 {
            break;
        }
    }
    scratch.out.clear();
    if restricted {
        let (acc, out) = (&scratch.acc, &mut scratch.out);
        acc.for_each(|id| out.push(id));
    }
    restricted
}

/// B-side splits carry tuple ids only; mappers resolve cells against a
/// shared table handle (cheap `Arc` clone), so no rows are materialized.
fn b_splits(b: &Table, cluster: &Cluster) -> Vec<Vec<TupleId>> {
    b.splits(cluster.threads() * 2)
        .into_iter()
        .map(|r| (r.start as TupleId..r.end as TupleId).collect())
        .collect()
}

/// Chunk-as-record B-side splits for the probing operators: each split
/// carries one id chunk as a single record, so a map task allocates its
/// [`ProbeScratch`] once per chunk and streams ids through it. Callers
/// restore `JobStats::input_records` to the true tuple count afterwards.
fn b_chunk_splits(b: &Table, cluster: &Cluster) -> Vec<Vec<Vec<TupleId>>> {
    b.splits(cluster.threads() * 2)
        .into_iter()
        .map(|r| vec![(r.start as TupleId..r.end as TupleId).collect()])
        .collect()
}

/// Index-probing + reducer-evaluation execution (ApplyAll / ApplyGreedy).
#[allow(clippy::too_many_arguments)]
fn run_probe_reduce(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    evaluator: Arc<PairEvaluator>,
    bundles: Vec<Bundle>,
    collector: &Arc<StatsCollector>,
    pool: &Arc<ScratchPool>,
    op: PhysicalOp,
) -> Result<BlockingOutput, BlockingError> {
    let a_len = a.len();
    let bundles = Arc::new(bundles);
    let b_handle = b.clone();
    let n_b = b.len();
    let collector = Arc::clone(collector);
    let pool = Arc::clone(pool);
    let mut out = run_map_reduce(
        cluster,
        b_chunk_splits(b, cluster),
        cluster.threads(),
        move |chunk: &Vec<TupleId>, e: &mut Emitter<TupleId, TupleId>| {
            let mut scratch = pool.checkout(a_len, bundles.len());
            for &bid in chunk {
                if candidates_for(&b_handle, bid, a_len, &bundles, &mut scratch) {
                    for &aid in &scratch.out {
                        e.emit(aid, bid);
                    }
                } else {
                    for aid in 0..a_len as TupleId {
                        e.emit(aid, bid);
                    }
                }
            }
            scratch.flush(&bundles, &collector);
            pool.restore(scratch);
        },
        move |aid: &TupleId, bids: Vec<TupleId>, out: &mut Vec<IdPair>| {
            let mut fv = Vec::new();
            for bid in bids {
                if evaluator.keeps_scratch(*aid, bid, &mut fv) {
                    out.push((*aid, bid));
                }
            }
        },
    )?;
    // Chunk-as-record wrapping counted chunks; restore the true count.
    out.stats.input_records = n_b;
    let duration = out.stats.sim_duration(&cluster.config);
    let mut candidates = out.output;
    candidates.sort_unstable();
    Ok(BlockingOutput {
        candidates,
        op,
        duration,
        jobs: vec![out.stats],
        blocking: BlockingStats::default(),
    })
}

/// Probe-only wave for one bundle set: returns the pair set it admits.
fn run_probe_wave(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    bundles: Vec<Bundle>,
    collector: &Arc<StatsCollector>,
    pool: &Arc<ScratchPool>,
) -> Result<(HashSet<IdPair>, JobStats), BlockingError> {
    let a_len = a.len();
    let bundles = Arc::new(bundles);
    let b_handle = b.clone();
    let n_b = b.len();
    let collector = Arc::clone(collector);
    let pool = Arc::clone(pool);
    let mut out = run_map_only(
        cluster,
        b_chunk_splits(b, cluster),
        move |chunk: &Vec<TupleId>, out: &mut Vec<IdPair>| {
            let mut scratch = pool.checkout(a_len, bundles.len());
            for &bid in chunk {
                if candidates_for(&b_handle, bid, a_len, &bundles, &mut scratch) {
                    out.extend(scratch.out.iter().map(|&aid| (aid, bid)));
                } else {
                    out.extend((0..a_len as TupleId).map(|aid| (aid, bid)));
                }
            }
            scratch.flush(&bundles, &collector);
            pool.restore(scratch);
        },
    )?;
    out.stats.input_records = n_b;
    Ok((out.output.iter().copied().collect(), out.stats))
}

/// Final evaluation of the rule sequence over a pair set (map-only).
fn run_evaluate(
    cluster: &Cluster,
    evaluator: Arc<PairEvaluator>,
    pairs: Vec<IdPair>,
    pool: &Arc<ScratchPool>,
) -> Result<(Vec<IdPair>, JobStats), BlockingError> {
    // Each split carries one whole pair chunk as a single record, so a map
    // task streams its chunk through the evaluator without per-pair
    // dispatch through the dataflow record loop (and with one shared
    // feature-vector scratch buffer per chunk, recycled via the pool).
    let n_pairs = pairs.len();
    let chunk = n_pairs.div_ceil((cluster.threads() * 2).max(1)).max(1);
    let splits: Vec<Vec<Vec<IdPair>>> = pairs.chunks(chunk).map(|c| vec![c.to_vec()]).collect();
    let pool = Arc::clone(pool);
    let mut out = run_map_only(cluster, splits, move |pair_chunk: &Vec<IdPair>, out| {
        let mut scratch = pool.checkout(0, 0);
        for &(aid, bid) in pair_chunk {
            if evaluator.keeps_scratch(aid, bid, &mut scratch.fv) {
                out.push((aid, bid));
            }
        }
        pool.restore(scratch);
    })?;
    // Chunk-as-record wrapping counted chunks; restore the true count.
    out.stats.input_records = n_pairs;
    let mut kept = out.output;
    kept.sort_unstable();
    Ok((kept, out.stats))
}

/// Execute a blocking plan with an explicit physical operator.
#[allow(clippy::too_many_arguments)]
pub fn execute(
    op: PhysicalOp,
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    features: &FeatureSet,
    seq: &RuleSequence,
    conjuncts: &ConjunctSpecs,
    built: &BuiltIndexes,
    rule_selectivities: &[f64],
    max_pairs: u128,
) -> Result<BlockingOutput, BlockingError> {
    execute_pooled(
        op,
        cluster,
        a,
        b,
        features,
        seq,
        conjuncts,
        built,
        rule_selectivities,
        max_pairs,
        &ScratchPool::new(),
    )
}

/// [`execute`] with a caller-owned [`ScratchPool`], so consecutive
/// executions over the same `A` (the optimizer's speculative stages, the
/// final `apply_blocking_rules`) recycle probe buffers instead of
/// reallocating them per stage.
#[allow(clippy::too_many_arguments)]
pub fn execute_pooled(
    op: PhysicalOp,
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    features: &FeatureSet,
    seq: &RuleSequence,
    conjuncts: &ConjunctSpecs,
    built: &BuiltIndexes,
    rule_selectivities: &[f64],
    max_pairs: u128,
    pool: &Arc<ScratchPool>,
) -> Result<BlockingOutput, BlockingError> {
    let evaluator = Arc::new(PairEvaluator::new(a, b, features, seq));
    let filterable = conjuncts.filterable();
    let collector = Arc::new(StatsCollector::new(conjuncts.specs.len()));
    let mut modes: Vec<Vec<String>> = vec![Vec::new(); conjuncts.specs.len()];
    let mut result = match op {
        PhysicalOp::ApplyAll => {
            if filterable.is_empty() {
                return Err(BlockingError::NoFilterableConjunct);
            }
            let bundles = bundles_for(conjuncts, built, &filterable);
            record_modes(&mut modes, &bundles);
            run_probe_reduce(cluster, a, b, evaluator, bundles, &collector, pool, op)?
        }
        PhysicalOp::ApplyGreedy => {
            let best = filterable
                .iter()
                .copied()
                .min_by(|&x, &y| {
                    let sx = rule_selectivities.get(x).copied().unwrap_or(1.0);
                    let sy = rule_selectivities.get(y).copied().unwrap_or(1.0);
                    sx.total_cmp(&sy)
                })
                .ok_or(BlockingError::NoFilterableConjunct)?;
            let bundles = bundles_for(conjuncts, built, &[best]);
            record_modes(&mut modes, &bundles);
            run_probe_reduce(cluster, a, b, evaluator, bundles, &collector, pool, op)?
        }
        PhysicalOp::ApplyConjunct => {
            if filterable.is_empty() {
                return Err(BlockingError::NoFilterableConjunct);
            }
            let mut jobs = Vec::new();
            let mut acc: Option<HashSet<IdPair>> = None;
            for &ci in &filterable {
                let bundles = bundles_for(conjuncts, built, &[ci]);
                if bundles.is_empty() {
                    // Conjunct not probe-able: skipping its wave keeps
                    // every candidate it would have admitted (recall-safe).
                    continue;
                }
                record_modes(&mut modes, &bundles);
                let (set, stats) = run_probe_wave(cluster, a, b, bundles, &collector, pool)?;
                jobs.push(stats);
                acc = Some(match acc {
                    None => set,
                    Some(prev) => prev.intersection(&set).copied().collect(),
                });
            }
            let mut pairs: Vec<IdPair> = acc.unwrap_or_default().into_iter().collect();
            pairs.sort_unstable();
            let (candidates, stats) = run_evaluate(cluster, evaluator, pairs, pool)?;
            jobs.push(stats);
            let duration = jobs.iter().map(|s| s.sim_duration(&cluster.config)).sum();
            BlockingOutput {
                candidates,
                op,
                duration,
                jobs,
                blocking: BlockingStats::default(),
            }
        }
        PhysicalOp::ApplyPredicate => {
            if filterable.is_empty() {
                return Err(BlockingError::NoFilterableConjunct);
            }
            let mut jobs = Vec::new();
            let mut acc: Option<HashSet<IdPair>> = None;
            for &ci in &filterable {
                // Union across this conjunct's predicates, each probed in
                // its own wave holding a single predicate index. If *any*
                // predicate of the conjunct cannot be probed, the whole
                // conjunct is skipped: a partial union would shrink the
                // candidate set and lose recall, while skipping the
                // conjunct only admits extra candidates.
                let specs: Option<Vec<Bundle>> = conjuncts.specs[ci]
                    .iter()
                    .enumerate()
                    .map(|(pi, s)| {
                        let (_, b_idx) = s.as_ref()?;
                        let idx = built.get_by_key(conjuncts.key_of(ci, pi)?)?;
                        let mode = planned_mode(&idx);
                        Some(Bundle {
                            ci,
                            preds: vec![(idx, *b_idx, mode)],
                        })
                    })
                    .collect();
                let Some(pred_bundles) = specs else { continue };
                record_modes(&mut modes, &pred_bundles);
                let mut union: HashSet<IdPair> = HashSet::new();
                for bundle in pred_bundles {
                    let (set, stats) =
                        run_probe_wave(cluster, a, b, vec![bundle], &collector, pool)?;
                    jobs.push(stats);
                    union.extend(set);
                }
                acc = Some(match acc {
                    None => union,
                    Some(prev) => prev.intersection(&union).copied().collect(),
                });
            }
            let mut pairs: Vec<IdPair> = acc.unwrap_or_default().into_iter().collect();
            pairs.sort_unstable();
            let (candidates, stats) = run_evaluate(cluster, evaluator, pairs, pool)?;
            jobs.push(stats);
            let duration = jobs.iter().map(|s| s.sim_duration(&cluster.config)).sum();
            BlockingOutput {
                candidates,
                op,
                duration,
                jobs,
                blocking: BlockingStats::default(),
            }
        }
        PhysicalOp::MapSide | PhysicalOp::ReduceSplit => {
            let pairs = a.len() as u128 * b.len() as u128;
            if pairs > max_pairs {
                return Err(BlockingError::TooManyPairs {
                    pairs,
                    budget: max_pairs,
                });
            }
            if op == PhysicalOp::MapSide {
                let a_len = a.len() as TupleId;
                let out =
                    run_map_only(cluster, b_splits(b, cluster), move |&bid: &TupleId, out| {
                        let mut fv = Vec::new();
                        for aid in 0..a_len {
                            if evaluator.keeps_scratch(aid, bid, &mut fv) {
                                out.push((aid, bid));
                            }
                        }
                    })?;
                let duration = out.stats.sim_duration(&cluster.config);
                let mut candidates = out.output;
                candidates.sort_unstable();
                BlockingOutput {
                    candidates,
                    op,
                    duration,
                    jobs: vec![out.stats],
                    blocking: BlockingStats::default(),
                }
            } else {
                let a_len = a.len() as TupleId;
                let out = run_map_reduce(
                    cluster,
                    b_splits(b, cluster),
                    cluster.threads(),
                    move |&bid: &TupleId, e: &mut Emitter<TupleId, TupleId>| {
                        for aid in 0..a_len {
                            e.emit(aid, bid);
                        }
                    },
                    move |aid: &TupleId, bids: Vec<TupleId>, out: &mut Vec<IdPair>| {
                        let mut fv = Vec::new();
                        for bid in bids {
                            if evaluator.keeps_scratch(*aid, bid, &mut fv) {
                                out.push((*aid, bid));
                            }
                        }
                    },
                )?;
                let duration = out.stats.sim_duration(&cluster.config);
                let mut candidates = out.output;
                candidates.sort_unstable();
                BlockingOutput {
                    candidates,
                    op,
                    duration,
                    jobs: vec![out.stats],
                    blocking: BlockingStats::default(),
                }
            }
        }
    };
    result.blocking = collector.finish(&modes);
    Ok(result)
}

/// The Section 10.1 physical-operator selection rules.
#[allow(clippy::too_many_arguments)]
pub fn select_physical(
    conjuncts: &ConjunctSpecs,
    built: &BuiltIndexes,
    rule_selectivities: &[f64],
    seq_selectivity: f64,
    mapper_memory: usize,
    a_bytes: usize,
    greedy_ratio: f64,
) -> PhysicalOp {
    let filterable = conjuncts.filterable();
    if !filterable.is_empty() {
        // Per-conjunct index byte totals, via the hoisted cache keys.
        let conj_bytes: Vec<(usize, usize)> = filterable
            .iter()
            .map(|&ci| {
                let bytes = (0..conjuncts.specs[ci].len())
                    .filter_map(|pi| conjuncts.key_of(ci, pi))
                    .map(|k| built.bytes_of_key(k))
                    .sum();
                (ci, bytes)
            })
            .collect();
        // Most selective filterable conjunct (`conj_bytes` is non-empty
        // because `filterable` is; the if-let keeps this panic-free).
        if let Some((best_ci, best_bytes)) = conj_bytes.iter().copied().min_by(|(x, _), (y, _)| {
            let sx = rule_selectivities.get(*x).copied().unwrap_or(1.0);
            let sy = rule_selectivities.get(*y).copied().unwrap_or(1.0);
            sx.total_cmp(&sy)
        }) {
            let best_sel = rule_selectivities.get(best_ci).copied().unwrap_or(1.0);
            if best_sel > 0.0
                && seq_selectivity / best_sel >= greedy_ratio
                && best_bytes <= mapper_memory
            {
                return PhysicalOp::ApplyGreedy;
            }
            let total: usize = conj_bytes.iter().map(|(_, b)| b).sum();
            if total <= mapper_memory {
                return PhysicalOp::ApplyAll;
            }
            if conj_bytes.iter().any(|(_, b)| *b <= mapper_memory) {
                return PhysicalOp::ApplyConjunct;
            }
            // Per-predicate granularity.
            let max_pred = filterable
                .iter()
                .flat_map(|&ci| (0..conjuncts.specs[ci].len()).map(move |pi| (ci, pi)))
                .filter_map(|(ci, pi)| conjuncts.key_of(ci, pi))
                .map(|k| built.bytes_of_key(k))
                .max()
                .unwrap_or(usize::MAX);
            if max_pred <= mapper_memory {
                return PhysicalOp::ApplyPredicate;
            }
        }
    }
    if a_bytes <= mapper_memory {
        PhysicalOp::MapSide
    } else {
        PhysicalOp::ReduceSplit
    }
}
