//! The physical operators of `apply_blocking_rules` (Sections 7, 10.1).
//!
//! Four index-based solutions balance mapper memory against reducer work:
//!
//! * [`PhysicalOp::ApplyAll`] — every filterable conjunct's indexes in
//!   each mapper; reducers evaluate the rule sequence on the surviving
//!   pairs,
//! * [`PhysicalOp::ApplyGreedy`] — only the most selective conjunct's
//!   indexes map-side,
//! * [`PhysicalOp::ApplyConjunct`] — one probing wave per conjunct (each
//!   wave holds a single conjunct's indexes); waves are intersected,
//! * [`PhysicalOp::ApplyPredicate`] — one probing wave per *predicate*
//!   (smallest memory footprint; most post-processing),
//!
//! plus the two prior-work baselines that enumerate `A × B`:
//! [`PhysicalOp::MapSide`] (table `A` in mapper memory) and
//! [`PhysicalOp::ReduceSplit`] (pairs shuffled to reducers) — both guarded
//! by a pair budget, mirroring how the paper "had to kill" them on the
//! large datasets.
//!
//! All six produce *identical* candidate sets (the filters are necessary
//! conditions and the reducers evaluate the exact rule sequence);
//! integration tests assert this equivalence.
//!
//! Two of the paper's Section 7.3 engine optimizations are structural
//! here: mappers emit only `(a_id, b_id)` pairs (never whole `B` tuples —
//! the "reducing intermediate output size" optimization; reducers resolve
//! ids against shared table handles), and every mapper processes both
//! probing and pass-through work from the same interleaved split stream
//! (the "load balancing at map phase" optimization falls out of the
//! engine's work-stealing split queue).

use crate::features::FeatureSet;
use crate::indexing::{BuiltIndexes, ConjunctSpecs};
use crate::rules::RuleSequence;
use crate::tokens::{build_pair_profiles_seq, PairProfiles};
use falcon_dataflow::{run_map_only, run_map_reduce, Cluster, DataflowError, Emitter, JobStats};
use falcon_index::spec::Candidates;
use falcon_index::PredicateIndex;
use falcon_table::{IdPair, Table, TupleId};
use falcon_textsim::SimContext;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// The physical operator choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhysicalOp {
    /// All filterable conjuncts' indexes in every mapper.
    ApplyAll,
    /// Only the most selective conjunct's indexes.
    ApplyGreedy,
    /// One probing wave per conjunct.
    ApplyConjunct,
    /// One probing wave per predicate.
    ApplyPredicate,
    /// Prior work: table A in mapper memory, enumerate `A × B`.
    MapSide,
    /// Prior work: shuffle all of `A × B` to reducers.
    ReduceSplit,
}

impl PhysicalOp {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PhysicalOp::ApplyAll => "apply-all",
            PhysicalOp::ApplyGreedy => "apply-greedy",
            PhysicalOp::ApplyConjunct => "apply-conjunct",
            PhysicalOp::ApplyPredicate => "apply-predicate",
            PhysicalOp::MapSide => "map-side",
            PhysicalOp::ReduceSplit => "reduce-split",
        }
    }

    /// One-line description of what the operator does and what it costs,
    /// for `falcon plan check --explain`.
    pub fn describe(self) -> &'static str {
        match self {
            PhysicalOp::ApplyAll => {
                "probe every filterable conjunct's indexes in each mapper; \
                 needs all indexes to fit mapper memory"
            }
            PhysicalOp::ApplyGreedy => {
                "probe only the most selective conjunct's indexes, then \
                 evaluate the rest of the sequence on the survivors"
            }
            PhysicalOp::ApplyConjunct => {
                "one probing wave per conjunct; bounds mapper memory at one \
                 conjunct's indexes per wave"
            }
            PhysicalOp::ApplyPredicate => {
                "one probing wave per predicate; smallest memory footprint, \
                 most waves"
            }
            PhysicalOp::MapSide => {
                "prior-work baseline: broadcast table A into every mapper \
                 and enumerate A x B"
            }
            PhysicalOp::ReduceSplit => "prior-work baseline: shuffle all of A x B to reducers",
        }
    }
}

/// Errors from blocking execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockingError {
    /// A Cartesian-enumeration baseline exceeded the pair budget (the
    /// in-harness analog of "did not complete / had to be killed").
    TooManyPairs {
        /// Pairs the operator would enumerate.
        pairs: u128,
        /// The configured budget.
        budget: u128,
    },
    /// The chosen operator needs at least one filterable conjunct.
    NoFilterableConjunct,
    /// The underlying dataflow engine failed (worker panic, lost split).
    Dataflow(DataflowError),
}

impl std::fmt::Display for BlockingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockingError::TooManyPairs { pairs, budget } => {
                write!(f, "would enumerate {pairs} pairs (budget {budget})")
            }
            BlockingError::NoFilterableConjunct => write!(f, "no filterable conjunct"),
            BlockingError::Dataflow(e) => write!(f, "dataflow failure: {e}"),
        }
    }
}

impl std::error::Error for BlockingError {}

impl From<DataflowError> for BlockingError {
    fn from(e: DataflowError) -> Self {
        BlockingError::Dataflow(e)
    }
}

/// Result of one blocking execution.
#[derive(Debug)]
pub struct BlockingOutput {
    /// Surviving candidate pairs, sorted.
    pub candidates: Vec<IdPair>,
    /// The operator that ran.
    pub op: PhysicalOp,
    /// Simulated cluster duration of all jobs involved.
    pub duration: Duration,
    /// Per-job statistics.
    pub jobs: Vec<JobStats>,
}

/// Rough in-memory footprint of a table (gates MapSide). Computed
/// column-at-a-time over rendered lengths; the formula (32 bytes per
/// row plus 24 per cell plus rendered length) is
/// representation-invariant so the optimizer picks the same physical
/// plan under either table layout.
pub fn estimate_table_bytes(t: &Table) -> usize {
    let mut total = 32 * t.len();
    let mut scratch = String::new();
    for idx in 0..t.schema().arity() {
        t.for_each_value(idx, |_, v| {
            total += 24;
            match v.as_str() {
                Some(s) => total += s.len(),
                None => {
                    scratch.clear();
                    v.render_into(&mut scratch);
                    total += scratch.len();
                }
            }
        });
    }
    total
}

/// Shared exact rule-sequence evaluator used by every reducer/mapper:
/// computes only the features the sequence references (the computation
/// caching of Section 7.3).
pub struct PairEvaluator {
    a: Table,
    b: Table,
    features: FeatureSet,
    seq: RuleSequence,
    needed: Vec<usize>,
    arity: usize,
    /// Full-table token profiles for the needed features' columns, so the
    /// per-pair evaluation uses the sorted-id kernels instead of
    /// re-tokenizing each value for every pair it appears in.
    profiles: PairProfiles,
}

impl PairEvaluator {
    /// Build an evaluator. Pre-tokenizes both tables for the columns the
    /// sequence's features need (blocking sequences reference only a
    /// handful of features, so this is a short full-table pass amortized
    /// over up to `|A| × |B|` evaluations).
    pub fn new(a: &Table, b: &Table, features: &FeatureSet, seq: &RuleSequence) -> Self {
        let needed: Vec<usize> = seq.features().into_iter().collect();
        let profiles = build_pair_profiles_seq(a, b, needed.iter().map(|&i| features.get(i)));
        Self {
            a: a.clone(),
            b: b.clone(),
            features: features.clone(),
            seq: seq.clone(),
            needed,
            arity: features.len(),
            profiles,
        }
    }

    /// True iff the pair survives the rule sequence.
    pub fn keeps(&self, aid: TupleId, bid: TupleId) -> bool {
        // A pair referencing an unknown id cannot be a match of real
        // tuples; dropping it is exact, not lossy.
        if aid as usize >= self.a.len() || bid as usize >= self.b.len() {
            return false;
        }
        let ctx = SimContext::empty().with_profiles(&self.profiles.a, &self.profiles.b);
        let mut fv = vec![f64::NAN; self.arity];
        for &i in &self.needed {
            let f = self.features.get(i);
            fv[i] = f.compute_at(&self.a, &self.b, aid, bid, &ctx);
        }
        self.seq.keeps(&fv)
    }
}

/// One conjunct's probe bundle: `(index, B-side attribute index)` per
/// predicate.
type Bundle = Vec<(Arc<PredicateIndex>, usize)>;

/// Assemble probe bundles for the given conjunct indices.
///
/// A conjunct whose spec or built index is missing is skipped *whole*:
/// dropping an entire conjunct only weakens the filter (more candidates
/// pass), which preserves recall. Dropping a single predicate inside a
/// conjunct would instead shrink the probe union and could lose matches.
fn bundles_for(conjuncts: &ConjunctSpecs, built: &BuiltIndexes, which: &[usize]) -> Vec<Bundle> {
    which
        .iter()
        .filter_map(|&ci| {
            conjuncts.specs[ci]
                .iter()
                .map(|s| {
                    let (spec, b_idx) = s.as_ref()?;
                    Some((built.get(spec)?, *b_idx))
                })
                .collect::<Option<Bundle>>()
        })
        .collect()
}

fn intersect_sorted(a: Vec<TupleId>, b: &[TupleId]) -> Vec<TupleId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Candidate A-ids for one B tuple (by id) across the given bundles.
/// `None` = unrestricted (every bundle probed to "All").
fn candidates_for(b: &Table, bid: TupleId, bundles: &[Bundle]) -> Option<Vec<TupleId>> {
    let mut acc: Option<Vec<TupleId>> = None;
    for bundle in bundles {
        let mut union: Vec<TupleId> = Vec::new();
        let mut unrestricted = false;
        for (idx, b_idx) in bundle {
            let bv = b.value_ref(bid, *b_idx).unwrap_or_default();
            match idx.probe_ref(bv) {
                Candidates::All => {
                    unrestricted = true;
                    break;
                }
                Candidates::Some(ids) => union.extend(ids),
            }
        }
        if unrestricted {
            continue;
        }
        union.sort_unstable();
        union.dedup();
        acc = Some(match acc {
            None => union,
            Some(prev) => intersect_sorted(prev, &union),
        });
        if acc.as_ref().is_some_and(Vec::is_empty) {
            break;
        }
    }
    acc
}

/// B-side splits carry tuple ids only; mappers resolve cells against a
/// shared table handle (cheap `Arc` clone), so no rows are materialized.
fn b_splits(b: &Table, cluster: &Cluster) -> Vec<Vec<TupleId>> {
    b.splits(cluster.threads() * 2)
        .into_iter()
        .map(|r| (r.start as TupleId..r.end as TupleId).collect())
        .collect()
}

/// Index-probing + reducer-evaluation execution (ApplyAll / ApplyGreedy).
fn run_probe_reduce(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    evaluator: Arc<PairEvaluator>,
    bundles: Vec<Bundle>,
    op: PhysicalOp,
) -> Result<BlockingOutput, BlockingError> {
    let a_len = a.len() as TupleId;
    let bundles = Arc::new(bundles);
    let b_handle = b.clone();
    let out = run_map_reduce(
        cluster,
        b_splits(b, cluster),
        cluster.threads(),
        move |&bid: &TupleId, e: &mut Emitter<TupleId, TupleId>| match candidates_for(
            &b_handle, bid, &bundles,
        ) {
            Some(ids) => {
                for aid in ids {
                    e.emit(aid, bid);
                }
            }
            None => {
                for aid in 0..a_len {
                    e.emit(aid, bid);
                }
            }
        },
        move |aid: &TupleId, bids: Vec<TupleId>, out: &mut Vec<IdPair>| {
            for bid in bids {
                if evaluator.keeps(*aid, bid) {
                    out.push((*aid, bid));
                }
            }
        },
    )?;
    let duration = out.stats.sim_duration(&cluster.config);
    let mut candidates = out.output;
    candidates.sort_unstable();
    Ok(BlockingOutput {
        candidates,
        op,
        duration,
        jobs: vec![out.stats],
    })
}

/// Probe-only wave for one bundle set: returns the pair set it admits.
fn run_probe_wave(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    bundles: Vec<Bundle>,
) -> Result<(HashSet<IdPair>, JobStats), BlockingError> {
    let a_len = a.len() as TupleId;
    let bundles = Arc::new(bundles);
    let b_handle = b.clone();
    let out =
        run_map_only(
            cluster,
            b_splits(b, cluster),
            move |&bid: &TupleId, out| match candidates_for(&b_handle, bid, &bundles) {
                Some(ids) => out.extend(ids.into_iter().map(|aid| (aid, bid))),
                None => out.extend((0..a_len).map(|aid| (aid, bid))),
            },
        )?;
    Ok((out.output.iter().copied().collect(), out.stats))
}

/// Final evaluation of the rule sequence over a pair set (map-only).
fn run_evaluate(
    cluster: &Cluster,
    evaluator: Arc<PairEvaluator>,
    pairs: Vec<IdPair>,
) -> Result<(Vec<IdPair>, JobStats), BlockingError> {
    // Each split carries one whole pair chunk as a single record, so a map
    // task streams its chunk through the evaluator without per-pair
    // dispatch through the dataflow record loop.
    let n_pairs = pairs.len();
    let chunk = n_pairs.div_ceil((cluster.threads() * 2).max(1)).max(1);
    let splits: Vec<Vec<Vec<IdPair>>> = pairs.chunks(chunk).map(|c| vec![c.to_vec()]).collect();
    let mut out = run_map_only(cluster, splits, move |pair_chunk: &Vec<IdPair>, out| {
        out.extend(
            pair_chunk
                .iter()
                .filter(|&&(aid, bid)| evaluator.keeps(aid, bid)),
        );
    })?;
    // Chunk-as-record wrapping counted chunks; restore the true count.
    out.stats.input_records = n_pairs;
    let mut kept = out.output;
    kept.sort_unstable();
    Ok((kept, out.stats))
}

/// Execute a blocking plan with an explicit physical operator.
#[allow(clippy::too_many_arguments)]
pub fn execute(
    op: PhysicalOp,
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    features: &FeatureSet,
    seq: &RuleSequence,
    conjuncts: &ConjunctSpecs,
    built: &BuiltIndexes,
    rule_selectivities: &[f64],
    max_pairs: u128,
) -> Result<BlockingOutput, BlockingError> {
    let evaluator = Arc::new(PairEvaluator::new(a, b, features, seq));
    let filterable = conjuncts.filterable();
    match op {
        PhysicalOp::ApplyAll => {
            if filterable.is_empty() {
                return Err(BlockingError::NoFilterableConjunct);
            }
            let bundles = bundles_for(conjuncts, built, &filterable);
            run_probe_reduce(cluster, a, b, evaluator, bundles, op)
        }
        PhysicalOp::ApplyGreedy => {
            let best = filterable
                .iter()
                .copied()
                .min_by(|&x, &y| {
                    let sx = rule_selectivities.get(x).copied().unwrap_or(1.0);
                    let sy = rule_selectivities.get(y).copied().unwrap_or(1.0);
                    sx.total_cmp(&sy)
                })
                .ok_or(BlockingError::NoFilterableConjunct)?;
            let bundles = bundles_for(conjuncts, built, &[best]);
            run_probe_reduce(cluster, a, b, evaluator, bundles, op)
        }
        PhysicalOp::ApplyConjunct => {
            if filterable.is_empty() {
                return Err(BlockingError::NoFilterableConjunct);
            }
            let mut jobs = Vec::new();
            let mut acc: Option<HashSet<IdPair>> = None;
            for &ci in &filterable {
                let bundles = bundles_for(conjuncts, built, &[ci]);
                if bundles.is_empty() {
                    // Conjunct not probe-able: skipping its wave keeps
                    // every candidate it would have admitted (recall-safe).
                    continue;
                }
                let (set, stats) = run_probe_wave(cluster, a, b, bundles)?;
                jobs.push(stats);
                acc = Some(match acc {
                    None => set,
                    Some(prev) => prev.intersection(&set).copied().collect(),
                });
            }
            let mut pairs: Vec<IdPair> = acc.unwrap_or_default().into_iter().collect();
            pairs.sort_unstable();
            let (candidates, stats) = run_evaluate(cluster, evaluator, pairs)?;
            jobs.push(stats);
            let duration = jobs.iter().map(|s| s.sim_duration(&cluster.config)).sum();
            Ok(BlockingOutput {
                candidates,
                op,
                duration,
                jobs,
            })
        }
        PhysicalOp::ApplyPredicate => {
            if filterable.is_empty() {
                return Err(BlockingError::NoFilterableConjunct);
            }
            let mut jobs = Vec::new();
            let mut acc: Option<HashSet<IdPair>> = None;
            for &ci in &filterable {
                // Union across this conjunct's predicates, each probed in
                // its own wave holding a single predicate index. If *any*
                // predicate of the conjunct cannot be probed, the whole
                // conjunct is skipped: a partial union would shrink the
                // candidate set and lose recall, while skipping the
                // conjunct only admits extra candidates.
                let specs: Option<Vec<Bundle>> = conjuncts.specs[ci]
                    .iter()
                    .map(|s| {
                        let (spec, b_idx) = s.as_ref()?;
                        Some(vec![(built.get(spec)?, *b_idx)])
                    })
                    .collect();
                let Some(pred_bundles) = specs else { continue };
                let mut union: HashSet<IdPair> = HashSet::new();
                for bundle in pred_bundles {
                    let (set, stats) = run_probe_wave(cluster, a, b, vec![bundle])?;
                    jobs.push(stats);
                    union.extend(set);
                }
                acc = Some(match acc {
                    None => union,
                    Some(prev) => prev.intersection(&union).copied().collect(),
                });
            }
            let mut pairs: Vec<IdPair> = acc.unwrap_or_default().into_iter().collect();
            pairs.sort_unstable();
            let (candidates, stats) = run_evaluate(cluster, evaluator, pairs)?;
            jobs.push(stats);
            let duration = jobs.iter().map(|s| s.sim_duration(&cluster.config)).sum();
            Ok(BlockingOutput {
                candidates,
                op,
                duration,
                jobs,
            })
        }
        PhysicalOp::MapSide | PhysicalOp::ReduceSplit => {
            let pairs = a.len() as u128 * b.len() as u128;
            if pairs > max_pairs {
                return Err(BlockingError::TooManyPairs {
                    pairs,
                    budget: max_pairs,
                });
            }
            if op == PhysicalOp::MapSide {
                let a_len = a.len() as TupleId;
                let out =
                    run_map_only(cluster, b_splits(b, cluster), move |&bid: &TupleId, out| {
                        for aid in 0..a_len {
                            if evaluator.keeps(aid, bid) {
                                out.push((aid, bid));
                            }
                        }
                    })?;
                let duration = out.stats.sim_duration(&cluster.config);
                let mut candidates = out.output;
                candidates.sort_unstable();
                Ok(BlockingOutput {
                    candidates,
                    op,
                    duration,
                    jobs: vec![out.stats],
                })
            } else {
                let a_len = a.len() as TupleId;
                let out = run_map_reduce(
                    cluster,
                    b_splits(b, cluster),
                    cluster.threads(),
                    move |&bid: &TupleId, e: &mut Emitter<TupleId, TupleId>| {
                        for aid in 0..a_len {
                            e.emit(aid, bid);
                        }
                    },
                    move |aid: &TupleId, bids: Vec<TupleId>, out: &mut Vec<IdPair>| {
                        for bid in bids {
                            if evaluator.keeps(*aid, bid) {
                                out.push((*aid, bid));
                            }
                        }
                    },
                )?;
                let duration = out.stats.sim_duration(&cluster.config);
                let mut candidates = out.output;
                candidates.sort_unstable();
                Ok(BlockingOutput {
                    candidates,
                    op,
                    duration,
                    jobs: vec![out.stats],
                })
            }
        }
    }
}

/// The Section 10.1 physical-operator selection rules.
#[allow(clippy::too_many_arguments)]
pub fn select_physical(
    conjuncts: &ConjunctSpecs,
    built: &BuiltIndexes,
    rule_selectivities: &[f64],
    seq_selectivity: f64,
    mapper_memory: usize,
    a_bytes: usize,
    greedy_ratio: f64,
) -> PhysicalOp {
    use crate::indexing::predicate_key;
    let filterable = conjuncts.filterable();
    if !filterable.is_empty() {
        // Per-conjunct index byte totals.
        let conj_bytes: Vec<(usize, usize)> = filterable
            .iter()
            .map(|&ci| {
                let keys: Vec<String> = conjuncts.specs[ci]
                    .iter()
                    .filter_map(|s| s.as_ref().map(|(spec, _)| predicate_key(spec)))
                    .collect();
                (ci, built.bytes_of(&keys))
            })
            .collect();
        // Most selective filterable conjunct (`conj_bytes` is non-empty
        // because `filterable` is; the if-let keeps this panic-free).
        if let Some((best_ci, best_bytes)) = conj_bytes.iter().copied().min_by(|(x, _), (y, _)| {
            let sx = rule_selectivities.get(*x).copied().unwrap_or(1.0);
            let sy = rule_selectivities.get(*y).copied().unwrap_or(1.0);
            sx.total_cmp(&sy)
        }) {
            let best_sel = rule_selectivities.get(best_ci).copied().unwrap_or(1.0);
            if best_sel > 0.0
                && seq_selectivity / best_sel >= greedy_ratio
                && best_bytes <= mapper_memory
            {
                return PhysicalOp::ApplyGreedy;
            }
            let total: usize = conj_bytes.iter().map(|(_, b)| b).sum();
            if total <= mapper_memory {
                return PhysicalOp::ApplyAll;
            }
            if conj_bytes.iter().any(|(_, b)| *b <= mapper_memory) {
                return PhysicalOp::ApplyConjunct;
            }
            // Per-predicate granularity.
            let max_pred = filterable
                .iter()
                .flat_map(|&ci| conjuncts.specs[ci].iter())
                .filter_map(|s| {
                    s.as_ref()
                        .map(|(spec, _)| built.bytes_of(&[predicate_key(spec)]))
                })
                .max()
                .unwrap_or(usize::MAX);
            if max_pred <= mapper_memory {
                return PhysicalOp::ApplyPredicate;
            }
        }
    }
    if a_bytes <= mapper_memory {
        PhysicalOp::MapSide
    } else {
        PhysicalOp::ReduceSplit
    }
}
