//! The Corleone baseline (Section 3.3): single-machine, in-memory
//! application of blocking rules to the *materialized* Cartesian product.
//!
//! This is the behaviour Falcon exists to replace. A pair budget guards
//! execution the same way the paper's experiments had to kill Corleone on
//! large tables ("had to be stopped after more than a week").

use crate::features::FeatureSet;
use crate::physical::{BlockingError, PairEvaluator};
use crate::rules::RuleSequence;
use falcon_dataflow::wall_now;
use falcon_table::{IdPair, Table};
use std::time::Duration;

/// Output of the baseline.
#[derive(Debug)]
pub struct CorleoneBlocking {
    /// Surviving pairs, sorted.
    pub candidates: Vec<IdPair>,
    /// Single-machine wall time.
    pub duration: Duration,
}

/// Apply `seq` to every pair of `A × B` on one thread.
pub fn corleone_blocking(
    a: &Table,
    b: &Table,
    features: &FeatureSet,
    seq: &RuleSequence,
    max_pairs: u128,
) -> Result<CorleoneBlocking, BlockingError> {
    let pairs = a.len() as u128 * b.len() as u128;
    if pairs > max_pairs {
        return Err(BlockingError::TooManyPairs {
            pairs,
            budget: max_pairs,
        });
    }
    let evaluator = PairEvaluator::new(a, b, features, seq);
    let t0 = wall_now();
    let mut candidates = Vec::new();
    let mut fv = Vec::new();
    for aid in 0..a.len() as u32 {
        for bid in 0..b.len() as u32 {
            if evaluator.keeps_scratch(aid, bid, &mut fv) {
                candidates.push((aid, bid));
            }
        }
    }
    Ok(CorleoneBlocking {
        candidates,
        duration: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::generate_features;
    use crate::rules::{Predicate, Rule};
    use falcon_forest::SplitOp;
    use falcon_table::{AttrType, Schema, Value};
    use falcon_textsim::{SimFunction, Tokenizer};

    fn tables() -> (Table, Table) {
        let schema = Schema::new([("t", AttrType::Str)]);
        let rows = |n: usize, tag: &'static str| {
            (0..n).map(move |i| vec![Value::str(format!("{tag} item {i}"))])
        };
        (
            Table::new("a", schema.clone(), rows(10, "alpha")),
            Table::new("b", schema, rows(10, "alpha")),
        )
    }

    #[test]
    fn budget_guard_fires() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let err =
            corleone_blocking(&a, &b, &lib.blocking, &RuleSequence::default(), 10).unwrap_err();
        assert!(matches!(
            err,
            BlockingError::TooManyPairs { pairs: 100, .. }
        ));
    }

    #[test]
    fn applies_rules_exhaustively() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let jac = lib
            .blocking
            .features
            .iter()
            .position(|f| f.sim == SimFunction::Jaccard(Tokenizer::Word))
            .unwrap();
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![Predicate {
                feature: jac,
                op: SplitOp::Le,
                threshold: 0.99,
                nan_is_high: true,
            }],
        }]);
        let out = corleone_blocking(&a, &b, &lib.blocking, &seq, 1_000_000).unwrap();
        // Only identical titles survive jaccard > 0.99.
        assert_eq!(out.candidates.len(), 10);
        for (x, y) in &out.candidates {
            assert_eq!(x, y);
        }
    }
}
