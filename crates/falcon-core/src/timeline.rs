//! Execution timeline: machine vs crowd segments and the "mask machine
//! time under crowd time" accounting of Section 10.2.
//!
//! Model: every crowd round of virtual duration `D` contributes `D` of
//! *masking capacity* — cluster time that would otherwise be idle. Machine
//! tasks scheduled by the optimizer during crowdsourcing run against that
//! capacity: the portion covered by capacity costs nothing toward total
//! time; only the *excess* does. This reproduces the paper's reported
//! quantities exactly:
//!
//! * machine time `t_m` — all machine work, masked or not,
//! * crowd time `t_c` — sum of crowd-round latencies,
//! * unmasked machine time `t_u` — machine work not covered by capacity,
//! * total time — `t_c + t_u`.

use crate::stage::{CancelReason, GateHandle, StageControl, StageEvent, StageGate, StageKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// One recorded segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Segment {
    /// Machine work on the critical path (never masked).
    Machine {
        /// Operator label.
        label: String,
        /// Simulated duration.
        dur: Duration,
    },
    /// A crowd round (virtual latency); adds masking capacity.
    Crowd {
        /// Operator label.
        label: String,
        /// Virtual latency.
        dur: Duration,
    },
    /// Machine work scheduled during crowdsourcing; only `excess` reaches
    /// the critical path.
    MaskedMachine {
        /// Operator label.
        label: String,
        /// Full duration of the work.
        dur: Duration,
        /// Portion not covered by masking capacity.
        excess: Duration,
    },
}

impl Segment {
    /// Label of the segment.
    pub fn label(&self) -> &str {
        match self {
            Segment::Machine { label, .. }
            | Segment::Crowd { label, .. }
            | Segment::MaskedMachine { label, .. } => label,
        }
    }
}

/// A run's timeline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    segments: Vec<Segment>,
    capacity: Duration,
    /// Optional stage-boundary callback (`falcon-serve`'s lease
    /// protocol). Never serialized; detached before a timeline is
    /// embedded in a report.
    #[serde(skip)]
    gate: Option<GateHandle>,
    /// Set when the gate returned [`StageControl::Cancel`]: the driver
    /// must unwind at its next cancellation point. Sticky until taken.
    #[serde(skip)]
    cancel: Option<CancelReason>,
}

impl Timeline {
    /// Fresh empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh timeline that notifies (and, for machine stages, blocks
    /// on) `gate` at every stage boundary. See [`StageGate`].
    pub fn with_gate(gate: Arc<dyn StageGate>) -> Self {
        Self {
            gate: Some(GateHandle::new(gate)),
            ..Self::default()
        }
    }

    /// Drop the stage gate, turning this back into a plain record.
    /// Called before a timeline is moved into a `RunReport` so reports
    /// never hold scheduler handles.
    pub fn detach_gate(&mut self) {
        self.gate = None;
    }

    /// The scheduler's pending cancellation, if the gate returned
    /// [`StageControl::Cancel`] at any stage boundary so far. Sticky:
    /// once set it stays set, so every later cancellation point sees it.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        self.cancel
    }

    fn notify(&mut self, label: &str, kind: StageKind, dur: Duration, tasks: u32, records: u64) {
        if let Some(gate) = &self.gate {
            let verdict = gate.on_stage(StageEvent {
                label: label.to_string(),
                kind,
                dur,
                tasks,
                records,
            });
            if let StageControl::Cancel(reason) = verdict {
                self.cancel.get_or_insert(reason);
            }
        }
    }

    /// Record unmaskable machine work.
    pub fn machine(&mut self, label: impl Into<String>, dur: Duration) {
        self.machine_shaped(label, dur, 1, 0);
    }

    /// Record unmaskable machine work with the deterministic shape of
    /// the underlying cluster job (map tasks / input records), so a
    /// gated scheduler can price it without relying on measured wall
    /// time. Identical to [`Timeline::machine`] when no gate is set.
    pub fn machine_shaped(
        &mut self,
        label: impl Into<String>,
        dur: Duration,
        tasks: u32,
        records: u64,
    ) {
        let label = label.into();
        self.segments.push(Segment::Machine {
            label: label.clone(),
            dur,
        });
        self.notify(&label, StageKind::Machine, dur, tasks, records);
    }

    /// Record a crowd round; its latency becomes masking capacity.
    pub fn crowd(&mut self, label: impl Into<String>, dur: Duration) {
        let label = label.into();
        self.capacity += dur;
        self.segments.push(Segment::Crowd {
            label: label.clone(),
            dur,
        });
        self.notify(&label, StageKind::CrowdWait, dur, 0, 0);
    }

    /// Record machine work the optimizer scheduled during crowdsourcing.
    /// Consumes capacity; returns the excess that reached the critical
    /// path (zero when fully masked).
    pub fn masked_machine(&mut self, label: impl Into<String>, dur: Duration) -> Duration {
        self.masked_machine_shaped(label, dur, 1, 0)
    }

    /// [`Timeline::masked_machine`] with the deterministic job shape —
    /// see [`Timeline::machine_shaped`].
    pub fn masked_machine_shaped(
        &mut self,
        label: impl Into<String>,
        dur: Duration,
        tasks: u32,
        records: u64,
    ) -> Duration {
        let label = label.into();
        let covered = dur.min(self.capacity);
        self.capacity -= covered;
        let excess = dur - covered;
        self.segments.push(Segment::MaskedMachine {
            label: label.clone(),
            dur,
            excess,
        });
        self.notify(&label, StageKind::MaskedMachine, dur, tasks, records);
        excess
    }

    /// Remaining masking capacity.
    pub fn remaining_capacity(&self) -> Duration {
        self.capacity
    }

    /// Total crowd time `t_c`.
    pub fn crowd_time(&self) -> Duration {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Crowd { dur, .. } => *dur,
                _ => Duration::ZERO,
            })
            .sum()
    }

    /// Total machine time `t_m` (masked work counted in full).
    pub fn machine_time(&self) -> Duration {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Machine { dur, .. } => *dur,
                Segment::MaskedMachine { dur, .. } => *dur,
                Segment::Crowd { .. } => Duration::ZERO,
            })
            .sum()
    }

    /// Unmasked machine time `t_u`.
    pub fn unmasked_machine_time(&self) -> Duration {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Machine { dur, .. } => *dur,
                Segment::MaskedMachine { excess, .. } => *excess,
                Segment::Crowd { .. } => Duration::ZERO,
            })
            .sum()
    }

    /// Total run time `t_c + t_u`.
    pub fn total_time(&self) -> Duration {
        self.crowd_time() + self.unmasked_machine_time()
    }

    /// Per-label total durations (crowd + machine), for the Table 4
    /// per-operator breakdown.
    pub fn by_operator(&self) -> BTreeMap<String, Duration> {
        let mut map: BTreeMap<String, Duration> = BTreeMap::new();
        for s in &self.segments {
            let d = match s {
                Segment::Machine { dur, .. } => *dur,
                Segment::Crowd { dur, .. } => *dur,
                Segment::MaskedMachine { excess, .. } => *excess,
            };
            *map.entry(s.label().to_string()).or_default() += d;
        }
        map
    }

    /// All segments, in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Merge another timeline's segments (capacity is recomputed by the
    /// running totals already embedded in segments, so excesses stay as
    /// recorded).
    pub fn extend(&mut self, other: Timeline) {
        self.capacity += other.capacity;
        self.segments.extend(other.segments);
    }
}

/// Driver-level cancellation point: when the stage gate has requested
/// cancellation, finalize the crowd journal — so the tenant can resume
/// later without re-asking a single crowd question — and unwind with
/// [`FalconError::Cancelled`](crate::error::FalconError). Operators with
/// long crowd loops call this between iterations so a cancelled tenant
/// stops asking questions promptly instead of running its loop dry.
pub fn check_cancel<C: falcon_crowd::Crowd>(
    timeline: &Timeline,
    session: &mut falcon_crowd::CrowdSession<C>,
) -> Result<(), crate::error::FalconError> {
    if let Some(reason) = timeline.cancel_reason() {
        session.finalize_journal();
        return Err(crate::error::FalconError::Cancelled { reason });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> Duration {
        Duration::from_secs(v)
    }

    #[test]
    fn masking_consumes_capacity() {
        let mut t = Timeline::new();
        t.crowd("al_matcher", s(100));
        assert_eq!(t.masked_machine("build_indexes", s(60)), Duration::ZERO);
        assert_eq!(t.remaining_capacity(), s(40));
        // Next task exceeds capacity by 10.
        assert_eq!(t.masked_machine("speculative", s(50)), s(10));
        assert_eq!(t.remaining_capacity(), Duration::ZERO);
        assert_eq!(t.crowd_time(), s(100));
        assert_eq!(t.machine_time(), s(110));
        assert_eq!(t.unmasked_machine_time(), s(10));
        assert_eq!(t.total_time(), s(110));
    }

    #[test]
    fn unmasked_machine_counts_fully() {
        let mut t = Timeline::new();
        t.machine("apply_blocking_rules", s(30));
        t.crowd("eval_rules", s(20));
        assert_eq!(t.machine_time(), s(30));
        assert_eq!(t.unmasked_machine_time(), s(30));
        assert_eq!(t.total_time(), s(50));
    }

    #[test]
    fn capacity_accumulates_across_rounds() {
        let mut t = Timeline::new();
        t.crowd("al", s(10));
        t.crowd("al", s(10));
        assert_eq!(t.masked_machine("idx", s(15)), Duration::ZERO);
        assert_eq!(t.remaining_capacity(), s(5));
    }

    #[test]
    fn by_operator_aggregates() {
        let mut t = Timeline::new();
        t.crowd("al_matcher", s(5));
        t.crowd("al_matcher", s(5));
        t.machine("apply", s(7));
        t.masked_machine("apply", s(3)); // fully masked -> 0 excess
        let by = t.by_operator();
        assert_eq!(by["al_matcher"], s(10));
        assert_eq!(by["apply"], s(7));
    }

    #[test]
    fn no_capacity_means_no_masking() {
        let mut t = Timeline::new();
        assert_eq!(t.masked_machine("x", s(9)), s(9));
        assert_eq!(t.total_time(), s(9));
    }
}
