//! The blocking-rule language: predicates over features, conjunction rules,
//! rule sequences, the DNF→CNF conversion of Section 7.3 and the predicate
//! simplification of its Optimization 3.
//!
//! Rules come from random-forest paths, so predicates are threshold
//! comparisons `feature <= v` / `feature > v`. Missing feature values are
//! treated as *maximally similar* (see [`Predicate`]) so blocking can
//! never drop a pair for lack of data, and `Le`/`Gt` stay exact
//! complements — which is what makes the negative-DNF → positive-CNF
//! rewrite lossless even on dirty data.

use falcon_forest::{NegativePath, SplitOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One threshold predicate over a feature (by index into the blocking
/// feature set).
///
/// ## Missing values
///
/// A rule must never drop a pair because a value is *missing* — blocking
/// has to stay recall-safe when data is absent (the matcher sorts such
/// pairs out later). Missing feature values are therefore interpreted as
/// "maximally similar": `+∞` for similarity-oriented features and `-∞`
/// for distance-oriented ones. The `nan_is_high` flag bakes the feature's
/// orientation into the predicate so evaluation stays self-contained and
/// `Le`/`Gt` remain exact complements even on missing data (which keeps
/// the DNF→CNF rewrite of Section 7.3 lossless).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Feature index.
    pub feature: usize,
    /// Comparison operator.
    pub op: SplitOp,
    /// Threshold.
    pub threshold: f64,
    /// True when the feature is similarity-oriented (missing ⇒ `+∞`,
    /// satisfying `Gt`); false for distance features (missing ⇒ `-∞`,
    /// satisfying `Le`).
    pub nan_is_high: bool,
}

impl Predicate {
    /// Evaluate against a feature vector (`NaN` = missing).
    pub fn eval(&self, fv: &[f64]) -> bool {
        let v = fv.get(self.feature).copied().unwrap_or(f64::NAN);
        if v.is_nan() {
            // Missing = maximally similar: +∞ satisfies Gt only, -∞
            // satisfies Le only.
            return matches!(
                (self.nan_is_high, self.op),
                (true, SplitOp::Gt) | (false, SplitOp::Le)
            );
        }
        self.op.eval(v, self.threshold)
    }

    /// The logical complement (exact, including missing-value semantics).
    pub fn complement(&self) -> Predicate {
        Predicate {
            feature: self.feature,
            op: self.op.complement(),
            threshold: self.threshold,
            nan_is_high: self.nan_is_high,
        }
    }
}

/// A blocking rule: a conjunction of predicates that, when all satisfied,
/// *drops* the pair (`p_1 ∧ ... ∧ p_m → drop`, Formula 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The conjunction.
    pub predicates: Vec<Predicate>,
}

impl Rule {
    /// Build from a forest negative path. `higher[f]` tells whether
    /// feature `f` is similarity-oriented (see [`Predicate::nan_is_high`]).
    pub fn from_path(path: &NegativePath, higher: &[bool]) -> Rule {
        Rule {
            predicates: path
                .predicates
                .iter()
                .map(|p| Predicate {
                    feature: p.feature,
                    op: p.op,
                    threshold: p.threshold,
                    nan_is_high: higher.get(p.feature).copied().unwrap_or(true),
                })
                .collect(),
        }
        .simplified()
    }

    /// True iff the rule fires (drops) on this feature vector.
    pub fn fires(&self, fv: &[f64]) -> bool {
        self.predicates.iter().all(|p| p.eval(fv))
    }

    /// Section 7.3 Optimization 3: collapse redundant threshold predicates
    /// on the same feature (`f <= 0.5 AND f <= 0.2` → `f <= 0.2`;
    /// `f > 0.1 AND f > 0.4` → `f > 0.4`).
    pub fn simplified(&self) -> Rule {
        let features: BTreeSet<usize> = self.predicates.iter().map(|p| p.feature).collect();
        let mut out = Vec::new();
        for f in features {
            let mut min_le: Option<f64> = None;
            let mut max_gt: Option<f64> = None;
            let mut nan_is_high = true;
            for p in self.predicates.iter().filter(|p| p.feature == f) {
                nan_is_high = p.nan_is_high;
                match p.op {
                    SplitOp::Le => {
                        min_le = Some(min_le.map_or(p.threshold, |v: f64| v.min(p.threshold)))
                    }
                    SplitOp::Gt => {
                        max_gt = Some(max_gt.map_or(p.threshold, |v: f64| v.max(p.threshold)))
                    }
                }
            }
            if let Some(v) = min_le {
                out.push(Predicate {
                    feature: f,
                    op: SplitOp::Le,
                    threshold: v,
                    nan_is_high,
                });
            }
            if let Some(v) = max_gt {
                out.push(Predicate {
                    feature: f,
                    op: SplitOp::Gt,
                    threshold: v,
                    nan_is_high,
                });
            }
        }
        Rule { predicates: out }
    }

    /// Features referenced by this rule.
    pub fn features(&self) -> BTreeSet<usize> {
        self.predicates.iter().map(|p| p.feature).collect()
    }

    /// A canonical key for deduplication across trees.
    pub fn canonical_key(&self) -> String {
        let mut parts: Vec<String> = self
            .predicates
            .iter()
            .map(|p| format!("{}:{:?}:{:.6}", p.feature, p.op, p.threshold))
            .collect();
        parts.sort();
        parts.join("|")
    }
}

impl Rule {
    /// Render with real feature names (e.g.
    /// `jaccard_word(title,title) <= 0.400`) instead of `f{idx}`.
    pub fn display_with(&self, features: &crate::features::FeatureSet) -> String {
        let parts: Vec<String> = self
            .predicates
            .iter()
            .map(|p| {
                let name = features
                    .features
                    .get(p.feature)
                    .map_or_else(|| format!("f{}", p.feature), |f| f.name.clone());
                format!(
                    "{name} {} {:.3}",
                    match p.op {
                        SplitOp::Le => "<=",
                        SplitOp::Gt => ">",
                    },
                    p.threshold
                )
            })
            .collect();
        format!("[{}] -> drop", parts.join(" AND "))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .predicates
            .iter()
            .map(|p| {
                format!(
                    "f{} {} {:.3}",
                    p.feature,
                    match p.op {
                        SplitOp::Le => "<=",
                        SplitOp::Gt => ">",
                    },
                    p.threshold
                )
            })
            .collect();
        write!(f, "[{}] -> drop", parts.join(" AND "))
    }
}

/// An ordered sequence of blocking rules: a pair is dropped as soon as any
/// rule fires; pairs surviving all rules are kept as candidates.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RuleSequence {
    /// Rules in execution order.
    pub rules: Vec<Rule>,
}

impl RuleSequence {
    /// Build a sequence.
    pub fn new(rules: Vec<Rule>) -> Self {
        Self { rules }
    }

    /// True iff the pair survives (no rule fires).
    pub fn keeps(&self, fv: &[f64]) -> bool {
        !self.rules.iter().any(|r| r.fires(fv))
    }

    /// All features referenced across the sequence (the only features the
    /// blocking stage must compute per pair — the caching optimization of
    /// Section 7.3).
    pub fn features(&self) -> BTreeSet<usize> {
        self.rules.iter().flat_map(|r| r.features()).collect()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff there are no rules (everything survives).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Render every rule with real feature names, one per line.
    pub fn display_with(&self, features: &crate::features::FeatureSet) -> String {
        self.rules
            .iter()
            .map(|r| r.display_with(features))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Convert to the positive CNF rule `Q` of Section 7.3: one conjunct
    /// per rule, each the disjunction of the rule's complemented
    /// predicates. A pair satisfies `Q` iff it survives the sequence.
    pub fn to_cnf(&self) -> CnfRule {
        CnfRule {
            conjuncts: self
                .rules
                .iter()
                .map(|r| r.predicates.iter().map(Predicate::complement).collect())
                .collect(),
        }
    }
}

/// The positive "keep" rule in conjunctive normal form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnfRule {
    /// Conjuncts; each is a disjunction of predicates.
    pub conjuncts: Vec<Vec<Predicate>>,
}

impl CnfRule {
    /// True iff every conjunct has a satisfied disjunct.
    pub fn satisfied(&self, fv: &[f64]) -> bool {
        self.conjuncts.iter().all(|c| c.iter().any(|p| p.eval(fv)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(feature: usize, t: f64) -> Predicate {
        Predicate {
            feature,
            op: SplitOp::Le,
            threshold: t,
            nan_is_high: true,
        }
    }
    fn gt(feature: usize, t: f64) -> Predicate {
        Predicate {
            feature,
            op: SplitOp::Gt,
            threshold: t,
            nan_is_high: true,
        }
    }

    #[test]
    fn rule_fires_on_conjunction() {
        // Example 5 rule R2: exact_match(year) <= 0.5 AND abs_diff(price) > 10.
        let r = Rule {
            predicates: vec![le(0, 0.5), gt(1, 10.0)],
        };
        assert!(r.fires(&[0.0, 25.0]));
        assert!(!r.fires(&[1.0, 25.0]));
        assert!(!r.fires(&[0.0, 5.0]));
        // Missing values are "maximally similar" (nan_is_high=true here):
        // they fail Le, so the rule cannot fire on missing data.
        assert!(!r.fires(&[f64::NAN, 25.0]));
        assert!(r.fires(&[0.0, f64::NAN])); // NaN satisfies Gt when high
    }

    #[test]
    fn simplification_collapses_thresholds() {
        let r = Rule {
            predicates: vec![le(0, 0.5), le(0, 0.2), gt(1, 0.1), gt(1, 0.4), le(2, 0.9)],
        };
        let s = r.simplified();
        assert_eq!(s.predicates.len(), 3);
        assert!(s.predicates.contains(&le(0, 0.2)));
        assert!(s.predicates.contains(&gt(1, 0.4)));
        assert!(s.predicates.contains(&le(2, 0.9)));
    }

    #[test]
    fn simplification_preserves_semantics() {
        let r = Rule {
            predicates: vec![le(0, 0.5), le(0, 0.2), gt(0, 0.05)],
        };
        let s = r.simplified();
        for v in [-1.0, 0.0, 0.04, 0.05, 0.1, 0.2, 0.21, 0.5, 0.6, f64::NAN] {
            assert_eq!(r.fires(&[v]), s.fires(&[v]), "v={v}");
        }
    }

    #[test]
    fn cnf_equals_sequence_survival() {
        let seq = RuleSequence::new(vec![
            Rule {
                predicates: vec![le(0, 0.6)],
            },
            Rule {
                predicates: vec![le(1, 0.5), gt(2, 10.0)],
            },
        ]);
        let cnf = seq.to_cnf();
        // Exhaustive-ish grid including NaN.
        let vals = [f64::NAN, 0.0, 0.5, 0.55, 0.6, 0.7, 1.0, 5.0, 10.0, 15.0];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let fv = [a, b, c];
                    assert_eq!(seq.keeps(&fv), cnf.satisfied(&fv), "fv = {fv:?}");
                }
            }
        }
    }

    #[test]
    fn empty_sequence_keeps_everything() {
        let seq = RuleSequence::default();
        assert!(seq.keeps(&[0.0]));
        assert!(seq.to_cnf().satisfied(&[0.0]));
    }

    #[test]
    fn canonical_key_ignores_order() {
        let r1 = Rule {
            predicates: vec![le(0, 0.5), gt(1, 2.0)],
        };
        let r2 = Rule {
            predicates: vec![gt(1, 2.0), le(0, 0.5)],
        };
        assert_eq!(r1.canonical_key(), r2.canonical_key());
    }

    #[test]
    fn sequence_features_union() {
        let seq = RuleSequence::new(vec![
            Rule {
                predicates: vec![le(3, 0.1)],
            },
            Rule {
                predicates: vec![le(1, 0.1), gt(3, 0.9)],
            },
        ]);
        let f: Vec<usize> = seq.features().into_iter().collect();
        assert_eq!(f, vec![1, 3]);
    }
}
