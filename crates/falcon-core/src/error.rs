//! The top-level error type surfaced by Falcon's operators and driver.

use crate::analyze::PlanAnalysisError;
use crate::physical::BlockingError;
use crate::stage::CancelReason;
use falcon_crowd::JournalError;
use falcon_dataflow::DataflowError;
use falcon_index::IndexError;
use falcon_table::TupleId;
use std::fmt;

/// Any failure an operator or the end-to-end driver can report.
///
/// Operators return this instead of panicking so that a malformed input or
/// a lost worker fails one workflow, not the whole service — the
/// "hands-off" requirement of the paper means nobody is watching a
/// terminal for a backtrace.
#[derive(Debug, Clone, PartialEq)]
pub enum FalconError {
    /// The dataflow engine lost a worker or an engine invariant broke.
    Dataflow(DataflowError),
    /// The blocking executor rejected or failed the candidate-set job.
    Blocking(BlockingError),
    /// An index could not be built from its filter spec.
    Index(IndexError),
    /// Pre-flight plan analysis rejected the run before any job started.
    Plan(Vec<PlanAnalysisError>),
    /// An operator received a pair referencing a tuple id absent from the
    /// named table.
    UnknownTupleId {
        /// `"A"` or `"B"`.
        table: &'static str,
        /// The offending id.
        id: TupleId,
    },
    /// An operator that needs a non-empty input got an empty one.
    EmptyInput {
        /// What was empty (e.g. `"feature vectors"`).
        what: &'static str,
    },
    /// The checkpoint journal of a resumable run could not be opened,
    /// replayed or written.
    Journal {
        /// The underlying [`JournalError`], rendered (kept as text so
        /// `FalconError` stays `Clone + PartialEq`).
        message: String,
    },
    /// A gated run was cancelled by its scheduler (deadline, quota,
    /// shutdown, or a simulated service crash). The driver unwound at a
    /// stage boundary with its crowd journal finalized, so the run can
    /// be resumed from that journal without re-asking the crowd.
    Cancelled {
        /// Why the scheduler cancelled the run.
        reason: CancelReason,
    },
}

impl fmt::Display for FalconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Dataflow(e) => write!(f, "dataflow failure: {e}"),
            Self::Blocking(e) => write!(f, "blocking failure: {e}"),
            Self::Index(e) => write!(f, "index build failure: {e}"),
            Self::Plan(errors) => {
                write!(f, "plan analysis rejected the run: ")?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            Self::UnknownTupleId { table, id } => {
                write!(f, "pair references id {id} absent from table {table}")
            }
            Self::EmptyInput { what } => write!(f, "operator input {what:?} is empty"),
            Self::Journal { message } => write!(f, "checkpoint journal failure: {message}"),
            Self::Cancelled { reason } => write!(f, "run cancelled by scheduler: {reason}"),
        }
    }
}

impl std::error::Error for FalconError {}

impl From<DataflowError> for FalconError {
    fn from(e: DataflowError) -> Self {
        Self::Dataflow(e)
    }
}

impl From<BlockingError> for FalconError {
    fn from(e: BlockingError) -> Self {
        Self::Blocking(e)
    }
}

impl From<IndexError> for FalconError {
    fn from(e: IndexError) -> Self {
        Self::Index(e)
    }
}

impl From<JournalError> for FalconError {
    fn from(e: JournalError) -> Self {
        Self::Journal {
            message: e.to_string(),
        }
    }
}
