//! Key-based blocking (KBB) baseline (Sections 2, 3.2).
//!
//! KBB groups tuples by an exact key and only considers same-key pairs.
//! Mirroring the paper's "extensive effort at KBB", [`best_kbb`] tries
//! every single attribute and every attribute pair as the key and reports
//! the one with the highest recall — KBB at its best, which on dirty data
//! still loses far more matches than Falcon's rule-based blocking.

use falcon_table::{IdPair, Table};
use std::collections::HashMap;

/// Candidate pairs agreeing exactly on the named attributes (present in
/// both tables). Tuples with any missing key value block with nothing.
pub fn kbb_candidates(a: &Table, b: &Table, key_attrs: &[&str]) -> Vec<IdPair> {
    let a_idx: Vec<usize> = key_attrs
        .iter()
        .filter_map(|k| a.schema().index_of(k))
        .collect();
    let b_idx: Vec<usize> = key_attrs
        .iter()
        .filter_map(|k| b.schema().index_of(k))
        .collect();
    if a_idx.len() != key_attrs.len() || b_idx.len() != key_attrs.len() {
        return Vec::new();
    }
    let key_of = |table: &Table, id: u32, idx: &[usize]| -> Option<String> {
        let mut parts = Vec::with_capacity(idx.len());
        for &i in idx {
            let r = table.value_ref(id, i).unwrap_or_default().render();
            if r.is_empty() {
                return None;
            }
            parts.push(r.to_lowercase());
        }
        Some(parts.join("\u{1}"))
    };
    let mut blocks: HashMap<String, Vec<u32>> = HashMap::new();
    for id in 0..a.len() as u32 {
        if let Some(k) = key_of(a, id, &a_idx) {
            blocks.entry(k).or_default().push(id);
        }
    }
    let mut out = Vec::new();
    for id in 0..b.len() as u32 {
        if let Some(k) = key_of(b, id, &b_idx) {
            if let Some(aids) = blocks.get(&k) {
                out.extend(aids.iter().map(|&aid| (aid, id)));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Result of the best-key search.
#[derive(Debug, Clone)]
pub struct KbbResult {
    /// The winning key attributes.
    pub key: Vec<String>,
    /// Blocking recall of that key.
    pub recall: f64,
    /// Candidate-set size.
    pub candidates: usize,
}

/// Try all single attributes and pairs shared by both schemas; return the
/// key with the best recall (ties broken by smaller candidate set).
///
/// A key only counts as *blocking* if its candidate set is a small
/// fraction of `A × B` — otherwise a two-valued attribute like `pub_type`
/// would "win" with near-perfect recall while leaving the cross product
/// essentially unpruned (at paper scale, trillions of pairs). The budget
/// starts at 1% of `|A × B|` and relaxes only if no key qualifies.
pub fn best_kbb(a: &Table, b: &Table, truth: &[IdPair]) -> KbbResult {
    for budget_frac in [0.01, 0.05, 0.2, 1.01] {
        let budget = (a.len() as f64 * b.len() as f64 * budget_frac).ceil() as usize;
        if let Some(r) = best_kbb_within(a, b, truth, budget) {
            return r;
        }
    }
    unreachable!("budget 1.01 admits every key")
}

fn best_kbb_within(
    a: &Table,
    b: &Table,
    truth: &[IdPair],
    max_candidates: usize,
) -> Option<KbbResult> {
    let shared: Vec<String> = a
        .schema()
        .names()
        .filter(|n| b.schema().index_of(n).is_some())
        .map(str::to_string)
        .collect();
    let mut keys: Vec<Vec<String>> = shared.iter().map(|s| vec![s.clone()]).collect();
    for i in 0..shared.len() {
        for j in (i + 1)..shared.len() {
            keys.push(vec![shared[i].clone(), shared[j].clone()]);
        }
    }
    let mut best: Option<KbbResult> = None;
    for key in keys {
        let refs: Vec<&str> = key.iter().map(String::as_str).collect();
        let cands = kbb_candidates(a, b, &refs);
        if cands.len() > max_candidates {
            continue;
        }
        let recall = crate::metrics::blocking_recall(&cands, truth);
        let candidate = KbbResult {
            key: key.clone(),
            recall,
            candidates: cands.len(),
        };
        let better = match &best {
            None => true,
            Some(b) => {
                recall > b.recall + 1e-12
                    || ((recall - b.recall).abs() <= 1e-12 && candidate.candidates < b.candidates)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_table::{AttrType, Schema, Value};

    fn tables() -> (Table, Table, Vec<IdPair>) {
        let schema = Schema::new([("isbn", AttrType::Str), ("title", AttrType::Str)]);
        let a = Table::new(
            "a",
            schema.clone(),
            vec![
                vec![Value::str("111"), Value::str("book one")],
                vec![Value::str("222"), Value::str("book two")],
                vec![Value::Null, Value::str("book three")],
            ],
        );
        let b = Table::new(
            "b",
            schema,
            vec![
                vec![Value::str("111"), Value::str("book one!")],
                vec![Value::str("333"), Value::str("book two")], // dirty isbn
                vec![Value::str("444"), Value::str("book three")],
            ],
        );
        let truth = vec![(0, 0), (1, 1), (2, 2)];
        (a, b, truth)
    }

    #[test]
    fn exact_key_blocks() {
        let (a, b, _) = tables();
        let c = kbb_candidates(&a, &b, &["isbn"]);
        assert_eq!(c, vec![(0, 0)]);
    }

    #[test]
    fn missing_keys_never_block() {
        let (a, b, _) = tables();
        let c = kbb_candidates(&a, &b, &["isbn", "title"]);
        // Only (0,0) shares isbn, but titles differ -> empty.
        assert!(c.is_empty());
    }

    #[test]
    fn best_kbb_picks_highest_recall_within_budget() {
        let (a, b, truth) = tables();
        // On a 3×3 table the 1% budget admits only single-candidate keys:
        // isbn (recall 1/3) qualifies before the budget relaxes to where
        // title (2 candidates, recall 2/3) would win.
        let r = best_kbb(&a, &b, &truth);
        assert_eq!(r.key, vec!["isbn".to_string()]);
        assert!((r.recall - 1.0 / 3.0).abs() < 1e-12);
        // With an explicit relaxed budget, title wins on recall.
        let r = best_kbb_within(&a, &b, &truth, 9).unwrap();
        assert_eq!(r.key, vec!["title".to_string()]);
        assert!((r.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_key_is_empty() {
        let (a, b, _) = tables();
        assert!(kbb_candidates(&a, &b, &["nope"]).is_empty());
    }
}
