//! Index building for `apply_blocking_rules` (Section 7.5).
//!
//! For every filterable predicate of the positive CNF rule we build a
//! [`PredicateIndex`]. Token orderings follow the paper's 3-MR-job
//! pipeline: job 1 counts token frequencies over `A`, job 2 produces the
//! global ordering, job 3 assembles the prefix (and scalar) indexes.
//!
//! Built indexes are cached by predicate key so the masking optimizer can
//! prebuild them during crowd rounds (Section 10.2, Solution 1) and
//! `apply_blocking_rules` can reuse them for free.

use crate::driver::ForcedFilter;
use crate::error::FalconError;
use crate::features::FeatureSet;
use crate::rules::RuleSequence;
use falcon_dataflow::{run_map_combine_reduce, wall_now, Cluster, Emitter};
use falcon_forest::SplitOp;
use falcon_index::{FilterSpec, IndexError, PredicateIndex, TokenOrder};
use falcon_table::{Table, TupleId};
use falcon_textsim::{TokenDict, TokenProfile, Tokenizer};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Stable cache key for a filter spec.
pub fn predicate_key(spec: &FilterSpec) -> String {
    match spec {
        FilterSpec::Equals { a_attr } => format!("eq:{a_attr}"),
        FilterSpec::Range {
            a_attr,
            width,
            relative,
        } => format!("rng:{a_attr}:{width:.6}:{relative}"),
        FilterSpec::SetSim {
            a_attr,
            sim,
            threshold,
        } => format!("set:{a_attr}:{}:{threshold:.6}", sim.name()),
        FilterSpec::EditSim { a_attr, threshold } => format!("ed:{a_attr}:{threshold:.6}"),
        FilterSpec::Signature { inner, words } => {
            format!("sig{words}:{}", predicate_key(inner))
        }
    }
}

/// Configuration of the signature pre-filter layer (the probabilistic
/// provably-lossless Bloom-signature gate in front of set-similarity
/// probes).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PreFilterConfig {
    /// Wrap every derived set-similarity filter spec in a signature
    /// pre-filter. On by default: the filter is provably lossless, the
    /// planner still decides per conjunct whether to *use* it.
    pub enabled: bool,
    /// Signature width in 64-bit words (1..=64, i.e. 64–4096 bits; the
    /// issue's sweet spot is 1–4 words). Out-of-range widths fail static
    /// verification instead of building an unsound filter.
    pub words: usize,
}

impl Default for PreFilterConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            words: 2,
        }
    }
}

/// Per-conjunct filter layout for a rule sequence: for rule `i`,
/// `conjuncts[i][j]` is the filter spec of the j-th complemented predicate
/// (`None` = unfilterable predicate). The paired `b_idx` is the B-side
/// attribute index the probe reads.
#[derive(Debug, Clone)]
pub struct ConjunctSpecs {
    /// `specs[i][j]`: filter spec + B-attr index for predicate `j` of
    /// conjunct `i`, or `None` when that predicate admits no filter.
    pub specs: Vec<Vec<Option<(FilterSpec, usize)>>>,
    /// `keys[i][j]`: the [`predicate_key`] of `specs[i][j]`, computed
    /// once at construction. Index build and probe paths look up the
    /// cache through these instead of re-formatting the key per
    /// conjunct on every build/probe (the hot path during masked
    /// prebuild and speculation).
    keys: Vec<Vec<Option<String>>>,
}

impl ConjunctSpecs {
    /// Wrap raw per-conjunct specs, computing every cache key once.
    pub fn from_specs(specs: Vec<Vec<Option<(FilterSpec, usize)>>>) -> ConjunctSpecs {
        let keys = specs
            .iter()
            .map(|c| {
                c.iter()
                    .map(|s| s.as_ref().map(|(spec, _)| predicate_key(spec)))
                    .collect()
            })
            .collect();
        ConjunctSpecs { specs, keys }
    }

    /// Cached [`predicate_key`] for predicate `pi` of conjunct `ci`
    /// (`None` when that predicate admits no filter).
    pub fn key_of(&self, ci: usize, pi: usize) -> Option<&str> {
        self.keys.get(ci)?.get(pi)?.as_deref()
    }
    /// Derive the specs from a rule sequence over a blocking feature set
    /// (Section 7.3, step 2: "analyze CNF rule to infer index-based
    /// filters").
    pub fn derive(seq: &RuleSequence, features: &FeatureSet) -> ConjunctSpecs {
        Self::derive_with(seq, features, &[])
    }

    /// [`ConjunctSpecs::derive`] with per-feature filter overrides.
    ///
    /// A forced spec replaces the derived spec for a predicate only when
    /// the substitution is provably recall-safe — it must describe a
    /// *superset* of the derived filter's candidates on the same indexed
    /// attribute (a smaller similarity threshold, or a wider range of the
    /// same kind) and discharge its own proof obligations. Anything else
    /// keeps the derived spec: an override may weaken pruning, never
    /// strengthen it, so blocking stays lossless. Unfilterable predicates
    /// stay unfiltered (no bound exists to relax).
    pub fn derive_with(
        seq: &RuleSequence,
        features: &FeatureSet,
        forced: &[ForcedFilter],
    ) -> ConjunctSpecs {
        let specs = seq
            .rules
            .iter()
            .map(|rule| {
                rule.predicates
                    .iter()
                    .map(|p| {
                        let q = p.complement(); // positive-rule predicate
                        let f = features.get(q.feature);
                        FilterSpec::from_predicate(
                            f.sim,
                            &f.a_attr,
                            q.op == SplitOp::Gt,
                            q.threshold,
                        )
                        .map(|derived| {
                            let spec = forced
                                .iter()
                                .find(|ff| ff.feature == q.feature)
                                .filter(|ff| safe_substitution(&ff.spec, &derived))
                                .map_or(derived, |ff| ff.spec.clone());
                            (spec, f.b_idx)
                        })
                    })
                    .collect()
            })
            .collect();
        Self::from_specs(specs)
    }

    /// Wrap every set-similarity spec in a signature pre-filter of the
    /// configured width (a no-op when disabled). Wrapping happens *after*
    /// forced-filter substitution so overrides are judged against the
    /// base specs; non-set-based specs pass through unchanged
    /// ([`FilterSpec::with_signature`] only wraps `SetSim`).
    pub fn with_signatures(mut self, prefilter: &PreFilterConfig) -> ConjunctSpecs {
        if !prefilter.enabled {
            return self;
        }
        for conjunct in &mut self.specs {
            for slot in conjunct.iter_mut().flatten() {
                slot.0 = slot.0.clone().with_signature(prefilter.words);
            }
        }
        // Wrapping changed the specs, so the hoisted keys must follow.
        Self::from_specs(self.specs)
    }

    /// Indices of fully-filterable conjuncts (every disjunct has a filter).
    pub fn filterable(&self) -> Vec<usize> {
        self.specs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty() && c.iter().all(Option::is_some))
            .map(|(i, _)| i)
            .collect()
    }

    /// All distinct specs across conjuncts.
    pub fn all_specs(&self) -> Vec<FilterSpec> {
        self.all_specs_keyed()
            .into_iter()
            .map(|(s, _)| s.clone())
            .collect()
    }

    /// All distinct `(spec, cached key)` pairs across conjuncts, deduped
    /// by the hoisted keys (no re-formatting).
    pub fn all_specs_keyed(&self) -> Vec<(&FilterSpec, &str)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (c, ck) in self.specs.iter().zip(&self.keys) {
            for (s, k) in c.iter().zip(ck) {
                if let (Some((spec, _)), Some(key)) = (s, k) {
                    if seen.insert(key.as_str()) {
                        out.push((spec, key.as_str()));
                    }
                }
            }
        }
        out
    }
}

/// True when probing `forced` can only return a superset of the
/// candidates probing `derived` returns (and `forced` discharges its own
/// recall-safety obligations) — the condition under which substituting it
/// keeps blocking lossless.
fn safe_substitution(forced: &FilterSpec, derived: &FilterSpec) -> bool {
    if forced.a_attr() != derived.a_attr() || forced.verify().is_err() {
        return false;
    }
    match (forced, derived) {
        // A smaller similarity threshold admits every pair the larger one
        // admits (sim > t is monotone in t).
        (
            FilterSpec::SetSim {
                sim: fs,
                threshold: ft,
                ..
            },
            FilterSpec::SetSim {
                sim: ds,
                threshold: dt,
                ..
            },
        ) => fs == ds && ft <= dt,
        (FilterSpec::EditSim { threshold: ft, .. }, FilterSpec::EditSim { threshold: dt, .. }) => {
            ft <= dt
        }
        // A wider window of the same kind admits every pair the narrower
        // one admits (dist <= w is monotone in w).
        (
            FilterSpec::Range {
                width: fw,
                relative: fr,
                ..
            },
            FilterSpec::Range {
                width: dw,
                relative: dr,
                ..
            },
        ) => fr == dr && fw >= dw,
        // Equality filtering has no parameter to relax; anything else is
        // a kind mismatch.
        _ => false,
    }
}

/// Cache of built indexes and token orderings.
#[derive(Default)]
pub struct BuiltIndexes {
    /// Predicate key → built index.
    pub indexes: HashMap<String, Arc<PredicateIndex>>,
    /// `(A-side attribute index, tokenizer)` → global token order. Keying
    /// on the pair (not a formatted string) keeps lookups allocation-free.
    pub orders: HashMap<(usize, Tokenizer), Arc<TokenOrder>>,
    /// Complete A-side token profile + dictionary, when the optimizer
    /// prebuilt one; [`BuiltIndexes::build_order`] then counts token
    /// frequencies from the profile columns instead of re-tokenizing `A`
    /// with an MR job.
    profile: Option<(Arc<TokenProfile>, Arc<TokenDict>)>,
}

impl BuiltIndexes {
    /// Fresh empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a **complete** A-side profile for token-order fast paths.
    /// Incomplete (masked) profiles are rejected: frequency counts over a
    /// partial table would produce a different ordering than the MR scan.
    pub fn set_profile(&mut self, profile: TokenProfile, dict: TokenDict) {
        if profile.is_complete() {
            self.profile = Some((Arc::new(profile), Arc::new(dict)));
        }
    }

    /// The installed A-side profile, if any.
    pub fn profile(&self) -> Option<&(Arc<TokenProfile>, Arc<TokenDict>)> {
        self.profile.as_ref()
    }

    /// Total estimated bytes of a set of predicate keys.
    pub fn bytes_of(&self, keys: &[String]) -> usize {
        keys.iter().map(|k| self.bytes_of_key(k)).sum()
    }

    /// Estimated bytes of one built index (zero when absent).
    pub fn bytes_of_key(&self, key: &str) -> usize {
        self.indexes.get(key).map_or(0, |i| i.estimated_bytes())
    }

    /// Build the token order for `(attr, tokenizer)` over table `A`;
    /// returns the (simulated) build duration.
    ///
    /// When a complete A-side token profile is installed, frequencies are
    /// counted from its pre-tokenized column (token sets per tuple are
    /// identical to the MR scan's, so the resulting order is too);
    /// otherwise the paper's frequency-count MR job runs.
    pub fn build_order(
        &mut self,
        cluster: &Cluster,
        a: &Table,
        attr: &str,
        tokenizer: Tokenizer,
    ) -> Result<Duration, FalconError> {
        let attr_idx = a
            .schema()
            .index_of(attr)
            .ok_or_else(|| IndexError::MissingAttribute { attr: attr.into() })?;
        let key = (attr_idx, tokenizer);
        if self.orders.contains_key(&key) {
            return Ok(Duration::ZERO);
        }
        if let Some((profile, dict)) = &self.profile {
            if let Some(col) = profile.column(key) {
                let t0 = wall_now();
                let mut counts: HashMap<u32, usize> = HashMap::new();
                for ids in col {
                    for &id in ids {
                        *counts.entry(id).or_default() += 1;
                    }
                }
                let order = TokenOrder::from_frequencies(
                    counts
                        .into_iter()
                        .filter_map(|(id, n)| dict.resolve(id).map(|s| (s.to_string(), n))),
                );
                self.orders.insert(key, Arc::new(order));
                return Ok(t0.elapsed());
            }
        }
        // Split by tuple id: mappers pull rendered values straight from
        // the column instead of shipping materialized row clones.
        let splits: Vec<Vec<TupleId>> = a
            .splits(cluster.threads() * 2)
            .into_iter()
            .map(|r| (r.start as TupleId..r.end as TupleId).collect())
            .collect();
        // MR job 1: token frequencies (with a combiner, so each map task
        // ships one count per distinct token instead of one record per
        // occurrence).
        let t0 = wall_now();
        let out = run_map_combine_reduce(
            cluster,
            splits,
            cluster.threads(),
            move |&id: &TupleId, e: &mut Emitter<String, u32>| {
                let mut s = String::new();
                if let Some(v) = a.value_ref(id, attr_idx) {
                    v.render_into(&mut s);
                }
                for tok in tokenizer.tokenize(&s) {
                    e.emit(tok, 1);
                }
            },
            |_tok: &String, counts: Vec<u32>| counts.iter().sum(),
            |tok: &String, counts: Vec<u32>, out: &mut Vec<(String, usize)>| {
                out.push((tok.clone(), counts.iter().sum::<u32>() as usize));
            },
        )?;
        // "MR job 2": global ordering by ascending frequency.
        let order = TokenOrder::from_frequencies(out.output.into_iter());
        let dur = out.stats.sim_duration(&cluster.config).max(t0.elapsed());
        self.orders.insert(key, Arc::new(order));
        Ok(dur)
    }

    /// Build (or reuse) the index for one spec; returns the build duration
    /// (zero when cached).
    pub fn build_spec(
        &mut self,
        cluster: &Cluster,
        a: &Table,
        spec: &FilterSpec,
    ) -> Result<Duration, FalconError> {
        let key = predicate_key(spec);
        self.build_spec_keyed(cluster, a, spec, &key)
    }

    /// [`BuiltIndexes::build_spec`] with the caller's precomputed
    /// [`predicate_key`] (see [`ConjunctSpecs::all_specs_keyed`]), so hot
    /// build loops don't re-format keys per conjunct.
    pub fn build_spec_keyed(
        &mut self,
        cluster: &Cluster,
        a: &Table,
        spec: &FilterSpec,
        key: &str,
    ) -> Result<Duration, FalconError> {
        if self.indexes.contains_key(key) {
            return Ok(Duration::ZERO);
        }
        let mut dur = Duration::ZERO;
        // A signature wrapper indexes the same tokens as its inner
        // set-similarity spec: look through it for the order prebuild.
        let base = spec.without_signature();
        let order = if let FilterSpec::SetSim { a_attr, sim, .. } = base {
            let tokenizer = sim
                .tokenizer()
                .ok_or_else(|| IndexError::NotSetBased { sim: sim.name() })?;
            dur += self.build_order(cluster, a, a_attr, tokenizer)?;
            let attr_idx =
                a.schema()
                    .index_of(a_attr)
                    .ok_or_else(|| IndexError::MissingAttribute {
                        attr: a_attr.clone(),
                    })?;
            self.orders
                .get(&(attr_idx, tokenizer))
                .map(|o| (**o).clone())
        } else {
            None
        };
        // "MR job 3": assemble the index (single pass over A).
        let t0 = wall_now();
        let idx = PredicateIndex::try_build(a, spec, order)?;
        dur += t0.elapsed();
        self.indexes.insert(key.to_string(), Arc::new(idx));
        Ok(dur)
    }

    /// Build all specs, returning the total build duration.
    pub fn build_all(
        &mut self,
        cluster: &Cluster,
        a: &Table,
        specs: &[FilterSpec],
    ) -> Result<Duration, FalconError> {
        let mut total = Duration::ZERO;
        for s in specs {
            total += self.build_spec(cluster, a, s)?;
        }
        Ok(total)
    }

    /// Fetch a built index.
    pub fn get(&self, spec: &FilterSpec) -> Option<Arc<PredicateIndex>> {
        self.get_by_key(&predicate_key(spec))
    }

    /// Fetch a built index by its precomputed [`predicate_key`] — the
    /// allocation-free lookup the probe bundle assembly uses.
    pub fn get_by_key(&self, key: &str) -> Option<Arc<PredicateIndex>> {
        self.indexes.get(key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::generate_features;
    use crate::rules::{Predicate, Rule};
    use falcon_dataflow::ClusterConfig;
    use falcon_table::{AttrType, Schema, Value};
    use falcon_textsim::SimFunction;

    fn tables() -> (Table, Table) {
        let schema = Schema::new([("title", AttrType::Str), ("price", AttrType::Num)]);
        let rows = |n: usize| {
            (0..n).map(move |i| {
                vec![
                    Value::str(format!("gadget number {i} deluxe")),
                    Value::num(i as f64),
                ]
            })
        };
        (
            Table::new("a", schema.clone(), rows(30)),
            Table::new("b", schema, rows(30)),
        )
    }

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(2)).with_threads(2)
    }

    #[test]
    fn derive_marks_unfilterable_predicates() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        // Find a jaccard_word(title) feature and an abs_diff(price) one.
        let jac = lib
            .blocking
            .features
            .iter()
            .position(|f| f.sim == SimFunction::Jaccard(Tokenizer::Word))
            .unwrap();
        let abs = lib
            .blocking
            .features
            .iter()
            .position(|f| f.sim == SimFunction::AbsDiff)
            .unwrap();
        let seq = RuleSequence::new(vec![
            // jaccard <= 0.6 -> drop : complement jaccard > 0.6, filterable.
            Rule {
                predicates: vec![Predicate {
                    feature: jac,
                    op: SplitOp::Le,
                    threshold: 0.6,
                    nan_is_high: true,
                }],
            },
            // abs_diff <= 5 -> drop : complement abs_diff > 5, NOT filterable.
            Rule {
                predicates: vec![Predicate {
                    feature: abs,
                    op: SplitOp::Le,
                    threshold: 5.0,
                    nan_is_high: false,
                }],
            },
        ]);
        let cs = ConjunctSpecs::derive(&seq, &lib.blocking);
        assert_eq!(cs.filterable(), vec![0]);
        assert_eq!(cs.all_specs().len(), 1);
    }

    #[test]
    fn derive_with_substitutes_only_recall_safe_overrides() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let jac = lib
            .blocking
            .features
            .iter()
            .position(|f| f.sim == SimFunction::Jaccard(Tokenizer::Word))
            .unwrap();
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![Predicate {
                feature: jac,
                op: SplitOp::Le,
                threshold: 0.6,
                nan_is_high: true,
            }],
        }]);
        let forced_spec = |threshold: f64| ForcedFilter {
            feature: jac,
            spec: FilterSpec::SetSim {
                a_attr: lib.blocking.get(jac).a_attr.clone(),
                sim: SimFunction::Jaccard(Tokenizer::Word),
                threshold,
            },
        };
        let spec_threshold = |cs: &ConjunctSpecs| match &cs.specs[0][0] {
            Some((FilterSpec::SetSim { threshold, .. }, _)) => *threshold,
            other => panic!("unexpected spec {other:?}"),
        };
        // Weaker threshold: a superset of candidates, substituted.
        let cs = ConjunctSpecs::derive_with(&seq, &lib.blocking, &[forced_spec(0.3)]);
        assert_eq!(spec_threshold(&cs), 0.3);
        // Stronger threshold would prune satisfying pairs: kept derived.
        let cs = ConjunctSpecs::derive_with(&seq, &lib.blocking, &[forced_spec(0.9)]);
        assert_eq!(spec_threshold(&cs), 0.6);
        // An override failing its own obligations is never substituted.
        let cs = ConjunctSpecs::derive_with(&seq, &lib.blocking, &[forced_spec(0.0)]);
        assert_eq!(spec_threshold(&cs), 0.6);
        // A kind mismatch (EditSim onto a jaccard predicate) is inert.
        let mismatch = ForcedFilter {
            feature: jac,
            spec: FilterSpec::EditSim {
                a_attr: lib.blocking.get(jac).a_attr.clone(),
                threshold: 0.3,
            },
        };
        let cs = ConjunctSpecs::derive_with(&seq, &lib.blocking, &[mismatch]);
        assert_eq!(spec_threshold(&cs), 0.6);
    }

    #[test]
    fn with_signatures_wraps_only_set_sim_specs() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let jac = lib
            .blocking
            .features
            .iter()
            .position(|f| f.sim == SimFunction::Jaccard(Tokenizer::Word))
            .unwrap();
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![Predicate {
                feature: jac,
                op: SplitOp::Le,
                threshold: 0.6,
                nan_is_high: true,
            }],
        }]);
        let base = ConjunctSpecs::derive(&seq, &lib.blocking);
        let wrapped = base.clone().with_signatures(&PreFilterConfig::default());
        match &wrapped.specs[0][0] {
            Some((FilterSpec::Signature { inner, words }, _)) => {
                assert_eq!(*words, PreFilterConfig::default().words);
                assert!(matches!(**inner, FilterSpec::SetSim { .. }));
            }
            other => panic!("expected signature wrapper, got {other:?}"),
        }
        // Disabled config is the identity.
        let off = base.clone().with_signatures(&PreFilterConfig {
            enabled: false,
            words: 2,
        });
        assert!(matches!(
            &off.specs[0][0],
            Some((FilterSpec::SetSim { .. }, _))
        ));
        // The wrapper gets its own cache key, distinct from the exact
        // spec's, so both index variants can coexist in the cache.
        let (sig_spec, _) = wrapped.specs[0][0].clone().unwrap();
        let (set_spec, _) = base.specs[0][0].clone().unwrap();
        assert_ne!(predicate_key(&sig_spec), predicate_key(&set_spec));
        assert!(predicate_key(&sig_spec).starts_with("sig2:set:"));
    }

    #[test]
    fn build_signature_spec_reuses_token_order() {
        let (a, _) = tables();
        let mut built = BuiltIndexes::new();
        let spec = FilterSpec::SetSim {
            a_attr: "title".into(),
            sim: SimFunction::Jaccard(Tokenizer::Word),
            threshold: 0.5,
        }
        .with_signature(2);
        built.build_spec(&cluster(), &a, &spec).expect("build");
        let idx = built.get(&spec).expect("cached");
        assert!(matches!(*idx, PredicateIndex::Signature { .. }));
        // The token order was built once and is shared with the exact spec.
        let title = a.schema().index_of("title").unwrap();
        assert!(built.orders.contains_key(&(title, Tokenizer::Word)));
        let d = built
            .build_order(&cluster(), &a, "title", Tokenizer::Word)
            .expect("order");
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    fn build_caches_by_key() {
        let (a, b) = tables();
        let _ = b;
        let mut built = BuiltIndexes::new();
        let spec = FilterSpec::SetSim {
            a_attr: "title".into(),
            sim: SimFunction::Jaccard(Tokenizer::Word),
            threshold: 0.5,
        };
        let d1 = built.build_spec(&cluster(), &a, &spec).expect("build");
        assert!(d1 > Duration::ZERO);
        let d2 = built.build_spec(&cluster(), &a, &spec).expect("build");
        assert_eq!(d2, Duration::ZERO);
        assert!(built.get(&spec).is_some());
        assert!(built.bytes_of(&[predicate_key(&spec)]) > 0);
    }

    #[test]
    fn order_built_once_per_attr_tokenizer() {
        let (a, _) = tables();
        let mut built = BuiltIndexes::new();
        let d1 = built
            .build_order(&cluster(), &a, "title", Tokenizer::Word)
            .expect("order");
        let d2 = built
            .build_order(&cluster(), &a, "title", Tokenizer::Word)
            .expect("order");
        assert!(d1 > Duration::ZERO);
        assert_eq!(d2, Duration::ZERO);
    }

    #[test]
    fn profile_fast_path_builds_identical_order() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let tok = Tokenizer::Word;
        let title = a.schema().index_of("title").unwrap();

        // Reference: MR frequency-count job.
        let mut mr = BuiltIndexes::new();
        mr.build_order(&cluster(), &a, "title", tok).expect("order");

        // Fast path: count frequencies from a prebuilt complete profile.
        let mut fast = BuiltIndexes::new();
        let (a_spec, _) = crate::tokens::requirements(&lib.blocking.features);
        let mut dict = falcon_textsim::TokenDict::new();
        let profile = crate::tokens::build_profile_seq(&a, &a_spec, &mut dict);
        fast.set_profile(profile, dict);
        fast.build_order(&cluster(), &a, "title", tok)
            .expect("order");

        let o_mr = &mr.orders[&(title, tok)];
        let o_fast = &fast.orders[&(title, tok)];
        for t in a.rows() {
            for w in tok.tokenize(&t.value(title).render()) {
                assert_eq!(o_mr.rank(&w), o_fast.rank(&w), "token {w:?}");
            }
        }
    }

    #[test]
    fn incomplete_profile_is_not_installed() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let (a_spec, _) = crate::tokens::requirements(&lib.blocking.features);
        let mut dict = falcon_textsim::TokenDict::new();
        let mut mask = vec![false; a.len()];
        mask[0] = true;
        let (profile, _) =
            crate::tokens::build_profile_par(&cluster(), &a, &a_spec, &mut dict, Some(&mask))
                .expect("profile");
        let mut built = BuiltIndexes::new();
        built.set_profile(profile, dict);
        assert!(built.profile().is_none());
    }
}
