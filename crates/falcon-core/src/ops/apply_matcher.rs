//! `apply_matcher` (Section 9): apply a trained matcher to every candidate
//! pair — a map-only job.

use crate::error::FalconError;
use crate::fv::FvSet;
use falcon_dataflow::{run_map_only, Cluster, JobStats};
use falcon_forest::Forest;
use falcon_table::IdPair;

/// Output of `apply_matcher`.
#[derive(Debug)]
pub struct ApplyMatcherOutput {
    /// Pairs predicted "match".
    pub matches: Vec<IdPair>,
    /// Job statistics.
    pub stats: JobStats,
}

/// Predict every pair in `fvs` with `forest`; return the matches.
pub fn apply_matcher(
    cluster: &Cluster,
    forest: &Forest,
    fvs: &FvSet,
) -> Result<ApplyMatcherOutput, FalconError> {
    // Each split carries one whole index chunk as a single record, so the
    // map task predicts the chunk with the compiled forest's batch kernel;
    // the scoped dataflow workers borrow the flat forest and vectors
    // directly instead of cloning them.
    let flat = forest.flatten();
    let n_pairs = fvs.len();
    let chunk = n_pairs.div_ceil((cluster.threads() * 2).max(1)).max(1);
    let splits: Vec<Vec<Vec<usize>>> = (0..n_pairs)
        .collect::<Vec<_>>()
        .chunks(chunk)
        .map(|c| vec![c.to_vec()])
        .collect();
    let mut out = run_map_only(cluster, splits, |idx_chunk: &Vec<usize>, out| {
        let gathered: Vec<(&IdPair, &[f64])> = idx_chunk
            .iter()
            .filter_map(|&i| match (fvs.pairs.get(i), fvs.fvs.get(i)) {
                (Some(pair), Some(fv)) => Some((pair, fv.as_slice())),
                _ => None,
            })
            .collect();
        let mut votes = Vec::new();
        flat.count_votes_into(gathered.len(), |j| gathered[j].1, &mut votes);
        for ((pair, _), &v) in gathered.iter().zip(&votes) {
            if flat.predict_from_votes(v) {
                out.push(**pair);
            }
        }
    })?;
    // Chunk-as-record wrapping counted chunks; restore the true count.
    out.stats.input_records = n_pairs;
    let mut matches = out.output;
    matches.sort_unstable();
    Ok(ApplyMatcherOutput {
        matches,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_dataflow::ClusterConfig;
    use falcon_forest::{Dataset, ForestConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn predicts_matches() {
        let mut d = Dataset::new();
        for i in 0..100 {
            let v = i as f64 / 100.0;
            d.push(vec![v], v > 0.5);
        }
        let forest = Forest::train(
            &d,
            &ForestConfig::default(),
            &mut SmallRng::seed_from_u64(1),
        );
        let mut fvs = FvSet::default();
        for i in 0..100u32 {
            fvs.pairs.push((i, i));
            fvs.fvs.push(vec![i as f64 / 100.0]);
        }
        let cluster = Cluster::new(ClusterConfig::small(2)).with_threads(2);
        let out = apply_matcher(&cluster, &forest, &fvs).expect("apply_matcher");
        assert!(!out.matches.is_empty());
        for (a, _) in &out.matches {
            assert!(*a > 45, "unexpected match at {a}");
        }
        assert_eq!(out.stats.input_records, 100);
    }

    #[test]
    fn empty_input_ok() {
        let mut d = Dataset::new();
        d.push(vec![0.0], false);
        d.push(vec![1.0], true);
        let forest = Forest::train(
            &d,
            &ForestConfig::default(),
            &mut SmallRng::seed_from_u64(1),
        );
        let cluster = Cluster::new(ClusterConfig::small(1)).with_threads(1);
        let out = apply_matcher(&cluster, &forest, &FvSet::default()).expect("apply_matcher");
        assert!(out.matches.is_empty());
    }
}
