//! The Accuracy Estimator module of Corleone's EM workflow (Figure 1 of
//! the paper; listed in Section 12 as the next operator to add to
//! Falcon's plans).
//!
//! Estimates the matcher's precision and recall **over the candidate set**
//! using only crowd labels — no ground truth. Stratified sampling: one
//! stratum of predicted-positive pairs (estimates precision directly) and
//! one of predicted-negative pairs (estimates the false-negative density,
//! which combined with the strata sizes yields recall). Normal-
//! approximation error margins with finite-population correction, like
//! `eval_rules`.

use crate::fv::FvSet;
use crate::ops::eval_rules::error_margin;
use crate::timeline::Timeline;
use falcon_crowd::{Crowd, CrowdSession};
use falcon_forest::Forest;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for the estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Pairs sampled from the predicted-positive stratum.
    pub positive_sample: usize,
    /// Pairs sampled from the predicted-negative stratum.
    pub negative_sample: usize,
    /// Pairs per crowd round (paper HIT shape: 20).
    pub batch: usize,
    /// z-value for the confidence level.
    pub z: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            positive_sample: 60,
            negative_sample: 60,
            batch: 20,
            z: 1.96,
            seed: 31,
        }
    }
}

/// Crowd-estimated matcher accuracy over a candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyEstimate {
    /// Estimated precision.
    pub precision: f64,
    /// Error margin on precision.
    pub precision_margin: f64,
    /// Estimated recall (relative to the candidate set).
    pub recall: f64,
    /// Error margin on recall (first-order propagation).
    pub recall_margin: f64,
    /// Estimated F1.
    pub f1: f64,
    /// Crowd questions spent.
    pub questions: usize,
}

/// Estimate matcher accuracy on `fvs` with crowd labels.
pub fn estimate_accuracy<C: Crowd>(
    session: &mut CrowdSession<C>,
    timeline: &mut Timeline,
    forest: &Forest,
    fvs: &FvSet,
    cfg: &EstimatorConfig,
) -> AccuracyEstimate {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x41434345);
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    // Stratify with one batch pass over the compiled forest.
    for (i, pred) in forest
        .flatten()
        .predict_batch(&fvs.fvs)
        .into_iter()
        .enumerate()
    {
        if pred {
            positives.push(i);
        } else {
            negatives.push(i);
        }
    }
    let (n_pos, n_neg) = (positives.len(), negatives.len());
    positives.shuffle(&mut rng);
    negatives.shuffle(&mut rng);
    positives.truncate(cfg.positive_sample);
    negatives.truncate(cfg.negative_sample);

    let mut label_all = |idxs: &[usize]| -> Vec<bool> {
        let mut labels = Vec::with_capacity(idxs.len());
        for chunk in idxs.chunks(cfg.batch.max(1)) {
            let pairs: Vec<_> = chunk.iter().map(|&i| fvs.pairs[i]).collect();
            let (answers, latency) = session.label_batch(&pairs);
            timeline.crowd("accuracy_estimator", latency);
            labels.extend(answers.into_iter().map(|(_, l)| l));
        }
        labels
    };

    let pos_labels = label_all(&positives);
    let neg_labels = label_all(&negatives);
    let questions = pos_labels.len() + neg_labels.len();

    // Precision: fraction of sampled predicted-positives that are true.
    let tp_rate = if pos_labels.is_empty() {
        0.0
    } else {
        pos_labels.iter().filter(|l| **l).count() as f64 / pos_labels.len() as f64
    };
    let precision_margin = error_margin(tp_rate, pos_labels.len(), n_pos.max(2), cfg.z);

    // False-negative density among predicted negatives.
    let fn_rate = if neg_labels.is_empty() {
        0.0
    } else {
        neg_labels.iter().filter(|l| **l).count() as f64 / neg_labels.len() as f64
    };
    let fn_margin = error_margin(fn_rate, neg_labels.len(), n_neg.max(2), cfg.z);

    // Scale rates by strata sizes: TP ≈ tp_rate·|P|, FN ≈ fn_rate·|N|.
    let tp = tp_rate * n_pos as f64;
    let fn_ = fn_rate * n_neg as f64;
    let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
    // First-order margin propagation for recall.
    let recall_margin = if tp + fn_ > 0.0 {
        let dr_dtp = fn_ / (tp + fn_).powi(2);
        let dr_dfn = tp / (tp + fn_).powi(2);
        (dr_dtp * precision_margin * n_pos as f64).hypot(dr_dfn * fn_margin * n_neg as f64)
    } else {
        1.0
    }
    .min(1.0);

    let f1 = if tp_rate + recall > 0.0 {
        2.0 * tp_rate * recall / (tp_rate + recall)
    } else {
        0.0
    };
    AccuracyEstimate {
        precision: tp_rate,
        precision_margin,
        recall,
        recall_margin,
        f1,
        questions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_crowd::sim::{GroundTruth, OracleCrowd};
    use falcon_forest::{Dataset, ForestConfig};
    use rand::Rng;

    /// Candidate universe where feature 0 separates matches, and a forest
    /// trained to a known (imperfect) quality.
    fn fixture(flip_train: f64) -> (FvSet, GroundTruth, Forest) {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut fvs = FvSet::default();
        let mut matches = Vec::new();
        let mut data = Dataset::new();
        for i in 0..600u32 {
            let is_match = i % 5 == 0;
            let v = if is_match { 0.8 } else { 0.2 };
            // Add noise so the matcher is imperfect when flip_train > 0.
            let noisy = v + rng.gen_range(-0.15..0.15);
            fvs.pairs.push((i, i));
            fvs.fvs.push(vec![noisy]);
            if is_match {
                matches.push((i, i));
            }
            let label = if rng.gen_bool(flip_train) {
                !is_match
            } else {
                is_match
            };
            data.push(vec![noisy], label);
        }
        let forest = Forest::train(&data, &ForestConfig::default(), &mut rng);
        (fvs, GroundTruth::new(matches), forest)
    }

    #[test]
    fn near_perfect_matcher_estimates_high() {
        let (fvs, truth, forest) = fixture(0.0);
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let est = estimate_accuracy(
            &mut session,
            &mut tl,
            &forest,
            &fvs,
            &EstimatorConfig::default(),
        );
        assert!(est.precision > 0.9, "{est:?}");
        assert!(est.recall > 0.85, "{est:?}");
        assert!(est.questions > 0);
        assert!(est.precision_margin < 0.2);
    }

    #[test]
    fn estimate_tracks_true_quality() {
        // Degrade the matcher; the estimate must notice.
        let (fvs, truth, forest) = fixture(0.25);
        // True quality against ground truth:
        let mut conf = falcon_forest::Confusion::default();
        for (pair, fv) in fvs.iter() {
            conf.record(forest.predict(fv), truth.is_match(pair));
        }
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let est = estimate_accuracy(
            &mut session,
            &mut tl,
            &forest,
            &fvs,
            &EstimatorConfig {
                positive_sample: 120,
                negative_sample: 200,
                ..Default::default()
            },
        );
        assert!(
            (est.precision - conf.precision()).abs() < 0.2,
            "est {} vs true {}",
            est.precision,
            conf.precision()
        );
        assert!(
            (est.recall - conf.recall()).abs() < 0.25,
            "est {} vs true {}",
            est.recall,
            conf.recall()
        );
    }

    #[test]
    fn crowd_rounds_accounted() {
        let (fvs, truth, forest) = fixture(0.0);
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let cfg = EstimatorConfig::default();
        let est = estimate_accuracy(&mut session, &mut tl, &forest, &fvs, &cfg);
        assert_eq!(session.ledger().questions, est.questions);
        assert!(tl.crowd_time() > std::time::Duration::ZERO);
    }
}
