//! The Difficult Pairs' Locator module of Corleone's EM workflow
//! (Figure 1): find candidate pairs the current matcher has most likely
//! labeled incorrectly, so the next matching iteration can focus its
//! crowd budget on them.
//!
//! Two signals, mirroring Corleone:
//!
//! 1. **Forest disagreement** — pairs where the trees split their votes
//!    are inherently uncertain.
//! 2. **Label-contradiction** — pairs whose *crowd* label (if any)
//!    disagrees with the matcher's prediction are known mistakes and rank
//!    first.

use crate::fv::FvSet;
use falcon_forest::Forest;
use std::collections::HashMap;

/// A located difficult pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DifficultPair {
    /// Index into the candidate [`FvSet`].
    pub index: usize,
    /// Difficulty score in `[0, 1]`: 1.0 = known mistake, otherwise the
    /// (scaled) vote disagreement.
    pub score: f64,
}

/// Locate the `k` most difficult pairs. `known_labels` carries crowd
/// labels collected so far (index → label).
pub fn locate_difficult_pairs(
    forest: &Forest,
    fvs: &FvSet,
    known_labels: &HashMap<usize, bool>,
    k: usize,
) -> Vec<DifficultPair> {
    // One batch vote pass yields both signals: majority predictions for
    // contradiction checks and vote disagreement for unlabeled pairs.
    let flat = forest.flatten();
    let mut votes = Vec::new();
    flat.count_votes_into(fvs.len(), |i| fvs.fvs[i].as_slice(), &mut votes);
    let mut scored: Vec<DifficultPair> = votes
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let score = match known_labels.get(&i) {
                Some(&label) if label != flat.predict_from_votes(v) => 1.0,
                Some(_) => 0.0, // confirmed correct: not difficult
                None => flat.disagreement_from_votes(v) * 2.0 * 0.999, // in [0, ~1)
            };
            DifficultPair { index: i, score }
        })
        .collect();
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
    scored.truncate(k);
    scored.retain(|p| p.score > 0.0);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_forest::{Dataset, ForestConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fixture() -> (Forest, FvSet) {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut data = Dataset::new();
        for i in 0..200 {
            let v = i as f64 / 200.0;
            data.push(vec![v], v > 0.5);
        }
        let forest = Forest::train(&data, &ForestConfig::default(), &mut rng);
        let mut fvs = FvSet::default();
        for i in 0..100u32 {
            fvs.pairs.push((i, i));
            fvs.fvs.push(vec![i as f64 / 100.0]);
        }
        (forest, fvs)
    }

    #[test]
    fn contradicted_labels_rank_first() {
        let (forest, fvs) = fixture();
        // Pair 90 is clearly positive; claim the crowd said "no".
        let mut known = HashMap::new();
        known.insert(90usize, false);
        let out = locate_difficult_pairs(&forest, &fvs, &known, 5);
        assert_eq!(out[0].index, 90);
        assert_eq!(out[0].score, 1.0);
    }

    #[test]
    fn boundary_pairs_are_difficult() {
        let (forest, fvs) = fixture();
        let out = locate_difficult_pairs(&forest, &fvs, &HashMap::new(), 10);
        // Difficult pairs (if any) cluster near the 0.5 boundary.
        for p in &out {
            let v = fvs.fvs[p.index][0];
            assert!(
                (0.3..=0.7).contains(&v),
                "difficult pair at v = {v}, score {}",
                p.score
            );
        }
    }

    #[test]
    fn confirmed_correct_pairs_excluded() {
        let (forest, fvs) = fixture();
        let mut known = HashMap::new();
        // Label the whole boundary correctly: nothing in it is difficult.
        for i in 40..60usize {
            known.insert(i, fvs.fvs[i][0] > 0.5);
        }
        let out = locate_difficult_pairs(&forest, &fvs, &known, 100);
        for p in &out {
            assert!(!known.contains_key(&p.index), "index {}", p.index);
        }
    }

    #[test]
    fn k_respected_and_scores_sorted() {
        let (forest, fvs) = fixture();
        let out = locate_difficult_pairs(&forest, &fvs, &HashMap::new(), 3);
        assert!(out.len() <= 3);
        for w in out.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
