//! `eval_rules` (Section 4.2, Proposition 2): crowd-estimate each candidate
//! rule's precision and retain only the precise ones.
//!
//! For each rule `R`, in iterations of `b = 20` examples sampled from
//! `cov(R, S)`, the crowd labels pairs with the strong-majority scheme;
//! the rule's precision is estimated as the fraction labeled *not
//! matched*, with error margin
//! `ε = z · sqrt(P(1-P)/n · (m-n)/(m-1))` (finite-population correction).
//! The rule is retained when `P ≥ P_min` with `ε ≤ ε_max`, dropped when
//! `P + ε < P_min` or (`ε ≤ ε_max` and `P < P_min`), and otherwise another
//! iteration runs — capped at `n_e = 5` iterations per rule in Falcon
//! (Proposition 2 bounds the uncapped loop at 20).

use crate::fv::FvSet;
use crate::ops::get_blocking_rules::RankedRules;
use crate::rules::Rule;
use crate::timeline::Timeline;
use falcon_crowd::{Crowd, CrowdSession};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Rule-evaluation configuration (paper defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Examples labeled per iteration (`b`).
    pub batch: usize,
    /// Iteration cap per rule (`n_e`).
    pub max_iterations_per_rule: usize,
    /// Minimum precision to retain a rule (`P_min`).
    pub p_min: f64,
    /// Maximum acceptable error margin (`ε_max`).
    pub eps_max: f64,
    /// z-value for the confidence level (`δ = 0.95` ⇒ 1.96).
    pub z: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            batch: 20,
            max_iterations_per_rule: 5,
            p_min: 0.95,
            eps_max: 0.05,
            z: 1.96,
            seed: 23,
        }
    }
}

/// One evaluated rule.
#[derive(Debug, Clone)]
pub struct EvaluatedRule {
    /// The rule.
    pub rule: Rule,
    /// Index into the original [`RankedRules`].
    pub rank_idx: usize,
    /// Estimated precision.
    pub precision: f64,
    /// Final error margin.
    pub epsilon: f64,
    /// Crowd iterations used.
    pub iterations: usize,
}

/// Output: the retained rules (precise enough for blocking).
#[derive(Debug, Clone, Default)]
pub struct EvalOutput {
    /// Retained rules with their precision estimates.
    pub retained: Vec<EvaluatedRule>,
    /// Total crowd iterations across rules.
    pub total_iterations: usize,
}

/// The error margin of Proposition 2 / Corleone Section 4.2.
pub fn error_margin(p: f64, n: usize, m: usize, z: f64) -> f64 {
    if n == 0 || m <= 1 {
        return f64::INFINITY;
    }
    let fpc = if m > n {
        (m - n) as f64 / (m - 1) as f64
    } else {
        0.0
    };
    z * (p * (1.0 - p) / n as f64 * fpc).sqrt()
}

/// Run `eval_rules` over the ranked candidates.
pub fn eval_rules<C: Crowd>(
    session: &mut CrowdSession<C>,
    timeline: &mut Timeline,
    ranked: &RankedRules,
    sample: &FvSet,
    cfg: &EvalConfig,
) -> EvalOutput {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x4556414c);
    let mut out = EvalOutput::default();
    for (rank_idx, rule) in ranked.rules.iter().enumerate() {
        // Cancellation point: this operator is infallible, so a
        // cancelled tenant just stops evaluating further rules; the
        // driver's next cancellation check turns it into a typed error
        // before any partial result is used.
        if timeline.cancel_reason().is_some() {
            break;
        }
        let cov: Vec<usize> = ranked.coverage[rank_idx].ones().collect();
        let m = cov.len();
        if m == 0 {
            continue;
        }
        let mut pool = cov.clone();
        pool.shuffle(&mut rng);
        let mut n = 0usize;
        let mut n_neg = 0usize;
        let mut iterations = 0usize;
        let mut decision: Option<bool> = None; // Some(retain?)
        let mut p = 0.0;
        let mut eps = f64::INFINITY;
        while iterations < cfg.max_iterations_per_rule && !pool.is_empty() {
            let take = cfg.batch.min(pool.len());
            let batch_idx: Vec<usize> = pool.drain(..take).collect();
            let pairs: Vec<_> = batch_idx.iter().map(|&i| sample.pairs[i]).collect();
            let (labels, latency) = session.label_batch_strong(&pairs);
            timeline.crowd("eval_rules", latency);
            iterations += 1;
            n += labels.len();
            n_neg += labels.iter().filter(|(_, l)| !l).count();
            p = n_neg as f64 / n as f64;
            eps = error_margin(p, n, m, cfg.z);
            if p >= cfg.p_min && eps <= cfg.eps_max {
                decision = Some(true);
                break;
            }
            if p + eps < cfg.p_min || (eps <= cfg.eps_max && p < cfg.p_min) {
                decision = Some(false);
                break;
            }
        }
        // On cap/exhaustion without a verdict, retain iff the point
        // estimate clears the bar (Falcon's pragmatic cap behaviour).
        let retain = decision.unwrap_or(p >= cfg.p_min);
        out.total_iterations += iterations;
        if retain {
            out.retained.push(EvaluatedRule {
                rule: rule.clone(),
                rank_idx,
                precision: p,
                epsilon: eps,
                iterations,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::bitmap::Bitmap;
    use falcon_crowd::sim::{GroundTruth, OracleCrowd};
    use falcon_forest::SplitOp;

    /// Sample where pairs (i,i) with i < 20 are matches; feature 0 is a
    /// perfect similarity signal.
    fn fixture() -> (FvSet, GroundTruth) {
        let mut s = FvSet::default();
        let mut matches = Vec::new();
        for i in 0..200u32 {
            let is_match = i < 20;
            s.pairs.push((i, i));
            s.fvs.push(vec![if is_match { 0.9 } else { 0.1 }]);
            if is_match {
                matches.push((i, i));
            }
        }
        (s, GroundTruth::new(matches))
    }

    fn rule(threshold: f64) -> Rule {
        Rule {
            predicates: vec![crate::rules::Predicate {
                feature: 0,
                op: SplitOp::Le,
                threshold,
                nan_is_high: true,
            }],
        }
    }

    fn ranked_for(sample: &FvSet, rules: Vec<Rule>) -> RankedRules {
        let coverage = rules
            .iter()
            .map(|r| {
                let mut bm = Bitmap::zeros(sample.len());
                for (i, fv) in sample.fvs.iter().enumerate() {
                    if r.fires(fv) {
                        bm.set(i);
                    }
                }
                bm
            })
            .collect();
        RankedRules { rules, coverage }
    }

    #[test]
    fn precise_rule_retained() {
        let (sample, truth) = fixture();
        // Drops only non-matches (sim <= 0.5): precision 1.0.
        let ranked = ranked_for(&sample, vec![rule(0.5)]);
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let out = eval_rules(
            &mut session,
            &mut tl,
            &ranked,
            &sample,
            &EvalConfig::default(),
        );
        assert_eq!(out.retained.len(), 1);
        assert!(out.retained[0].precision > 0.99);
    }

    #[test]
    fn imprecise_rule_dropped() {
        let (sample, truth) = fixture();
        // Drops everything (sim <= 1.0): precision 180/200 = 0.9 < 0.95.
        let ranked = ranked_for(&sample, vec![rule(1.0)]);
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let out = eval_rules(
            &mut session,
            &mut tl,
            &ranked,
            &sample,
            &EvalConfig::default(),
        );
        assert!(out.retained.is_empty());
    }

    #[test]
    fn iteration_cap_respected() {
        let (sample, truth) = fixture();
        let ranked = ranked_for(&sample, vec![rule(0.5), rule(1.0)]);
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let cfg = EvalConfig::default();
        let out = eval_rules(&mut session, &mut tl, &ranked, &sample, &cfg);
        assert!(out.total_iterations <= ranked.len() * cfg.max_iterations_per_rule);
    }

    #[test]
    fn error_margin_shrinks_with_n() {
        let e1 = error_margin(0.9, 20, 1000, 1.96);
        let e2 = error_margin(0.9, 100, 1000, 1.96);
        assert!(e2 < e1);
        assert!(error_margin(0.9, 0, 1000, 1.96).is_infinite());
        // Proposition 2: at n = 384 (and worst-case P = 0.5, huge m),
        // ε ≤ 0.05.
        let e = error_margin(0.5, 384, 10_000_000, 1.96);
        assert!(e <= 0.0501, "{e}");
    }

    #[test]
    fn empty_coverage_skipped() {
        let (sample, truth) = fixture();
        let ranked = ranked_for(&sample, vec![rule(-1.0)]); // fires never
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let out = eval_rules(
            &mut session,
            &mut tl,
            &ranked,
            &sample,
            &EvalConfig::default(),
        );
        assert!(out.retained.is_empty());
        assert_eq!(out.total_iterations, 0);
    }
}
