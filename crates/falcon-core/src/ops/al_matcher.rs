//! `al_matcher` (Sections 4.2, 9, 10.2): crowdsourced active learning of a
//! random-forest matcher.
//!
//! Each iteration trains a forest on the labeled pairs so far, scores the
//! unlabeled pairs by vote disagreement on the cluster, sends the 20 most
//! controversial pairs to the crowd, and folds the labels back in — until
//! convergence or the iteration cap `k = 30` (the crowd-time cap of
//! Section 3.4).
//!
//! With [`AlConfig::mask_pair_selection`] the operator runs the paper's
//! Optimization 3: the first iteration selects a double batch, and from
//! then on model retraining and next-batch selection happen *during* the
//! crowd's labeling round — pair-selection machine time is recorded
//! against the masking budget rather than the critical path. The learned
//! matcher is an approximation (selection is one round stale), which the
//! paper shows costs negligible accuracy.

use crate::error::FalconError;
use crate::fv::FvSet;
use crate::timeline::{check_cancel, Timeline};
use falcon_crowd::{Crowd, CrowdSession};
use falcon_dataflow::{run_map_only, wall_now, Cluster};
use falcon_forest::{Dataset, Forest, ForestConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Duration;

/// Active-learning configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlConfig {
    /// Iteration cap `k` (paper: 30).
    pub max_iterations: usize,
    /// Pairs labeled per iteration (paper: 20).
    pub batch: usize,
    /// Convergence threshold on the maximum vote disagreement.
    pub convergence_eps: f64,
    /// Seed positives/negatives requested in the first round (half each).
    pub seeds: usize,
    /// Enable the masked-pair-selection optimization.
    pub mask_pair_selection: bool,
    /// Pair indices to label in the very first round (the Difficult
    /// Pairs' Locator feeds these in the iterative workflow).
    pub priority_indices: Vec<usize>,
    /// Forest configuration.
    pub forest: ForestConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AlConfig {
    fn default() -> Self {
        Self {
            max_iterations: 30,
            batch: 20,
            convergence_eps: 0.05,
            seeds: 10,
            mask_pair_selection: false,
            priority_indices: Vec::new(),
            forest: ForestConfig::default(),
            seed: 7,
        }
    }
}

/// Output of `al_matcher`.
pub struct AlOutput {
    /// The learned matcher.
    pub forest: Forest,
    /// Labeled examples as `(index into the FvSet, label)`.
    pub labeled: Vec<(usize, bool)>,
    /// Crowd iterations executed.
    pub iterations: usize,
    /// True iff stopped by convergence rather than the cap.
    pub converged: bool,
    /// Total pair-selection machine time.
    pub selection_time: Duration,
}

/// Heuristic "likely match" score for seeding: mean of the non-missing
/// similarity-oriented feature values.
fn seed_score(fv: &[f64], higher: &[bool]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (v, &h) in fv.iter().zip(higher) {
        if h && !v.is_nan() {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Score disagreement of every unlabeled pair on the cluster; returns
/// `(index, disagreement)` plus the (simulated) duration of the job.
fn score_disagreement(
    cluster: &Cluster,
    forest: &Forest,
    fvs: &FvSet,
    labeled: &HashSet<usize>,
) -> Result<(Vec<(usize, f64)>, Duration), FalconError> {
    // Each split carries one whole index chunk as a single record, so the
    // map task scores the chunk with the compiled forest's batch kernel
    // instead of pointer-chasing `Node`s one vector at a time. The scoped
    // dataflow workers borrow the flat forest and vectors directly — no
    // per-iteration clones.
    let flat = forest.flatten();
    let idxs: Vec<usize> = (0..fvs.len()).filter(|i| !labeled.contains(i)).collect();
    let n_idxs = idxs.len();
    let chunk = n_idxs.div_ceil((cluster.threads() * 2).max(1)).max(1);
    let splits: Vec<Vec<Vec<usize>>> = idxs.chunks(chunk).map(|c| vec![c.to_vec()]).collect();
    let mut out = run_map_only(cluster, splits, |idx_chunk: &Vec<usize>, out| {
        let gathered: Vec<(usize, &[f64])> = idx_chunk
            .iter()
            .filter_map(|&i| fvs.fvs.get(i).map(|fv| (i, fv.as_slice())))
            .collect();
        let mut votes = Vec::new();
        flat.count_votes_into(gathered.len(), |j| gathered[j].1, &mut votes);
        out.extend(
            gathered
                .iter()
                .zip(&votes)
                .map(|(&(i, _), &v)| (i, flat.disagreement_from_votes(v))),
        );
    })?;
    // Chunk-as-record wrapping counted chunks; restore the true count.
    out.stats.input_records = n_idxs;
    let dur = out.stats.sim_duration(&cluster.config);
    Ok((out.output, dur))
}

/// Pick the `batch` most controversial indices (ties broken by index for
/// determinism).
fn top_controversial(mut scored: Vec<(usize, f64)>, batch: usize) -> Vec<usize> {
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.into_iter().take(batch).map(|(i, _)| i).collect()
}

/// Run `al_matcher` over a feature-vector set. `higher` flags which
/// features are similarity-oriented (for seeding); crowd interaction goes
/// through `session` and timings through `timeline` under `label`.
pub fn al_matcher<C: Crowd>(
    cluster: &Cluster,
    session: &mut CrowdSession<C>,
    timeline: &mut Timeline,
    label: &str,
    fvs: &FvSet,
    higher: &[bool],
    cfg: &AlConfig,
) -> Result<AlOutput, FalconError> {
    if fvs.is_empty() {
        return Err(FalconError::EmptyInput {
            what: "feature vectors",
        });
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x414c4d41);
    let mut labeled_set: HashSet<usize> = HashSet::new();
    let mut data = Dataset::new();
    let mut labeled: Vec<(usize, bool)> = Vec::new();
    let mut selection_time = Duration::ZERO;
    let mut iterations = 0usize;
    let mut converged = false;

    let label_batch = |idxs: &[usize],
                       session: &mut CrowdSession<C>,
                       timeline: &mut Timeline,
                       data: &mut Dataset,
                       labeled: &mut Vec<(usize, bool)>,
                       labeled_set: &mut HashSet<usize>| {
        let pairs: Vec<_> = idxs.iter().map(|&i| fvs.pairs[i]).collect();
        let (answers, latency) = session.label_batch(&pairs);
        timeline.crowd(label, latency);
        for (&i, (_, l)) in idxs.iter().zip(answers) {
            labeled_set.insert(i);
            labeled.push((i, l));
            data.push(fvs.fvs[i].clone(), l);
        }
    };

    // ---- Seed round: likely positives + likely negatives ----
    let t0 = wall_now();
    let mut scored: Vec<(usize, f64)> = fvs
        .fvs
        .iter()
        .enumerate()
        .map(|(i, fv)| (i, seed_score(fv, higher)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let half = (cfg.seeds / 2).max(1).min(fvs.len() / 2 + 1);
    let mut seed_idx: Vec<usize> = cfg
        .priority_indices
        .iter()
        .copied()
        .filter(|i| *i < fvs.len())
        .collect();
    for (i, _) in scored.iter().take(half) {
        if !seed_idx.contains(i) {
            seed_idx.push(*i);
        }
    }
    for (i, _) in scored.iter().rev().take(half) {
        if !seed_idx.contains(i) {
            seed_idx.push(*i);
        }
    }
    selection_time += t0.elapsed();
    timeline.machine(label, t0.elapsed());
    label_batch(
        &seed_idx,
        session,
        timeline,
        &mut data,
        &mut labeled,
        &mut labeled_set,
    );
    iterations += 1;

    // Guarantee two classes if possible: label random extras (up to 3
    // extra rounds).
    let mut guard = 0;
    while (data.positives() == 0 || data.positives() == data.len()) && guard < 3 {
        let mut rest: Vec<usize> = (0..fvs.len())
            .filter(|i| !labeled_set.contains(i))
            .collect();
        if rest.is_empty() {
            break;
        }
        rest.shuffle(&mut rng);
        rest.truncate(cfg.batch);
        label_batch(
            &rest,
            session,
            timeline,
            &mut data,
            &mut labeled,
            &mut labeled_set,
        );
        iterations += 1;
        guard += 1;
    }

    let mut forest = Forest::train(&data, &cfg.forest, &mut rng);

    // ---- Active-learning iterations ----
    // In masked mode `pending` is the batch currently "at the crowd";
    // selection of the following batch happens during that round.
    let mut pending: Vec<usize> = Vec::new();
    if cfg.mask_pair_selection {
        let t = wall_now();
        let (scored, job_dur) = score_disagreement(cluster, &forest, fvs, &labeled_set)?;
        let picked = top_controversial(scored, cfg.batch * 2);
        let wall = t.elapsed().max(job_dur);
        selection_time += wall;
        // First (double) selection cannot be masked: nothing is at the
        // crowd yet.
        timeline.machine(label, wall);
        pending = picked;
    }

    while iterations < cfg.max_iterations && labeled_set.len() < fvs.len() {
        // Cancellation point: a scheduler-cancelled tenant stops asking
        // crowd questions between AL iterations, with its journal intact.
        check_cancel(timeline, session)?;
        if cfg.mask_pair_selection {
            if pending.is_empty() {
                converged = true;
                break;
            }
            let now_batch: Vec<usize> = pending.drain(..pending.len().min(cfg.batch)).collect();
            // Post `now_batch`; while the crowd works, retrain and select
            // the next batch (masked machine time).
            let t = wall_now();
            forest = Forest::train(&data, &cfg.forest, &mut rng);
            let mut exclude = labeled_set.clone();
            exclude.extend(now_batch.iter().copied());
            exclude.extend(pending.iter().copied());
            let (scored, job_dur) = score_disagreement(cluster, &forest, fvs, &exclude)?;
            let max_dis = scored.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);
            let wall = t.elapsed().max(job_dur);
            selection_time += wall;
            timeline.masked_machine(label, wall);
            if max_dis >= cfg.convergence_eps {
                pending.extend(top_controversial(scored, cfg.batch));
            }
            label_batch(
                &now_batch,
                session,
                timeline,
                &mut data,
                &mut labeled,
                &mut labeled_set,
            );
            iterations += 1;
        } else {
            // Unmasked: select with the freshest model, on the critical
            // path.
            let t = wall_now();
            forest = Forest::train(&data, &cfg.forest, &mut rng);
            let (scored, job_dur) = score_disagreement(cluster, &forest, fvs, &labeled_set)?;
            let max_dis = scored.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);
            let batch = top_controversial(scored, cfg.batch);
            let wall = t.elapsed().max(job_dur);
            selection_time += wall;
            timeline.machine(label, wall);
            if max_dis < cfg.convergence_eps || batch.is_empty() {
                converged = true;
                break;
            }
            label_batch(
                &batch,
                session,
                timeline,
                &mut data,
                &mut labeled,
                &mut labeled_set,
            );
            iterations += 1;
        }
    }

    // Final matcher trained on everything labeled.
    let t = wall_now();
    let forest = Forest::train(&data, &cfg.forest, &mut rng);
    timeline.machine(label, t.elapsed());

    Ok(AlOutput {
        forest,
        labeled,
        iterations,
        converged,
        selection_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_crowd::sim::{GroundTruth, OracleCrowd};
    use falcon_dataflow::ClusterConfig;

    /// A linearly separable synthetic pair universe: pairs (i, i) match.
    fn fixture(n: usize) -> (FvSet, GroundTruth, Vec<bool>) {
        let mut fvs = FvSet::default();
        let mut matches = Vec::new();
        for i in 0..n as u32 {
            for j in 0..3u32 {
                let b = (i + j * 7) % n as u32;
                let is_match = i == b;
                let sim = if is_match { 0.9 } else { 0.1 };
                fvs.pairs.push((i, b));
                fvs.fvs.push(vec![sim, 1.0 - sim]);
                if is_match {
                    matches.push((i, b));
                }
            }
        }
        (fvs, GroundTruth::new(matches), vec![true, false])
    }

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(2)).with_threads(2)
    }

    #[test]
    fn learns_separable_matcher() {
        let (fvs, truth, higher) = fixture(40);
        let mut session = CrowdSession::new(OracleCrowd::new(truth.clone()));
        let mut tl = Timeline::new();
        let out = al_matcher(
            &cluster(),
            &mut session,
            &mut tl,
            "al_matcher",
            &fvs,
            &higher,
            &AlConfig::default(),
        )
        .expect("al");
        // Perfect on the training universe.
        for (pair, fv) in fvs.iter() {
            assert_eq!(out.forest.predict(fv), truth.is_match(pair), "{pair:?}");
        }
        assert!(out.iterations <= 30);
        assert!(!out.labeled.is_empty());
    }

    #[test]
    fn converges_before_cap_on_easy_data() {
        let (fvs, truth, higher) = fixture(40);
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let out = al_matcher(
            &cluster(),
            &mut session,
            &mut tl,
            "al",
            &fvs,
            &higher,
            &AlConfig::default(),
        )
        .expect("al");
        assert!(out.converged);
        assert!(out.iterations < 30, "{}", out.iterations);
    }

    #[test]
    fn iteration_cap_respected() {
        let (fvs, truth, higher) = fixture(60);
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let cfg = AlConfig {
            max_iterations: 3,
            convergence_eps: 0.0,
            ..Default::default()
        };
        let out =
            al_matcher(&cluster(), &mut session, &mut tl, "al", &fvs, &higher, &cfg).expect("al");
        assert!(out.iterations <= 3);
    }

    #[test]
    fn masked_selection_matches_accuracy() {
        let (fvs, truth, higher) = fixture(40);
        let mut tl = Timeline::new();
        let mut session = CrowdSession::new(OracleCrowd::new(truth.clone()));
        let cfg = AlConfig {
            mask_pair_selection: true,
            ..Default::default()
        };
        let out =
            al_matcher(&cluster(), &mut session, &mut tl, "al", &fvs, &higher, &cfg).expect("al");
        let correct = fvs
            .iter()
            .filter(|(p, fv)| out.forest.predict(fv) == truth.is_match(*p))
            .count();
        assert!(correct as f64 / fvs.len() as f64 > 0.95);
        // Masked mode must have logged masked machine segments.
        assert!(tl
            .segments()
            .iter()
            .any(|s| matches!(s, crate::timeline::Segment::MaskedMachine { .. })));
    }

    #[test]
    fn crowd_rounds_equal_iterations() {
        let (fvs, truth, higher) = fixture(30);
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let out = al_matcher(
            &cluster(),
            &mut session,
            &mut tl,
            "al",
            &fvs,
            &higher,
            &AlConfig::default(),
        )
        .expect("al");
        assert_eq!(session.ledger().rounds, out.iterations);
    }
}
