//! `sample_pairs` (Section 5): draw a sample `S` of tuple pairs from
//! `A × B` that is both representative and match-rich, without
//! materializing the Cartesian product.
//!
//! Algorithm: build an inverted index over the word tokens of `A`'s string
//! attributes (MR job 1); randomly select `n / y` tuples from `B`; for
//! each selected `b`, pair it with the top `y/2` `A` tuples by shared
//! token count (likely matches) and `y/2` random `A` tuples
//! (representativeness) — MR job 2.

use crate::error::FalconError;
use falcon_dataflow::{run_map_only, run_map_reduce, Cluster, Emitter, JobStats};
use falcon_table::{AttrType, IdPair, Table, TableProfile, TupleId};
use falcon_textsim::tokenize::word_tokens;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Output of the sampling operator.
#[derive(Debug)]
pub struct SampleOutput {
    /// The sampled pairs `S`.
    pub pairs: Vec<IdPair>,
    /// Stats of the index-building job.
    pub index_job: JobStats,
    /// Stats of the pair-generation job.
    pub pair_job: JobStats,
}

/// Convert a tuple to its token "document" over string attributes
/// (Section 5's `d(a)`), reading columnar cells directly by id.
fn document_at(table: &Table, id: TupleId, string_attrs: &[usize]) -> Vec<String> {
    let mut toks = Vec::new();
    let mut scratch = String::new();
    for &i in string_attrs {
        scratch.clear();
        if let Some(v) = table.value_ref(id, i) {
            v.render_into(&mut scratch);
        }
        toks.extend(word_tokens(&scratch));
    }
    toks.sort_unstable();
    toks.dedup();
    toks
}

/// Profiled string-attribute indices of a table.
fn string_attrs(table: &Table) -> Vec<usize> {
    let profile = TableProfile::scan(table);
    profile
        .attrs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.ty == AttrType::Str)
        .map(|(i, _)| i)
        .collect()
}

/// Run `sample_pairs`: sample `n` pairs with fan-out `y` per selected `B`
/// tuple (the paper sets `y = 100`).
pub fn sample_pairs(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    n: usize,
    y: usize,
    seed: u64,
) -> Result<SampleOutput, FalconError> {
    let y = y.clamp(2, n.max(2));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x53414d50);
    let a_strings = Arc::new(string_attrs(a));

    // MR job 1: inverted index over A's documents. Splits carry tuple
    // ids; mappers read cells from the shared columnar table.
    let splits: Vec<Vec<TupleId>> = a
        .splits(cluster.threads() * 2)
        .into_iter()
        .map(|r| (r.start as TupleId..r.end as TupleId).collect())
        .collect();
    let a_strings_map = Arc::clone(&a_strings);
    let index_out = run_map_reduce(
        cluster,
        splits,
        cluster.threads(),
        move |&id: &TupleId, e: &mut Emitter<String, TupleId>| {
            for tok in document_at(a, id, &a_strings_map) {
                e.emit(tok, id);
            }
        },
        |tok: &String, ids: Vec<TupleId>, out: &mut Vec<(String, Vec<TupleId>)>| {
            out.push((tok.clone(), ids));
        },
    )?;
    let index: Arc<HashMap<String, Vec<TupleId>>> =
        Arc::new(index_out.output.into_iter().collect());

    // Select n/y tuples from B.
    let n_b = (n / y).clamp(1, b.len());
    let mut b_ids: Vec<usize> = (0..b.len()).collect();
    b_ids.shuffle(&mut rng);
    b_ids.truncate(n_b);
    let selected: Vec<TupleId> = b_ids.iter().map(|&i| i as TupleId).collect();

    // MR job 2 (map-only): generate pairs for each selected B tuple.
    let b_splits: Vec<Vec<(TupleId, u64)>> = selected
        .chunks((selected.len() / (cluster.threads().max(1)).max(1)).max(1))
        .map(|c| c.iter().map(|&id| (id, rng.gen::<u64>())).collect())
        .collect();
    let a_len = a.len();
    let b_strings = Arc::new(string_attrs(b));
    let pair_out = run_map_only(
        cluster,
        b_splits,
        move |&(bid, pseed): &(TupleId, u64), out| {
            let mut local = SmallRng::seed_from_u64(pseed);
            // Shared-token counts against the inverted index.
            let mut counts: HashMap<TupleId, usize> = HashMap::new();
            for tok in document_at(b, bid, &b_strings) {
                if let Some(ids) = index.get(&tok) {
                    for &id in ids {
                        *counts.entry(id).or_default() += 1;
                    }
                }
            }
            let mut ranked: Vec<(usize, TupleId)> =
                counts.into_iter().map(|(id, c)| (c, id)).collect();
            ranked.sort_unstable_by(|x, y| y.cmp(x));
            let y1 = (y / 2).min(ranked.len());
            let mut chosen: Vec<TupleId> = ranked[..y1].iter().map(|(_, id)| *id).collect();
            // Fill with random distinct A tuples.
            let mut guard = 0;
            while chosen.len() < y.min(a_len) && guard < 20 * y {
                let cand = local.gen_range(0..a_len) as TupleId;
                if !chosen.contains(&cand) {
                    chosen.push(cand);
                }
                guard += 1;
            }
            for aid in chosen {
                out.push((aid, bid));
            }
        },
    )?;

    let mut pairs = pair_out.output.clone();
    pairs.sort_unstable();
    pairs.dedup();
    Ok(SampleOutput {
        pairs,
        index_job: index_out.stats,
        pair_job: pair_out.stats,
    })
}

/// Corleone's original sampling strategy (Section 5): randomly draw
/// `n / |A|` tuples from `B` and pair each with *all* of `A`. The paper
/// shows why this fails for large `A`: when `|A|` approaches `n` only a
/// couple of `B` tuples are drawn, so the sample may contain almost no
/// matches. Provided as a baseline for the sampler-comparison bench.
pub fn corleone_sample(a: &Table, b: &Table, n: usize, seed: u64) -> Vec<IdPair> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x434f524c);
    if a.is_empty() || b.is_empty() || n < a.len() {
        // Not applicable when |A| > n (the paper's first failure mode);
        // degrade to a single random B tuple.
        let bid = rng.gen_range(0..b.len().max(1)) as TupleId;
        return (0..a.len() as TupleId)
            .map(|aid| (aid, bid))
            .take(n)
            .collect();
    }
    let n_b = (n / a.len()).clamp(1, b.len());
    let mut b_ids: Vec<usize> = (0..b.len()).collect();
    b_ids.shuffle(&mut rng);
    b_ids.truncate(n_b);
    let mut out = Vec::with_capacity(n_b * a.len());
    for bid in b_ids {
        for aid in 0..a.len() as TupleId {
            out.push((aid, bid as TupleId));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_dataflow::ClusterConfig;
    use falcon_table::{Schema, Value};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(2)).with_threads(2)
    }

    fn tables() -> (Table, Table) {
        let schema = Schema::new([("name", AttrType::Str)]);
        let a = Table::new(
            "a",
            schema.clone(),
            (0..50).map(|i| vec![Value::str(format!("alpha item number {i}"))]),
        );
        let b = Table::new(
            "b",
            schema,
            (0..50).map(|i| vec![Value::str(format!("alpha item number {i}"))]),
        );
        (a, b)
    }

    #[test]
    fn sample_size_near_target() {
        let (a, b) = tables();
        let out = sample_pairs(&cluster(), &a, &b, 200, 10, 1).expect("sample");
        // 20 B tuples × 10 A partners = ~200 (dedup may trim).
        assert!(out.pairs.len() >= 150, "{}", out.pairs.len());
        assert!(out.pairs.len() <= 200);
        for (aid, bid) in &out.pairs {
            assert!((*aid as usize) < a.len());
            assert!((*bid as usize) < b.len());
        }
    }

    #[test]
    fn sample_contains_likely_matches() {
        // Identical tables: each sampled b should be paired with its exact
        // A twin (max shared tokens).
        let (a, b) = tables();
        let out = sample_pairs(&cluster(), &a, &b, 100, 10, 2).expect("sample");
        let twins = out.pairs.iter().filter(|(x, y)| x == y).count();
        let sampled_bs: std::collections::HashSet<_> = out.pairs.iter().map(|(_, b)| *b).collect();
        // Every sampled b has its twin among its partners.
        assert_eq!(twins, sampled_bs.len());
    }

    #[test]
    fn pairs_unique() {
        let (a, b) = tables();
        let out = sample_pairs(&cluster(), &a, &b, 300, 6, 3).expect("sample");
        let mut p = out.pairs.clone();
        p.dedup();
        assert_eq!(p.len(), out.pairs.len());
    }

    #[test]
    fn corleone_sample_shape() {
        let (a, b) = tables();
        // n = 4 * |A|: four random B tuples crossed with all of A.
        let s = corleone_sample(&a, &b, 4 * a.len(), 5);
        assert_eq!(s.len(), 4 * a.len());
        let bids: std::collections::HashSet<_> = s.iter().map(|(_, b)| *b).collect();
        assert_eq!(bids.len(), 4);
        // n < |A|: degenerate single-B fallback.
        let s = corleone_sample(&a, &b, 10, 5);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn handles_tiny_tables() {
        let schema = Schema::new([("name", AttrType::Str)]);
        let a = Table::new("a", schema.clone(), vec![vec![Value::str("only one")]]);
        let b = Table::new("b", schema, vec![vec![Value::str("only one")]]);
        let out = sample_pairs(&cluster(), &a, &b, 10, 4, 4).expect("sample");
        assert_eq!(out.pairs, vec![(0, 0)]);
    }
}
