//! The eight Falcon operators (Section 4.2).
//!
//! | operator              | module                 | substrate        |
//! |-----------------------|------------------------|------------------|
//! | `sample_pairs`        | [`sample_pairs`]       | 2 MR jobs        |
//! | `gen_fvs`             | [`gen_fvs`]            | map-only job     |
//! | `al_matcher`          | [`al_matcher`]         | crowd + MR       |
//! | `get_blocking_rules`  | [`get_blocking_rules`] | single machine   |
//! | `eval_rules`          | [`eval_rules`]         | crowd            |
//! | `select_opt_seq`      | [`select_opt_seq`]     | single machine   |
//! | `apply_blocking_rules`| [`crate::physical`]    | MR + indexes     |
//! | `apply_matcher`       | [`apply_matcher`]      | map-only job     |
//!
//! Two further Corleone modules (Figure 1) are provided for the full
//! iterative workflow: [`accuracy_estimator`] and [`difficult_pairs`].

pub mod accuracy_estimator;
pub mod al_matcher;
pub mod apply_matcher;
pub mod bitmap;
pub mod difficult_pairs;
pub mod eval_rules;
pub mod gen_fvs;
pub mod get_blocking_rules;
pub mod sample_pairs;
pub mod select_opt_seq;
