//! `select_opt_seq` (Section 6): choose the rule sequence maximizing
//! `score = α·precision − β·selectivity − γ·time`.
//!
//! All subsets of the retained rules are enumerated (retained sets are
//! small; beyond [`SeqConfig::exact_cap`] rules a greedy forward selection
//! takes over). Within a subset, ordering does not affect precision or
//! selectivity, only run time, and optimal ordering is NP-hard (pipelined
//! set cover) — we use the 4-approximation greedy rule of Babu et al.
//! \[2\]: repeatedly pick the rule maximizing
//! `(1 − sel(prefix ∪ R)/sel(prefix)) / time(R)`.
//!
//! Coverage arithmetic uses the bitmaps maintained by
//! `get_blocking_rules`; for large samples the bitmaps are striped down to
//! a fixed optimizer resolution so subset enumeration stays fast.

use crate::fv::FvSet;
use crate::ops::bitmap::Bitmap;
use crate::ops::eval_rules::EvaluatedRule;
use crate::ops::get_blocking_rules::RankedRules;
use crate::rules::{Rule, RuleSequence};
use serde::{Deserialize, Serialize};

/// Scoring weights and enumeration cap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeqConfig {
    /// Precision weight (`α`).
    pub alpha: f64,
    /// Selectivity weight (`β`) — selectivity is the *kept* fraction, so
    /// smaller candidate sets score higher.
    pub beta: f64,
    /// Run-time weight (`γ`), applied to normalized per-pair time.
    pub gamma: f64,
    /// Exact subset enumeration up to this many rules.
    pub exact_cap: usize,
    /// Bitmap resolution used by the optimizer.
    pub optimizer_bits: usize,
}

impl Default for SeqConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 0.3,
            gamma: 0.05,
            exact_cap: 12,
            optimizer_bits: 16_384,
        }
    }
}

/// The selected sequence plus its estimated properties.
#[derive(Debug, Clone)]
pub struct SeqOutput {
    /// The chosen sequence.
    pub seq: RuleSequence,
    /// Its score.
    pub score: f64,
    /// Precision lower bound (Section 6 formula).
    pub precision: f64,
    /// Estimated selectivity (fraction of pairs kept).
    pub selectivity: f64,
    /// Per-rule selectivities of the chosen rules, in sequence order
    /// (needed by `apply_greedy`'s conjunct choice).
    pub rule_selectivities: Vec<f64>,
}

/// Stripe a bitmap down to `bits` positions (every k-th sample index).
fn stripe(bm: &Bitmap, bits: usize) -> Bitmap {
    if bm.len() <= bits {
        return bm.clone();
    }
    let step = bm.len() as f64 / bits as f64;
    let mut out = Bitmap::zeros(bits);
    for i in 0..bits {
        if bm.get((i as f64 * step) as usize) {
            out.set(i);
        }
    }
    out
}

/// Deterministic per-pair evaluation-cost model for a rule. Wall-clock
/// measurement would make plan selection nondeterministic across runs
/// (identical seeds must give identical plans), so cost is modeled from
/// the rule's structure: each predicate costs one unit, weighted by how
/// expensive its feature's similarity measure is to compute. Units are
/// arbitrary — the optimizer only uses normalized ratios.
fn rule_cost(rule: &Rule) -> f64 {
    // At blocking time each referenced feature must be evaluated per
    // pair, so cost grows with predicate count; short-circuiting makes
    // later predicates cheaper on average (0.8 decay approximates that).
    rule.predicates
        .iter()
        .enumerate()
        .map(|(i, _)| 0.8f64.powi(i as i32))
        .sum::<f64>()
        .max(1e-9)
}

struct Candidate<'a> {
    rule: &'a Rule,
    cov: Bitmap,
    precision: f64,
    time: f64,
}

/// Greedy 4-approx ordering of one subset; returns order plus estimated
/// sequence time per pair.
fn greedy_order(cands: &[&Candidate<'_>], bits: usize) -> (Vec<usize>, f64) {
    let mut remaining: Vec<usize> = (0..cands.len()).collect();
    let mut order = Vec::with_capacity(cands.len());
    let mut covered = Bitmap::zeros(bits);
    let mut seq_time = 0.0;
    let mut reach_prob = 1.0; // probability a pair reaches the next rule
    while !remaining.is_empty() {
        let covered_now = covered.count();
        let sel_prefix = 1.0 - covered_now as f64 / bits.max(1) as f64;
        let mut best: Option<(f64, usize)> = None;
        for (slot, &ci) in remaining.iter().enumerate() {
            let union = covered.union_count(&cands[ci].cov);
            let sel_with = 1.0 - union as f64 / bits.max(1) as f64;
            let gain = if sel_prefix > 0.0 {
                1.0 - sel_with / sel_prefix
            } else {
                0.0
            };
            let rank = gain / cands[ci].time;
            if best.is_none_or(|(r, _)| rank > r) {
                best = Some((rank, slot));
            }
        }
        // `remaining` is non-empty here, so a best slot always exists; the
        // let-else keeps this loop panic-free under the no-panic lint.
        let Some((_, slot)) = best else { break };
        let ci = remaining.remove(slot);
        seq_time += reach_prob * cands[ci].time;
        covered.or_with(&cands[ci].cov);
        reach_prob = 1.0 - covered.count() as f64 / bits.max(1) as f64;
        order.push(ci);
    }
    (order, seq_time)
}

fn score_subset(
    cands: &[Candidate<'_>],
    subset: &[usize],
    cfg: &SeqConfig,
    bits: usize,
    max_time: f64,
) -> (Vec<usize>, f64, f64, f64) {
    let chosen: Vec<&Candidate> = subset.iter().map(|&i| &cands[i]).collect();
    let (order_local, seq_time) = greedy_order(&chosen, bits);
    let order: Vec<usize> = order_local.iter().map(|&l| subset[l]).collect();
    // Coverage of the union.
    let mut covered = Bitmap::zeros(bits);
    for &i in subset {
        covered.or_with(&cands[i].cov);
    }
    let selectivity = 1.0 - covered.count() as f64 / bits.max(1) as f64;
    // Precision lower bound (Section 6):
    // prec(seq) >= 1 - Σ|cov(R_i)|·(1 − prec(R_i)) / |cov(seq)|.
    let total_cov = covered.count().max(1);
    let bad: f64 = subset
        .iter()
        .map(|&i| cands[i].cov.count() as f64 * (1.0 - cands[i].precision))
        .sum();
    let precision = (1.0 - bad / total_cov as f64).max(0.0);
    let time_norm = if max_time > 0.0 {
        seq_time / max_time
    } else {
        0.0
    };
    let score = cfg.alpha * precision - cfg.beta * selectivity - cfg.gamma * time_norm;
    (order, score, precision, selectivity)
}

/// Run `select_opt_seq` over the retained rules.
pub fn select_opt_seq(
    ranked: &RankedRules,
    retained: &[EvaluatedRule],
    _sample: &FvSet, // reserved for data-driven cost models
    cfg: &SeqConfig,
) -> SeqOutput {
    if retained.is_empty() {
        return SeqOutput {
            seq: RuleSequence::default(),
            score: 0.0,
            precision: 1.0,
            selectivity: 1.0,
            rule_selectivities: Vec::new(),
        };
    }
    let bits = cfg.optimizer_bits.min(ranked.coverage[0].len()).max(1);
    let cands: Vec<Candidate> = retained
        .iter()
        .map(|e| (e, rule_cost(&e.rule)))
        .map(|(e, time)| Candidate {
            rule: &e.rule,
            cov: stripe(&ranked.coverage[e.rank_idx], bits),
            precision: e.precision,
            time,
        })
        .collect();
    let max_time: f64 = cands.iter().map(|c| c.time).sum::<f64>().max(1e-12);

    let n = cands.len();
    let mut best: Option<(Vec<usize>, f64, f64, f64)> = None;
    if n <= cfg.exact_cap {
        for mask in 1u32..(1 << n) {
            let subset: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
            let result = score_subset(&cands, &subset, cfg, bits, max_time);
            if best.as_ref().is_none_or(|b| result.1 > b.1) {
                best = Some(result);
            }
        }
    } else {
        // Greedy forward selection over subsets.
        let mut subset: Vec<usize> = Vec::new();
        let mut current: Option<(Vec<usize>, f64, f64, f64)> = None;
        loop {
            let mut improved = false;
            for i in 0..n {
                if subset.contains(&i) {
                    continue;
                }
                let mut trial = subset.clone();
                trial.push(i);
                let result = score_subset(&cands, &trial, cfg, bits, max_time);
                if current.as_ref().is_none_or(|c| result.1 > c.1) {
                    current = Some(result);
                    subset = trial;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        best = current;
    }

    // `retained` is non-empty, so the exact path scored at least mask 1 and
    // the greedy path scored at least one singleton; fall back to "no
    // blocking" (keep everything) rather than panic if that ever changes.
    let Some((order, score, precision, selectivity)) = best else {
        return SeqOutput {
            seq: RuleSequence::default(),
            score: 0.0,
            precision: 1.0,
            selectivity: 1.0,
            rule_selectivities: Vec::new(),
        };
    };
    let rule_selectivities: Vec<f64> = order
        .iter()
        .map(|&i| 1.0 - cands[i].cov.count() as f64 / bits as f64)
        .collect();
    let seq = RuleSequence::new(order.iter().map(|&i| cands[i].rule.clone()).collect());
    SeqOutput {
        seq,
        score,
        precision,
        selectivity,
        rule_selectivities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fv::FvSet;
    use crate::rules::Predicate;
    use falcon_forest::SplitOp;

    fn sample(n: usize) -> FvSet {
        let mut s = FvSet::default();
        for i in 0..n as u32 {
            s.pairs.push((i, i));
            s.fvs.push(vec![i as f64 / n as f64]);
        }
        s
    }

    fn rule(t: f64) -> Rule {
        Rule {
            predicates: vec![Predicate {
                feature: 0,
                op: SplitOp::Le,
                threshold: t,
                nan_is_high: true,
            }],
        }
    }

    fn setup(thresholds: &[f64], precisions: &[f64]) -> (RankedRules, Vec<EvaluatedRule>) {
        let s = sample(1000);
        let rules: Vec<Rule> = thresholds.iter().map(|&t| rule(t)).collect();
        let coverage = rules
            .iter()
            .map(|r| {
                let mut bm = Bitmap::zeros(s.len());
                for (i, fv) in s.fvs.iter().enumerate() {
                    if r.fires(fv) {
                        bm.set(i);
                    }
                }
                bm
            })
            .collect();
        let ranked = RankedRules {
            rules: rules.clone(),
            coverage,
        };
        let retained = rules
            .into_iter()
            .enumerate()
            .map(|(i, rule)| EvaluatedRule {
                rule,
                rank_idx: i,
                precision: precisions[i],
                epsilon: 0.01,
                iterations: 1,
            })
            .collect();
        (ranked, retained)
    }

    #[test]
    fn prefers_precise_selective_rules() {
        // Rule A drops half with precision 1.0; rule B drops 90% with
        // precision 0.5 (imprecise). The optimizer must not choose B
        // alone over A.
        let (ranked, retained) = setup(&[0.5, 0.9], &[1.0, 0.5]);
        let out = select_opt_seq(&ranked, &retained, &sample(1000), &SeqConfig::default());
        assert!(!out.seq.is_empty());
        // With alpha dominant, the chosen set's precision stays high.
        assert!(out.precision > 0.7, "{}", out.precision);
    }

    #[test]
    fn empty_retained_gives_empty_sequence() {
        let (ranked, _) = setup(&[0.5], &[1.0]);
        let out = select_opt_seq(&ranked, &[], &sample(1000), &SeqConfig::default());
        assert!(out.seq.is_empty());
        assert_eq!(out.selectivity, 1.0);
    }

    #[test]
    fn subset_enumeration_can_pick_multiple_rules() {
        // Two precise rules covering disjoint halves: together they drop
        // more, so both should be selected.
        let (mut ranked, retained) = setup(&[0.4, 0.4], &[1.0, 1.0]);
        // Make rule 1 cover the complement (fires when f > 0.6): rebuild
        // its bitmap manually.
        let mut bm = Bitmap::zeros(1000);
        for i in 600..1000 {
            bm.set(i);
        }
        ranked.coverage[1] = bm;
        let out = select_opt_seq(&ranked, &retained, &sample(1000), &SeqConfig::default());
        assert_eq!(out.seq.len(), 2);
        assert!(out.selectivity < 0.3, "{}", out.selectivity);
    }

    #[test]
    fn greedy_path_used_beyond_cap() {
        let thresholds: Vec<f64> = (0..14).map(|i| 0.1 + i as f64 * 0.05).collect();
        let precisions = vec![1.0; 14];
        let (ranked, retained) = setup(&thresholds, &precisions);
        let cfg = SeqConfig {
            exact_cap: 4,
            ..Default::default()
        };
        let out = select_opt_seq(&ranked, &retained, &sample(1000), &cfg);
        assert!(!out.seq.is_empty());
    }

    #[test]
    fn selectivities_reported_in_order() {
        let (ranked, retained) = setup(&[0.5, 0.2], &[1.0, 1.0]);
        let out = select_opt_seq(&ranked, &retained, &sample(1000), &SeqConfig::default());
        assert_eq!(out.rule_selectivities.len(), out.seq.len());
        for s in &out.rule_selectivities {
            assert!((0.0..=1.0).contains(s));
        }
    }
}
