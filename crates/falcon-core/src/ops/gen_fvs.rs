//! `gen_fvs` (Section 8): convert tuple pairs into feature vectors with a
//! map-only job.

use crate::error::FalconError;
use crate::features::FeatureSet;
use crate::fv::FvSet;
use crate::tokens::{build_pair_profiles_par, PairProfiles};
use falcon_dataflow::{run_map_only, Cluster, ClusterConfig, JobStats};
use falcon_table::{IdPair, Table};
use falcon_textsim::{SimContext, SimFunction, TfIdfModel};
use std::time::Duration;

/// How `gen_fvs` evaluates features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FvMode {
    /// Pre-tokenize the referenced tuples once (one map-only pass per
    /// table), then score pairs via the sorted-id merge kernels. The
    /// default; bit-identical to [`FvMode::Legacy`].
    #[default]
    TokenProfile,
    /// Render and tokenize per feature per pair (the original path); kept
    /// as the verified-equivalent fallback and for benchmarking.
    Legacy,
}

/// Output of `gen_fvs`.
#[derive(Debug)]
pub struct GenFvsOutput {
    /// Pairs plus vectors, in input order.
    pub fvs: FvSet,
    /// Statistics of the scoring job.
    pub stats: JobStats,
    /// Statistics of the profile-building map jobs that precede scoring
    /// (empty in [`FvMode::Legacy`]).
    pub prep_stats: Vec<JobStats>,
}

impl GenFvsOutput {
    /// Simulated cluster duration of the whole operator: the profiling
    /// jobs (if any) plus the scoring job.
    pub fn sim_duration(&self, cfg: &ClusterConfig) -> Duration {
        self.prep_stats
            .iter()
            .map(|s| s.sim_duration(cfg))
            .sum::<Duration>()
            + self.stats.sim_duration(cfg)
    }
}

/// Build the TF/IDF corpus model needed by a feature set, if any of its
/// features require one. The model is built over the union of both tables'
/// values of the TF/IDF features' attributes.
pub fn tfidf_model_for(features: &FeatureSet, a: &Table, b: &Table) -> Option<TfIdfModel> {
    let needs: Vec<&crate::features::Feature> = features
        .features
        .iter()
        .filter(|f| matches!(f.sim, SimFunction::TfIdf | SimFunction::SoftTfIdf))
        .collect();
    if needs.is_empty() {
        return None;
    }
    let mut docs: Vec<String> = Vec::new();
    for f in needs {
        a.for_each_rendered(f.a_idx, |_, s| docs.push(s.to_string()));
        b.for_each_rendered(f.b_idx, |_, s| docs.push(s.to_string()));
    }
    Some(TfIdfModel::build(docs.iter().map(String::as_str)))
}

/// Run `gen_fvs` over `pairs` in the default [`FvMode::TokenProfile`].
///
/// Every pair id must resolve in its table; a dangling id is an
/// upstream-operator contract violation and is rejected before the job
/// starts.
pub fn gen_fvs(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    pairs: &[IdPair],
    features: &FeatureSet,
) -> Result<GenFvsOutput, FalconError> {
    gen_fvs_with(cluster, a, b, pairs, features, FvMode::default())
}

/// Run `gen_fvs` over `pairs` in an explicit [`FvMode`].
pub fn gen_fvs_with(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    pairs: &[IdPair],
    features: &FeatureSet,
    mode: FvMode,
) -> Result<GenFvsOutput, FalconError> {
    for &(aid, bid) in pairs {
        // Ids are dense from 0, so a length check suffices and never
        // forces the columnar store to materialize its row view.
        if aid as usize >= a.len() {
            return Err(FalconError::UnknownTupleId {
                table: "A",
                id: aid,
            });
        }
        if bid as usize >= b.len() {
            return Err(FalconError::UnknownTupleId {
                table: "B",
                id: bid,
            });
        }
    }
    let tfidf = tfidf_model_for(features, a, b);
    // Pre-tokenize only the tuples this pair list references: sampled
    // stages touch a tiny fraction of each table, and profiling the rest
    // would cost more than the cache saves.
    let profiles: Option<PairProfiles> = match mode {
        FvMode::Legacy => None,
        FvMode::TokenProfile => {
            let mut a_mask = vec![false; a.len()];
            let mut b_mask = vec![false; b.len()];
            for &(aid, bid) in pairs {
                a_mask[aid as usize] = true;
                b_mask[bid as usize] = true;
            }
            Some(build_pair_profiles_par(
                cluster,
                a,
                b,
                &features.features,
                Some(&a_mask),
                Some(&b_mask),
            )?)
        }
    };
    let n_splits = cluster.threads() * 2;
    let chunk = pairs.len().div_ceil(n_splits.max(1)).max(1);
    let splits: Vec<Vec<IdPair>> = pairs.chunks(chunk).map(<[IdPair]>::to_vec).collect();
    // The scoped dataflow workers borrow the tables, features, and
    // profiles directly — no per-job Arc clones.
    let out = run_map_only(cluster, splits, |&(aid, bid): &IdPair, out| {
        let mut ctx = match &tfidf {
            Some(m) => SimContext::with_tfidf(m),
            None => SimContext::empty(),
        };
        if let Some(p) = &profiles {
            ctx = ctx.with_profiles(&p.a, &p.b);
        }
        // Ids were validated above; skip (rather than crash a worker) if
        // the invariant is somehow violated.
        if aid as usize >= a.len() || bid as usize >= b.len() {
            return;
        }
        out.push(((aid, bid), features.vector_at(a, b, aid, bid, &ctx)));
    })?;
    let mut fvs = FvSet::default();
    for (pair, fv) in out.output {
        fvs.pairs.push(pair);
        fvs.fvs.push(fv);
    }
    Ok(GenFvsOutput {
        fvs,
        stats: out.stats,
        prep_stats: profiles.map(|p| p.stats).unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::generate_features;
    use falcon_dataflow::ClusterConfig;
    use falcon_table::{AttrType, Schema, Value};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(2)).with_threads(2)
    }

    #[test]
    fn vectors_align_with_pairs() {
        let schema = Schema::new([("t", AttrType::Str), ("p", AttrType::Num)]);
        let a = Table::new(
            "a",
            schema.clone(),
            (0..10).map(|i| vec![Value::str(format!("item alpha {i}")), Value::num(i as f64)]),
        );
        let b = Table::new(
            "b",
            schema,
            (0..10).map(|i| vec![Value::str(format!("item alpha {i}")), Value::num(i as f64)]),
        );
        let lib = generate_features(&a, &b);
        let pairs: Vec<IdPair> = vec![(0, 0), (1, 2), (9, 9)];
        let out = gen_fvs(&cluster(), &a, &b, &pairs, &lib.blocking).expect("gen_fvs");
        assert_eq!(out.fvs.len(), 3);
        assert_eq!(out.fvs.arity(), lib.blocking.len());
        assert_eq!(out.fvs.pairs, pairs);
        // Identical pair (0,0): all blocking sims maximal / distances zero.
        for (f, v) in lib.blocking.features.iter().zip(&out.fvs.fvs[0]) {
            if f.sim.higher_is_similar() {
                assert!(*v > 0.99, "{} = {v}", f.name);
            } else {
                assert!(*v < 1e-9, "{} = {v}", f.name);
            }
        }
    }

    #[test]
    fn token_profile_mode_matches_legacy_bit_for_bit() {
        let schema = Schema::new([("t", AttrType::Str), ("p", AttrType::Num)]);
        let a = Table::new(
            "a",
            schema.clone(),
            vec![
                vec![Value::str("quick brown fox"), Value::num(1.0)],
                vec![Value::str("..."), Value::num(2.0)], // empty token set
                vec![Value::Null, Value::num(3.0)],       // missing
                vec![Value::str(" 42 "), Value::Null],
            ],
        );
        let b = Table::new(
            "b",
            schema,
            vec![
                vec![Value::str("quick brown dog"), Value::num(1.0)],
                vec![Value::str("!!!"), Value::num(2.5)],
                vec![Value::str("fox"), Value::Null],
                vec![Value::num(42.0), Value::num(9.0)],
            ],
        );
        let lib = generate_features(&a, &b);
        let pairs: Vec<IdPair> = (0..4).flat_map(|i| (0..4).map(move |j| (i, j))).collect();
        let fast = gen_fvs_with(
            &cluster(),
            &a,
            &b,
            &pairs,
            &lib.matching,
            FvMode::TokenProfile,
        )
        .expect("token-profile mode");
        let slow = gen_fvs_with(&cluster(), &a, &b, &pairs, &lib.matching, FvMode::Legacy)
            .expect("legacy mode");
        assert_eq!(fast.fvs.pairs, slow.fvs.pairs);
        for (pair, (fv_fast, fv_slow)) in fast
            .fvs
            .pairs
            .iter()
            .zip(fast.fvs.fvs.iter().zip(&slow.fvs.fvs))
        {
            for (k, (x, y)) in fv_fast.iter().zip(fv_slow).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "pair {pair:?} feature {} ({x} vs {y})",
                    lib.matching.get(k).name
                );
            }
        }
        assert!(!fast.prep_stats.is_empty());
        assert!(slow.prep_stats.is_empty());
    }

    #[test]
    fn empty_pairs_ok() {
        let schema = Schema::new([("t", AttrType::Str)]);
        let a = Table::new("a", schema.clone(), vec![vec![Value::str("x")]]);
        let b = Table::new("b", schema, vec![vec![Value::str("x")]]);
        let lib = generate_features(&a, &b);
        let out = gen_fvs(&cluster(), &a, &b, &[], &lib.blocking).expect("gen_fvs");
        assert!(out.fvs.is_empty());
    }

    #[test]
    fn dangling_pair_id_is_a_typed_error() {
        let schema = Schema::new([("t", AttrType::Str)]);
        let a = Table::new("a", schema.clone(), vec![vec![Value::str("x")]]);
        let b = Table::new("b", schema, vec![vec![Value::str("x")]]);
        let lib = generate_features(&a, &b);
        let err = gen_fvs(&cluster(), &a, &b, &[(0, 7)], &lib.blocking)
            .expect_err("id 7 does not exist in b");
        assert_eq!(err, FalconError::UnknownTupleId { table: "B", id: 7 });
    }
}
