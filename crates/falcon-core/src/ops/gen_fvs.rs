//! `gen_fvs` (Section 8): convert tuple pairs into feature vectors with a
//! map-only job.

use crate::error::FalconError;
use crate::features::FeatureSet;
use crate::fv::FvSet;
use falcon_dataflow::{run_map_only, Cluster, JobStats};
use falcon_table::{IdPair, Table};
use falcon_textsim::{SimContext, SimFunction, TfIdfModel};
use std::sync::Arc;

/// Output of `gen_fvs`.
#[derive(Debug)]
pub struct GenFvsOutput {
    /// Pairs plus vectors, in input order.
    pub fvs: FvSet,
    /// Job statistics.
    pub stats: JobStats,
}

/// Build the TF/IDF corpus model needed by a feature set, if any of its
/// features require one. The model is built over the union of both tables'
/// values of the TF/IDF features' attributes.
pub fn tfidf_model_for(features: &FeatureSet, a: &Table, b: &Table) -> Option<TfIdfModel> {
    let needs: Vec<&crate::features::Feature> = features
        .features
        .iter()
        .filter(|f| matches!(f.sim, SimFunction::TfIdf | SimFunction::SoftTfIdf))
        .collect();
    if needs.is_empty() {
        return None;
    }
    let mut docs: Vec<String> = Vec::new();
    for f in needs {
        for t in a.rows() {
            docs.push(t.value(f.a_idx).render());
        }
        for t in b.rows() {
            docs.push(t.value(f.b_idx).render());
        }
    }
    Some(TfIdfModel::build(docs.iter().map(String::as_str)))
}

/// Run `gen_fvs` over `pairs`.
///
/// Every pair id must resolve in its table; a dangling id is an
/// upstream-operator contract violation and is rejected before the job
/// starts.
pub fn gen_fvs(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    pairs: &[IdPair],
    features: &FeatureSet,
) -> Result<GenFvsOutput, FalconError> {
    for &(aid, bid) in pairs {
        if a.get(aid).is_none() {
            return Err(FalconError::UnknownTupleId {
                table: "A",
                id: aid,
            });
        }
        if b.get(bid).is_none() {
            return Err(FalconError::UnknownTupleId {
                table: "B",
                id: bid,
            });
        }
    }
    let tfidf = tfidf_model_for(features, a, b);
    let a = Arc::new(a.clone());
    let b = Arc::new(b.clone());
    let features = Arc::new(features.clone());
    let n_splits = cluster.threads() * 2;
    let chunk = pairs.len().div_ceil(n_splits.max(1)).max(1);
    let splits: Vec<Vec<IdPair>> = pairs.chunks(chunk).map(<[IdPair]>::to_vec).collect();
    let out = run_map_only(cluster, splits, move |&(aid, bid): &IdPair, out| {
        let ctx = match &tfidf {
            Some(m) => SimContext::with_tfidf(m),
            None => SimContext::empty(),
        };
        // Ids were validated above; skip (rather than crash a worker) if
        // the invariant is somehow violated.
        let (Some(at), Some(bt)) = (a.get(aid), b.get(bid)) else {
            return;
        };
        out.push(((aid, bid), features.vector(at, bt, &ctx)));
    })?;
    let mut fvs = FvSet::default();
    for (pair, fv) in out.output {
        fvs.pairs.push(pair);
        fvs.fvs.push(fv);
    }
    Ok(GenFvsOutput {
        fvs,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::generate_features;
    use falcon_dataflow::ClusterConfig;
    use falcon_table::{AttrType, Schema, Value};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(2)).with_threads(2)
    }

    #[test]
    fn vectors_align_with_pairs() {
        let schema = Schema::new([("t", AttrType::Str), ("p", AttrType::Num)]);
        let a = Table::new(
            "a",
            schema.clone(),
            (0..10).map(|i| vec![Value::str(format!("item alpha {i}")), Value::num(i as f64)]),
        );
        let b = Table::new(
            "b",
            schema,
            (0..10).map(|i| vec![Value::str(format!("item alpha {i}")), Value::num(i as f64)]),
        );
        let lib = generate_features(&a, &b);
        let pairs: Vec<IdPair> = vec![(0, 0), (1, 2), (9, 9)];
        let out = gen_fvs(&cluster(), &a, &b, &pairs, &lib.blocking).expect("gen_fvs");
        assert_eq!(out.fvs.len(), 3);
        assert_eq!(out.fvs.arity(), lib.blocking.len());
        assert_eq!(out.fvs.pairs, pairs);
        // Identical pair (0,0): all blocking sims maximal / distances zero.
        for (f, v) in lib.blocking.features.iter().zip(&out.fvs.fvs[0]) {
            if f.sim.higher_is_similar() {
                assert!(*v > 0.99, "{} = {v}", f.name);
            } else {
                assert!(*v < 1e-9, "{} = {v}", f.name);
            }
        }
    }

    #[test]
    fn empty_pairs_ok() {
        let schema = Schema::new([("t", AttrType::Str)]);
        let a = Table::new("a", schema.clone(), vec![vec![Value::str("x")]]);
        let b = Table::new("b", schema, vec![vec![Value::str("x")]]);
        let lib = generate_features(&a, &b);
        let out = gen_fvs(&cluster(), &a, &b, &[], &lib.blocking).expect("gen_fvs");
        assert!(out.fvs.is_empty());
    }

    #[test]
    fn dangling_pair_id_is_a_typed_error() {
        let schema = Schema::new([("t", AttrType::Str)]);
        let a = Table::new("a", schema.clone(), vec![vec![Value::str("x")]]);
        let b = Table::new("b", schema, vec![vec![Value::str("x")]]);
        let lib = generate_features(&a, &b);
        let err = gen_fvs(&cluster(), &a, &b, &[(0, 7)], &lib.blocking)
            .expect_err("id 7 does not exist in b");
        assert_eq!(err, FalconError::UnknownTupleId { table: "B", id: 7 });
    }
}
