//! `get_blocking_rules` (Sections 3.2, 4.2): extract candidate blocking
//! rules from a random-forest matcher, deduplicate, compute their
//! coverages on the sample `S` as bitmaps, and rank by coverage.

use crate::fv::FvSet;
use crate::ops::bitmap::Bitmap;
use crate::rules::Rule;
use falcon_forest::paths::extract_forest_paths;
use falcon_forest::Forest;

/// Candidate rules plus their sample coverage bitmaps.
#[derive(Debug, Clone)]
pub struct RankedRules {
    /// Rules in decreasing coverage order.
    pub rules: Vec<Rule>,
    /// `coverage[i]` = bitmap of sample pairs rule `i` drops.
    pub coverage: Vec<Bitmap>,
}

impl RankedRules {
    /// Selectivity of rule `i` on the sample: fraction of pairs *kept*.
    pub fn selectivity(&self, i: usize) -> f64 {
        let n = self.coverage[i].len();
        if n == 0 {
            return 1.0;
        }
        1.0 - self.coverage[i].count() as f64 / n as f64
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Extract, dedupe, rank and truncate to the top `max_rules` (the paper
/// evaluates the top 20). `higher[f]` flags similarity-oriented features
/// (controls missing-value semantics, see [`crate::rules::Predicate`]).
pub fn get_blocking_rules(
    forest: &Forest,
    sample: &FvSet,
    max_rules: usize,
    higher: &[bool],
) -> RankedRules {
    let mut seen = std::collections::HashSet::new();
    let mut rules: Vec<Rule> = Vec::new();
    for path in extract_forest_paths(forest) {
        let rule = Rule::from_path(&path, higher);
        if rule.predicates.is_empty() {
            continue;
        }
        if seen.insert(rule.canonical_key()) {
            rules.push(rule);
        }
    }
    // Coverage bitmaps on the sample, batched: iterate sample vectors in
    // the outer loop so each vector is brought into cache once and tested
    // against every rule, instead of re-streaming the whole sample per
    // rule.
    let mut bitmaps: Vec<Bitmap> = rules.iter().map(|_| Bitmap::zeros(sample.len())).collect();
    for (i, fv) in sample.fvs.iter().enumerate() {
        for (rule, bm) in rules.iter().zip(&mut bitmaps) {
            if rule.fires(fv) {
                bm.set(i);
            }
        }
    }
    let mut ranked: Vec<(Rule, Bitmap)> = rules
        .into_iter()
        .zip(bitmaps)
        .filter(|(_, bm)| bm.count() > 0)
        .collect();
    ranked.sort_by_key(|(_, bm)| std::cmp::Reverse(bm.count()));
    ranked.truncate(max_rules);
    let (rules, coverage) = ranked.into_iter().unzip();
    RankedRules { rules, coverage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_forest::{Dataset, ForestConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample() -> FvSet {
        let mut s = FvSet::default();
        for i in 0..100u32 {
            let sim = i as f64 / 100.0;
            s.pairs.push((i, i));
            s.fvs.push(vec![sim]);
        }
        s
    }

    fn forest() -> Forest {
        let mut d = Dataset::new();
        for i in 0..100 {
            let sim = i as f64 / 100.0;
            d.push(vec![sim], sim > 0.5);
        }
        Forest::train(
            &d,
            &ForestConfig::default(),
            &mut SmallRng::seed_from_u64(3),
        )
    }

    #[test]
    fn extracts_ranked_rules() {
        let r = get_blocking_rules(&forest(), &sample(), 20, &[true]);
        assert!(!r.is_empty());
        // Coverage is non-increasing.
        for w in r.coverage.windows(2) {
            assert!(w[0].count() >= w[1].count());
        }
        // Top rule should drop roughly the dissimilar half.
        let top_cov = r.coverage[0].count();
        assert!((30..=70).contains(&top_cov), "{top_cov}");
    }

    #[test]
    fn dedupes_identical_paths() {
        let r = get_blocking_rules(&forest(), &sample(), 50, &[true]);
        let mut keys: Vec<String> = r.rules.iter().map(Rule::canonical_key).collect();
        keys.sort();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }

    #[test]
    fn max_rules_respected() {
        let r = get_blocking_rules(&forest(), &sample(), 2, &[true]);
        assert!(r.len() <= 2);
    }

    #[test]
    fn selectivity_consistent_with_coverage() {
        let r = get_blocking_rules(&forest(), &sample(), 20, &[true]);
        for i in 0..r.len() {
            let sel = r.selectivity(i);
            let expect = 1.0 - r.coverage[i].count() as f64 / 100.0;
            assert!((sel - expect).abs() < 1e-12);
        }
    }
}
