//! Dense bitmaps over sample indices — the representation Falcon uses for
//! rule coverages (`cov(R, S)`), enabling fast OR-based computation of
//! sequence coverage and selectivity (Section 6).

use serde::{Deserialize, Serialize};

/// A fixed-length bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Get bit `i`.
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place OR.
    pub fn or_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Popcount of `self | other` without materializing it.
    pub fn union_count(&self, other: &Bitmap) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Indices of set bits.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::zeros(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count(), 3);
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn or_and_union_count() {
        let mut a = Bitmap::zeros(100);
        let mut b = Bitmap::zeros(100);
        a.set(1);
        a.set(50);
        b.set(50);
        b.set(99);
        assert_eq!(a.union_count(&b), 3);
        a.or_with(&b);
        assert_eq!(a.count(), 3);
        assert!(a.get(99));
    }

    #[test]
    fn zero_len_ok() {
        let b = Bitmap::zeros(0);
        assert_eq!(b.count(), 0);
        assert!(b.is_empty());
    }
}
