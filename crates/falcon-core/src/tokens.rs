//! Table-level builders for the token-profile cache
//! ([`falcon_textsim::TokenProfile`]).
//!
//! [`requirements`] inspects a feature set and derives, per side, which
//! attributes need a rendered-value cache and which `(attribute,
//! tokenizer)` columns need pre-tokenization. [`build_pair_profiles_par`]
//! then tokenizes each needed column **once per tuple** with a parallel
//! map-only job (optionally restricted to the tuples a pair list actually
//! references), interning tokens into one [`TokenDict`] shared by both
//! tables so equal strings compare as equal `u32` ids across sides.
//!
//! Determinism: map output is re-sorted by tuple id and interned
//! sequentially (A side first, then B), so dictionary ids — and therefore
//! profile contents — are independent of worker scheduling.

use crate::error::FalconError;
use crate::features::Feature;
use falcon_dataflow::{run_map_only, Cluster, JobStats};
use falcon_table::{Table, TupleId};
use falcon_textsim::{RenderedColumn, SimFunction, TokenDict, TokenProfile, Tokenizer};

/// What one side of a table pair must profile to serve a feature set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSpec {
    /// Attribute indexes whose rendered value is cached (string-path
    /// measures read these instead of calling `Value::render` per feature).
    pub rendered_attrs: Vec<usize>,
    /// `(attribute index, tokenizer)` columns to pre-tokenize for the
    /// set-based measures.
    pub token_columns: Vec<(usize, Tokenizer)>,
}

impl ProfileSpec {
    /// True when nothing needs profiling (e.g. an all-numeric feature set).
    pub fn is_empty(&self) -> bool {
        self.rendered_attrs.is_empty() && self.token_columns.is_empty()
    }
}

fn push_unique<T: PartialEq>(v: &mut Vec<T>, x: T) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// Derive the A-side and B-side profile specs for a set of features.
///
/// Numeric measures other than `ExactMatch` never render their operands
/// (`score_values` parses the `Value` directly), so they contribute
/// nothing; every other measure reads rendered strings, and the set-based
/// measures additionally get a token-id column for their tokenizer.
pub fn requirements<'a>(
    features: impl IntoIterator<Item = &'a Feature>,
) -> (ProfileSpec, ProfileSpec) {
    let mut a = ProfileSpec::default();
    let mut b = ProfileSpec::default();
    for f in features {
        if f.sim.is_numeric() && !matches!(f.sim, SimFunction::ExactMatch) {
            continue;
        }
        push_unique(&mut a.rendered_attrs, f.a_idx);
        push_unique(&mut b.rendered_attrs, f.b_idx);
        if f.sim.is_set_based() {
            if let Some(t) = f.sim.tokenizer() {
                push_unique(&mut a.token_columns, (f.a_idx, t));
                push_unique(&mut b.token_columns, (f.b_idx, t));
            }
        }
    }
    (a, b)
}

/// Per-tuple map task: render the needed attributes and tokenize the
/// needed columns (token strings stay strings here; interning happens in
/// the deterministic sequential pass). Reads cells through
/// [`Table::value_ref`], so a columnar table never materializes rows.
fn profile_id(
    table: &Table,
    id: TupleId,
    spec: &ProfileSpec,
) -> (u32, Vec<String>, Vec<Vec<String>>) {
    let render = |attr: usize| {
        table
            .value_ref(id, attr)
            .map(|v| v.render())
            .unwrap_or_default()
    };
    let rendered: Vec<String> = spec
        .rendered_attrs
        .iter()
        .map(|&attr| render(attr))
        .collect();
    let tokens: Vec<Vec<String>> = spec
        .token_columns
        .iter()
        .map(
            |&(attr, tok)| match spec.rendered_attrs.iter().position(|&a| a == attr) {
                Some(i) => tok.tokenize_sorted(&rendered[i]),
                None => tok.tokenize_sorted(&render(attr)),
            },
        )
        .collect();
    (id, rendered, tokens)
}

/// Assemble map output into a [`TokenProfile`], interning tokens in tuple-id
/// order so dictionary ids are deterministic.
fn assemble(
    table_len: usize,
    spec: &ProfileSpec,
    mut records: Vec<(u32, Vec<String>, Vec<Vec<String>>)>,
    dict: &mut TokenDict,
    complete: bool,
) -> TokenProfile {
    records.sort_by_key(|(id, _, _)| *id);
    // Rendered values go into arena-backed columns; records arrive
    // id-sorted, so gaps (uncovered tuples) are filled with "" as we go.
    let mut rendered_cols: Vec<RenderedColumn> = spec
        .rendered_attrs
        .iter()
        .map(|_| RenderedColumn::new())
        .collect();
    let mut token_cols: Vec<Vec<Vec<u32>>> = spec
        .token_columns
        .iter()
        .map(|_| vec![Vec::new(); table_len])
        .collect();
    let mut covered = vec![false; table_len];
    let mut cursor = 0usize; // rendered cells emitted per column so far
    for (id, rends, toklists) in records {
        let idx = id as usize;
        if idx >= table_len || idx < cursor {
            continue;
        }
        covered[idx] = true;
        for col in &mut rendered_cols {
            for _ in cursor..idx {
                col.push("");
            }
        }
        cursor = idx + 1;
        for (col, r) in rendered_cols.iter_mut().zip(rends) {
            col.push(&r);
        }
        for (col, toks) in token_cols.iter_mut().zip(toklists) {
            // Tokens arrive sorted by *string*; after interning, re-sort by
            // id (id order ≠ string order). Distinct strings intern to
            // distinct ids, so no dedup is needed.
            let mut ids: Vec<u32> = toks.into_iter().map(|t| dict.intern_owned(t)).collect();
            ids.sort_unstable();
            col[idx] = ids;
        }
    }
    for col in &mut rendered_cols {
        for _ in cursor..table_len {
            col.push("");
        }
    }
    let mut profile = TokenProfile::new(complete);
    for (&attr, col) in spec.rendered_attrs.iter().zip(rendered_cols) {
        profile.insert_rendered_col(attr, col);
    }
    for (&key, col) in spec.token_columns.iter().zip(token_cols) {
        profile.insert_column(key, col);
    }
    if !complete {
        profile.set_coverage(covered);
    }
    profile
}

/// Build one table's profile sequentially (no cluster accounting). Used
/// where no dataflow context exists, e.g. `PairEvaluator` construction.
pub fn build_profile_seq(table: &Table, spec: &ProfileSpec, dict: &mut TokenDict) -> TokenProfile {
    let records: Vec<_> = (0..table.len() as TupleId)
        .map(|id| profile_id(table, id, spec))
        .collect();
    assemble(table.len(), spec, records, dict, true)
}

/// Build one table's profile with a parallel map-only job.
///
/// `mask` (indexed by tuple id) restricts profiling to the tuples a pair
/// list actually references — essential for sampled stages where
/// tokenizing the whole table would cost more than it saves. A masked
/// profile records its coverage so lookups on unprofiled tuples fall back
/// to the string path instead of misreading them as empty.
pub fn build_profile_par(
    cluster: &Cluster,
    table: &Table,
    spec: &ProfileSpec,
    dict: &mut TokenDict,
    mask: Option<&[bool]>,
) -> Result<(TokenProfile, JobStats), FalconError> {
    let ids: Vec<TupleId> = match mask {
        None => (0..table.len() as TupleId).collect(),
        Some(m) => (0..table.len() as TupleId)
            .filter(|&id| m.get(id as usize).copied().unwrap_or(false))
            .collect(),
    };
    let n_splits = cluster.threads() * 2;
    let chunk = ids.len().div_ceil(n_splits.max(1)).max(1);
    let splits: Vec<Vec<TupleId>> = ids.chunks(chunk).map(<[TupleId]>::to_vec).collect();
    let out = run_map_only(cluster, splits, |&id: &TupleId, out| {
        out.push(profile_id(table, id, spec));
    })?;
    let profile = assemble(table.len(), spec, out.output, dict, mask.is_none());
    Ok((profile, out.stats))
}

/// Token profiles for both sides of a table pair, sharing one dictionary.
#[derive(Debug, Clone, Default)]
pub struct PairProfiles {
    /// A-side profile.
    pub a: TokenProfile,
    /// B-side profile.
    pub b: TokenProfile,
    /// The shared interner (A interned first, then B).
    pub dict: TokenDict,
    /// Stats of the profiling map jobs (empty for sequential builds).
    pub stats: Vec<JobStats>,
}

/// Build both sides' profiles in parallel map-only jobs, restricted by
/// optional per-side tuple masks, sharing one dictionary.
pub fn build_pair_profiles_par<'a>(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    features: impl IntoIterator<Item = &'a Feature>,
    a_mask: Option<&[bool]>,
    b_mask: Option<&[bool]>,
) -> Result<PairProfiles, FalconError> {
    let (a_spec, b_spec) = requirements(features);
    let mut dict = TokenDict::new();
    let (a_profile, a_stats) = build_profile_par(cluster, a, &a_spec, &mut dict, a_mask)?;
    let (b_profile, b_stats) = build_profile_par(cluster, b, &b_spec, &mut dict, b_mask)?;
    Ok(PairProfiles {
        a: a_profile,
        b: b_profile,
        dict,
        stats: vec![a_stats, b_stats],
    })
}

/// Build both sides' full-table profiles sequentially, sharing one
/// dictionary.
pub fn build_pair_profiles_seq<'a>(
    a: &Table,
    b: &Table,
    features: impl IntoIterator<Item = &'a Feature>,
) -> PairProfiles {
    let (a_spec, b_spec) = requirements(features);
    let mut dict = TokenDict::new();
    let a_profile = build_profile_seq(a, &a_spec, &mut dict);
    let b_profile = build_profile_seq(b, &b_spec, &mut dict);
    PairProfiles {
        a: a_profile,
        b: b_profile,
        dict,
        stats: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::generate_features;
    use falcon_dataflow::ClusterConfig;
    use falcon_table::{AttrType, Schema, Value};

    fn tables() -> (Table, Table) {
        let schema = Schema::new([
            ("title", AttrType::Str),
            ("brand", AttrType::Str),
            ("price", AttrType::Num),
        ]);
        let a = Table::new(
            "a",
            schema.clone(),
            (0..12).map(|i| {
                vec![
                    Value::str(format!("quick brown product number {i}")),
                    Value::str("sony"),
                    Value::num(10.0 + i as f64),
                ]
            }),
        );
        let b = Table::new(
            "b",
            schema,
            (0..12).map(|i| {
                vec![
                    Value::str(format!("quick brown gadget number {i}")),
                    Value::str("sony"),
                    Value::num(10.0 + i as f64),
                ]
            }),
        );
        (a, b)
    }

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(2)).with_threads(2)
    }

    #[test]
    fn requirements_skip_pure_numeric_measures() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let (sa, sb) = requirements(&lib.matching.features);
        // Set-based title features produce token columns on both sides.
        assert!(!sa.token_columns.is_empty());
        assert!(!sb.token_columns.is_empty());
        // price carries ExactMatch/Levenshtein (string path), so it still
        // appears in rendered_attrs, but never as a token column.
        assert!(sa.rendered_attrs.contains(&2));
        assert!(!sa.token_columns.iter().any(|&(attr, _)| attr == 2));
        assert!(!sa.is_empty());
    }

    #[test]
    fn par_and_seq_profiles_agree() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let par = build_pair_profiles_par(&cluster(), &a, &b, &lib.matching.features, None, None)
            .expect("profiles");
        let seq = build_pair_profiles_seq(&a, &b, &lib.matching.features);
        assert_eq!(par.dict.len(), seq.dict.len());
        let (sa, _) = requirements(&lib.matching.features);
        for t in a.rows() {
            for &(attr, tok) in &sa.token_columns {
                assert_eq!(
                    par.a.tokens(attr, tok, t.id),
                    seq.a.tokens(attr, tok, t.id),
                    "tuple {} attr {attr}",
                    t.id
                );
            }
            for &attr in &sa.rendered_attrs {
                assert_eq!(par.a.rendered(attr, t.id), seq.a.rendered(attr, t.id));
                assert_eq!(
                    par.a.rendered(attr, t.id),
                    Some(t.value(attr).render().as_str())
                );
            }
        }
        assert!(par.a.is_complete() && par.b.is_complete());
        assert_eq!(par.stats.len(), 2);
    }

    #[test]
    fn shared_dict_makes_cross_table_tokens_comparable() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let p = build_pair_profiles_seq(&a, &b, &lib.matching.features);
        // "sony" in both brand columns must intern to the same id.
        let brand = 1usize;
        let tok = Tokenizer::QGram(3);
        let xa = p.a.tokens(brand, tok, 0).expect("a tokens");
        let xb = p.b.tokens(brand, tok, 0).expect("b tokens");
        assert_eq!(xa, xb);
        assert!(!xa.is_empty());
    }

    #[test]
    fn masked_build_covers_only_masked_tuples() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let mut mask = vec![false; a.len()];
        mask[3] = true;
        mask[7] = true;
        let (sa, _) = requirements(&lib.matching.features);
        let mut dict = TokenDict::new();
        let (p, stats) =
            build_profile_par(&cluster(), &a, &sa, &mut dict, Some(&mask)).expect("profile");
        assert!(!p.is_complete());
        assert_eq!(stats.input_records, 2);
        let (attr, tok) = sa.token_columns[0];
        assert!(p.tokens(attr, tok, 3).is_some());
        assert!(p.tokens(attr, tok, 7).is_some());
        assert!(p.tokens(attr, tok, 0).is_none());
        assert!(p.rendered(attr, 0).is_none());
    }

    #[test]
    fn interned_ids_are_sorted_per_tuple() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let p = build_pair_profiles_seq(&a, &b, &lib.matching.features);
        let (sa, _) = requirements(&lib.matching.features);
        for t in a.rows() {
            for &(attr, tok) in &sa.token_columns {
                let ids = p.a.tokens(attr, tok, t.id).expect("tokens");
                assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted dedup ids");
            }
        }
    }
}
