//! Falcon: hands-off crowdsourced entity matching, scaled up with
//! RDBMS-style plans over a MapReduce substrate.
//!
//! This crate is the paper's primary contribution. Given two tables `A`
//! and `B` and a (possibly simulated) crowd, [`driver::Falcon`] executes
//! one of the two plan templates of Figure 3:
//!
//! ```text
//! (a) sample_pairs → gen_fvs → al_matcher → get_blocking_rules →
//!     eval_rules → select_opt_seq → apply_blocking_rules →
//!     gen_fvs → al_matcher → apply_matcher
//! (b) cross_product → gen_fvs → al_matcher → apply_matcher
//! ```
//!
//! The eight operators live in [`ops`]; the six physical implementations
//! of `apply_blocking_rules` (apply-all / apply-greedy / apply-conjunct /
//! apply-predicate plus the prior-work MapSide and ReduceSplit baselines)
//! live in [`physical`]; the three "mask machine time under crowd time"
//! optimizations of Section 10.2 live in [`optimizer`] and are accounted
//! by [`timeline::Timeline`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analyze;
pub mod corleone;
pub mod driver;
pub mod error;
pub mod features;
pub mod fv;
pub mod indexing;
pub mod kbb;
pub mod metrics;
pub mod ops;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod rules;
pub mod snb;
pub mod stage;
pub mod timeline;
pub mod tokens;

pub use analyze::{analyze, Diagnostic, PlanAnalysis, PlanAnalysisError, PlanSpan, Severity};
pub use driver::{Falcon, FalconConfig, ForcedFilter, RunReport};
pub use error::FalconError;
pub use features::{Feature, FeatureLibrary, FeatureSet};
pub use fv::FvSet;
pub use optimizer::OptFlags;
pub use rules::{CnfRule, Predicate, Rule, RuleSequence};
pub use timeline::Timeline;
pub use tokens::{PairProfiles, ProfileSpec};
