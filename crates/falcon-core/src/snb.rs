//! Sorted-neighborhood blocking (SNB) baseline.
//!
//! The paper's related-work section points at MapReduce sorted-neighborhood
//! blocking (Kolb et al., BTW 2011) as complementary to rule-based
//! blocking. SNB sorts both tables' tuples by a sorting key and slides a
//! window of size `w` over the merged order: tuples within a window become
//! candidate pairs. Like KBB it is fast and hands-on (someone must pick
//! the key), and like KBB it loses recall when the key prefix is dirty —
//! which is what the `snb` rows of the `kbb_recall` bench demonstrate.

use falcon_table::{IdPair, Table};

/// Result of an SNB run.
#[derive(Debug, Clone)]
pub struct SnbResult {
    /// Candidate pairs, sorted and deduplicated.
    pub candidates: Vec<IdPair>,
    /// The key attribute used.
    pub key: String,
    /// Window size.
    pub window: usize,
}

/// Run sorted-neighborhood blocking over one key attribute with window
/// `w`. Missing key values sort first (they end up clustered, like real
/// SNB implementations).
pub fn snb_candidates(a: &Table, b: &Table, key: &str, w: usize) -> Vec<IdPair> {
    let (Some(ai), Some(bi)) = (a.schema().index_of(key), b.schema().index_of(key)) else {
        return Vec::new();
    };
    // Merge both tables into one sorted run, tagging the side.
    let mut merged: Vec<(String, bool, u32)> = Vec::with_capacity(a.len() + b.len());
    a.for_each_value(ai, |id, v| {
        merged.push((v.render().to_lowercase(), false, id))
    });
    b.for_each_value(bi, |id, v| {
        merged.push((v.render().to_lowercase(), true, id))
    });
    merged.sort();
    let w = w.max(2);
    let mut out = Vec::new();
    for (i, (_, is_b, id)) in merged.iter().enumerate() {
        for (_, other_b, other_id) in merged.iter().skip(i + 1).take(w - 1) {
            match (is_b, other_b) {
                (false, true) => out.push((*id, *other_id)),
                (true, false) => out.push((*other_id, *id)),
                _ => {}
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Try every shared attribute as the sorting key; return the highest-recall
/// result within a candidate budget (same discipline as `best_kbb`: a
/// window so large it keeps most of `A × B` is not blocking).
pub fn best_snb(a: &Table, b: &Table, truth: &[IdPair], w: usize) -> SnbResult {
    // SNB naturally yields about w·(|A|+|B|) pairs; the budget only
    // rejects degenerate keys whose ties blow the window up further.
    let budget =
        (((a.len() as f64 * b.len() as f64) * 0.05).ceil() as usize).max(w * (a.len() + b.len()));
    let mut best: Option<(f64, SnbResult)> = None;
    for key in a.schema().names() {
        if b.schema().index_of(key).is_none() {
            continue;
        }
        let cands = snb_candidates(a, b, key, w);
        if cands.len() > budget {
            continue;
        }
        let recall = crate::metrics::blocking_recall(&cands, truth);
        let result = SnbResult {
            candidates: cands,
            key: key.to_string(),
            window: w,
        };
        if best.as_ref().is_none_or(|(r, _)| recall > *r) {
            best = Some((recall, result));
        }
    }
    best.map(|(_, r)| r).unwrap_or(SnbResult {
        candidates: Vec::new(),
        key: String::new(),
        window: w,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_table::{AttrType, Schema, Value};

    fn tables() -> (Table, Table) {
        let schema = Schema::new([("name", AttrType::Str)]);
        let names_a = ["anna", "bert", "carl", "dora", "emil"];
        let names_b = ["anna", "berta", "carlo", "dina", "emile"];
        (
            Table::new(
                "a",
                schema.clone(),
                names_a.iter().map(|n| vec![Value::str(*n)]),
            ),
            Table::new("b", schema, names_b.iter().map(|n| vec![Value::str(*n)])),
        )
    }

    #[test]
    fn window_pairs_nearby_keys() {
        let (a, b) = tables();
        let c = snb_candidates(&a, &b, "name", 3);
        // "anna"(A) and "anna"(B) are adjacent in sort order.
        assert!(c.contains(&(0, 0)), "{c:?}");
        // Distant keys are not paired with a window of 3.
        assert!(!c.contains(&(0, 4)), "{c:?}");
    }

    #[test]
    fn larger_window_more_candidates() {
        let (a, b) = tables();
        let c2 = snb_candidates(&a, &b, "name", 2).len();
        let c4 = snb_candidates(&a, &b, "name", 4).len();
        let c10 = snb_candidates(&a, &b, "name", 10).len();
        assert!(c2 <= c4 && c4 <= c10, "{c2} {c4} {c10}");
        // Window covering everything = full cross product.
        assert_eq!(c10, a.len() * b.len());
    }

    #[test]
    fn cross_side_pairs_only() {
        let (a, b) = tables();
        for (aid, bid) in snb_candidates(&a, &b, "name", 4) {
            assert!((aid as usize) < a.len());
            assert!((bid as usize) < b.len());
        }
    }

    #[test]
    fn unknown_key_is_empty() {
        let (a, b) = tables();
        assert!(snb_candidates(&a, &b, "nope", 3).is_empty());
    }

    #[test]
    fn best_snb_picks_a_key() {
        let (a, b) = tables();
        let truth = vec![(0, 0)];
        let r = best_snb(&a, &b, &truth, 3);
        assert_eq!(r.key, "name");
        assert!(crate::metrics::blocking_recall(&r.candidates, &truth) > 0.99);
    }
}
