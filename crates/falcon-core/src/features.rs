//! Automatic feature generation (Section 8 / Figure 5).
//!
//! A feature is `sim(a.x, b.y)`. Falcon creates attribute correspondences
//! (same-name attributes, falling back to positional string/string and
//! numeric/numeric pairing), profiles each attribute's characteristic, and
//! instantiates the Figure 5 similarity functions for the "lower row" of
//! the two characteristics. Measures marked `*` in Figure 5 are excluded
//! from the blocking feature set (too slow / unfilterable for blocking).

use falcon_table::{AttrCharacteristic, Table, TableProfile, Tuple, TupleId, Value, ValueRef};
use falcon_textsim::{sets, SimContext, SimFunction, Tokenizer};
use serde::{Deserialize, Serialize};

/// One feature: a similarity function applied to an attribute
/// correspondence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Display name, e.g. `jaccard_word(title,title)`.
    pub name: String,
    /// A-side attribute name.
    pub a_attr: String,
    /// B-side attribute name.
    pub b_attr: String,
    /// The similarity measure.
    pub sim: SimFunction,
    /// Cached A-side attribute index.
    pub a_idx: usize,
    /// Cached B-side attribute index.
    pub b_idx: usize,
}

impl Feature {
    /// Compute the feature value for a tuple pair; `NaN` means missing.
    ///
    /// When the context carries [`falcon_textsim::TokenProfile`]s covering
    /// this feature's attributes and tuples, the pre-tokenized fast path is
    /// taken; otherwise this falls back to rendering and tokenizing on the
    /// fly. Both paths are bit-identical (enforced by the
    /// `fv_equivalence` property test).
    pub fn compute(&self, a: &Tuple, b: &Tuple, ctx: &SimContext<'_>) -> f64 {
        if let Some(v) = self.compute_profiled(a.id, b.id, ctx) {
            return v;
        }
        let av = a.value(self.a_idx);
        let bv = b.value(self.b_idx);
        score_values(self.sim, av, bv, ctx)
    }

    /// Compute the feature value for a pair of tuple ids, pulling cells
    /// straight from the tables; `NaN` means missing. Identical scoring
    /// to [`Feature::compute`] (the profiled fast path only needs ids;
    /// the fallback reads per-attribute cells via [`Table::value_ref`],
    /// so a columnar table never materializes rows).
    pub fn compute_at(
        &self,
        a: &Table,
        b: &Table,
        aid: TupleId,
        bid: TupleId,
        ctx: &SimContext<'_>,
    ) -> f64 {
        if let Some(v) = self.compute_profiled(aid, bid, ctx) {
            return v;
        }
        let av = a.value_ref(aid, self.a_idx).unwrap_or(ValueRef::Null);
        let bv = b.value_ref(bid, self.b_idx).unwrap_or(ValueRef::Null);
        score_value_refs(self.sim, av, bv, ctx)
    }

    /// Fast path over the token profiles. Returns `None` — meaning "use
    /// the string path" — when profiles are absent or do not cover this
    /// feature's columns or tuples; numeric measures (other than
    /// `ExactMatch`) never render, so they always use the direct path.
    fn compute_profiled(&self, a_id: TupleId, b_id: TupleId, ctx: &SimContext<'_>) -> Option<f64> {
        let (ap, bp) = (ctx.a_profile?, ctx.b_profile?);
        if self.sim.is_numeric() && !matches!(self.sim, SimFunction::ExactMatch) {
            return None;
        }
        let ar = ap.rendered(self.a_idx, a_id)?;
        let br = bp.rendered(self.b_idx, b_id)?;
        // Missingness is decided on the rendered string, exactly like
        // `score_str`; a non-empty string can still have an empty token
        // set (punctuation-only under `Tokenizer::Word`), which the id
        // kernels score 0.0 just like the legacy set kernels.
        if ar.is_empty() || br.is_empty() {
            return Some(f64::NAN);
        }
        match self.sim {
            SimFunction::Jaccard(t) => Some(sets::jaccard_ids(
                ap.tokens(self.a_idx, t, a_id)?,
                bp.tokens(self.b_idx, t, b_id)?,
            )),
            SimFunction::Dice(t) => Some(sets::dice_ids(
                ap.tokens(self.a_idx, t, a_id)?,
                bp.tokens(self.b_idx, t, b_id)?,
            )),
            SimFunction::Overlap(t) => Some(sets::overlap_ids(
                ap.tokens(self.a_idx, t, a_id)?,
                bp.tokens(self.b_idx, t, b_id)?,
            )),
            SimFunction::Cosine(t) => Some(sets::cosine_ids(
                ap.tokens(self.a_idx, t, a_id)?,
                bp.tokens(self.b_idx, t, b_id)?,
            )),
            // Edit/hybrid/TF-IDF measures still run their own algorithm but
            // reuse the cached rendered strings instead of re-rendering.
            _ => Some(self.sim.score_str(ar, br, ctx).unwrap_or(f64::NAN)),
        }
    }
}

/// Score a similarity function on two values with missing ⇒ `NaN`.
pub fn score_values(sim: SimFunction, a: &Value, b: &Value, ctx: &SimContext<'_>) -> f64 {
    score_value_refs(sim, a.as_value_ref(), b.as_value_ref(), ctx)
}

/// Score a similarity function on two borrowed cell views with missing ⇒
/// `NaN`; same scoring as [`score_values`] ([`ValueRef`] mirrors
/// [`Value`] semantics exactly).
pub fn score_value_refs(
    sim: SimFunction,
    a: ValueRef<'_>,
    b: ValueRef<'_>,
    ctx: &SimContext<'_>,
) -> f64 {
    if sim.is_numeric() && !matches!(sim, SimFunction::ExactMatch) {
        match (a.as_num(), b.as_num()) {
            (Some(x), Some(y)) => sim.score_num(x, y).unwrap_or(f64::NAN),
            _ => f64::NAN,
        }
    } else {
        sim.score_str(&a.render(), &b.render(), ctx)
            .unwrap_or(f64::NAN)
    }
}

/// An ordered set of features; rule predicates reference features by index
/// into one of these.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FeatureSet {
    /// Features in index order.
    pub features: Vec<Feature>,
}

impl FeatureSet {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature at an index.
    pub fn get(&self, idx: usize) -> &Feature {
        &self.features[idx]
    }

    /// Compute the full feature vector for one pair.
    pub fn vector(&self, a: &Tuple, b: &Tuple, ctx: &SimContext<'_>) -> Vec<f64> {
        self.features.iter().map(|f| f.compute(a, b, ctx)).collect()
    }

    /// Compute the full feature vector for one pair of tuple ids,
    /// reading cells straight from the tables (see
    /// [`Feature::compute_at`]).
    pub fn vector_at(
        &self,
        a: &Table,
        b: &Table,
        aid: TupleId,
        bid: TupleId,
        ctx: &SimContext<'_>,
    ) -> Vec<f64> {
        self.features
            .iter()
            .map(|f| f.compute_at(a, b, aid, bid, ctx))
            .collect()
    }
}

/// The blocking and matching feature sets generated for a table pair.
/// (Table 1 commentary: "50/83 features for Products" = blocking/matching.)
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FeatureLibrary {
    /// Fast, filterable features used in the blocking stage.
    pub blocking: FeatureSet,
    /// Full feature set used in the matching stage.
    pub matching: FeatureSet,
}

/// Figure 5: similarity functions per characteristic. The bool marks
/// matching-only measures (`*` in the paper's table).
fn figure5_sims(ch: AttrCharacteristic) -> Vec<(SimFunction, bool)> {
    use SimFunction::*;
    let g3 = Tokenizer::QGram(3);
    let w = Tokenizer::Word;
    match ch {
        AttrCharacteristic::SingleWordString => vec![
            (ExactMatch, false),
            (Jaccard(g3), false),
            (Overlap(g3), false),
            (Dice(g3), false),
            (Levenshtein, false),
            (Jaro, true),
            (JaroWinkler, true),
        ],
        AttrCharacteristic::ShortString => vec![
            (Jaccard(g3), false),
            (Overlap(g3), false),
            (Dice(g3), false),
            (Jaccard(w), false),
            (Overlap(w), false),
            (Dice(w), false),
            (Cosine(w), false),
            (MongeElkan, true),
            (NeedlemanWunsch, true),
            (SmithWaterman, true),
            (SmithWatermanGotoh, true),
        ],
        AttrCharacteristic::MediumString => vec![
            (Jaccard(w), false),
            (Overlap(w), false),
            (Dice(w), false),
            (Cosine(w), false),
            (MongeElkan, true),
        ],
        AttrCharacteristic::LongString => vec![
            (Jaccard(w), false),
            (Overlap(w), false),
            (Dice(w), false),
            (Cosine(w), false),
            (TfIdf, true),
            (SoftTfIdf, true),
        ],
        AttrCharacteristic::Numeric => vec![
            (ExactMatch, false),
            (AbsDiff, false),
            (RelDiff, false),
            (Levenshtein, false),
        ],
    }
}

/// Generate blocking and matching feature sets for a table pair.
///
/// Correspondences: attributes sharing a name are paired; remaining
/// attributes are paired positionally when their profiled types agree.
pub fn generate_features(a: &Table, b: &Table) -> FeatureLibrary {
    let pa = TableProfile::scan(a);
    let pb = TableProfile::scan(b);

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut used_b: Vec<bool> = vec![false; b.schema().arity()];
    for (ai, attr) in a.schema().attrs().iter().enumerate() {
        if let Some(bi) = b.schema().index_of(&attr.name) {
            pairs.push((ai, bi));
            used_b[bi] = true;
        }
    }
    // Positional fallback for unmatched names with agreeing profiled types.
    for ai in 0..a.schema().arity() {
        if pairs.iter().any(|(x, _)| *x == ai) {
            continue;
        }
        let want = pa.attrs[ai].ty;
        if let Some(bi) = (0..b.schema().arity()).find(|&bi| !used_b[bi] && pb.attrs[bi].ty == want)
        {
            pairs.push((ai, bi));
            used_b[bi] = true;
        }
    }

    let mut blocking = FeatureSet::default();
    let mut matching = FeatureSet::default();
    for (ai, bi) in pairs {
        let ch = pa.attrs[ai]
            .characteristic
            .lower_row(pb.attrs[bi].characteristic);
        for (sim, matching_only) in figure5_sims(ch) {
            let feature = Feature {
                name: format!(
                    "{}({},{})",
                    sim.name(),
                    a.schema().attr(ai).name,
                    b.schema().attr(bi).name
                ),
                a_attr: a.schema().attr(ai).name.clone(),
                b_attr: b.schema().attr(bi).name.clone(),
                sim,
                a_idx: ai,
                b_idx: bi,
            };
            if !matching_only && sim.usable_for_blocking() {
                blocking.features.push(feature.clone());
            }
            matching.features.push(feature);
        }
    }
    FeatureLibrary { blocking, matching }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_table::{AttrType, Schema};

    fn tables() -> (Table, Table) {
        let schema = Schema::new([
            ("title", AttrType::Str),
            ("brand", AttrType::Str),
            ("price", AttrType::Num),
        ]);
        let a = Table::new(
            "a",
            schema.clone(),
            (0..20).map(|i| {
                vec![
                    Value::str(format!("quick brown product number {i}")),
                    Value::str("sony"),
                    Value::num(10.0 + i as f64),
                ]
            }),
        );
        let b = Table::new(
            "b",
            schema,
            (0..20).map(|i| {
                vec![
                    Value::str(format!("quick brown product number {i}")),
                    Value::str("sony"),
                    Value::num(10.0 + i as f64),
                ]
            }),
        );
        (a, b)
    }

    #[test]
    fn generates_blocking_and_matching_sets() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        assert!(!lib.blocking.is_empty());
        // Matching set is a superset in count (includes * measures).
        assert!(lib.matching.len() >= lib.blocking.len());
        // No matching-only measure leaks into blocking.
        for f in &lib.blocking.features {
            assert!(f.sim.usable_for_blocking(), "{}", f.name);
        }
    }

    #[test]
    fn numeric_attrs_get_numeric_features() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        assert!(lib
            .blocking
            .features
            .iter()
            .any(|f| f.a_attr == "price" && f.sim == SimFunction::AbsDiff));
    }

    #[test]
    fn vectors_have_feature_arity_and_missing_is_nan() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let ctx = SimContext::empty();
        let fv = lib.matching.vector(&a.rows()[0], &b.rows()[0], &ctx);
        assert_eq!(fv.len(), lib.matching.len());
        // Identical tuples: all similarity-oriented features should be 1 or
        // 0-distance.
        for (f, v) in lib.matching.features.iter().zip(&fv) {
            if v.is_nan() {
                continue; // tfidf without corpus model
            }
            if f.sim.higher_is_similar() {
                assert!(*v >= 0.99, "{} = {}", f.name, v);
            } else {
                assert!(*v <= 1e-9, "{} = {}", f.name, v);
            }
        }
    }

    #[test]
    fn feature_names_are_informative() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        assert!(lib
            .blocking
            .features
            .iter()
            .any(|f| f.name == "jaccard_word(title,title)"));
    }
}
