//! Plan templates and plan generation (Figure 3, Section 10.1).

use falcon_table::Table;
use serde::{Deserialize, Serialize};

/// The two plan templates of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanKind {
    /// Figure 3.a: Blocker followed by Matcher.
    BlockAndMatch,
    /// Figure 3.b: Matcher only (tables small enough to skip blocking).
    MatchOnly,
}

/// Estimated bytes of `A × B` encoded as feature vectors of the given
/// arity (8 bytes per feature plus pair ids).
pub fn estimate_fv_bytes(a: &Table, b: &Table, arity: usize) -> u128 {
    let pairs = a.len() as u128 * b.len() as u128;
    pairs * (8 * arity as u128 + 8)
}

/// Section 10.1's plan-generation heuristic: pick the matcher-only plan
/// only when the fully-materialized feature-vector set fits in node
/// memory (and under the enumeration budget); otherwise block first.
pub fn choose_plan(
    a: &Table,
    b: &Table,
    arity: usize,
    node_memory: usize,
    max_pairs: u128,
) -> PlanKind {
    let pairs = a.len() as u128 * b.len() as u128;
    if pairs <= max_pairs && estimate_fv_bytes(a, b, arity) <= node_memory as u128 {
        PlanKind::MatchOnly
    } else {
        PlanKind::BlockAndMatch
    }
}

/// Cost-based plan selection — the "in the future we will consider a
/// cost-based approach that selects the plan with the estimated lower run
/// time" of Section 10.1, implemented with a simple analytical model.
///
/// Per-pair cost constants are in arbitrary machine units; only the ratio
/// between the two plans matters.
#[derive(Debug, Clone)]
pub struct PlanCostModel {
    /// Cost to compute one feature vector (per pair).
    pub fv_cost: f64,
    /// Cost to probe the blocking indexes (per B tuple).
    pub probe_cost: f64,
    /// Cost to build indexes (per A tuple).
    pub index_cost: f64,
    /// Expected fraction of `A × B` surviving blocking.
    pub expected_selectivity: f64,
}

impl Default for PlanCostModel {
    fn default() -> Self {
        Self {
            fv_cost: 1.0,
            probe_cost: 0.5,
            index_cost: 0.3,
            // Paper Table 2: candidate sets are 0.01-0.95% of A×B.
            expected_selectivity: 0.005,
        }
    }
}

impl PlanCostModel {
    /// Estimated machine cost of the matcher-only plan: feature vectors
    /// for every pair of `A × B`.
    pub fn match_only_cost(&self, a: &Table, b: &Table) -> f64 {
        a.len() as f64 * b.len() as f64 * self.fv_cost
    }

    /// Estimated machine cost of the blocking plan: sampling + index
    /// building + probing + feature vectors for the surviving fraction.
    pub fn block_and_match_cost(&self, a: &Table, b: &Table, sample_size: usize) -> f64 {
        let pairs = a.len() as f64 * b.len() as f64;
        sample_size as f64 * self.fv_cost
            + a.len() as f64 * self.index_cost
            + b.len() as f64 * self.probe_cost
            + pairs * self.expected_selectivity * self.fv_cost
    }

    /// Pick the plan with the lower estimated cost, still honouring the
    /// hard memory/pair guards of [`choose_plan`] (a matcher-only plan
    /// that cannot fit is never chosen, whatever the model says).
    pub fn choose(
        &self,
        a: &Table,
        b: &Table,
        arity: usize,
        node_memory: usize,
        max_pairs: u128,
        sample_size: usize,
    ) -> PlanKind {
        if choose_plan(a, b, arity, node_memory, max_pairs) == PlanKind::BlockAndMatch {
            return PlanKind::BlockAndMatch; // hard constraints bind
        }
        if self.match_only_cost(a, b) <= self.block_and_match_cost(a, b, sample_size) {
            PlanKind::MatchOnly
        } else {
            PlanKind::BlockAndMatch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_table::{AttrType, Schema, Value};

    fn table(n: usize) -> Table {
        let schema = Schema::new([("x", AttrType::Str)]);
        Table::new(
            "t",
            schema,
            (0..n).map(|i| vec![Value::str(format!("v{i}"))]),
        )
    }

    #[test]
    fn small_tables_match_only() {
        let a = table(10);
        let b = table(10);
        assert_eq!(
            choose_plan(&a, &b, 20, 1 << 30, 1_000_000),
            PlanKind::MatchOnly
        );
    }

    #[test]
    fn large_tables_block_first() {
        let a = table(2000);
        let b = table(2000);
        // 4M pairs × 168B > 64MB memory.
        assert_eq!(
            choose_plan(&a, &b, 20, 64 << 20, 1_000_000_000),
            PlanKind::BlockAndMatch
        );
        // Pair budget also forces blocking.
        assert_eq!(
            choose_plan(&a, &b, 20, 1 << 40, 1_000),
            PlanKind::BlockAndMatch
        );
    }

    #[test]
    fn cost_model_prefers_blocking_past_crossover() {
        let model = PlanCostModel::default();
        // Tiny tables: enumerating A×B is cheaper than sampling+indexing.
        let (a, b) = (table(20), table(20));
        assert_eq!(
            model.choose(&a, &b, 20, 1 << 40, u128::MAX, 1_000),
            PlanKind::MatchOnly
        );
        // Bigger tables: the 0.5% surviving fraction plus probes beats
        // computing 4M feature vectors.
        let (a, b) = (table(2000), table(2000));
        assert_eq!(
            model.choose(&a, &b, 20, 1 << 40, u128::MAX, 1_000),
            PlanKind::BlockAndMatch
        );
    }

    #[test]
    fn cost_model_respects_hard_guards() {
        let model = PlanCostModel::default();
        let (a, b) = (table(50), table(50));
        // Memory guard forces blocking even where the model prefers
        // matcher-only.
        assert_eq!(
            model.choose(&a, &b, 20, 0, u128::MAX, 1_000),
            PlanKind::BlockAndMatch
        );
    }

    #[test]
    fn fv_bytes_grow_with_arity() {
        let a = table(100);
        let b = table(100);
        assert!(estimate_fv_bytes(&a, &b, 50) > estimate_fv_bytes(&a, &b, 5));
    }
}
