//! Stage boundaries: the unit a multi-tenant scheduler reasons about.
//!
//! A Falcon run is a sequence of *stages* — MapReduce jobs, local model
//! work and crowd rounds — that [`crate::timeline::Timeline`] records as
//! segments. For a single job the record is enough; a shared service
//! additionally needs to *intervene* at each boundary so one tenant's
//! machine stages can fill the node pool while another tenant waits on
//! the crowd (`falcon-serve`). This module defines that boundary
//! protocol: a [`StageEvent`] describing the stage that just ran and a
//! [`StageGate`] callback the timeline notifies (and, for machine
//! stages, blocks on) after recording each segment.
//!
//! Because crowd answers in this codebase are computed synchronously and
//! crowd latency is purely virtual accounting, gating at stage
//! boundaries cannot change *what* a run computes — only when its
//! machine stages are deemed to occupy cluster nodes. That is the
//! foundation of the per-tenant determinism argument in DESIGN.md §13.

use falcon_dataflow::JobStats;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic `(map_tasks, input_records)` shape of a cluster job,
/// for [`crate::timeline::Timeline::machine_shaped`] — these counts
/// depend only on the input and split policy, never on measured wall
/// time, so a gated scheduler can price the stage reproducibly.
pub fn shape_of(stats: &JobStats) -> (u32, u64) {
    (stats.map_tasks.max(1) as u32, stats.input_records as u64)
}

/// Combined shape of a stage that ran several cluster jobs.
pub fn shape_sum<'a>(jobs: impl IntoIterator<Item = &'a JobStats>) -> (u32, u64) {
    let mut tasks = 0u32;
    let mut records = 0u64;
    for j in jobs {
        tasks = tasks.saturating_add(j.map_tasks as u32);
        records = records.saturating_add(j.input_records as u64);
    }
    (tasks.max(1), records)
}

/// What kind of work a stage performed, mirroring
/// [`crate::timeline::Segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Machine work on the critical path; a scheduler must lease nodes
    /// and may not start it before the tenant's crowd frontier.
    Machine,
    /// Machine work the optimizer scheduled during crowdsourcing; a
    /// scheduler leases nodes but may run it under pending crowd waits.
    MaskedMachine,
    /// A crowd round: virtual latency, no nodes consumed.
    CrowdWait,
}

/// One completed stage, reported to a [`StageGate`] at its boundary.
///
/// `dur` is the stage's own simulated duration (what the timeline
/// recorded). `tasks` and `records` are *deterministic shape hints* —
/// map-task and input-record counts where the stage ran a cluster job,
/// `1`/`0` otherwise — so a scheduler can price the stage with a
/// deterministic cost model instead of the measured (and therefore
/// run-to-run noisy) `dur`.
#[derive(Debug, Clone, PartialEq)]
pub struct StageEvent {
    /// Operator label, matching the timeline segment label.
    pub label: String,
    /// Kind of work.
    pub kind: StageKind,
    /// Simulated duration as recorded on the timeline.
    pub dur: Duration,
    /// Map tasks of the underlying cluster job (`1` for local work).
    pub tasks: u32,
    /// Input records of the underlying cluster job (`0` for local work).
    pub records: u64,
}

/// Why a scheduler asked a gated run to stop at a stage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The tenant's virtual-clock deadline passed.
    Deadline,
    /// The tenant exhausted a per-tenant quota (stages or node-seconds).
    Quota,
    /// The scheduler shut down (dropped, failed, or finished early)
    /// while the tenant was still running.
    Shutdown,
    /// A simulated service crash (chaos harness kill point).
    Kill,
    /// Admission control refused the job before it ever started; used
    /// only in service reports, never as a gate verdict.
    Admission,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Deadline => "deadline exceeded",
            Self::Quota => "quota exhausted",
            Self::Shutdown => "scheduler shut down",
            Self::Kill => "service killed",
            Self::Admission => "refused at admission",
        })
    }
}

/// The scheduler's verdict at a stage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageControl {
    /// Keep running: the next stage's lease is granted.
    Continue,
    /// Stop: the driver must unwind with a typed cancellation error at
    /// its next cancellation point, finalizing its crowd journal so the
    /// run stays resumable.
    Cancel(CancelReason),
}

/// Callback invoked at every stage boundary of a gated run.
///
/// `on_stage` is called *after* the segment is recorded. For
/// [`StageKind::Machine`] and [`StageKind::MaskedMachine`] events the
/// gate may block until a scheduler grants the tenant a node lease for
/// its next stage — that blocking is what turns the monolithic driver
/// loop into a resumable stage iterator without rewriting its call tree
/// into an explicit state machine. For [`StageKind::CrowdWait`] events
/// implementations should return promptly: crowd latency is virtual, so
/// blocking the driver thread on it would serialize tenants for no
/// reason.
///
/// The returned [`StageControl`] is the scheduler's verdict: `Continue`
/// keeps the run going, `Cancel` makes the driver unwind cleanly with
/// [`FalconError::Cancelled`](crate::error::FalconError) at its next
/// cancellation point. A gate whose scheduler is *gone* (channel
/// disconnected) must return `Cancel(CancelReason::Shutdown)` rather
/// than blocking forever or silently letting the run continue ungated.
pub trait StageGate: Send + Sync {
    /// Observe one stage boundary; may block (see trait docs).
    fn on_stage(&self, event: StageEvent) -> StageControl;
}

/// Shared handle to a gate, carried inside [`crate::timeline::Timeline`].
///
/// A newtype so `Timeline` can keep deriving `Debug`/`Clone` (trait
/// objects have no `Debug`) and so serde's derive sees a concrete type.
#[derive(Clone)]
pub struct GateHandle(Arc<dyn StageGate>);

impl GateHandle {
    /// Wrap a gate for installation into a timeline.
    pub fn new(gate: Arc<dyn StageGate>) -> Self {
        Self(gate)
    }

    /// Notify the gate of a stage boundary, returning its verdict.
    pub fn on_stage(&self, event: StageEvent) -> StageControl {
        self.0.on_stage(event)
    }
}

impl std::fmt::Debug for GateHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GateHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    struct Recorder(Mutex<Vec<StageEvent>>);

    impl StageGate for Recorder {
        fn on_stage(&self, event: StageEvent) -> StageControl {
            self.0.lock().push(event);
            StageControl::Continue
        }
    }

    #[test]
    fn gate_handle_forwards_events() {
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let handle = GateHandle::new(rec.clone());
        handle.on_stage(StageEvent {
            label: "x".into(),
            kind: StageKind::Machine,
            dur: Duration::from_secs(1),
            tasks: 4,
            records: 100,
        });
        let seen = rec.0.lock();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].kind, StageKind::Machine);
        assert_eq!(seen[0].tasks, 4);
    }

    #[test]
    fn gate_handle_debug_is_opaque() {
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let handle = GateHandle::new(rec);
        assert_eq!(format!("{handle:?}"), "GateHandle(..)");
    }
}
