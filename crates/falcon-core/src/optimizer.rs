//! The three masking optimizations of Section 10.2.
//!
//! 1. **Index prebuilding** — while `al_matcher` crowdsources (rules still
//!    unknown) build *generic* artifacts: global token orderings and
//!    threshold-free equality indexes. While `eval_rules` crowdsources
//!    (top-20 candidate rules known) build every per-predicate index those
//!    rules could need.
//! 2. **Speculative rule execution** — while `eval_rules` crowdsources,
//!    execute the candidate rules individually in rank order; if the final
//!    sequence contains a speculated rule, `apply_blocking_rules` starts
//!    from the smallest speculated output instead of the full tables.
//! 3. **Masked pair selection** — implemented inside
//!    [`crate::ops::al_matcher`]; enabled here for large candidate sets.
//!
//! All scheduled work is recorded via [`Timeline::masked_machine`], which
//! charges only the portion exceeding the accumulated crowd latency.

use crate::error::FalconError;
use crate::features::FeatureSet;
use crate::indexing::{BuiltIndexes, ConjunctSpecs, PreFilterConfig};
use crate::physical::{self, PhysicalOp, ScratchPool};
use crate::rules::{Rule, RuleSequence};
use crate::stage::{shape_of, shape_sum};
use crate::timeline::Timeline;
use crate::tokens;
use falcon_dataflow::Cluster;
use falcon_index::FilterSpec;
use falcon_table::{IdPair, Table};
use falcon_textsim::{SimFunction, TokenDict};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which masking optimizations are enabled (Table 5's O₁/O₂/O₃).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptFlags {
    /// O₁: build indexes during crowdsourcing.
    pub prebuild_indexes: bool,
    /// O₂: speculatively execute rules / matchers during crowdsourcing.
    pub speculative_execution: bool,
    /// O₃: mask pair selection inside the matching-stage `al_matcher`.
    pub mask_pair_selection: bool,
}

impl Default for OptFlags {
    fn default() -> Self {
        Self {
            prebuild_indexes: true,
            speculative_execution: true,
            mask_pair_selection: true,
        }
    }
}

impl OptFlags {
    /// Everything off (the unoptimized baseline "U" of Table 5).
    pub fn none() -> Self {
        Self {
            prebuild_indexes: false,
            speculative_execution: false,
            mask_pair_selection: false,
        }
    }
}

/// Masking step 1a: generic prebuild during the blocking-stage
/// `al_matcher` — the complete A-side token profile, token orders for
/// every set-similarity blocking feature, and hash indexes for every
/// exact-match feature (none of which depend on the eventual rule
/// thresholds).
pub fn prebuild_generic(
    cluster: &Cluster,
    a: &Table,
    features: &FeatureSet,
    built: &mut BuiltIndexes,
    timeline: &mut Timeline,
) -> Result<(), FalconError> {
    // Tokenize A once into a complete profile; `build_order` below then
    // counts token frequencies from profile columns instead of re-running
    // the frequency-count MR scan per (attribute, tokenizer).
    let (a_spec, _) = tokens::requirements(&features.features);
    if !a_spec.token_columns.is_empty() && built.profile().is_none() {
        let mut dict = TokenDict::new();
        let (profile, stats) = tokens::build_profile_par(cluster, a, &a_spec, &mut dict, None)?;
        let (tasks, records) = shape_of(&stats);
        timeline.masked_machine_shaped(
            "index_build",
            stats.sim_duration(&cluster.config),
            tasks,
            records,
        );
        built.set_profile(profile, dict);
    }
    let mut seen_orders = std::collections::HashSet::new();
    let mut seen_eq = std::collections::HashSet::new();
    for f in &features.features {
        match f.sim {
            s if s.is_set_based() => {
                // A set-based sim without a tokenizer cannot occur; skip
                // (prebuilding is an optimization, never a correctness need).
                let Some(tok) = s.tokenizer() else { continue };
                if seen_orders.insert((f.a_idx, tok)) {
                    let dur = built.build_order(cluster, a, &f.a_attr, tok)?;
                    timeline.masked_machine("index_build", dur);
                }
            }
            SimFunction::ExactMatch if seen_eq.insert(f.a_idx) => {
                let dur = built.build_spec(
                    cluster,
                    a,
                    &FilterSpec::Equals {
                        a_attr: f.a_attr.clone(),
                    },
                )?;
                timeline.masked_machine("index_build", dur);
            }
            _ => {}
        }
    }
    Ok(())
}

/// Masking step 1b: build every per-predicate index the top-ranked rules
/// could need, during the `eval_rules` crowd rounds. Specs are wrapped
/// with the run's signature pre-filter config so the cache keys match
/// what `apply_blocking_rules` will look up.
pub fn prebuild_for_rules(
    cluster: &Cluster,
    a: &Table,
    rules: &[Rule],
    features: &FeatureSet,
    prefilter: &PreFilterConfig,
    built: &mut BuiltIndexes,
    timeline: &mut Timeline,
) -> Result<(), FalconError> {
    let seq = RuleSequence::new(rules.to_vec());
    let conjuncts = ConjunctSpecs::derive(&seq, features).with_signatures(prefilter);
    for (spec, key) in conjuncts.all_specs_keyed() {
        let dur = built.build_spec_keyed(cluster, a, spec, key)?;
        timeline.masked_machine_shaped("index_build", dur, 1, a.len() as u64);
    }
    Ok(())
}

/// Masking step 2: speculatively execute candidate rules one at a time in
/// rank order (most promising first), while masking capacity remains.
/// Rules with poor sample selectivity are skipped — their single-rule
/// outputs approach `A × B`, so materializing them would cost more than
/// they could ever save. Returns the per-rule surviving pair sets keyed by
/// [`Rule::canonical_key`].
#[allow(clippy::too_many_arguments)]
pub fn speculate_rules(
    cluster: &Cluster,
    a: &Table,
    b: &Table,
    rules: &[(Rule, f64)],
    features: &FeatureSet,
    prefilter: &PreFilterConfig,
    built: &mut BuiltIndexes,
    timeline: &mut Timeline,
    max_pairs: u128,
) -> Result<HashMap<String, Vec<IdPair>>, FalconError> {
    /// Only rules keeping at most this fraction of the sample are worth
    /// materializing individually.
    const MAX_KEEP_FRACTION: f64 = 0.05;
    let mut out = HashMap::new();
    // One probe-scratch pool for the whole speculation loop: each rule's
    // execution reuses the buffers its predecessors allocated instead of
    // re-allocating bitmaps and stats per speculative stage.
    let pool = ScratchPool::new();
    for (rule, selectivity) in rules {
        if timeline.remaining_capacity().is_zero() {
            break; // the crowd finished; stop speculating
        }
        if *selectivity > MAX_KEEP_FRACTION {
            continue;
        }
        let seq = RuleSequence::new(vec![rule.clone()]);
        let conjuncts = ConjunctSpecs::derive(&seq, features).with_signatures(prefilter);
        if conjuncts.filterable().is_empty() {
            continue; // no index support; speculation would enumerate A×B
        }
        for (spec, key) in conjuncts.all_specs_keyed() {
            let dur = built.build_spec_keyed(cluster, a, spec, key)?;
            timeline.masked_machine_shaped("index_build", dur, 1, a.len() as u64);
        }
        let result = physical::execute_pooled(
            PhysicalOp::ApplyAll,
            cluster,
            a,
            b,
            features,
            &seq,
            &conjuncts,
            built,
            &[0.5],
            max_pairs,
            &pool,
        );
        if let Ok(res) = result {
            let (tasks, records) = shape_sum(&res.jobs);
            timeline.masked_machine_shaped("speculative_exec", res.duration, tasks, records);
            out.insert(rule.canonical_key(), res.candidates);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::generate_features;
    use crate::rules::Predicate;
    use falcon_dataflow::ClusterConfig;
    use falcon_forest::SplitOp;
    use falcon_table::{AttrType, Schema, Value};
    use falcon_textsim::Tokenizer;
    use std::time::Duration;

    fn tables() -> (Table, Table) {
        let schema = Schema::new([("title", AttrType::Str), ("price", AttrType::Num)]);
        let rows = |n: usize| {
            (0..n).map(move |i| {
                vec![
                    Value::str(format!("gadget {} extra", i % 7)),
                    Value::num(i as f64),
                ]
            })
        };
        (
            Table::new("a", schema.clone(), rows(25)),
            Table::new("b", schema, rows(25)),
        )
    }

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(2)).with_threads(2)
    }

    #[test]
    fn generic_prebuild_creates_orders_and_eq_indexes() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let mut built = BuiltIndexes::new();
        let mut tl = Timeline::new();
        tl.crowd("al_matcher", Duration::from_secs(3600));
        prebuild_generic(&cluster(), &a, &lib.blocking, &mut built, &mut tl).expect("prebuild");
        assert!(!built.orders.is_empty());
        // Fully masked: total time is still just the crowd hour.
        assert_eq!(tl.total_time(), Duration::from_secs(3600));
        assert!(tl.machine_time() > Duration::ZERO);
    }

    #[test]
    fn speculation_stops_without_capacity() {
        let (a, b) = tables();
        let lib = generate_features(&a, &b);
        let jac = lib
            .blocking
            .features
            .iter()
            .position(|f| f.sim == SimFunction::Jaccard(Tokenizer::Word))
            .unwrap();
        let rule = Rule {
            predicates: vec![Predicate {
                feature: jac,
                op: SplitOp::Le,
                threshold: 0.6,
                nan_is_high: true,
            }],
        };
        let mut built = BuiltIndexes::new();
        let mut tl = Timeline::new(); // zero capacity
        let out = speculate_rules(
            &cluster(),
            &a,
            &b,
            &[(rule.clone(), 0.01)],
            &lib.blocking,
            &PreFilterConfig::default(),
            &mut built,
            &mut tl,
            1 << 30,
        )
        .expect("speculate");
        assert!(out.is_empty());
        // With capacity, the rule gets speculated.
        let mut tl = Timeline::new();
        tl.crowd("eval_rules", Duration::from_secs(3600));
        let out = speculate_rules(
            &cluster(),
            &a,
            &b,
            &[(rule.clone(), 0.01)],
            &lib.blocking,
            &PreFilterConfig::default(),
            &mut built,
            &mut tl,
            1 << 30,
        )
        .expect("speculate");
        assert!(out.contains_key(&rule.canonical_key()));
        // Unselective rules are skipped even with capacity.
        let out = speculate_rules(
            &cluster(),
            &a,
            &b,
            &[(rule.clone(), 0.9)],
            &lib.blocking,
            &PreFilterConfig::default(),
            &mut built,
            &mut tl,
            1 << 30,
        )
        .expect("speculate");
        assert!(out.is_empty());
    }
}
