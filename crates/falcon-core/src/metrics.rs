//! End-to-end EM quality metrics against ground truth.

use falcon_table::IdPair;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Precision / recall / F1 of a predicted match set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmQuality {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// Predicted matches.
    pub predicted: usize,
    /// True matches.
    pub actual: usize,
}

/// Score predicted matches against the ground-truth match set.
pub fn em_quality(predicted: &[IdPair], truth: &[IdPair]) -> EmQuality {
    let truth_set: HashSet<IdPair> = truth.iter().copied().collect();
    let pred_set: HashSet<IdPair> = predicted.iter().copied().collect();
    let tp = pred_set.iter().filter(|p| truth_set.contains(*p)).count();
    let precision = if pred_set.is_empty() {
        0.0
    } else {
        tp as f64 / pred_set.len() as f64
    };
    let recall = if truth_set.is_empty() {
        1.0
    } else {
        tp as f64 / truth_set.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    EmQuality {
        precision,
        recall,
        f1,
        predicted: pred_set.len(),
        actual: truth_set.len(),
    }
}

/// Blocking recall: fraction of true matches surviving a candidate set.
pub fn blocking_recall(candidates: &[IdPair], truth: &[IdPair]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let cand: HashSet<IdPair> = candidates.iter().copied().collect();
    truth.iter().filter(|p| cand.contains(*p)).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let truth = vec![(0, 0), (1, 1)];
        let q = em_quality(&truth, &truth);
        assert_eq!((q.precision, q.recall, q.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn partial_prediction() {
        let truth = vec![(0, 0), (1, 1), (2, 2), (3, 3)];
        let pred = vec![(0, 0), (1, 1), (9, 9)];
        let q = em_quality(&pred, &truth);
        assert!((q.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let q = em_quality(&[], &[(0, 0)]);
        assert_eq!(q.f1, 0.0);
        let q = em_quality(&[(0, 0)], &[]);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.precision, 0.0);
    }

    #[test]
    fn blocking_recall_counts() {
        let truth = vec![(0, 0), (1, 1)];
        assert_eq!(blocking_recall(&[(0, 0), (5, 5)], &truth), 0.5);
        assert_eq!(blocking_recall(&[], &[]), 1.0);
    }
}
