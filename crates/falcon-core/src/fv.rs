//! Feature-vector sets: the unit flowing between `gen_fvs`, `al_matcher`
//! and `apply_matcher`.

use falcon_table::IdPair;
use serde::{Deserialize, Serialize};

/// A set of tuple pairs with their feature vectors (`NaN` = missing).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FvSet {
    /// The pairs.
    pub pairs: Vec<IdPair>,
    /// One feature vector per pair, aligned with `pairs`.
    pub fvs: Vec<Vec<f64>>,
}

impl FvSet {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Feature arity (0 when empty).
    pub fn arity(&self) -> usize {
        self.fvs.first().map_or(0, Vec::len)
    }

    /// Iterate `(pair, fv)`.
    pub fn iter(&self) -> impl Iterator<Item = (IdPair, &[f64])> {
        self.pairs
            .iter()
            .copied()
            .zip(self.fvs.iter().map(Vec::as_slice))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = FvSet {
            pairs: vec![(0, 1), (2, 3)],
            fvs: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        };
        assert_eq!(s.len(), 2);
        assert_eq!(s.arity(), 2);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected[1].0, (2, 3));
        assert_eq!(collected[1].1, &[3.0, 4.0]);
    }
}
