//! The end-to-end Falcon driver: plan generation, execution and
//! optimization over two input tables and a crowd.

use crate::analyze;
use crate::error::FalconError;
use crate::features::{generate_features, FeatureLibrary, FeatureSet};
use crate::indexing::{BuiltIndexes, ConjunctSpecs, PreFilterConfig};
use crate::metrics::em_quality;
use crate::ops::accuracy_estimator::{estimate_accuracy, AccuracyEstimate, EstimatorConfig};
use crate::ops::al_matcher::{al_matcher, AlConfig};
use crate::ops::apply_matcher::apply_matcher;
use crate::ops::difficult_pairs::locate_difficult_pairs;
use crate::ops::eval_rules::{eval_rules, EvalConfig, EvaluatedRule};
use crate::ops::gen_fvs::gen_fvs;
use crate::ops::get_blocking_rules::get_blocking_rules;
use crate::ops::sample_pairs::sample_pairs;
use crate::ops::select_opt_seq::{select_opt_seq, SeqConfig};
use crate::optimizer::{prebuild_for_rules, prebuild_generic, speculate_rules, OptFlags};
use crate::physical::{self, estimate_table_bytes, BlockingStats, PhysicalOp};
use crate::plan::{choose_plan, PlanKind};
use crate::rules::RuleSequence;
use crate::stage::{shape_of, shape_sum, StageGate};
use crate::timeline::{check_cancel, Timeline};
use falcon_crowd::{Crowd, CrowdJournal, CrowdSession, Ledger};
use falcon_dataflow::{run_map_only, wall_now, Cluster, ClusterConfig, FaultPlan, FaultStats};
use falcon_index::FilterSpec;
use falcon_table::{IdPair, Table};
use falcon_textsim::SimFunction;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// A user-forced index-filter override for one blocking feature.
///
/// During `apply_blocking_rules`, the filter derived from a rule
/// predicate on `feature` is replaced by `spec` — but only when the
/// substitution is provably recall-safe (a weaker threshold / wider
/// range, i.e. a superset of candidates; see
/// [`ConjunctSpecs::derive_with`]). Ill-formed specs are rejected by the
/// static verifier ([`crate::analyze::analyze`]) before any MapReduce job
/// or crowd question is issued.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForcedFilter {
    /// Blocking-feature index the override attaches to.
    pub feature: usize,
    /// The replacement filter spec.
    pub spec: FilterSpec,
}

impl ForcedFilter {
    /// Build an override for blocking feature `feature` with the given
    /// threshold (set/edit similarity) or width (ranges), mapping the
    /// feature's similarity function to its filter kind *directly* —
    /// deliberately without [`FilterSpec::from_predicate`]'s domain
    /// guards, so out-of-domain configurations reach the static verifier
    /// (and are rejected with a typed diagnostic) instead of being
    /// silently dropped. Returns `None` only when `feature` is out of
    /// range.
    pub fn for_feature(
        features: &FeatureSet,
        feature: usize,
        threshold: f64,
    ) -> Option<ForcedFilter> {
        let f = features.features.get(feature)?;
        let a_attr = f.a_attr.clone();
        let spec = match f.sim {
            SimFunction::ExactMatch => FilterSpec::Equals { a_attr },
            SimFunction::AbsDiff => FilterSpec::Range {
                a_attr,
                width: threshold,
                relative: false,
            },
            SimFunction::RelDiff => FilterSpec::Range {
                a_attr,
                width: threshold,
                relative: true,
            },
            SimFunction::Levenshtein => FilterSpec::EditSim { a_attr, threshold },
            sim => FilterSpec::SetSim {
                a_attr,
                sim,
                threshold,
            },
        };
        Some(ForcedFilter { feature, spec })
    }
}

/// Full Falcon configuration (paper defaults, scaled where noted).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FalconConfig {
    /// Simulated cluster.
    pub cluster: ClusterConfig,
    /// Sample size `|S|` (paper: 1M; default here is laptop-scaled).
    pub sample_size: usize,
    /// Sampler fan-out `y` (paper: 100).
    pub sample_fanout: usize,
    /// Active learning settings (both stages; the matching stage flips
    /// `mask_pair_selection` per the optimizer flags).
    pub al: AlConfig,
    /// Rule-evaluation settings.
    pub eval: EvalConfig,
    /// Sequence-selection settings.
    pub seq: SeqConfig,
    /// Top-k rules to crowd-evaluate (paper: 20).
    pub max_rules: usize,
    /// Masking optimizations.
    pub opt: OptFlags,
    /// Pair budget for Cartesian-enumeration baselines and the
    /// matcher-only plan.
    pub max_pairs: u128,
    /// `apply_greedy` selection ratio threshold (paper: 0.8).
    pub greedy_ratio: f64,
    /// Candidate-set size above which pair selection is masked (paper:
    /// 50M pairs; scaled default).
    pub mask_selection_threshold: usize,
    /// Force a physical blocking operator (benchmarks).
    pub force_physical: Option<PhysicalOp>,
    /// Force a plan template.
    pub force_plan: Option<PlanKind>,
    /// Per-feature index-filter overrides, verified recall-safe
    /// statically before any job runs.
    pub force_filters: Vec<ForcedFilter>,
    /// Signature pre-filter layer for set-similarity blocking probes (on
    /// by default; the planner still decides per conjunct whether to use
    /// the built signatures). Unprovable widths are rejected statically.
    pub prefilter: PreFilterConfig,
    /// Deterministic fault plan for the simulated cluster: injected task
    /// failures, stragglers and node loss (`None` = fault-free run).
    pub fault: Option<FaultPlan>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FalconConfig {
    fn default() -> Self {
        Self {
            cluster: ClusterConfig::default(),
            sample_size: 100_000,
            sample_fanout: 100,
            al: AlConfig::default(),
            eval: EvalConfig::default(),
            seq: SeqConfig::default(),
            max_rules: 20,
            opt: OptFlags::default(),
            max_pairs: 50_000_000,
            greedy_ratio: 0.8,
            mask_selection_threshold: 500_000,
            force_plan: None,
            force_physical: None,
            force_filters: Vec::new(),
            prefilter: PreFilterConfig::default(),
            fault: None,
            seed: 42,
        }
    }
}

/// Everything a run produces (the raw material for Tables 2-5).
#[derive(Debug)]
pub struct RunReport {
    /// Predicted matching pairs.
    pub matches: Vec<IdPair>,
    /// Plan template used.
    pub plan: PlanKind,
    /// Physical blocking operator (blocking plans only).
    pub physical: Option<PhysicalOp>,
    /// Candidate pairs surviving blocking (blocking plans only).
    pub candidate_size: Option<usize>,
    /// The selected blocking rule sequence.
    pub rule_sequence: RuleSequence,
    /// Candidate rules extracted / retained after crowd evaluation.
    pub rules_extracted: usize,
    /// Rules retained by `eval_rules`.
    pub rules_retained: usize,
    /// Sample size actually drawn.
    pub sample_size: usize,
    /// Execution timeline (crowd/machine/masked segments).
    pub timeline: Timeline,
    /// Crowd cost/latency ledger.
    pub ledger: Ledger,
    /// Feature counts (blocking / matching), as in Table 1's commentary.
    pub feature_counts: (usize, usize),
    /// Fault-injection totals across every job of the run (all zero when
    /// no [`FalconConfig::fault`] plan was configured).
    pub faults: FaultStats,
    /// Set when a checkpoint journal was attached but failed mid-run; the
    /// run completed unjournaled and cannot be resumed from that journal.
    pub journal_error: Option<String>,
    /// Per-conjunct blocking probe counters (pairs examined / pruned by
    /// the signature pre-filter / pruned by exact filters / survived).
    /// `None` when no index probing ran (match-only plans, or a blocking
    /// stage resolved entirely from a speculated rule output).
    pub blocking: Option<BlockingStats>,
}

impl RunReport {
    /// Machine time `t_m`.
    pub fn machine_time(&self) -> Duration {
        self.timeline.machine_time()
    }

    /// Crowd time `t_c`.
    pub fn crowd_time(&self) -> Duration {
        self.timeline.crowd_time()
    }

    /// Unmasked machine time `t_u`.
    pub fn unmasked_machine_time(&self) -> Duration {
        self.timeline.unmasked_machine_time()
    }

    /// Total run time `t_c + t_u`.
    pub fn total_time(&self) -> Duration {
        self.timeline.total_time()
    }

    /// Per-operator time breakdown (Table 4).
    pub fn op_times(&self) -> BTreeMap<String, Duration> {
        self.timeline.by_operator()
    }

    /// Convenience: quality against ground truth.
    pub fn quality(&self, truth: &[IdPair]) -> crate::metrics::EmQuality {
        em_quality(&self.matches, truth)
    }
}

/// The Falcon system.
pub struct Falcon {
    /// Configuration.
    pub config: FalconConfig,
}

impl Falcon {
    /// Create with a configuration.
    pub fn new(config: FalconConfig) -> Self {
        Self { config }
    }

    /// The simulated cluster for one run, with the configured fault plan
    /// (if any) attached.
    fn build_cluster(&self) -> Cluster {
        let cluster = Cluster::new(self.config.cluster.clone());
        match &self.config.fault {
            Some(plan) => cluster.with_faults(plan.clone()),
            None => cluster,
        }
    }

    /// Hands-off crowdsourced EM over `A × B` using `crowd`.
    ///
    /// Panicking convenience wrapper around [`Falcon::try_run`] for tests
    /// and examples; services should call `try_run` and handle the error.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn run<C: Crowd>(&self, a: &Table, b: &Table, crowd: C) -> RunReport {
        // falcon-lint: allow(no-panic) — documented convenience wrapper.
        self.try_run(a, b, crowd)
            .unwrap_or_else(|e| panic!("Falcon::run: {e}"))
    }

    /// Hands-off crowdsourced EM over `A × B` using `crowd`, with the
    /// pre-flight [`analyze`](crate::analyze::analyze) gate: a statically
    /// malformed plan is rejected as [`FalconError::Plan`] before any
    /// MapReduce job or crowd question is issued.
    pub fn try_run<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
    ) -> Result<RunReport, FalconError> {
        self.try_run_with_journal(a, b, crowd, None)
    }

    /// [`Falcon::try_run`] with a crash-recovery journal at `journal_path`.
    ///
    /// Every labeled batch is checkpointed to the journal before its
    /// labels are used. Starting a run against a journal left behind by a
    /// crashed run *resumes* it: journaled batches are replayed from disk
    /// (recorded labels, recorded cost/latency, **zero** live crowd
    /// questions) and the run goes live exactly where the crash happened.
    /// With a seeded simulated crowd the resumed run's output is
    /// bit-identical to an uninterrupted one. A completed run's journal
    /// should be deleted before reusing the path for a different input.
    pub fn try_run_resumable<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        journal_path: impl AsRef<Path>,
    ) -> Result<RunReport, FalconError> {
        let journal = CrowdJournal::open(journal_path)?;
        self.try_run_with_journal(a, b, crowd, Some(journal))
    }

    /// [`Falcon::try_run`] under a [`StageGate`]: the run notifies (and,
    /// at machine-stage boundaries, blocks on) `gate` after every
    /// recorded segment, turning the monolithic driver loop into a
    /// resumable stage iterator a multi-tenant scheduler can interleave
    /// with other runs (`falcon-serve`). Pass a `journal` to make the
    /// gated run crash-recoverable exactly as in
    /// [`Falcon::try_run_resumable`]. The returned report's timeline has
    /// the gate detached.
    pub fn try_run_gated<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        journal: Option<CrowdJournal>,
        gate: Arc<dyn StageGate>,
    ) -> Result<RunReport, FalconError> {
        self.try_run_inner(a, b, crowd, journal, Some(gate))
    }

    fn try_run_with_journal<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        journal: Option<CrowdJournal>,
    ) -> Result<RunReport, FalconError> {
        self.try_run_inner(a, b, crowd, journal, None)
    }

    fn try_run_inner<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        journal: Option<CrowdJournal>,
        gate: Option<Arc<dyn StageGate>>,
    ) -> Result<RunReport, FalconError> {
        let analysis = analyze::analyze(a, b, &self.config);
        if !analysis.is_ok() {
            return Err(FalconError::Plan(analysis.errors));
        }
        let cfg = &self.config;
        let cluster = self.build_cluster();
        let mut session = CrowdSession::new(crowd);
        if let Some(j) = journal {
            session = session.with_journal(j);
        }
        let mut timeline = match gate {
            Some(g) => Timeline::with_gate(g),
            None => Timeline::new(),
        };

        // Feature generation (fast table scans).
        let t0 = wall_now();
        let lib = generate_features(a, b);
        timeline.machine("gen_features", t0.elapsed());

        let plan = cfg.force_plan.unwrap_or_else(|| {
            choose_plan(
                a,
                b,
                lib.matching.len(),
                cfg.cluster.mapper_memory_bytes,
                cfg.max_pairs,
            )
        });
        let mut report = match plan {
            PlanKind::MatchOnly => {
                self.run_match_only(a, b, &lib, &cluster, &mut session, &mut timeline)
            }
            PlanKind::BlockAndMatch => {
                self.run_block_and_match(a, b, &lib, &cluster, &mut session, &mut timeline)
            }
        }?;
        // Reports are plain records: never leak a scheduler handle.
        report.timeline.detach_gate();
        Ok(report)
    }

    fn run_match_only<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        lib: &FeatureLibrary,
        cluster: &Cluster,
        session: &mut CrowdSession<C>,
        timeline: &mut Timeline,
    ) -> Result<RunReport, FalconError> {
        let cfg = &self.config;
        session.mark_op("match_only_stage");
        check_cancel(timeline, session)?;
        // Cartesian product of ids.
        let pairs: Vec<IdPair> = (0..a.len() as u32)
            .flat_map(|x| (0..b.len() as u32).map(move |y| (x, y)))
            .collect();
        let fv_out = gen_fvs(cluster, a, b, &pairs, &lib.matching)?;
        let (tasks, records) = shape_sum(fv_out.prep_stats.iter().chain([&fv_out.stats]));
        timeline.machine_shaped(
            "gen_fvs_m",
            fv_out.sim_duration(&cfg.cluster),
            tasks,
            records,
        );
        check_cancel(timeline, session)?;
        let higher: Vec<bool> = lib
            .matching
            .features
            .iter()
            .map(|f| f.sim.higher_is_similar())
            .collect();
        let al_cfg = AlConfig {
            mask_pair_selection: false,
            seed: cfg.seed,
            ..cfg.al.clone()
        };
        let al = al_matcher(
            cluster,
            session,
            timeline,
            "al_matcher_m",
            &fv_out.fvs,
            &higher,
            &al_cfg,
        )?;
        let applied = apply_matcher(cluster, &al.forest, &fv_out.fvs)?;
        let (tasks, records) = shape_of(&applied.stats);
        timeline.machine_shaped(
            "apply_matcher",
            applied.stats.sim_duration(&cfg.cluster),
            tasks,
            records,
        );
        Ok(RunReport {
            matches: applied.matches,
            plan: PlanKind::MatchOnly,
            physical: None,
            candidate_size: None,
            rule_sequence: RuleSequence::default(),
            rules_extracted: 0,
            rules_retained: 0,
            sample_size: 0,
            timeline: std::mem::take(timeline),
            ledger: session.ledger(),
            feature_counts: (lib.blocking.len(), lib.matching.len()),
            faults: cluster.fault_stats().unwrap_or_default(),
            journal_error: session.journal_error().map(ToString::to_string),
            blocking: None,
        })
    }

    #[allow(clippy::too_many_lines)]
    fn blocking_stage<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        lib: &FeatureLibrary,
        cluster: &Cluster,
        session: &mut CrowdSession<C>,
        timeline: &mut Timeline,
    ) -> Result<BlockingOutcome, FalconError> {
        let cfg = &self.config;
        session.mark_op("blocking_stage");
        check_cancel(timeline, session)?;
        let mut built = BuiltIndexes::new();

        // ---- sample_pairs ----
        let sample = sample_pairs(cluster, a, b, cfg.sample_size, cfg.sample_fanout, cfg.seed)?;
        let (tasks, records) = shape_sum([&sample.index_job, &sample.pair_job]);
        timeline.machine_shaped(
            "sample_pairs",
            sample.index_job.sim_duration(&cfg.cluster)
                + sample.pair_job.sim_duration(&cfg.cluster),
            tasks,
            records,
        );
        check_cancel(timeline, session)?;

        // ---- gen_fvs (blocking features) ----
        let s_fvs = gen_fvs(cluster, a, b, &sample.pairs, &lib.blocking)?;
        let (tasks, records) = shape_sum(s_fvs.prep_stats.iter().chain([&s_fvs.stats]));
        timeline.machine_shaped(
            "gen_fvs_b",
            s_fvs.sim_duration(&cfg.cluster),
            tasks,
            records,
        );
        check_cancel(timeline, session)?;

        // ---- al_matcher (blocking stage) ----
        let higher_b: Vec<bool> = lib
            .blocking
            .features
            .iter()
            .map(|f| f.sim.higher_is_similar())
            .collect();
        let al_cfg = AlConfig {
            mask_pair_selection: false,
            seed: cfg.seed,
            ..cfg.al.clone()
        };
        let al_b = al_matcher(
            cluster,
            session,
            timeline,
            "al_matcher_b",
            &s_fvs.fvs,
            &higher_b,
            &al_cfg,
        )?;

        // Masking 1a: generic index prebuild during the AL crowd rounds.
        if cfg.opt.prebuild_indexes {
            prebuild_generic(cluster, a, &lib.blocking, &mut built, timeline)?;
        }
        check_cancel(timeline, session)?;

        // ---- get_blocking_rules ----
        let t0 = wall_now();
        let ranked = get_blocking_rules(&al_b.forest, &s_fvs.fvs, cfg.max_rules, &higher_b);
        timeline.machine("get_block_rules", t0.elapsed());
        let rules_extracted = ranked.len();
        check_cancel(timeline, session)?;

        // Masking 1b + 2: while eval_rules crowdsources, prebuild the
        // candidate rules' indexes and speculatively execute them.
        // (Capacity accumulates from eval_rules' rounds; we interleave the
        // accounting by running eval first, then charging the masked work
        // against its accumulated capacity — equivalent under the capacity
        // model.)
        let eval_cfg = EvalConfig {
            seed: cfg.seed,
            ..cfg.eval.clone()
        };
        let eval = eval_rules(session, timeline, &ranked, &s_fvs.fvs, &eval_cfg);
        if cfg.opt.prebuild_indexes {
            prebuild_for_rules(
                cluster,
                a,
                &ranked.rules,
                &lib.blocking,
                &cfg.prefilter,
                &mut built,
                timeline,
            )?;
        }
        let speculated = if cfg.opt.speculative_execution {
            let rules_with_sel: Vec<_> = ranked
                .rules
                .iter()
                .enumerate()
                .map(|(i, r)| (r.clone(), ranked.selectivity(i)))
                .collect();
            speculate_rules(
                cluster,
                a,
                b,
                &rules_with_sel,
                &lib.blocking,
                &cfg.prefilter,
                &mut built,
                timeline,
                cfg.max_pairs,
            )?
        } else {
            Default::default()
        };
        check_cancel(timeline, session)?;

        // Fallback: if nothing was retained, keep the top-ranked rule so
        // the pipeline can still block (documented pragmatic choice).
        let retained: Vec<EvaluatedRule> = if eval.retained.is_empty() && !ranked.is_empty() {
            vec![EvaluatedRule {
                rule: ranked.rules[0].clone(),
                rank_idx: 0,
                precision: 0.0,
                epsilon: 1.0,
                iterations: 0,
            }]
        } else {
            eval.retained.clone()
        };
        let rules_retained = eval.retained.len();

        // ---- select_opt_seq ----
        let t0 = wall_now();
        let seq_out = select_opt_seq(&ranked, &retained, &s_fvs.fvs, &cfg.seq);
        timeline.machine("sel_opt_seq", t0.elapsed());

        // Static verification: the optimizer's sequence must be
        // well-formed against the blocking arity AND every filter derived
        // from it must discharge its recall-safety obligations before
        // anything is built from it (warnings — dead predicates,
        // unreachable rules — do not block the run).
        let (seq_errors, _seq_warnings) =
            analyze::verify_rule_sequence_with(&seq_out.seq, &lib.blocking, &cfg.prefilter);
        if !seq_errors.is_empty() {
            return Err(FalconError::Plan(seq_errors));
        }

        // ---- apply_blocking_rules ----
        // Forced-filter substitution happens on the base specs; the
        // signature pre-filter wraps whatever survived substitution.
        let conjuncts = ConjunctSpecs::derive_with(&seq_out.seq, &lib.blocking, &cfg.force_filters)
            .with_signatures(&cfg.prefilter);
        // Build whatever indexes are still missing (unmasked).
        for (spec, key) in conjuncts.all_specs_keyed() {
            let dur = built.build_spec_keyed(cluster, a, spec, key)?;
            timeline.machine_shaped("index_build", dur, 1, a.len() as u64);
        }
        check_cancel(timeline, session)?;
        // Reuse a speculated single-rule output when possible.
        let spec_hit: Option<(usize, &Vec<IdPair>)> = seq_out
            .seq
            .rules
            .iter()
            .enumerate()
            .filter_map(|(i, r)| speculated.get(&r.canonical_key()).map(|o| (i, o)))
            .min_by_key(|(_, o)| o.len());
        let (candidates, physical_op, blocking) = if let Some((_, base)) = spec_hit {
            // Apply the full sequence to the smallest speculated output in
            // a map-only job (rules are idempotent on survivors). Each
            // split carries one pair chunk as a single record so the
            // evaluator's feature-vector scratch is reused across pairs.
            let evaluator = Arc::new(physical::PairEvaluator::new(
                a,
                b,
                &lib.blocking,
                &seq_out.seq,
            ));
            let n_pairs = base.len();
            let chunk = n_pairs.div_ceil((cluster.threads() * 2).max(1)).max(1);
            let splits: Vec<Vec<Vec<IdPair>>> =
                base.chunks(chunk).map(|c| vec![c.to_vec()]).collect();
            let mut out = run_map_only(cluster, splits, move |pair_chunk: &Vec<IdPair>, acc| {
                let mut fv = Vec::new();
                for &(x, y) in pair_chunk {
                    if evaluator.keeps_scratch(x, y, &mut fv) {
                        acc.push((x, y));
                    }
                }
            })?;
            out.stats.input_records = n_pairs;
            let (tasks, records) = shape_of(&out.stats);
            timeline.machine_shaped(
                "apply_block_rules",
                out.stats.sim_duration(&cfg.cluster),
                tasks,
                records,
            );
            let mut c = out.output;
            c.sort_unstable();
            (c, cfg.force_physical.unwrap_or(PhysicalOp::ApplyAll), None)
        } else {
            let op = cfg.force_physical.unwrap_or_else(|| {
                physical::select_physical(
                    &conjuncts,
                    &built,
                    &seq_out.rule_selectivities,
                    seq_out.selectivity,
                    cfg.cluster.mapper_memory_bytes,
                    estimate_table_bytes(a),
                    cfg.greedy_ratio,
                )
            });
            let result = physical::execute(
                op,
                cluster,
                a,
                b,
                &lib.blocking,
                &seq_out.seq,
                &conjuncts,
                &built,
                &seq_out.rule_selectivities,
                cfg.max_pairs,
            );
            match result {
                Ok(res) => {
                    let (tasks, records) = shape_sum(&res.jobs);
                    timeline.machine_shaped("apply_block_rules", res.duration, tasks, records);
                    (res.candidates, res.op, Some(res.blocking))
                }
                Err(_) => {
                    // Forced/selected operator failed (pair budget): fall
                    // back to apply-all if possible, else empty.
                    let res = physical::execute(
                        PhysicalOp::ApplyAll,
                        cluster,
                        a,
                        b,
                        &lib.blocking,
                        &seq_out.seq,
                        &conjuncts,
                        &built,
                        &seq_out.rule_selectivities,
                        cfg.max_pairs,
                    )?;
                    let (tasks, records) = shape_sum(&res.jobs);
                    timeline.machine_shaped("apply_block_rules", res.duration, tasks, records);
                    (res.candidates, res.op, Some(res.blocking))
                }
            }
        };

        Ok(BlockingOutcome {
            candidates,
            physical_op,
            seq: seq_out.seq,
            rules_extracted,
            rules_retained,
            sample_len: sample.pairs.len(),
            blocking,
        })
    }

    /// The matching stage: `gen_fvs` over the candidates, crowdsourced
    /// active learning, and `apply_matcher` (speculated when AL
    /// converged). `priority` seeds the first labeling round (the
    /// Difficult Pairs' Locator feeds this in the iterative workflow).
    #[allow(clippy::too_many_arguments)]
    fn matching_stage<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        lib: &FeatureLibrary,
        cluster: &Cluster,
        session: &mut CrowdSession<C>,
        timeline: &mut Timeline,
        candidates: &[IdPair],
        priority: Vec<usize>,
        seed_salt: u64,
    ) -> Result<MatchStageOutcome, FalconError> {
        let cfg = &self.config;
        session.mark_op("matching_stage");
        check_cancel(timeline, session)?;
        let c_fvs = gen_fvs(cluster, a, b, candidates, &lib.matching)?;
        let (tasks, records) = shape_sum(c_fvs.prep_stats.iter().chain([&c_fvs.stats]));
        timeline.machine_shaped(
            "gen_fvs_m",
            c_fvs.sim_duration(&cfg.cluster),
            tasks,
            records,
        );
        check_cancel(timeline, session)?;
        if c_fvs.fvs.is_empty() {
            return Ok(MatchStageOutcome {
                matches: Vec::new(),
                forest: None,
                fvs: c_fvs.fvs,
                labeled: Vec::new(),
            });
        }
        let higher_m: Vec<bool> = lib
            .matching
            .features
            .iter()
            .map(|f| f.sim.higher_is_similar())
            .collect();
        let al_m_cfg = AlConfig {
            mask_pair_selection: cfg.opt.mask_pair_selection
                && candidates.len() >= cfg.mask_selection_threshold,
            seed: cfg.seed ^ 1 ^ seed_salt,
            priority_indices: priority,
            ..cfg.al.clone()
        };
        let al_m = al_matcher(
            cluster,
            session,
            timeline,
            "al_matcher_m",
            &c_fvs.fvs,
            &higher_m,
            &al_m_cfg,
        )?;
        let applied = apply_matcher(cluster, &al_m.forest, &c_fvs.fvs)?;
        let dur = applied.stats.sim_duration(&cfg.cluster);
        let (tasks, records) = shape_of(&applied.stats);
        if cfg.opt.speculative_execution && al_m.converged {
            timeline.masked_machine_shaped("apply_matcher", dur, tasks, records);
        } else {
            timeline.machine_shaped("apply_matcher", dur, tasks, records);
        }
        Ok(MatchStageOutcome {
            matches: applied.matches,
            forest: Some(al_m.forest),
            fvs: c_fvs.fvs,
            labeled: al_m.labeled,
        })
    }

    fn run_block_and_match<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        lib: &FeatureLibrary,
        cluster: &Cluster,
        session: &mut CrowdSession<C>,
        timeline: &mut Timeline,
    ) -> Result<RunReport, FalconError> {
        let block = self.blocking_stage(a, b, lib, cluster, session, timeline)?;
        let matched = self.matching_stage(
            a,
            b,
            lib,
            cluster,
            session,
            timeline,
            &block.candidates,
            Vec::new(),
            0,
        )?;
        Ok(RunReport {
            matches: matched.matches,
            plan: PlanKind::BlockAndMatch,
            physical: Some(block.physical_op),
            candidate_size: Some(block.candidates.len()),
            rule_sequence: block.seq,
            rules_extracted: block.rules_extracted,
            rules_retained: block.rules_retained,
            sample_size: block.sample_len,
            timeline: std::mem::take(timeline),
            ledger: session.ledger(),
            feature_counts: (lib.blocking.len(), lib.matching.len()),
            faults: cluster.fault_stats().unwrap_or_default(),
            journal_error: session.journal_error().map(ToString::to_string),
            blocking: block.blocking,
        })
    }

    /// The **full iterative EM workflow** of Figure 1: Blocker, then
    /// repeated Matcher / Accuracy Estimator / Difficult Pairs' Locator
    /// rounds until the crowd-estimated accuracy stops improving (or
    /// `max_outer` rounds). This is Corleone's default workflow, listed in
    /// the paper (Section 12) as the next extension of Falcon's plans.
    ///
    /// Returns the final report plus the per-round accuracy estimates.
    pub fn run_workflow<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        max_outer: usize,
    ) -> (RunReport, Vec<AccuracyEstimate>) {
        // falcon-lint: allow(no-panic) — documented convenience wrapper.
        #[allow(clippy::unwrap_used, clippy::expect_used)]
        self.try_run_workflow(a, b, crowd, max_outer)
            .unwrap_or_else(|e| panic!("Falcon::run_workflow: {e}"))
    }

    /// Fallible form of [`Falcon::run_workflow`], with the same pre-flight
    /// [`analyze`](crate::analyze::analyze) gate as [`Falcon::try_run`].
    pub fn try_run_workflow<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        max_outer: usize,
    ) -> Result<(RunReport, Vec<AccuracyEstimate>), FalconError> {
        self.try_run_workflow_with_journal(a, b, crowd, max_outer, None)
    }

    /// [`Falcon::try_run_workflow`] with a crash-recovery journal at
    /// `journal_path` — the workflow analogue of
    /// [`Falcon::try_run_resumable`]: labeled batches checkpoint to the
    /// journal, and a journal left by a crashed run replays its batches
    /// without re-asking the crowd before going live at the crash point.
    pub fn try_run_workflow_resumable<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        max_outer: usize,
        journal_path: impl AsRef<Path>,
    ) -> Result<(RunReport, Vec<AccuracyEstimate>), FalconError> {
        let journal = CrowdJournal::open(journal_path)?;
        self.try_run_workflow_with_journal(a, b, crowd, max_outer, Some(journal))
    }

    /// [`Falcon::try_run_workflow`] under a [`StageGate`] — the workflow
    /// analogue of [`Falcon::try_run_gated`].
    pub fn try_run_workflow_gated<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        max_outer: usize,
        journal: Option<CrowdJournal>,
        gate: Arc<dyn StageGate>,
    ) -> Result<(RunReport, Vec<AccuracyEstimate>), FalconError> {
        self.try_run_workflow_inner(a, b, crowd, max_outer, journal, Some(gate))
    }

    fn try_run_workflow_with_journal<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        max_outer: usize,
        journal: Option<CrowdJournal>,
    ) -> Result<(RunReport, Vec<AccuracyEstimate>), FalconError> {
        self.try_run_workflow_inner(a, b, crowd, max_outer, journal, None)
    }

    #[allow(clippy::too_many_lines)]
    fn try_run_workflow_inner<C: Crowd>(
        &self,
        a: &Table,
        b: &Table,
        crowd: C,
        max_outer: usize,
        journal: Option<CrowdJournal>,
        gate: Option<Arc<dyn StageGate>>,
    ) -> Result<(RunReport, Vec<AccuracyEstimate>), FalconError> {
        let analysis = analyze::analyze(a, b, &self.config);
        if !analysis.is_ok() {
            return Err(FalconError::Plan(analysis.errors));
        }
        let cfg = &self.config;
        let cluster = self.build_cluster();
        let mut session = CrowdSession::new(crowd);
        if let Some(j) = journal {
            session = session.with_journal(j);
        }
        let mut timeline = match gate {
            Some(g) => Timeline::with_gate(g),
            None => Timeline::new(),
        };
        let t0 = wall_now();
        let lib = generate_features(a, b);
        timeline.machine("gen_features", t0.elapsed());

        let block = self.blocking_stage(a, b, &lib, &cluster, &mut session, &mut timeline)?;

        let mut estimates: Vec<AccuracyEstimate> = Vec::new();
        // Keep the round with the best crowd-estimated F1 (Corleone keeps
        // the best matcher seen, not necessarily the last).
        let mut best: Option<(f64, MatchStageOutcome)> = None;
        let mut priority: Vec<usize> = Vec::new();
        let mut known: std::collections::HashMap<usize, bool> = Default::default();
        for round in 0..max_outer.max(1) {
            let outcome = self.matching_stage(
                a,
                b,
                &lib,
                &cluster,
                &mut session,
                &mut timeline,
                &block.candidates,
                std::mem::take(&mut priority),
                round as u64,
            )?;
            for (i, l) in &outcome.labeled {
                known.insert(*i, *l);
            }
            let Some(forest) = outcome.forest.as_ref() else {
                best = Some((0.0, outcome));
                break;
            };
            session.mark_op("accuracy_estimator");
            check_cancel(&timeline, &mut session)?;
            let est = estimate_accuracy(
                &mut session,
                &mut timeline,
                forest,
                &outcome.fvs,
                &EstimatorConfig {
                    seed: cfg.seed ^ round as u64,
                    ..EstimatorConfig::default()
                },
            );
            let improved = estimates.last().is_none_or(|prev| est.f1 > prev.f1 + 0.01);
            let difficult = locate_difficult_pairs(forest, &outcome.fvs, &known, cfg.al.batch);
            priority = difficult.into_iter().map(|d| d.index).collect();
            let keep_going = improved && !priority.is_empty() && round + 1 < max_outer;
            if best.as_ref().is_none_or(|(f1, _)| est.f1 >= *f1) {
                best = Some((est.f1, outcome));
            }
            estimates.push(est);
            if !keep_going {
                break;
            }
        }
        // The loop body always runs at least once and every path sets
        // `best`; guard anyway so the workflow cannot panic.
        let Some((_, matched)) = best else {
            return Err(FalconError::EmptyInput {
                what: "workflow rounds",
            });
        };
        timeline.detach_gate();
        let report = RunReport {
            matches: matched.matches,
            plan: PlanKind::BlockAndMatch,
            physical: Some(block.physical_op),
            candidate_size: Some(block.candidates.len()),
            rule_sequence: block.seq,
            rules_extracted: block.rules_extracted,
            rules_retained: block.rules_retained,
            sample_size: block.sample_len,
            timeline,
            ledger: session.ledger(),
            feature_counts: (lib.blocking.len(), lib.matching.len()),
            faults: cluster.fault_stats().unwrap_or_default(),
            journal_error: session.journal_error().map(ToString::to_string),
            blocking: block.blocking,
        };
        Ok((report, estimates))
    }
}

/// Output of the blocking stage (Figure 3.a up to `apply_blocking_rules`).
struct BlockingOutcome {
    candidates: Vec<IdPair>,
    physical_op: PhysicalOp,
    seq: RuleSequence,
    rules_extracted: usize,
    rules_retained: usize,
    sample_len: usize,
    /// Probe counters from `physical::execute`; `None` when the stage
    /// resolved from a speculated single-rule output without probing.
    blocking: Option<BlockingStats>,
}

/// Output of one matching stage.
struct MatchStageOutcome {
    matches: Vec<IdPair>,
    forest: Option<falcon_forest::Forest>,
    fvs: crate::fv::FvSet,
    labeled: Vec<(usize, bool)>,
}
