//! Pre-flight plan analysis: validate a run's plan, operator contracts and
//! resource budgets *before* any MapReduce job or crowd question is
//! issued.
//!
//! Falcon is a hands-off service: once `A`, `B` and a budget are handed
//! over, nobody is watching a terminal. A malformed configuration must
//! therefore be rejected up front with a typed, explainable error — not
//! discovered three crowdsourced operators deep. [`analyze`] performs the
//! checks that are decidable statically:
//!
//! * **Input contracts** — both tables non-empty, and feature generation
//!   able to produce at least one blocking and one matching feature
//!   (otherwise `gen_fvs` → `al_matcher` would run on zero-arity vectors).
//! * **Cluster sanity** — nonzero nodes, slots and memory budgets; the
//!   simulated-time model divides by slot counts and the physical-operator
//!   selector compares against the mapper memory budget.
//! * **Plan feasibility** — a (forced) matcher-only plan must fit the
//!   enumeration budget and the mapper memory budget; forced `MapSide`
//!   blocking must broadcast `A` into mapper memory; forced `MapSide` /
//!   `ReduceSplit` blocking enumerates `A × B` and must fit the pair
//!   budget.
//! * **Operator configuration** — sampler, active-learning, rule-eval and
//!   sequence-selection parameters in their documented domains.
//!
//! [`check_rule_sequence`] additionally validates a concrete
//! [`RuleSequence`] against the blocking-feature arity (used by the driver
//! between `select_opt_seq` and `apply_blocking_rules`, and by
//! `falcon plan check` on optimizer-produced sequences).

use crate::driver::FalconConfig;
use crate::features::generate_features;
use crate::physical::{estimate_table_bytes, PhysicalOp};
use crate::plan::{choose_plan, estimate_fv_bytes, PlanKind};
use crate::rules::RuleSequence;
use falcon_dataflow::ClusterConfig;
use falcon_table::Table;
use std::fmt;

/// A static problem with a plan, its configuration, or its inputs,
/// detected before execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanAnalysisError {
    /// An input table has no rows.
    EmptyTable {
        /// `"A"` or `"B"`.
        table: &'static str,
    },
    /// Feature generation produced no features for a stage, so the
    /// `gen_fvs` → `al_matcher` contract (arity ≥ 1) cannot hold.
    NoFeatures {
        /// `"blocking"` or `"matching"`.
        stage: &'static str,
    },
    /// A cluster-config field is zero where the engine divides by it or
    /// budgets against it.
    InvalidClusterConfig {
        /// The offending field name.
        field: &'static str,
    },
    /// The plan enumerates more pairs than the enumeration budget allows.
    PairBudgetExceeded {
        /// `|A| * |B|`.
        pairs: u128,
        /// The configured `max_pairs`.
        budget: u128,
        /// What forces the enumeration (`"match-only plan"`,
        /// `"map_side"`, `"reduce_split"`).
        cause: &'static str,
    },
    /// A plan stage needs more memory than the per-mapper budget.
    MemoryBudgetExceeded {
        /// The stage (`"match-only feature vectors"`,
        /// `"map_side broadcast of A"`).
        stage: &'static str,
        /// Estimated bytes required.
        required: u128,
        /// The configured per-mapper budget.
        budget: u128,
    },
    /// An operator parameter is outside its documented domain.
    InvalidOperatorConfig {
        /// The operator (`"sample_pairs"`, `"al_matcher"`, ...).
        op: &'static str,
        /// The parameter name.
        field: &'static str,
        /// Why the value is invalid.
        reason: String,
    },
    /// A blocking rule violates the `select_opt_seq` →
    /// `apply_blocking_rules` contract.
    MalformedRule {
        /// Index of the rule in the sequence.
        rule: usize,
        /// What is wrong with it.
        issue: RuleIssue,
    },
}

/// The specific defect of a [`PlanAnalysisError::MalformedRule`].
#[derive(Debug, Clone, PartialEq)]
pub enum RuleIssue {
    /// The rule has no predicates — it would drop every pair.
    NoPredicates,
    /// A predicate references a feature index outside the blocking arity.
    FeatureOutOfRange {
        /// The referenced feature index.
        feature: usize,
        /// The blocking-feature arity.
        arity: usize,
    },
    /// A predicate threshold is NaN or infinite.
    NonFiniteThreshold {
        /// The feature the predicate tests.
        feature: usize,
    },
}

impl fmt::Display for PlanAnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTable { table } => write!(f, "input table {table} is empty"),
            Self::NoFeatures { stage } => {
                write!(
                    f,
                    "feature generation produced no {stage} features \
                     (tables share no comparable attributes)"
                )
            }
            Self::InvalidClusterConfig { field } => {
                write!(f, "cluster config field {field} must be nonzero")
            }
            Self::PairBudgetExceeded {
                pairs,
                budget,
                cause,
            } => write!(
                f,
                "{cause} enumerates {pairs} pairs, over the max_pairs budget of {budget}"
            ),
            Self::MemoryBudgetExceeded {
                stage,
                required,
                budget,
            } => write!(
                f,
                "{stage} needs ~{required} bytes but each mapper has {budget}"
            ),
            Self::InvalidOperatorConfig { op, field, reason } => {
                write!(f, "{op}.{field}: {reason}")
            }
            Self::MalformedRule { rule, issue } => {
                write!(f, "blocking rule {rule}: ")?;
                match issue {
                    RuleIssue::NoPredicates => {
                        write!(f, "has no predicates (would drop every pair)")
                    }
                    RuleIssue::FeatureOutOfRange { feature, arity } => write!(
                        f,
                        "predicate references feature {feature} but blocking arity is {arity}"
                    ),
                    RuleIssue::NonFiniteThreshold { feature } => {
                        write!(
                            f,
                            "predicate on feature {feature} has a non-finite threshold"
                        )
                    }
                }
            }
        }
    }
}

impl std::error::Error for PlanAnalysisError {}

/// The result of pre-flight analysis: the plan that would run, the sizes
/// the decision was based on, and every defect found.
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    /// The plan template the driver would execute.
    pub plan: PlanKind,
    /// `|A| * |B|`.
    pub pairs: u128,
    /// Number of blocking features the generator would produce.
    pub blocking_features: usize,
    /// Number of matching features the generator would produce.
    pub matching_features: usize,
    /// All defects, in detection order; empty means the plan is runnable.
    pub errors: Vec<PlanAnalysisError>,
}

impl PlanAnalysis {
    /// True when no defect was found.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Validate the cluster description alone.
pub fn check_cluster(cluster: &ClusterConfig) -> Vec<PlanAnalysisError> {
    let mut errors = Vec::new();
    let fields: [(&'static str, usize); 5] = [
        ("nodes", cluster.nodes),
        ("map_slots_per_node", cluster.map_slots_per_node),
        ("reduce_slots_per_node", cluster.reduce_slots_per_node),
        ("mapper_memory_bytes", cluster.mapper_memory_bytes),
        ("reducer_memory_bytes", cluster.reducer_memory_bytes),
    ];
    for (field, value) in fields {
        if value == 0 {
            errors.push(PlanAnalysisError::InvalidClusterConfig { field });
        }
    }
    errors
}

/// Validate a concrete rule sequence against the blocking-feature arity:
/// the `select_opt_seq` → `apply_blocking_rules` contract.
pub fn check_rule_sequence(seq: &RuleSequence, arity: usize) -> Vec<PlanAnalysisError> {
    let mut errors = Vec::new();
    for (i, rule) in seq.rules.iter().enumerate() {
        if rule.predicates.is_empty() {
            errors.push(PlanAnalysisError::MalformedRule {
                rule: i,
                issue: RuleIssue::NoPredicates,
            });
        }
        for p in &rule.predicates {
            if p.feature >= arity {
                errors.push(PlanAnalysisError::MalformedRule {
                    rule: i,
                    issue: RuleIssue::FeatureOutOfRange {
                        feature: p.feature,
                        arity,
                    },
                });
            }
            if !p.threshold.is_finite() {
                errors.push(PlanAnalysisError::MalformedRule {
                    rule: i,
                    issue: RuleIssue::NonFiniteThreshold { feature: p.feature },
                });
            }
        }
    }
    errors
}

fn check_operator_configs(cfg: &FalconConfig, errors: &mut Vec<PlanAnalysisError>) {
    let mut bad = |op: &'static str, field: &'static str, reason: String| {
        errors.push(PlanAnalysisError::InvalidOperatorConfig { op, field, reason });
    };
    if cfg.sample_size == 0 {
        bad("sample_pairs", "sample_size", "must be positive".into());
    }
    if cfg.sample_fanout < 2 {
        bad(
            "sample_pairs",
            "sample_fanout",
            format!("fan-out y must be >= 2, got {}", cfg.sample_fanout),
        );
    }
    if cfg.al.max_iterations == 0 {
        bad("al_matcher", "max_iterations", "must be positive".into());
    }
    if cfg.al.batch == 0 {
        bad("al_matcher", "batch", "must be positive".into());
    }
    if !(cfg.al.convergence_eps.is_finite() && cfg.al.convergence_eps >= 0.0) {
        bad(
            "al_matcher",
            "convergence_eps",
            format!("must be finite and >= 0, got {}", cfg.al.convergence_eps),
        );
    }
    if cfg.eval.batch == 0 {
        bad("eval_rules", "batch", "must be positive".into());
    }
    if !(cfg.eval.p_min > 0.0 && cfg.eval.p_min <= 1.0) {
        bad(
            "eval_rules",
            "p_min",
            format!("must be in (0, 1], got {}", cfg.eval.p_min),
        );
    }
    if !(cfg.eval.eps_max > 0.0 && cfg.eval.eps_max.is_finite()) {
        bad(
            "eval_rules",
            "eps_max",
            format!("must be positive and finite, got {}", cfg.eval.eps_max),
        );
    }
    for (field, value) in [
        ("alpha", cfg.seq.alpha),
        ("beta", cfg.seq.beta),
        ("gamma", cfg.seq.gamma),
    ] {
        if !(value.is_finite() && value >= 0.0) {
            bad(
                "select_opt_seq",
                field,
                format!("weight must be finite and >= 0, got {value}"),
            );
        }
    }
    if cfg.seq.optimizer_bits == 0 {
        bad(
            "select_opt_seq",
            "optimizer_bits",
            "must be positive".into(),
        );
    }
    if !(cfg.greedy_ratio > 0.0 && cfg.greedy_ratio <= 1.0) {
        bad(
            "apply_blocking_rules",
            "greedy_ratio",
            format!("must be in (0, 1], got {}", cfg.greedy_ratio),
        );
    }
    if cfg.max_pairs == 0 {
        bad(
            "apply_blocking_rules",
            "max_pairs",
            "must be positive".into(),
        );
    }
}

/// Analyze a prospective run of `Falcon::run(a, b, ...)` under `cfg`.
///
/// Performs the feature-generation scan (cheap, no jobs) to resolve the
/// plan the driver would choose, then checks every statically decidable
/// contract. The driver calls this as a pre-flight gate; the
/// `falcon plan check` subcommand exposes it directly.
pub fn analyze(a: &Table, b: &Table, cfg: &FalconConfig) -> PlanAnalysis {
    let mut errors = Vec::new();
    if a.is_empty() {
        errors.push(PlanAnalysisError::EmptyTable { table: "A" });
    }
    if b.is_empty() {
        errors.push(PlanAnalysisError::EmptyTable { table: "B" });
    }
    errors.extend(check_cluster(&cfg.cluster));
    check_operator_configs(cfg, &mut errors);

    let lib = generate_features(a, b);
    let pairs = a.len() as u128 * b.len() as u128;
    let plan = cfg.force_plan.unwrap_or_else(|| {
        choose_plan(
            a,
            b,
            lib.matching.len(),
            cfg.cluster.mapper_memory_bytes,
            cfg.max_pairs,
        )
    });

    if !a.is_empty() && !b.is_empty() {
        if lib.matching.is_empty() {
            errors.push(PlanAnalysisError::NoFeatures { stage: "matching" });
        }
        if plan == PlanKind::BlockAndMatch && lib.blocking.is_empty() {
            errors.push(PlanAnalysisError::NoFeatures { stage: "blocking" });
        }
    }

    // Plan-template feasibility. `choose_plan` only picks MatchOnly when
    // both budgets hold, so these fire for *forced* plans/operators.
    if plan == PlanKind::MatchOnly {
        if pairs > cfg.max_pairs {
            errors.push(PlanAnalysisError::PairBudgetExceeded {
                pairs,
                budget: cfg.max_pairs,
                cause: "match-only plan",
            });
        }
        let fv_bytes = estimate_fv_bytes(a, b, lib.matching.len());
        if fv_bytes > cfg.cluster.mapper_memory_bytes as u128 {
            errors.push(PlanAnalysisError::MemoryBudgetExceeded {
                stage: "match-only feature vectors",
                required: fv_bytes,
                budget: cfg.cluster.mapper_memory_bytes as u128,
            });
        }
    }
    if plan == PlanKind::BlockAndMatch {
        match cfg.force_physical {
            Some(PhysicalOp::MapSide) => {
                let table_bytes = estimate_table_bytes(a) as u128;
                if table_bytes > cfg.cluster.mapper_memory_bytes as u128 {
                    errors.push(PlanAnalysisError::MemoryBudgetExceeded {
                        stage: "map_side broadcast of A",
                        required: table_bytes,
                        budget: cfg.cluster.mapper_memory_bytes as u128,
                    });
                }
                if pairs > cfg.max_pairs {
                    errors.push(PlanAnalysisError::PairBudgetExceeded {
                        pairs,
                        budget: cfg.max_pairs,
                        cause: "map_side",
                    });
                }
            }
            Some(PhysicalOp::ReduceSplit) if pairs > cfg.max_pairs => {
                errors.push(PlanAnalysisError::PairBudgetExceeded {
                    pairs,
                    budget: cfg.max_pairs,
                    cause: "reduce_split",
                });
            }
            _ => {}
        }
    }

    PlanAnalysis {
        plan,
        pairs,
        blocking_features: lib.blocking.len(),
        matching_features: lib.matching.len(),
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Predicate, Rule};
    use falcon_forest::SplitOp;
    use falcon_table::{AttrType, Schema, Value};

    fn tables(n: usize) -> (Table, Table) {
        let schema = Schema::new([("title", AttrType::Str), ("price", AttrType::Num)]);
        let rows = |n: usize| {
            (0..n).map(move |i| {
                vec![
                    Value::str(format!("widget model {i}")),
                    Value::num(i as f64),
                ]
            })
        };
        (
            Table::new("a", schema.clone(), rows(n)),
            Table::new("b", schema, rows(n)),
        )
    }

    #[test]
    fn default_config_on_real_tables_is_accepted() {
        let (a, b) = tables(20);
        let analysis = analyze(&a, &b, &FalconConfig::default());
        assert!(analysis.is_ok(), "unexpected errors: {:?}", analysis.errors);
        assert_eq!(analysis.pairs, 400);
        assert!(analysis.blocking_features > 0);
        assert!(analysis.matching_features > 0);
    }

    #[test]
    fn empty_tables_are_rejected() {
        let (a, b) = tables(5);
        let empty = Table::new("e", a.schema().clone(), Vec::<Vec<Value>>::new());
        let analysis = analyze(&empty, &b, &FalconConfig::default());
        assert!(analysis
            .errors
            .contains(&PlanAnalysisError::EmptyTable { table: "A" }));
        let analysis = analyze(&a, &empty, &FalconConfig::default());
        assert!(analysis
            .errors
            .contains(&PlanAnalysisError::EmptyTable { table: "B" }));
    }

    #[test]
    fn zero_cluster_fields_are_rejected() {
        let (a, b) = tables(5);
        let mut cfg = FalconConfig::default();
        cfg.cluster.nodes = 0;
        cfg.cluster.mapper_memory_bytes = 0;
        let analysis = analyze(&a, &b, &cfg);
        assert!(analysis
            .errors
            .contains(&PlanAnalysisError::InvalidClusterConfig { field: "nodes" }));
        assert!(analysis
            .errors
            .contains(&PlanAnalysisError::InvalidClusterConfig {
                field: "mapper_memory_bytes"
            }));
    }

    #[test]
    fn forced_match_only_over_pair_budget_is_rejected() {
        let (a, b) = tables(30);
        let cfg = FalconConfig {
            force_plan: Some(PlanKind::MatchOnly),
            max_pairs: 100, // 30 * 30 = 900 > 100
            ..FalconConfig::default()
        };
        let analysis = analyze(&a, &b, &cfg);
        assert!(analysis.errors.iter().any(|e| matches!(
            e,
            PlanAnalysisError::PairBudgetExceeded {
                pairs: 900,
                budget: 100,
                cause: "match-only plan",
            }
        )));
    }

    #[test]
    fn forced_map_side_without_memory_is_rejected() {
        let (a, b) = tables(30);
        let mut cfg = FalconConfig {
            force_plan: Some(PlanKind::BlockAndMatch),
            force_physical: Some(PhysicalOp::MapSide),
            ..FalconConfig::default()
        };
        cfg.cluster.mapper_memory_bytes = 1; // A cannot be broadcast
        let analysis = analyze(&a, &b, &cfg);
        assert!(analysis.errors.iter().any(|e| matches!(
            e,
            PlanAnalysisError::MemoryBudgetExceeded {
                stage: "map_side broadcast of A",
                ..
            }
        )));
    }

    #[test]
    fn forced_reduce_split_over_pair_budget_is_rejected() {
        let (a, b) = tables(30);
        let cfg = FalconConfig {
            force_plan: Some(PlanKind::BlockAndMatch),
            force_physical: Some(PhysicalOp::ReduceSplit),
            max_pairs: 10,
            ..FalconConfig::default()
        };
        let analysis = analyze(&a, &b, &cfg);
        assert!(analysis.errors.iter().any(|e| matches!(
            e,
            PlanAnalysisError::PairBudgetExceeded {
                cause: "reduce_split",
                ..
            }
        )));
    }

    #[test]
    fn bad_operator_configs_are_rejected_with_the_right_fields() {
        let (a, b) = tables(5);
        let mut cfg = FalconConfig {
            sample_size: 0,
            sample_fanout: 1,
            greedy_ratio: 0.0,
            ..FalconConfig::default()
        };
        cfg.al.batch = 0;
        cfg.eval.p_min = 1.5;
        cfg.seq.alpha = f64::NAN;
        let analysis = analyze(&a, &b, &cfg);
        let fields: Vec<(&str, &str)> = analysis
            .errors
            .iter()
            .filter_map(|e| match e {
                PlanAnalysisError::InvalidOperatorConfig { op, field, .. } => Some((*op, *field)),
                _ => None,
            })
            .collect();
        for expected in [
            ("sample_pairs", "sample_size"),
            ("sample_pairs", "sample_fanout"),
            ("al_matcher", "batch"),
            ("eval_rules", "p_min"),
            ("select_opt_seq", "alpha"),
            ("apply_blocking_rules", "greedy_ratio"),
        ] {
            assert!(
                fields.contains(&expected),
                "missing {expected:?} in {fields:?}"
            );
        }
    }

    #[test]
    fn rule_sequence_contract_violations_are_typed() {
        let pred = |feature: usize, threshold: f64| Predicate {
            feature,
            op: SplitOp::Le,
            threshold,
            nan_is_high: true,
        };
        let seq = RuleSequence::new(vec![
            Rule { predicates: vec![] }, // no predicates
            Rule {
                predicates: vec![pred(7, 0.5)],
            }, // feature out of range
            Rule {
                predicates: vec![pred(0, f64::NAN)],
            }, // non-finite threshold
        ]);
        let errors = check_rule_sequence(&seq, 3);
        assert_eq!(errors.len(), 3);
        assert_eq!(
            errors[0],
            PlanAnalysisError::MalformedRule {
                rule: 0,
                issue: RuleIssue::NoPredicates
            }
        );
        assert_eq!(
            errors[1],
            PlanAnalysisError::MalformedRule {
                rule: 1,
                issue: RuleIssue::FeatureOutOfRange {
                    feature: 7,
                    arity: 3
                }
            }
        );
        assert_eq!(
            errors[2],
            PlanAnalysisError::MalformedRule {
                rule: 2,
                issue: RuleIssue::NonFiniteThreshold { feature: 0 }
            }
        );
    }

    #[test]
    fn well_formed_sequence_passes_the_contract() {
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![Predicate {
                feature: 2,
                op: SplitOp::Gt,
                threshold: 0.4,
                nan_is_high: false,
            }],
        }]);
        assert!(check_rule_sequence(&seq, 3).is_empty());
    }
}
