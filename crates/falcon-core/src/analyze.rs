//! Pre-flight plan analysis: validate a run's plan, operator contracts and
//! resource budgets *before* any MapReduce job or crowd question is
//! issued.
//!
//! Falcon is a hands-off service: once `A`, `B` and a budget are handed
//! over, nobody is watching a terminal. A malformed configuration must
//! therefore be rejected up front with a typed, explainable error — not
//! discovered three crowdsourced operators deep. [`analyze`] performs the
//! checks that are decidable statically:
//!
//! * **Input contracts** — both tables non-empty, and feature generation
//!   able to produce at least one blocking and one matching feature
//!   (otherwise `gen_fvs` → `al_matcher` would run on zero-arity vectors).
//! * **Cluster sanity** — nonzero nodes, slots and memory budgets; the
//!   simulated-time model divides by slot counts and the physical-operator
//!   selector compares against the mapper memory budget.
//! * **Plan feasibility** — a (forced) matcher-only plan must fit the
//!   enumeration budget and the mapper memory budget; forced `MapSide`
//!   blocking must broadcast `A` into mapper memory; forced `MapSide` /
//!   `ReduceSplit` blocking enumerates `A × B` and must fit the pair
//!   budget.
//! * **Operator configuration** — sampler, active-learning, rule-eval and
//!   sequence-selection parameters in their documented domains.
//!
//! [`check_rule_sequence`] additionally validates a concrete
//! [`RuleSequence`] against the blocking-feature arity (used by the driver
//! between `select_opt_seq` and `apply_blocking_rules`, and by
//! `falcon plan check` on optimizer-produced sequences).

use crate::driver::{FalconConfig, ForcedFilter};
use crate::features::{generate_features, FeatureSet};
use crate::physical::{estimate_table_bytes, PhysicalOp};
use crate::plan::{choose_plan, estimate_fv_bytes, PlanKind};
use crate::rules::RuleSequence;
use falcon_dataflow::ClusterConfig;
use falcon_forest::SplitOp;
use falcon_index::FilterSpec;
use falcon_table::Table;
use falcon_textsim::SimFunction;
use std::fmt;

/// A static problem with a plan, its configuration, or its inputs,
/// detected before execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanAnalysisError {
    /// An input table has no rows.
    EmptyTable {
        /// `"A"` or `"B"`.
        table: &'static str,
    },
    /// Feature generation produced no features for a stage, so the
    /// `gen_fvs` → `al_matcher` contract (arity ≥ 1) cannot hold.
    NoFeatures {
        /// `"blocking"` or `"matching"`.
        stage: &'static str,
    },
    /// A cluster-config field is zero where the engine divides by it or
    /// budgets against it.
    InvalidClusterConfig {
        /// The offending field name.
        field: &'static str,
    },
    /// The plan enumerates more pairs than the enumeration budget allows.
    PairBudgetExceeded {
        /// `|A| * |B|`.
        pairs: u128,
        /// The configured `max_pairs`.
        budget: u128,
        /// What forces the enumeration (`"match-only plan"`,
        /// `"map_side"`, `"reduce_split"`).
        cause: &'static str,
    },
    /// A plan stage needs more memory than the per-mapper budget.
    MemoryBudgetExceeded {
        /// The stage (`"match-only feature vectors"`,
        /// `"map_side broadcast of A"`).
        stage: &'static str,
        /// Estimated bytes required.
        required: u128,
        /// The configured per-mapper budget.
        budget: u128,
    },
    /// An operator parameter is outside its documented domain.
    InvalidOperatorConfig {
        /// The operator (`"sample_pairs"`, `"al_matcher"`, ...).
        op: &'static str,
        /// The parameter name.
        field: &'static str,
        /// Why the value is invalid.
        reason: String,
    },
    /// A blocking rule violates the `select_opt_seq` →
    /// `apply_blocking_rules` contract.
    MalformedRule {
        /// Index of the rule in the sequence.
        rule: usize,
        /// What is wrong with it.
        issue: RuleIssue,
    },
    /// An index filter (derived from a rule predicate, or forced via
    /// [`FalconConfig::force_filters`]) fails a recall-safety proof
    /// obligation: building it could prune pairs that satisfy its
    /// predicate, i.e. blocking would no longer be lossless.
    UnsafeFilter {
        /// Blocking-feature index the filter is attached to.
        feature: usize,
        /// The failed obligation, rendered
        /// ([`falcon_index::Obligation::describe`]).
        obligation: String,
        /// Debug rendering of the offending filter spec.
        detail: String,
    },
}

/// The specific defect of a [`PlanAnalysisError::MalformedRule`].
#[derive(Debug, Clone, PartialEq)]
pub enum RuleIssue {
    /// The rule has no predicates — it would drop every pair.
    NoPredicates,
    /// A predicate references a feature index outside the blocking arity.
    FeatureOutOfRange {
        /// The referenced feature index.
        feature: usize,
        /// The blocking-feature arity.
        arity: usize,
    },
    /// A predicate threshold is NaN or infinite.
    NonFiniteThreshold {
        /// The feature the predicate tests.
        feature: usize,
    },
}

impl fmt::Display for PlanAnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTable { table } => write!(f, "input table {table} is empty"),
            Self::NoFeatures { stage } => {
                write!(
                    f,
                    "feature generation produced no {stage} features \
                     (tables share no comparable attributes)"
                )
            }
            Self::InvalidClusterConfig { field } => {
                write!(f, "cluster config field {field} must be nonzero")
            }
            Self::PairBudgetExceeded {
                pairs,
                budget,
                cause,
            } => write!(
                f,
                "{cause} enumerates {pairs} pairs, over the max_pairs budget of {budget}"
            ),
            Self::MemoryBudgetExceeded {
                stage,
                required,
                budget,
            } => write!(
                f,
                "{stage} needs ~{required} bytes but each mapper has {budget}"
            ),
            Self::InvalidOperatorConfig { op, field, reason } => {
                write!(f, "{op}.{field}: {reason}")
            }
            Self::MalformedRule { rule, issue } => {
                write!(f, "blocking rule {rule}: ")?;
                match issue {
                    RuleIssue::NoPredicates => {
                        write!(f, "has no predicates (would drop every pair)")
                    }
                    RuleIssue::FeatureOutOfRange { feature, arity } => write!(
                        f,
                        "predicate references feature {feature} but blocking arity is {arity}"
                    ),
                    RuleIssue::NonFiniteThreshold { feature } => {
                        write!(
                            f,
                            "predicate on feature {feature} has a non-finite threshold"
                        )
                    }
                }
            }
            Self::UnsafeFilter {
                feature,
                obligation,
                detail,
            } => write!(
                f,
                "recall-unsafe filter on feature {feature}: {detail} \
                 (obligation not met: {obligation})"
            ),
        }
    }
}

impl std::error::Error for PlanAnalysisError {}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The plan runs, but part of it is provably useless (dead predicate,
    /// unreachable rule or stage) — usually a sign the rule learner or
    /// the configuration drifted.
    Warning,
    /// The plan is rejected; a matching [`PlanAnalysisError`] is also
    /// produced.
    Error,
}

/// Where in the plan a [`Diagnostic`] points: the plan-level analogue of
/// a source span. Each coordinate is present when the diagnostic is that
/// specific.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanSpan {
    /// Rule index in the blocking sequence.
    pub rule: Option<usize>,
    /// Predicate index within the rule.
    pub predicate: Option<usize>,
    /// Blocking-feature index the predicate tests.
    pub feature: Option<usize>,
    /// Human-readable anchor (feature name, spec rendering, stage name).
    pub detail: String,
}

impl fmt::Display for PlanSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if let Some(r) = self.rule {
            write!(f, "rule {r}")?;
            wrote = true;
        }
        if let Some(p) = self.predicate {
            if wrote {
                write!(f, " / ")?;
            }
            write!(f, "predicate {p}")?;
            wrote = true;
        }
        if let Some(ft) = self.feature {
            if wrote {
                write!(f, " / ")?;
            }
            write!(f, "feature {ft}")?;
            wrote = true;
        }
        if !self.detail.is_empty() {
            if wrote {
                write!(f, " ({})", self.detail)?;
            } else {
                write!(f, "{}", self.detail)?;
            }
        }
        Ok(())
    }
}

/// A typed, span-carrying finding of the static plan verifier, surfaced
/// by `falcon plan check --explain`. Errors mirror a
/// [`PlanAnalysisError`]; warnings flag provably useless plan parts that
/// do not make the plan unrunnable.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`dead-predicate`,
    /// `contradictory-rule`, `unreachable-rule`, `recall-unsafe-filter`,
    /// `forced-filter-mismatch`, `unreachable-stage`, ...).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Where in the plan.
    pub span: PlanSpan,
    /// One-line statement of the finding.
    pub message: String,
    /// Why it holds and what to do about it (`--explain` text).
    pub explain: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}] {}: {}", self.code, self.span, self.message)
    }
}

/// The result of pre-flight analysis: the plan that would run, the sizes
/// the decision was based on, and every defect found.
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    /// The plan template the driver would execute.
    pub plan: PlanKind,
    /// `|A| * |B|`.
    pub pairs: u128,
    /// Number of blocking features the generator would produce.
    pub blocking_features: usize,
    /// Number of matching features the generator would produce.
    pub matching_features: usize,
    /// All defects, in detection order; empty means the plan is runnable.
    pub errors: Vec<PlanAnalysisError>,
    /// Span-carrying findings (errors *and* warnings) from the static
    /// verifier, for `falcon plan check --explain`.
    pub diagnostics: Vec<Diagnostic>,
}

impl PlanAnalysis {
    /// True when no defect was found (warnings do not block a run).
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// The warnings among [`PlanAnalysis::diagnostics`].
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }
}

/// The value range a similarity function can produce on non-missing
/// inputs (missing values evaluate as NaN and are handled by the
/// predicates' `nan_is_high` orientation).
fn sim_range(sim: SimFunction) -> (f64, f64) {
    match sim {
        SimFunction::AbsDiff => (0.0, f64::INFINITY),
        // `2|a-b| / (|a|+|b|)` peaks at 2 for opposite-sign values.
        SimFunction::RelDiff => (0.0, 2.0),
        _ => (0.0, 1.0),
    }
}

/// Validate the cluster description alone.
pub fn check_cluster(cluster: &ClusterConfig) -> Vec<PlanAnalysisError> {
    let mut errors = Vec::new();
    let fields: [(&'static str, usize); 5] = [
        ("nodes", cluster.nodes),
        ("map_slots_per_node", cluster.map_slots_per_node),
        ("reduce_slots_per_node", cluster.reduce_slots_per_node),
        ("mapper_memory_bytes", cluster.mapper_memory_bytes),
        ("reducer_memory_bytes", cluster.reducer_memory_bytes),
    ];
    for (field, value) in fields {
        if value == 0 {
            errors.push(PlanAnalysisError::InvalidClusterConfig { field });
        }
    }
    errors
}

/// Validate a concrete rule sequence against the blocking-feature arity:
/// the `select_opt_seq` → `apply_blocking_rules` contract.
pub fn check_rule_sequence(seq: &RuleSequence, arity: usize) -> Vec<PlanAnalysisError> {
    let mut errors = Vec::new();
    for (i, rule) in seq.rules.iter().enumerate() {
        if rule.predicates.is_empty() {
            errors.push(PlanAnalysisError::MalformedRule {
                rule: i,
                issue: RuleIssue::NoPredicates,
            });
        }
        for p in &rule.predicates {
            if p.feature >= arity {
                errors.push(PlanAnalysisError::MalformedRule {
                    rule: i,
                    issue: RuleIssue::FeatureOutOfRange {
                        feature: p.feature,
                        arity,
                    },
                });
            }
            if !p.threshold.is_finite() {
                errors.push(PlanAnalysisError::MalformedRule {
                    rule: i,
                    issue: RuleIssue::NonFiniteThreshold { feature: p.feature },
                });
            }
        }
    }
    errors
}

/// Statically verify a concrete rule sequence against the blocking
/// feature set. Extends [`check_rule_sequence`]'s shape contract with:
///
/// * **recall-safety proof obligations** on every index filter the
///   sequence derives ([`FilterSpec::obligations`]) — failures are hard
///   errors, since building such a filter could prune pairs that satisfy
///   its predicate (exactly the property `falcon-index/tests/lossless.rs`
///   checks dynamically);
/// * **dead / always-true predicates** — a predicate no feature value
///   (including missing ⇒ NaN) can satisfy makes its whole rule dead; a
///   predicate every value satisfies is redundant; both are warnings;
/// * **contradictory rules** — a `> t₁ ∧ <= t₂` pair with `t₂ <= t₁` on
///   one feature that no value satisfies (warning: the rule never drops);
/// * **unreachable rules** — a rule whose drop-set is contained in an
///   earlier rule's (every earlier predicate is implied by one of the
///   later rule's), so it never drops a pair the sequence keeps.
///
/// Returns `(errors, diagnostics)`; the diagnostics carry plan spans and
/// `--explain` text and include an entry mirroring every error.
pub fn verify_rule_sequence(
    seq: &RuleSequence,
    features: &FeatureSet,
) -> (Vec<PlanAnalysisError>, Vec<Diagnostic>) {
    verify_rule_sequence_with(seq, features, &crate::indexing::PreFilterConfig::default())
}

/// [`verify_rule_sequence`] under an explicit signature pre-filter
/// configuration: every derived set-similarity filter is wrapped exactly
/// as `apply_blocking_rules` will wrap it, so an unprovable signature
/// configuration (e.g. a zero or oversized width) is rejected *here*,
/// before any index is built from it.
pub fn verify_rule_sequence_with(
    seq: &RuleSequence,
    features: &FeatureSet,
    prefilter: &crate::indexing::PreFilterConfig,
) -> (Vec<PlanAnalysisError>, Vec<Diagnostic>) {
    let mut errors = check_rule_sequence(seq, features.len());
    let mut diags: Vec<Diagnostic> = errors
        .iter()
        .map(|e| {
            let rule = match e {
                PlanAnalysisError::MalformedRule { rule, .. } => Some(*rule),
                _ => None,
            };
            Diagnostic {
                code: "malformed-rule",
                severity: Severity::Error,
                span: PlanSpan {
                    rule,
                    ..PlanSpan::default()
                },
                message: e.to_string(),
                explain: "The optimizer's rule sequence violates the \
                          select_opt_seq -> apply_blocking_rules contract; \
                          applying it would panic or drop pairs arbitrarily."
                    .into(),
            }
        })
        .collect();

    // A rule drops a pair iff ALL its predicates are satisfied, so one
    // unsatisfiable predicate kills the whole rule.
    let mut rule_dead = vec![false; seq.rules.len()];
    for (i, rule) in seq.rules.iter().enumerate() {
        for (j, p) in rule.predicates.iter().enumerate() {
            if p.feature >= features.len() || !p.threshold.is_finite() {
                continue; // already a hard error above
            }
            let f = features.get(p.feature);
            let (lo, hi) = sim_range(f.sim);
            let span = |detail: String| PlanSpan {
                rule: Some(i),
                predicate: Some(j),
                feature: Some(p.feature),
                detail,
            };
            // Satisfiability over the feature's value range [lo, hi] plus
            // NaN (missing) under the predicate's nan_is_high orientation.
            let (dead, always) = match p.op {
                SplitOp::Gt => (
                    p.threshold >= hi && !p.nan_is_high,
                    p.threshold < lo && p.nan_is_high,
                ),
                SplitOp::Le => (
                    p.threshold < lo && p.nan_is_high,
                    p.threshold >= hi && !p.nan_is_high,
                ),
            };
            if dead {
                rule_dead[i] = true;
                diags.push(Diagnostic {
                    code: "dead-predicate",
                    severity: Severity::Warning,
                    span: span(format!("{} {} {}", f.name, op_str(p.op), p.threshold)),
                    message: format!(
                        "no value of {} (range [{lo}, {hi}]) satisfies `{} {}`, \
                         so rule {i} never drops a pair",
                        f.name,
                        op_str(p.op),
                        p.threshold
                    ),
                    explain: "The predicate compares a similarity value against a \
                              threshold outside the measure's value range, and its \
                              missing-value orientation rejects NaN too; the \
                              conjunction containing it can never fire. The rule is \
                              dead weight from the learner — harmless, but it \
                              suggests the forest was trained on degenerate labels."
                        .into(),
                });
            } else if always {
                diags.push(Diagnostic {
                    code: "always-true-predicate",
                    severity: Severity::Warning,
                    span: span(format!("{} {} {}", f.name, op_str(p.op), p.threshold)),
                    message: format!(
                        "every value of {} (range [{lo}, {hi}]) satisfies `{} {}`; \
                         the predicate never constrains rule {i}",
                        f.name,
                        op_str(p.op),
                        p.threshold
                    ),
                    explain: "The threshold lies outside the measure's value range \
                              on the accepting side and missing values satisfy it \
                              too, so the predicate is vacuous; dropping it leaves \
                              the rule's drop-set unchanged."
                        .into(),
                });
            }
        }
        // Gt t1 ∧ Le t2 with t2 <= t1 on one feature: no finite value
        // satisfies both, and NaN satisfies both only if the two
        // predicates disagree on the feature's orientation.
        for (j, gt) in rule.predicates.iter().enumerate() {
            if gt.op != SplitOp::Gt || !gt.threshold.is_finite() {
                continue;
            }
            for le in &rule.predicates {
                if le.op != SplitOp::Le
                    || le.feature != gt.feature
                    || !le.threshold.is_finite()
                    || le.threshold > gt.threshold
                {
                    continue;
                }
                if gt.nan_is_high && !le.nan_is_high {
                    continue; // NaN satisfies both: rule still reachable
                }
                rule_dead[i] = true;
                let f_name = if gt.feature < features.len() {
                    features.get(gt.feature).name.clone()
                } else {
                    format!("feature {}", gt.feature)
                };
                diags.push(Diagnostic {
                    code: "contradictory-rule",
                    severity: Severity::Warning,
                    span: PlanSpan {
                        rule: Some(i),
                        predicate: Some(j),
                        feature: Some(gt.feature),
                        detail: format!("{f_name} > {} and <= {}", gt.threshold, le.threshold),
                    },
                    message: format!(
                        "rule {i} requires {f_name} > {} and <= {} simultaneously; \
                         it never drops a pair",
                        gt.threshold, le.threshold
                    ),
                    explain: "The conjunction constrains one feature to an empty \
                              interval and its missing-value orientations reject \
                              NaN as well, so the rule cannot fire; the learner \
                              produced a contradiction (rule simplification keeps \
                              Gt/Le pairs, so this survives Optimization 3)."
                        .into(),
                });
            }
        }
    }

    // Rule j is unreachable when some earlier live rule i drops a
    // superset: every predicate of rule i is implied by one of rule j's.
    for j in 1..seq.rules.len() {
        if rule_dead[j] || seq.rules[j].predicates.is_empty() {
            continue;
        }
        let implied = |p: &crate::rules::Predicate| {
            seq.rules[j].predicates.iter().any(|q| {
                q.feature == p.feature
                    && q.op == p.op
                    && q.nan_is_high == p.nan_is_high
                    && match q.op {
                        SplitOp::Gt => q.threshold >= p.threshold,
                        SplitOp::Le => q.threshold <= p.threshold,
                    }
            })
        };
        let Some(i) = (0..j).find(|&i| {
            !rule_dead[i]
                && !seq.rules[i].predicates.is_empty()
                && seq.rules[i].predicates.iter().all(implied)
        }) else {
            continue;
        };
        rule_dead[j] = true; // drops nothing new; don't chain off it
        diags.push(Diagnostic {
            code: "unreachable-rule",
            severity: Severity::Warning,
            span: PlanSpan {
                rule: Some(j),
                detail: format!("subsumed by rule {i}"),
                ..PlanSpan::default()
            },
            message: format!(
                "every pair rule {j} drops is already dropped by rule {i}; \
                 rule {j} never takes effect"
            ),
            explain: "Each predicate of the earlier rule is implied by one of \
                      this rule's (same feature, operator and missing-value \
                      orientation, with an equal-or-tighter threshold), so this \
                      rule's drop-set is contained in the earlier one's. It \
                      costs index builds and evaluation without changing the \
                      candidate set."
                .into(),
        });
    }

    // Recall-safety obligations on every filter the sequence derives —
    // the static twin of falcon-index/tests/lossless.rs.
    for (i, rule) in seq.rules.iter().enumerate() {
        for (j, p) in rule.predicates.iter().enumerate() {
            if p.feature >= features.len() {
                continue;
            }
            let q = p.complement();
            let f = features.get(q.feature);
            let Some(spec) =
                FilterSpec::from_predicate(f.sim, &f.a_attr, q.op == SplitOp::Gt, q.threshold)
            else {
                continue; // unfilterable predicate: nothing is pruned
            };
            // Verify the spec as it will actually be built: signature
            // wrapping applied when the pre-filter is enabled.
            let spec = if prefilter.enabled {
                spec.with_signature(prefilter.words)
            } else {
                spec
            };
            if let Err(ob) = spec.verify() {
                errors.push(PlanAnalysisError::UnsafeFilter {
                    feature: q.feature,
                    obligation: ob.to_string(),
                    detail: format!("{spec:?}"),
                });
                diags.push(Diagnostic {
                    code: "recall-unsafe-filter",
                    severity: Severity::Error,
                    span: PlanSpan {
                        rule: Some(i),
                        predicate: Some(j),
                        feature: Some(q.feature),
                        detail: format!("{spec:?}"),
                    },
                    message: format!(
                        "the index filter derived for {} fails its recall-safety \
                         obligation: {ob}",
                        f.name
                    ),
                    explain: format!(
                        "Probing this filter could miss pairs that satisfy the \
                         predicate, so blocking would silently lose recall — the \
                         exact losslessness property falcon-index/tests/lossless.rs \
                         checks dynamically. Required: {ob}."
                    ),
                });
            }
        }
    }
    (errors, diags)
}

fn op_str(op: SplitOp) -> &'static str {
    match op {
        SplitOp::Gt => ">",
        SplitOp::Le => "<=",
    }
}

/// Verify the [`FalconConfig::force_filters`] overrides against the
/// blocking feature set: each must reference a real feature, match that
/// feature's derivable filter kind and indexed attribute (otherwise it
/// can never substitute — a warning), and discharge its recall-safety
/// obligations (otherwise a hard error).
pub fn check_forced_filters(
    forced: &[ForcedFilter],
    features: &FeatureSet,
    errors: &mut Vec<PlanAnalysisError>,
    diags: &mut Vec<Diagnostic>,
) {
    for ff in forced {
        if ff.feature >= features.len() {
            errors.push(PlanAnalysisError::InvalidOperatorConfig {
                op: "force_filters",
                field: "feature",
                reason: format!(
                    "references blocking feature {} but arity is {}",
                    ff.feature,
                    features.len()
                ),
            });
            diags.push(Diagnostic {
                code: "forced-filter-mismatch",
                severity: Severity::Error,
                span: PlanSpan {
                    feature: Some(ff.feature),
                    detail: format!("{:?}", ff.spec),
                    ..PlanSpan::default()
                },
                message: format!(
                    "forced filter targets feature {} but only {} blocking \
                     features exist",
                    ff.feature,
                    features.len()
                ),
                explain: "Feature indexes are assigned by the deterministic \
                          feature generator; run `falcon plan check --explain` \
                          to list them."
                    .into(),
            });
            continue;
        }
        let f = features.get(ff.feature);
        if let Err(ob) = ff.spec.verify() {
            errors.push(PlanAnalysisError::UnsafeFilter {
                feature: ff.feature,
                obligation: ob.to_string(),
                detail: format!("{:?}", ff.spec),
            });
            diags.push(Diagnostic {
                code: "recall-unsafe-filter",
                severity: Severity::Error,
                span: PlanSpan {
                    feature: Some(ff.feature),
                    detail: format!("{:?}", ff.spec),
                    ..PlanSpan::default()
                },
                message: format!(
                    "forced filter for {} fails its recall-safety obligation: {ob}",
                    f.name
                ),
                explain: format!(
                    "A filter that violates this obligation can prune pairs that \
                     satisfy its predicate, making blocking lossy — the property \
                     falcon-index/tests/lossless.rs checks dynamically, rejected \
                     here before any index is built or crowd question issued. \
                     Required: {ob}."
                ),
            });
            continue;
        }
        // Kind/attribute compatibility: an incompatible override is
        // recall-safe (it is simply never substituted) but useless.
        let compatible = ff.spec.a_attr() == f.a_attr
            && match (&ff.spec, f.sim) {
                (FilterSpec::Equals { .. }, SimFunction::ExactMatch) => true,
                (FilterSpec::Range { relative, .. }, SimFunction::AbsDiff) => !relative,
                (FilterSpec::Range { relative, .. }, SimFunction::RelDiff) => *relative,
                (FilterSpec::EditSim { .. }, SimFunction::Levenshtein) => true,
                (FilterSpec::SetSim { sim, .. }, fsim) => *sim == fsim,
                _ => false,
            };
        if !compatible {
            diags.push(Diagnostic {
                code: "forced-filter-mismatch",
                severity: Severity::Warning,
                span: PlanSpan {
                    feature: Some(ff.feature),
                    detail: format!("{:?}", ff.spec),
                    ..PlanSpan::default()
                },
                message: format!(
                    "forced filter kind does not match feature {} ({}); it will \
                     never be substituted",
                    ff.feature, f.name
                ),
                explain: "Substitution requires the override to index the same \
                          attribute with the same filter kind (and set measure) \
                          the feature derives; otherwise the derived filter is \
                          kept and the override is inert."
                    .into(),
            });
        }
    }
}

fn check_operator_configs(cfg: &FalconConfig, errors: &mut Vec<PlanAnalysisError>) {
    let mut bad = |op: &'static str, field: &'static str, reason: String| {
        errors.push(PlanAnalysisError::InvalidOperatorConfig { op, field, reason });
    };
    if cfg.sample_size == 0 {
        bad("sample_pairs", "sample_size", "must be positive".into());
    }
    if cfg.sample_fanout < 2 {
        bad(
            "sample_pairs",
            "sample_fanout",
            format!("fan-out y must be >= 2, got {}", cfg.sample_fanout),
        );
    }
    if cfg.al.max_iterations == 0 {
        bad("al_matcher", "max_iterations", "must be positive".into());
    }
    if cfg.al.batch == 0 {
        bad("al_matcher", "batch", "must be positive".into());
    }
    if !(cfg.al.convergence_eps.is_finite() && cfg.al.convergence_eps >= 0.0) {
        bad(
            "al_matcher",
            "convergence_eps",
            format!("must be finite and >= 0, got {}", cfg.al.convergence_eps),
        );
    }
    if cfg.eval.batch == 0 {
        bad("eval_rules", "batch", "must be positive".into());
    }
    if !(cfg.eval.p_min > 0.0 && cfg.eval.p_min <= 1.0) {
        bad(
            "eval_rules",
            "p_min",
            format!("must be in (0, 1], got {}", cfg.eval.p_min),
        );
    }
    if !(cfg.eval.eps_max > 0.0 && cfg.eval.eps_max.is_finite()) {
        bad(
            "eval_rules",
            "eps_max",
            format!("must be positive and finite, got {}", cfg.eval.eps_max),
        );
    }
    for (field, value) in [
        ("alpha", cfg.seq.alpha),
        ("beta", cfg.seq.beta),
        ("gamma", cfg.seq.gamma),
    ] {
        if !(value.is_finite() && value >= 0.0) {
            bad(
                "select_opt_seq",
                field,
                format!("weight must be finite and >= 0, got {value}"),
            );
        }
    }
    if cfg.seq.optimizer_bits == 0 {
        bad(
            "select_opt_seq",
            "optimizer_bits",
            "must be positive".into(),
        );
    }
    if !(cfg.greedy_ratio > 0.0 && cfg.greedy_ratio <= 1.0) {
        bad(
            "apply_blocking_rules",
            "greedy_ratio",
            format!("must be in (0, 1], got {}", cfg.greedy_ratio),
        );
    }
    if cfg.max_pairs == 0 {
        bad(
            "apply_blocking_rules",
            "max_pairs",
            "must be positive".into(),
        );
    }
}

/// Analyze a prospective run of `Falcon::run(a, b, ...)` under `cfg`.
///
/// Performs the feature-generation scan (cheap, no jobs) to resolve the
/// plan the driver would choose, then checks every statically decidable
/// contract. The driver calls this as a pre-flight gate; the
/// `falcon plan check` subcommand exposes it directly.
pub fn analyze(a: &Table, b: &Table, cfg: &FalconConfig) -> PlanAnalysis {
    let mut errors = Vec::new();
    let mut diagnostics = Vec::new();
    if a.is_empty() {
        errors.push(PlanAnalysisError::EmptyTable { table: "A" });
    }
    if b.is_empty() {
        errors.push(PlanAnalysisError::EmptyTable { table: "B" });
    }
    errors.extend(check_cluster(&cfg.cluster));
    check_operator_configs(cfg, &mut errors);

    let lib = generate_features(a, b);
    let pairs = a.len() as u128 * b.len() as u128;
    let plan = cfg.force_plan.unwrap_or_else(|| {
        choose_plan(
            a,
            b,
            lib.matching.len(),
            cfg.cluster.mapper_memory_bytes,
            cfg.max_pairs,
        )
    });

    if !a.is_empty() && !b.is_empty() {
        if lib.matching.is_empty() {
            errors.push(PlanAnalysisError::NoFeatures { stage: "matching" });
        }
        if plan == PlanKind::BlockAndMatch && lib.blocking.is_empty() {
            errors.push(PlanAnalysisError::NoFeatures { stage: "blocking" });
        }
    }

    // Plan-template feasibility. `choose_plan` only picks MatchOnly when
    // both budgets hold, so these fire for *forced* plans/operators.
    if plan == PlanKind::MatchOnly {
        if pairs > cfg.max_pairs {
            errors.push(PlanAnalysisError::PairBudgetExceeded {
                pairs,
                budget: cfg.max_pairs,
                cause: "match-only plan",
            });
        }
        let fv_bytes = estimate_fv_bytes(a, b, lib.matching.len());
        if fv_bytes > cfg.cluster.mapper_memory_bytes as u128 {
            errors.push(PlanAnalysisError::MemoryBudgetExceeded {
                stage: "match-only feature vectors",
                required: fv_bytes,
                budget: cfg.cluster.mapper_memory_bytes as u128,
            });
        }
    }
    if plan == PlanKind::BlockAndMatch {
        match cfg.force_physical {
            Some(PhysicalOp::MapSide) => {
                let table_bytes = estimate_table_bytes(a) as u128;
                if table_bytes > cfg.cluster.mapper_memory_bytes as u128 {
                    errors.push(PlanAnalysisError::MemoryBudgetExceeded {
                        stage: "map_side broadcast of A",
                        required: table_bytes,
                        budget: cfg.cluster.mapper_memory_bytes as u128,
                    });
                }
                if pairs > cfg.max_pairs {
                    errors.push(PlanAnalysisError::PairBudgetExceeded {
                        pairs,
                        budget: cfg.max_pairs,
                        cause: "map_side",
                    });
                }
            }
            Some(PhysicalOp::ReduceSplit) if pairs > cfg.max_pairs => {
                errors.push(PlanAnalysisError::PairBudgetExceeded {
                    pairs,
                    budget: cfg.max_pairs,
                    cause: "reduce_split",
                });
            }
            _ => {}
        }
    }

    // Forced index-filter overrides: recall-safety obligations (errors)
    // and kind compatibility (warnings).
    check_forced_filters(
        &cfg.force_filters,
        &lib.blocking,
        &mut errors,
        &mut diagnostics,
    );

    // Unreachable stage: blocking-only configuration under a plan with no
    // blocking stage is inert.
    if plan == PlanKind::MatchOnly {
        let inert: &[(&str, bool)] = &[
            ("force_filters", !cfg.force_filters.is_empty()),
            ("force_physical", cfg.force_physical.is_some()),
        ];
        for (field, _) in inert.iter().filter(|(_, set)| *set) {
            diagnostics.push(Diagnostic {
                code: "unreachable-stage",
                severity: Severity::Warning,
                span: PlanSpan {
                    detail: format!("{field} under a match-only plan"),
                    ..PlanSpan::default()
                },
                message: format!(
                    "`{field}` configures the blocking stage, but the \
                     match-only plan has none; it will be ignored"
                ),
                explain: "The match-only plan enumerates A x B directly and \
                          never builds blocking indexes or runs a physical \
                          blocking operator, so blocking-stage configuration \
                          cannot take effect. Force a block-and-match plan or \
                          drop the setting."
                    .into(),
            });
        }
    }

    PlanAnalysis {
        plan,
        pairs,
        blocking_features: lib.blocking.len(),
        matching_features: lib.matching.len(),
        errors,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Predicate, Rule};
    use falcon_forest::SplitOp;
    use falcon_table::{AttrType, Schema, Value};

    fn tables(n: usize) -> (Table, Table) {
        let schema = Schema::new([("title", AttrType::Str), ("price", AttrType::Num)]);
        let rows = |n: usize| {
            (0..n).map(move |i| {
                vec![
                    Value::str(format!("widget model {i}")),
                    Value::num(i as f64),
                ]
            })
        };
        (
            Table::new("a", schema.clone(), rows(n)),
            Table::new("b", schema, rows(n)),
        )
    }

    #[test]
    fn default_config_on_real_tables_is_accepted() {
        let (a, b) = tables(20);
        let analysis = analyze(&a, &b, &FalconConfig::default());
        assert!(analysis.is_ok(), "unexpected errors: {:?}", analysis.errors);
        assert_eq!(analysis.pairs, 400);
        assert!(analysis.blocking_features > 0);
        assert!(analysis.matching_features > 0);
    }

    #[test]
    fn empty_tables_are_rejected() {
        let (a, b) = tables(5);
        let empty = Table::new("e", a.schema().clone(), Vec::<Vec<Value>>::new());
        let analysis = analyze(&empty, &b, &FalconConfig::default());
        assert!(analysis
            .errors
            .contains(&PlanAnalysisError::EmptyTable { table: "A" }));
        let analysis = analyze(&a, &empty, &FalconConfig::default());
        assert!(analysis
            .errors
            .contains(&PlanAnalysisError::EmptyTable { table: "B" }));
    }

    #[test]
    fn zero_cluster_fields_are_rejected() {
        let (a, b) = tables(5);
        let mut cfg = FalconConfig::default();
        cfg.cluster.nodes = 0;
        cfg.cluster.mapper_memory_bytes = 0;
        let analysis = analyze(&a, &b, &cfg);
        assert!(analysis
            .errors
            .contains(&PlanAnalysisError::InvalidClusterConfig { field: "nodes" }));
        assert!(analysis
            .errors
            .contains(&PlanAnalysisError::InvalidClusterConfig {
                field: "mapper_memory_bytes"
            }));
    }

    #[test]
    fn forced_match_only_over_pair_budget_is_rejected() {
        let (a, b) = tables(30);
        let cfg = FalconConfig {
            force_plan: Some(PlanKind::MatchOnly),
            max_pairs: 100, // 30 * 30 = 900 > 100
            ..FalconConfig::default()
        };
        let analysis = analyze(&a, &b, &cfg);
        assert!(analysis.errors.iter().any(|e| matches!(
            e,
            PlanAnalysisError::PairBudgetExceeded {
                pairs: 900,
                budget: 100,
                cause: "match-only plan",
            }
        )));
    }

    #[test]
    fn forced_map_side_without_memory_is_rejected() {
        let (a, b) = tables(30);
        let mut cfg = FalconConfig {
            force_plan: Some(PlanKind::BlockAndMatch),
            force_physical: Some(PhysicalOp::MapSide),
            ..FalconConfig::default()
        };
        cfg.cluster.mapper_memory_bytes = 1; // A cannot be broadcast
        let analysis = analyze(&a, &b, &cfg);
        assert!(analysis.errors.iter().any(|e| matches!(
            e,
            PlanAnalysisError::MemoryBudgetExceeded {
                stage: "map_side broadcast of A",
                ..
            }
        )));
    }

    #[test]
    fn forced_reduce_split_over_pair_budget_is_rejected() {
        let (a, b) = tables(30);
        let cfg = FalconConfig {
            force_plan: Some(PlanKind::BlockAndMatch),
            force_physical: Some(PhysicalOp::ReduceSplit),
            max_pairs: 10,
            ..FalconConfig::default()
        };
        let analysis = analyze(&a, &b, &cfg);
        assert!(analysis.errors.iter().any(|e| matches!(
            e,
            PlanAnalysisError::PairBudgetExceeded {
                cause: "reduce_split",
                ..
            }
        )));
    }

    #[test]
    fn bad_operator_configs_are_rejected_with_the_right_fields() {
        let (a, b) = tables(5);
        let mut cfg = FalconConfig {
            sample_size: 0,
            sample_fanout: 1,
            greedy_ratio: 0.0,
            ..FalconConfig::default()
        };
        cfg.al.batch = 0;
        cfg.eval.p_min = 1.5;
        cfg.seq.alpha = f64::NAN;
        let analysis = analyze(&a, &b, &cfg);
        let fields: Vec<(&str, &str)> = analysis
            .errors
            .iter()
            .filter_map(|e| match e {
                PlanAnalysisError::InvalidOperatorConfig { op, field, .. } => Some((*op, *field)),
                _ => None,
            })
            .collect();
        for expected in [
            ("sample_pairs", "sample_size"),
            ("sample_pairs", "sample_fanout"),
            ("al_matcher", "batch"),
            ("eval_rules", "p_min"),
            ("select_opt_seq", "alpha"),
            ("apply_blocking_rules", "greedy_ratio"),
        ] {
            assert!(
                fields.contains(&expected),
                "missing {expected:?} in {fields:?}"
            );
        }
    }

    #[test]
    fn rule_sequence_contract_violations_are_typed() {
        let pred = |feature: usize, threshold: f64| Predicate {
            feature,
            op: SplitOp::Le,
            threshold,
            nan_is_high: true,
        };
        let seq = RuleSequence::new(vec![
            Rule { predicates: vec![] }, // no predicates
            Rule {
                predicates: vec![pred(7, 0.5)],
            }, // feature out of range
            Rule {
                predicates: vec![pred(0, f64::NAN)],
            }, // non-finite threshold
        ]);
        let errors = check_rule_sequence(&seq, 3);
        assert_eq!(errors.len(), 3);
        assert_eq!(
            errors[0],
            PlanAnalysisError::MalformedRule {
                rule: 0,
                issue: RuleIssue::NoPredicates
            }
        );
        assert_eq!(
            errors[1],
            PlanAnalysisError::MalformedRule {
                rule: 1,
                issue: RuleIssue::FeatureOutOfRange {
                    feature: 7,
                    arity: 3
                }
            }
        );
        assert_eq!(
            errors[2],
            PlanAnalysisError::MalformedRule {
                rule: 2,
                issue: RuleIssue::NonFiniteThreshold { feature: 0 }
            }
        );
    }

    #[test]
    fn well_formed_sequence_passes_the_contract() {
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![Predicate {
                feature: 2,
                op: SplitOp::Gt,
                threshold: 0.4,
                nan_is_high: false,
            }],
        }]);
        assert!(check_rule_sequence(&seq, 3).is_empty());
    }

    // ---- static verifier (verify_rule_sequence / check_forced_filters) ----

    use crate::driver::ForcedFilter;
    use falcon_textsim::Tokenizer;

    fn blocking_features() -> FeatureSet {
        let (a, b) = tables(10);
        generate_features(&a, &b).blocking
    }

    fn feature_with(features: &FeatureSet, sim: SimFunction) -> usize {
        features
            .features
            .iter()
            .position(|f| f.sim == sim)
            .expect("feature present")
    }

    fn pred(feature: usize, op: SplitOp, threshold: f64, nan_is_high: bool) -> Predicate {
        Predicate {
            feature,
            op,
            threshold,
            nan_is_high,
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn dead_predicate_on_a_unit_range_feature_is_flagged() {
        let features = blocking_features();
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        // jaccard > 1.0 with NaN low: satisfiable by nothing.
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![pred(jac, SplitOp::Gt, 1.0, false)],
        }]);
        let (errors, diags) = verify_rule_sequence(&seq, &features);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(codes(&diags), vec!["dead-predicate"], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].span.rule, Some(0));
        assert_eq!(diags[0].span.feature, Some(jac));
        // With NaN high the missing-value path still fires the rule.
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![pred(jac, SplitOp::Gt, 1.0, true)],
        }]);
        let (_, diags) = verify_rule_sequence(&seq, &features);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn always_true_predicate_is_flagged_as_vacuous() {
        let features = blocking_features();
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        // jaccard <= 1.0 with NaN low: every value (and NaN) satisfies it.
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![
                pred(jac, SplitOp::Le, 1.0, false),
                pred(jac, SplitOp::Gt, 0.4, false),
            ],
        }]);
        let (errors, diags) = verify_rule_sequence(&seq, &features);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(codes(&diags), vec!["always-true-predicate"], "{diags:?}");
    }

    #[test]
    fn abs_diff_has_an_unbounded_range() {
        let features = blocking_features();
        let abs = feature_with(&features, SimFunction::AbsDiff);
        // abs_diff > 1e12 is huge but satisfiable: no warning.
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![pred(abs, SplitOp::Gt, 1e12, false)],
        }]);
        let (errors, diags) = verify_rule_sequence(&seq, &features);
        assert!(errors.is_empty(), "{errors:?}");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn contradictory_threshold_pair_is_flagged() {
        let features = blocking_features();
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        // jaccard > 0.7 AND jaccard <= 0.3 — empty interval, same
        // orientation, so NaN cannot rescue it. (simplified() keeps both.)
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![
                pred(jac, SplitOp::Gt, 0.7, true),
                pred(jac, SplitOp::Le, 0.3, true),
            ],
        }]);
        let (errors, diags) = verify_rule_sequence(&seq, &features);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(codes(&diags), vec!["contradictory-rule"], "{diags:?}");
        assert_eq!(diags[0].span.rule, Some(0));
    }

    #[test]
    fn unreachable_rule_subsumed_by_an_earlier_one_is_flagged() {
        let features = blocking_features();
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        let seq = RuleSequence::new(vec![
            Rule {
                predicates: vec![pred(jac, SplitOp::Le, 0.5, true)],
            },
            // <= 0.3 implies <= 0.5: this rule drops a subset.
            Rule {
                predicates: vec![pred(jac, SplitOp::Le, 0.3, true)],
            },
        ]);
        let (errors, diags) = verify_rule_sequence(&seq, &features);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(codes(&diags), vec!["unreachable-rule"], "{diags:?}");
        assert_eq!(diags[0].span.rule, Some(1));
        // The reverse order is NOT subsumption: <= 0.5 drops more.
        let seq = RuleSequence::new(vec![
            Rule {
                predicates: vec![pred(jac, SplitOp::Le, 0.3, true)],
            },
            Rule {
                predicates: vec![pred(jac, SplitOp::Le, 0.5, true)],
            },
        ]);
        let (_, diags) = verify_rule_sequence(&seq, &features);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn derived_negative_range_width_is_a_recall_safety_error() {
        let features = blocking_features();
        let abs = feature_with(&features, SimFunction::AbsDiff);
        // Rule predicate abs_diff > -2 drops; complement abs_diff <= -2
        // derives Range{width: -2} — finite (passes the shape check) but
        // recall-unsafe: missing-value pairs satisfy the predicate yet the
        // numeric window matches nothing.
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![pred(abs, SplitOp::Gt, -2.0, false)],
        }]);
        let (errors, diags) = verify_rule_sequence(&seq, &features);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(matches!(
            &errors[0],
            PlanAnalysisError::UnsafeFilter { feature, .. } if *feature == abs
        ));
        assert!(codes(&diags).contains(&"recall-unsafe-filter"), "{diags:?}");
        let d = diags
            .iter()
            .find(|d| d.code == "recall-unsafe-filter")
            .expect("diagnostic");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.feature, Some(abs));
    }

    #[test]
    fn unprovable_signature_width_is_a_recall_safety_error() {
        use crate::indexing::PreFilterConfig;
        let features = blocking_features();
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![pred(jac, SplitOp::Le, 0.5, true)],
        }]);
        // The default (valid) pre-filter config passes.
        let (errors, _) = verify_rule_sequence_with(&seq, &features, &PreFilterConfig::default());
        assert!(errors.is_empty(), "{errors:?}");
        // Zero-width and oversized signatures cannot be proved lossless:
        // rejected before anything is built.
        for words in [0usize, 65, 1 << 20] {
            let cfg = PreFilterConfig {
                enabled: true,
                words,
            };
            let (errors, diags) = verify_rule_sequence_with(&seq, &features, &cfg);
            assert_eq!(errors.len(), 1, "words={words}: {errors:?}");
            assert!(
                matches!(
                    &errors[0],
                    PlanAnalysisError::UnsafeFilter { feature, .. } if *feature == jac
                ),
                "words={words}: {errors:?}"
            );
            assert!(codes(&diags).contains(&"recall-unsafe-filter"), "{diags:?}");
        }
        // Disabling the pre-filter makes the width irrelevant.
        let cfg = PreFilterConfig {
            enabled: false,
            words: 0,
        };
        let (errors, _) = verify_rule_sequence_with(&seq, &features, &cfg);
        assert!(errors.is_empty(), "{errors:?}");
        // Non-set-similarity filters are never wrapped, so an invalid
        // width cannot poison them.
        let abs = feature_with(&features, SimFunction::ExactMatch);
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![pred(abs, SplitOp::Le, 0.5, true)],
        }]);
        let cfg = PreFilterConfig {
            enabled: true,
            words: 0,
        };
        let (errors, _) = verify_rule_sequence_with(&seq, &features, &cfg);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn forced_filter_with_nonpositive_threshold_is_rejected() {
        let features = blocking_features();
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        let ff = ForcedFilter::for_feature(&features, jac, 0.0).expect("in range");
        let mut errors = Vec::new();
        let mut diags = Vec::new();
        check_forced_filters(&[ff], &features, &mut errors, &mut diags);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(matches!(
            &errors[0],
            PlanAnalysisError::UnsafeFilter { feature, .. } if *feature == jac
        ));
        assert_eq!(codes(&diags), vec!["recall-unsafe-filter"]);
    }

    #[test]
    fn forced_filter_out_of_range_and_kind_mismatch_are_reported() {
        let features = blocking_features();
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        let oob = ForcedFilter {
            feature: features.len() + 3,
            spec: FilterSpec::EditSim {
                a_attr: "title".into(),
                threshold: 0.5,
            },
        };
        // A safe EditSim spec forced onto a jaccard feature: inert, warned.
        let mismatch = ForcedFilter {
            feature: jac,
            spec: FilterSpec::EditSim {
                a_attr: features.get(jac).a_attr.clone(),
                threshold: 0.5,
            },
        };
        let mut errors = Vec::new();
        let mut diags = Vec::new();
        check_forced_filters(&[oob, mismatch], &features, &mut errors, &mut diags);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(
            codes(&diags),
            vec!["forced-filter-mismatch", "forced-filter-mismatch"]
        );
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[1].severity, Severity::Warning);
    }

    #[test]
    fn analyze_rejects_recall_unsafe_forced_filters() {
        let (a, b) = tables(10);
        let features = generate_features(&a, &b).blocking;
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        let cfg = FalconConfig {
            force_filters: vec![
                ForcedFilter::for_feature(&features, jac, f64::NAN).expect("in range")
            ],
            ..FalconConfig::default()
        };
        let analysis = analyze(&a, &b, &cfg);
        assert!(!analysis.is_ok());
        assert!(analysis
            .errors
            .iter()
            .any(|e| matches!(e, PlanAnalysisError::UnsafeFilter { .. })));
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.code == "recall-unsafe-filter" && d.severity == Severity::Error));
    }

    #[test]
    fn match_only_plan_with_blocking_config_warns_unreachable_stage() {
        let (a, b) = tables(5);
        let features = generate_features(&a, &b).blocking;
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        let cfg = FalconConfig {
            force_plan: Some(PlanKind::MatchOnly),
            force_physical: Some(PhysicalOp::MapSide),
            force_filters: vec![ForcedFilter::for_feature(&features, jac, 0.4).expect("in range")],
            ..FalconConfig::default()
        };
        let analysis = analyze(&a, &b, &cfg);
        assert!(analysis.is_ok(), "{:?}", analysis.errors);
        let stage_warnings: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.code == "unreachable-stage")
            .collect();
        assert_eq!(stage_warnings.len(), 2, "{:?}", analysis.diagnostics);
        assert!(stage_warnings
            .iter()
            .all(|d| d.severity == Severity::Warning));
        assert_eq!(analysis.warnings().count(), 2);
    }

    #[test]
    fn diagnostics_render_with_span_and_code() {
        let features = blocking_features();
        let jac = feature_with(&features, SimFunction::Jaccard(Tokenizer::QGram(3)));
        let seq = RuleSequence::new(vec![Rule {
            predicates: vec![pred(jac, SplitOp::Gt, 1.0, false)],
        }]);
        let (_, diags) = verify_rule_sequence(&seq, &features);
        let rendered = diags[0].to_string();
        assert!(
            rendered.starts_with("warning[dead-predicate] rule 0"),
            "{rendered}"
        );
        assert!(rendered.contains("feature"), "{rendered}");
    }
}
