//! The lint gate: the real workspace must be clean, and the seeded
//! violation fixture must trip every rule.

use falcon_lint::{scan_workspace, Rule};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/falcon-lint.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn the_workspace_is_lint_clean() {
    let violations = scan_workspace(&workspace_root()).expect("scan");
    assert!(
        violations.is_empty(),
        "workspace violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad-workspace");
    let violations = scan_workspace(&fixture).expect("scan");
    // bad_op.rs: Instant::now + thread_rng + unwrap; the waived unwrap and
    // the #[cfg(test)] module must NOT be reported.
    // bad_runner.rs: RandomState + expect.
    // bad_retry.rs: SystemTime::now (the waived twin must NOT be reported).
    // bad_iter.rs: unordered hash iteration + float sum over one (the
    // blessed count and collect-then-sort shapes must NOT be reported).
    // bad_error.rs: DataflowError construction without job/phase (the
    // match pattern must NOT be reported).
    // bad_serve_error.rs: ServeError construction without tenant/round
    // (the match pattern must NOT be reported).
    // bad_indirect.rs: Instant::now behind two levels of calls.
    let count = |rule: Rule| violations.iter().filter(|v| v.rule == rule).count();
    assert_eq!(count(Rule::NoPanic), 2, "{violations:?}");
    assert_eq!(count(Rule::NoNondeterminism), 2, "{violations:?}");
    assert_eq!(count(Rule::SimTime), 2, "{violations:?}");
    assert_eq!(count(Rule::WallClockRetry), 1, "{violations:?}");
    assert_eq!(count(Rule::HashmapIterOrder), 1, "{violations:?}");
    assert_eq!(count(Rule::FloatReduceOrder), 1, "{violations:?}");
    assert_eq!(count(Rule::ErrorContext), 2, "{violations:?}");
    assert_eq!(count(Rule::SimTimeTransitive), 2, "{violations:?}");
    assert_eq!(violations.len(), 13, "{violations:?}");
    let retry_v = violations
        .iter()
        .find(|v| v.rule == Rule::WallClockRetry)
        .expect("wall-clock-retry violation");
    assert!(retry_v
        .file
        .ends_with("crates/falcon-crowd/src/bad_retry.rs"));
    assert_eq!(retry_v.token, "SystemTime::now");
    // Locations are reported precisely.
    let unwrap_v = violations
        .iter()
        .find(|v| v.token == ".unwrap()")
        .expect("unwrap violation");
    assert!(unwrap_v
        .file
        .ends_with("crates/falcon-core/src/ops/bad_op.rs"));
    assert_eq!(unwrap_v.line, 8);
    // The transitive pass names the function the taint flows through.
    let transitive: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::SimTimeTransitive)
        .collect();
    assert!(transitive
        .iter()
        .all(|v| v.file.ends_with("crates/falcon-core/src/bad_indirect.rs")));
    assert!(transitive.iter().any(|v| v.token.contains("hidden_clock")));
    assert!(transitive.iter().any(|v| v.token.contains("measure")));
}

#[test]
fn seeded_fixture_matches_the_ci_expectation_file() {
    // The same contract CI's `--expect` self-test enforces, kept in-tree
    // so `cargo test` alone catches drift between fixture and manifest.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let fixture = manifest.join("tests/fixtures/bad-workspace");
    let expected_file = manifest.join("tests/fixtures/bad-workspace-expected.txt");
    let expected: std::collections::BTreeSet<String> = std::fs::read_to_string(&expected_file)
        .expect("expectation file")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    let actual: std::collections::BTreeSet<String> = scan_workspace(&fixture)
        .expect("scan")
        .iter()
        .map(|v| {
            format!(
                "{}:{}:{}",
                v.file.display().to_string().replace('\\', "/"),
                v.line,
                v.rule.name()
            )
        })
        .collect();
    assert_eq!(expected, actual);
}
