//! Seeded-violation fixture: result-producing hash iteration without a
//! deterministic funnel. Scanned only by falcon-lint's own tests — not
//! compiled.

use std::collections::HashMap;

pub fn leaf_order(votes: &HashMap<u32, u32>) -> Vec<u32> {
    votes.keys().copied().collect()
}

pub fn unstable_mass(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>()
}

pub fn stable_count(weights: &HashMap<u32, f64>) -> usize {
    weights.values().count()
}

pub fn sorted_view(votes: &HashMap<u32, u32>) -> Vec<u32> {
    let mut ids: Vec<u32> = votes.keys().copied().collect();
    ids.sort_unstable();
    ids
}
