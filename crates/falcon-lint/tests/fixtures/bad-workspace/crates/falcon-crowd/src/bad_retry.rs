//! Seeded-violation fixture: a crowd re-post path that reads the wall
//! clock. Scanned only by falcon-lint's own tests — not compiled.

pub fn repost_deadline() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn waived_deadline() -> std::time::SystemTime {
    std::time::SystemTime::now() // falcon-lint: allow(wall-clock-retry)
}
