//! Seeded-violation fixture: an "operator" that breaks every rule.
//! Scanned only by falcon-lint's own tests — not compiled.

pub fn broken(x: Option<u32>) -> u32 {
    let started = std::time::Instant::now();
    let mut rng = rand::thread_rng();
    let _ = (started, &mut rng);
    x.unwrap()
}

pub fn waived(x: Option<u32>) -> u32 {
    x.unwrap() // falcon-lint: allow(no-panic)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fine_here() {
        super::waived(Some(1));
        Option::<u32>::None.unwrap_or(0);
        panic!("panics are fine in tests");
    }
}
