//! Seeded-violation fixture: the sim-time funnel broken through two
//! levels of indirection. Scanned only by falcon-lint's own tests — not
//! compiled.

pub fn hidden_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn measure() -> std::time::Instant {
    hidden_clock()
}

pub fn report() -> std::time::Instant {
    measure()
}
