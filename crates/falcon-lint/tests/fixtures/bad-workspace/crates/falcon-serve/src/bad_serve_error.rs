//! Seeded-violation fixture: a service error constructed without its
//! tenant/round coordinates. Scanned only by falcon-lint's own tests —
//! not compiled.

pub fn refuse(tenant_name: String) -> ServeError {
    ServeError::Shutdown {
        message: tenant_name,
    }
}

pub fn tenant_of(e: &ServeError) -> Option<&str> {
    match e {
        ServeError::Shutdown { tenant, .. } => Some(tenant),
        _ => None,
    }
}
