//! Seeded-violation fixture: dataflow code with a panic and an unseeded
//! hasher. Scanned only by falcon-lint's own tests — not compiled.

pub fn reduce(partition: Option<Vec<u32>>) -> Vec<u32> {
    let _state = std::collections::hash_map::RandomState::new();
    partition.expect("partition present")
}
