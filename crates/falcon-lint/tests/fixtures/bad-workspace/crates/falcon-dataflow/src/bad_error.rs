//! Seeded-violation fixture: a dataflow error constructed without its
//! job/phase coordinates. Scanned only by falcon-lint's own tests — not
//! compiled.

pub fn fail_task(message: String) -> DataflowError {
    DataflowError::WorkerPanicked {
        task: 0,
        attempts: 1,
        message,
    }
}

pub fn task_of(e: &DataflowError) -> Option<usize> {
    match e {
        DataflowError::WorkerPanicked { task, .. } => Some(*task),
        _ => None,
    }
}
