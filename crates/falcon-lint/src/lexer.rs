//! A hand-rolled lexer over the token-relevant subset of Rust.
//!
//! `syn` is unavailable offline, so falcon-lint carries its own lexer: it
//! masks comments, string literals and char literals (preserving line
//! structure), then produces a token stream with line/column spans plus
//! the comment list (the only place `falcon-lint:` directives are read
//! from — a directive inside a string literal is just data). On top of
//! the token stream sit a few lightweight syntactic passes:
//!
//! * [`LexedFile::use_aliases`] — `use`-path resolution, so `Clock::now`
//!   is recognized as a wall-clock read after
//!   `use std::time::Instant as Clock;`.
//! * [`LexedFile::functions`] — per-function scopes (name + body token
//!   range), the substrate for the transitive sim-time pass.
//! * [`LexedFile::cfg_test_lines`] — lines covered by `#[cfg(test)]`
//!   items, which the rules skip.

use std::collections::HashMap;

/// One token of the masked source.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token text (identifier, number, or a single punctuation char).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
    /// True for identifier/keyword tokens.
    pub is_ident: bool,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// A comment with its location, as found during masking.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text, markers included.
    pub text: String,
}

/// A function definition found in the token stream.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword (signature runs from here to the
    /// body's opening brace).
    pub kw: usize,
    /// Token index range of the body, `[open_brace, close_brace]`.
    pub body: (usize, usize),
}

/// A lexed source file: tokens, raw/masked lines and comments.
#[derive(Debug)]
pub struct LexedFile {
    /// The token stream of the masked source.
    pub toks: Vec<Tok>,
    /// Raw source lines (for snippets).
    pub raw_lines: Vec<String>,
    /// Masked source lines (comments/strings/chars blanked).
    pub masked_lines: Vec<String>,
    /// Every comment, in order.
    pub comments: Vec<Comment>,
}

/// Mask comments, string literals and char literals with spaces,
/// preserving newlines, and collect the comments.
fn mask(source: &str) -> (String, Vec<Comment>) {
    let bytes = source.as_bytes();
    let mut masked: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0;
    let blank = |masked: &mut Vec<u8>, s: &str| {
        masked.extend(s.bytes().map(|b| if b == b'\n' { b } else { b' ' }));
    };
    while i < bytes.len() {
        let rest = &source[i..];
        if rest.starts_with("//") {
            let end = rest.find('\n').map_or(bytes.len(), |n| i + n);
            comments.push(Comment {
                line,
                text: source[i..end].to_string(),
            });
            blank(&mut masked, &source[i..end]);
            i = end;
        } else if rest.starts_with("/*") {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if source[j..].starts_with("/*") {
                    depth += 1;
                    j += 2;
                } else if source[j..].starts_with("*/") {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            comments.push(Comment {
                line,
                text: source[i..j].to_string(),
            });
            line += source[i..j].bytes().filter(|&b| b == b'\n').count();
            blank(&mut masked, &source[i..j]);
            i = j;
        } else if rest.starts_with("r\"") || rest.starts_with("r#") {
            // Raw string: count the hashes, find the closing quote+hashes.
            let hashes = rest[1..].bytes().take_while(|&b| b == b'#').count();
            let open = 1 + hashes + 1; // r + hashes + quote
            let close_pat: String = format!("\"{}", "#".repeat(hashes));
            let end = source[i + open..]
                .find(&close_pat)
                .map_or(bytes.len(), |n| i + open + n + close_pat.len());
            line += source[i..end].bytes().filter(|&b| b == b'\n').count();
            blank(&mut masked, &source[i..end]);
            i = end;
        } else if rest.starts_with('"') {
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let j = j.min(bytes.len());
            line += source[i..j].bytes().filter(|&b| b == b'\n').count();
            blank(&mut masked, &source[i..j]);
            i = j;
        } else if rest.starts_with('\'') {
            // Char literal or lifetime. A lifetime (`'a`) has no closing
            // quote within a couple of characters; a char literal does.
            let lit_end = source[i + 1..]
                .char_indices()
                .take(5)
                .find(|&(off, c)| c == '\'' && off != 0)
                .map(|(off, _)| i + 1 + off + 1);
            match lit_end {
                Some(j) if !rest.starts_with("'\\") || j > i + 2 => {
                    blank(&mut masked, &source[i..j]);
                    i = j;
                }
                _ => {
                    masked.push(bytes[i]);
                    i += 1;
                }
            }
        } else {
            if bytes[i] == b'\n' {
                line += 1;
            }
            masked.push(bytes[i]);
            i += 1;
        }
    }
    (String::from_utf8_lossy(&masked).into_owned(), comments)
}

/// Lex `source` into a [`LexedFile`].
pub fn lex(source: &str) -> LexedFile {
    let (masked, comments) = mask(source);
    let mut toks = Vec::new();
    for (ln, text) in masked.lines().enumerate() {
        let chars: Vec<char> = text.chars().collect();
        let mut c = 0usize;
        while c < chars.len() {
            let ch = chars[c];
            if ch.is_whitespace() {
                c += 1;
            } else if ch.is_alphabetic() || ch == '_' {
                let start = c;
                while c < chars.len() && (chars[c].is_alphanumeric() || chars[c] == '_') {
                    c += 1;
                }
                toks.push(Tok {
                    text: chars[start..c].iter().collect(),
                    line: ln + 1,
                    col: start + 1,
                    is_ident: true,
                });
            } else if ch.is_ascii_digit() {
                // Number: digits, underscores, one fraction, type suffix.
                let start = c;
                while c < chars.len() && (chars[c].is_alphanumeric() || chars[c] == '_') {
                    c += 1;
                }
                if c + 1 < chars.len() && chars[c] == '.' && chars[c + 1].is_ascii_digit() {
                    c += 1;
                    while c < chars.len() && (chars[c].is_alphanumeric() || chars[c] == '_') {
                        c += 1;
                    }
                }
                toks.push(Tok {
                    text: chars[start..c].iter().collect(),
                    line: ln + 1,
                    col: start + 1,
                    is_ident: false,
                });
            } else {
                toks.push(Tok {
                    text: ch.to_string(),
                    line: ln + 1,
                    col: c + 1,
                    is_ident: false,
                });
                c += 1;
            }
        }
    }
    LexedFile {
        toks,
        raw_lines: source.lines().map(str::to_string).collect(),
        masked_lines: masked.lines().map(str::to_string).collect(),
        comments,
    }
}

impl LexedFile {
    /// True when tokens `i..i+pats.len()` match `pats` exactly.
    pub fn matches(&self, i: usize, pats: &[&str]) -> bool {
        pats.iter()
            .enumerate()
            .all(|(k, p)| self.toks.get(i + k).is_some_and(|t| t.text == *p))
    }

    /// Token index of the matching `}` for the `{` at `open` (falls back
    /// to the last token on unbalanced input).
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for (k, t) in self.toks.iter().enumerate().skip(open) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
        self.toks.len().saturating_sub(1)
    }

    /// `use`-path aliases: simple name → full path (`::`-joined), covering
    /// `use a::b::C;`, `use a::b::{C, D as E};` and `as` renames. Glob
    /// imports are ignored (nothing to resolve a name against).
    pub fn use_aliases(&self) -> HashMap<String, String> {
        let mut out = HashMap::new();
        let mut i = 0;
        while i < self.toks.len() {
            if !(self.toks[i].is("use") && self.toks[i].is_ident) {
                i += 1;
                continue;
            }
            // Collect the declaration up to `;`.
            let mut j = i + 1;
            let mut decl: Vec<&Tok> = Vec::new();
            while j < self.toks.len() && !self.toks[j].is(";") {
                decl.push(&self.toks[j]);
                j += 1;
            }
            parse_use_decl(&decl, &mut out);
            i = j + 1;
        }
        out
    }

    /// Function definitions: `fn name ... { body }`. Trait-method
    /// declarations (signature ending in `;`) have no body and are
    /// skipped.
    pub fn functions(&self) -> Vec<FnDef> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            if self.toks[i].is("fn") && self.toks[i].is_ident {
                if let Some(name_tok) = self.toks.get(i + 1).filter(|t| t.is_ident) {
                    // Find the body `{`, stopping at `;` (no body).
                    let mut j = i + 2;
                    let mut depth = 0i32; // () / [] nesting in the signature
                    let mut body = None;
                    while j < self.toks.len() {
                        match self.toks[j].text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            ";" if depth <= 0 => break,
                            "{" if depth <= 0 => {
                                body = Some(j);
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(open) = body {
                        out.push(FnDef {
                            name: name_tok.text.clone(),
                            line: self.toks[i].line,
                            kw: i,
                            body: (open, self.matching_brace(open)),
                        });
                    }
                }
            }
            i += 1;
        }
        out
    }

    /// 1-based lines covered by `#[cfg(test)]` items.
    pub fn cfg_test_lines(&self) -> Vec<(usize, usize)> {
        let mut ranges = Vec::new();
        let mut i = 0;
        while i + 5 < self.toks.len() {
            if self.matches(i, &["#", "[", "cfg", "(", "test", ")"]) {
                // Find the annotated item's opening brace, then its match.
                let mut j = i + 6;
                while j < self.toks.len() && !self.toks[j].is("{") {
                    j += 1;
                }
                if j < self.toks.len() {
                    let close = self.matching_brace(j);
                    ranges.push((self.toks[i].line, self.toks[close].line));
                    i = close;
                }
            }
            i += 1;
        }
        ranges
    }
}

/// Parse one `use` declaration (tokens after `use`, before `;`) into the
/// alias map. Handles one level of `{...}` groups, which covers the
/// workspace's import style.
fn parse_use_decl(decl: &[&Tok], out: &mut HashMap<String, String>) {
    // Split off a `{ ... }` group suffix if present.
    let brace = decl.iter().position(|t| t.is("{"));
    let prefix_end = brace.unwrap_or(decl.len());
    let prefix: Vec<&str> = decl[..prefix_end]
        .iter()
        .filter(|t| t.is_ident)
        .map(|t| t.text.as_str())
        .collect();
    let record = |out: &mut HashMap<String, String>, segs: &[&str]| {
        // `a::b::C as D` → D = a::b::C; otherwise last segment names it.
        if segs.is_empty() {
            return;
        }
        if let Some(as_pos) = segs.iter().position(|s| *s == "as") {
            if let (Some(alias), true) = (segs.get(as_pos + 1), as_pos > 0) {
                out.insert((*alias).to_string(), segs[..as_pos].join("::"));
            }
        } else if let Some(last) = segs.last() {
            out.insert((*last).to_string(), segs.join("::"));
        }
    };
    match brace {
        None => record(out, &prefix),
        Some(open) => {
            // Each comma-separated leaf in the group extends the prefix.
            let close = decl
                .iter()
                .rposition(|t| t.is("}"))
                .unwrap_or(decl.len().saturating_sub(1));
            let mut leaf: Vec<&str> = Vec::new();
            for t in &decl[open + 1..close] {
                if t.is(",") {
                    let full: Vec<&str> = prefix.iter().chain(leaf.iter()).copied().collect();
                    record(out, &full);
                    leaf.clear();
                } else if t.is_ident {
                    leaf.push(t.text.as_str());
                }
            }
            if !leaf.is_empty() {
                let full: Vec<&str> = prefix.iter().chain(leaf.iter()).copied().collect();
                record(out, &full);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carry_spans() {
        let f = lex("fn main() {\n    let x = 1;\n}\n");
        let x = f.toks.iter().find(|t| t.is("x")).expect("x token");
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn strings_and_comments_are_masked_but_collected() {
        let f = lex("// note: Instant::now\nlet s = \"Instant::now\";\n");
        assert!(!f.toks.iter().any(|t| t.is("Instant")));
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("Instant::now"));
        assert_eq!(f.comments[0].line, 1);
    }

    #[test]
    fn use_aliases_resolve_groups_and_renames() {
        let f =
            lex("use std::time::{Duration, Instant as Clock};\nuse std::collections::HashMap;\n");
        let a = f.use_aliases();
        assert_eq!(
            a.get("Clock").map(String::as_str),
            Some("std::time::Instant")
        );
        assert_eq!(
            a.get("Duration").map(String::as_str),
            Some("std::time::Duration")
        );
        assert_eq!(
            a.get("HashMap").map(String::as_str),
            Some("std::collections::HashMap")
        );
    }

    #[test]
    fn functions_are_scoped_and_trait_decls_skipped() {
        let src = "trait T { fn decl(&self) -> u32; }\nfn real() { nested_call(); }\n";
        let f = lex(src);
        let fns = f.functions();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
        let (open, close) = fns[0].body;
        assert!(f.toks[open].is("{") && f.toks[close].is("}"));
    }

    #[test]
    fn cfg_test_ranges_cover_the_module() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let f = lex(src);
        assert_eq!(f.cfg_test_lines(), vec![(2, 5)]);
    }
}
