//! `falcon-lint`: lint the workspace's library sources for the panic,
//! determinism and simulated-time invariants.
//!
//! ```sh
//! cargo run -p falcon-lint                      # lint the enclosing workspace
//! cargo run -p falcon-lint -- <root>            # lint an explicit workspace root
//! cargo run -p falcon-lint -- --format json     # machine-readable output
//! cargo run -p falcon-lint -- <root> --expect <file>
//! ```
//!
//! `--format json` emits one JSON array of violation objects on stdout
//! (fields: `file`, `line`, `col`, `rule`, `token`, `snippet`) for CI
//! problem-matchers and editor integrations.
//!
//! `--expect <file>` runs in self-test mode: the file lists the expected
//! violations, one `file:line:rule` triple per line (`#` comments and
//! blank lines ignored), and the exit code reports whether the scan
//! produced *exactly* that set. CI points this at the seeded bad
//! workspace fixture so the analyzer itself is regression-tested.
//!
//! Exits `1` when any violation is found (or the expectation mismatches),
//! `0` otherwise.

use falcon_lint::Violation;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(violations: &[Violation]) {
    println!("[");
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 < violations.len() { "," } else { "" };
        println!(
            "  {{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"token\":\"{}\",\"snippet\":\"{}\"}}{}",
            json_escape(&v.file.display().to_string()),
            v.line,
            v.col,
            v.rule.name(),
            json_escape(&v.token),
            json_escape(&v.snippet),
            comma
        );
    }
    println!("]");
}

/// Compare against an expectation file of `file:line:rule` triples.
fn check_expectations(violations: &[Violation], expect_path: &PathBuf) -> ExitCode {
    let text = match std::fs::read_to_string(expect_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("falcon-lint: cannot read {}: {e}", expect_path.display());
            return ExitCode::FAILURE;
        }
    };
    let expected: BTreeSet<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    let actual: BTreeSet<String> = violations
        .iter()
        .map(|v| {
            format!(
                "{}:{}:{}",
                v.file.display().to_string().replace('\\', "/"),
                v.line,
                v.rule.name()
            )
        })
        .collect();
    let missing: Vec<_> = expected.difference(&actual).collect();
    let unexpected: Vec<_> = actual.difference(&expected).collect();
    if missing.is_empty() && unexpected.is_empty() {
        println!(
            "falcon-lint: self-test ok ({} expected violation(s) matched)",
            expected.len()
        );
        ExitCode::SUCCESS
    } else {
        for m in &missing {
            eprintln!("falcon-lint: expected but not reported: {m}");
        }
        for u in &unexpected {
            eprintln!("falcon-lint: reported but not expected: {u}");
        }
        eprintln!(
            "falcon-lint: self-test FAILED ({} missing, {} unexpected)",
            missing.len(),
            unexpected.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format_json = false;
    let mut expect: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => format_json = true,
                    Some("text") => format_json = false,
                    other => {
                        eprintln!(
                            "falcon-lint: unknown format {:?} (expected json or text)",
                            other.unwrap_or("<missing>")
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--expect" => {
                i += 1;
                match args.get(i) {
                    Some(p) => expect = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("falcon-lint: --expect needs a file argument");
                        return ExitCode::FAILURE;
                    }
                }
            }
            arg if arg.starts_with("--") => {
                eprintln!("falcon-lint: unknown flag {arg}");
                return ExitCode::FAILURE;
            }
            arg => root = Some(PathBuf::from(arg)),
        }
        i += 1;
    }
    let root = root.unwrap_or_else(|| {
        // CARGO_MANIFEST_DIR = <root>/crates/falcon-lint.
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(std::path::Path::parent)
            .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
    });
    match falcon_lint::scan_workspace(&root) {
        Ok(violations) => {
            if let Some(expect_path) = expect {
                return check_expectations(&violations, &expect_path);
            }
            if format_json {
                print_json(&violations);
                if violations.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            } else if violations.is_empty() {
                println!("falcon-lint: ok ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("falcon-lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("falcon-lint: cannot scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
