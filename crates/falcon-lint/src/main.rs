//! `falcon-lint`: lint the workspace's library sources for the panic,
//! determinism and simulated-time invariants.
//!
//! ```sh
//! cargo run -p falcon-lint            # lint the enclosing workspace
//! cargo run -p falcon-lint -- <root>  # lint an explicit workspace root
//! ```
//!
//! Exits `1` when any violation is found, `0` otherwise.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(
        || {
            // CARGO_MANIFEST_DIR = <root>/crates/falcon-lint.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest
                .parent()
                .and_then(std::path::Path::parent)
                .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
        },
        PathBuf::from,
    );
    match falcon_lint::scan_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("falcon-lint: ok ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("falcon-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("falcon-lint: cannot scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
