//! Syntax-aware invariant linter for the Falcon workspace.
//!
//! The paper's system is a *hands-off cloud service*: once a job is
//! submitted nobody watches a terminal, so a worker panic is an outage and
//! nondeterminism makes simulated-time experiments unreproducible. The
//! invariants are enforced mechanically over the library source by a
//! hand-rolled lexer ([`lexer`]) — token spans, `use`-path resolution and
//! per-function scopes, with comments, strings and `cfg(test)` regions
//! excluded:
//!
//! * **`no-panic`** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in operator
//!   (`falcon-core/src/ops/`), dataflow (`falcon-dataflow/src/`) or index
//!   (`falcon-index/src/`) library code. These paths run inside simulated
//!   cluster workers; a panic there kills a whole job.
//! * **`no-nondeterminism`** — no `thread_rng` / `from_entropy` /
//!   `SystemTime` / `RandomState` in any falcon library source. Identical
//!   seeds must give identical plans, candidates and timelines.
//! * **`sim-time`** — `Instant::now` (including through `use ... as`
//!   renames) only inside `falcon-dataflow/src/sim_time.rs` (the
//!   sanctioned [`wall_now`] funnel) and the `falcon-bench` harness.
//! * **`wall-clock-retry`** — no wall-clock reads (`Instant::now`,
//!   `SystemTime::now`) in `falcon-dataflow` or `falcon-crowd` library
//!   code (`sim_time.rs` excepted). Retry backoff, speculation and crowd
//!   re-post latency must be charged to the *simulated* clock. On these
//!   paths `wall-clock-retry` takes precedence: a single wall-clock read
//!   reports exactly one rule.
//! * **`hashmap-iter-order`** — iterating a `HashMap`/`HashSet` (local,
//!   parameter or field with a hash type) in result-producing code under
//!   `crates/falcon-{core,dataflow,forest,index}` must go through a
//!   deterministic funnel: `group_in_arrival_order`, a sorted view
//!   (`sort*`, `TokenOrder::from_frequencies`, BTree collections) or an
//!   order-insensitive fold (`sum`/`count`/`min`/`max`/`any`/`all`/...).
//!   `RandomState` is already banned, but even a deterministic hasher's
//!   arbitrary order is not a *stable contract* — results must not depend
//!   on it.
//! * **`float-reduce-order`** — no float accumulation (`sum::<f64>()`,
//!   `fold(0.0, ...)`) over an unordered hash-container iteration: float
//!   addition is non-associative, so an arbitrary reduction order breaks
//!   bit-identical replay. Sort first, or reduce in arrival order.
//! * **`error-context`** — every `DataflowError` struct-variant
//!   construction in `falcon-dataflow`/`falcon-core` must carry its
//!   `job` and `phase` coordinates (task-level errors also carry `task`),
//!   and every `ServeError` construction in `falcon-serve` its `tenant`
//!   and `round`: a hands-off service diagnoses a failed run from the
//!   error value alone.
//! * **`sim-time-transitive`** — the sim-time funnel holds *transitively*:
//!   a function that reaches `Instant::now` through any chain of calls to
//!   workspace functions is flagged at the call site, even when the read
//!   itself is one or more files away (call-graph-lite pass, keyed by
//!   function name).
//!
//! A violation can be waived with a `// falcon-lint: allow(<rule>)`
//! comment on the same line, or on its own line immediately above the
//! offending *statement* (the waiver extends to the end of that
//! statement, so multi-line call chains need only one directive).
//! Multiple rules may be waived at once: `allow(no-panic, sim-time)`.
//! Directives are read from comments only — `falcon-lint: allow(...)`
//! inside a string literal is data, not a waiver.
//!
//! [`wall_now`]: ../falcon_dataflow/sim_time/fn.wall_now.html

pub mod lexer;

use lexer::{FnDef, LexedFile};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No panicking constructs in operator/dataflow/index library code.
    NoPanic,
    /// No nondeterminism sources in library code.
    NoNondeterminism,
    /// `Instant::now` only in `sim_time.rs` and the bench harness.
    SimTime,
    /// No wall-clock reads in the fault-tolerant retry/re-post paths
    /// (`falcon-dataflow`, `falcon-crowd`).
    WallClockRetry,
    /// Hash-container iteration must go through a deterministic funnel.
    HashmapIterOrder,
    /// No float accumulation over unordered hash iteration.
    FloatReduceOrder,
    /// `DataflowError` constructions must carry job/phase coordinates;
    /// `ServeError` constructions tenant/round.
    ErrorContext,
    /// The sim-time funnel holds through call chains.
    SimTimeTransitive,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 8] = [
    Rule::NoPanic,
    Rule::NoNondeterminism,
    Rule::SimTime,
    Rule::WallClockRetry,
    Rule::HashmapIterOrder,
    Rule::FloatReduceOrder,
    Rule::ErrorContext,
    Rule::SimTimeTransitive,
];

impl Rule {
    /// The rule's name as written in `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoNondeterminism => "no-nondeterminism",
            Rule::SimTime => "sim-time",
            Rule::WallClockRetry => "wall-clock-retry",
            Rule::HashmapIterOrder => "hashmap-iter-order",
            Rule::FloatReduceOrder => "float-reduce-order",
            Rule::ErrorContext => "error-context",
            Rule::SimTimeTransitive => "sim-time-transitive",
        }
    }

    /// Parse a rule name (as written in `allow(...)`).
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }
}

/// The wall-clock read needles shared by `sim-time` and
/// `wall-clock-retry`. A single site matching one of these reports
/// exactly one rule: `wall-clock-retry` on the retry path class
/// (`falcon-dataflow`, `falcon-crowd`), `sim-time` (for `Instant::now`)
/// or `no-nondeterminism` (for `SystemTime::now`) everywhere else.
pub const WALL_CLOCK_NEEDLES: [&str; 2] = ["Instant::now", "SystemTime::now"];

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in (as given to the scanner).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The matched construct.
    pub token: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] `{}` — {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule.name(),
            self.token,
            self.snippet
        )
    }
}

/// Normalize a path for rule matching: `/`-separated, `.` segments and
/// duplicate separators collapsed, so Windows-style paths select the
/// same rule set as POSIX ones.
fn norm(path: &Path) -> String {
    let p = path.to_string_lossy().replace('\\', "/");
    let segs: Vec<&str> = p
        .split('/')
        .filter(|s| !s.is_empty() && *s != ".")
        .collect();
    segs.join("/")
}

/// Which rules apply to a file, by workspace-relative path.
pub fn rules_for(path: &Path) -> Vec<Rule> {
    let p = format!("{}/", norm(path)); // trailing slash so `ends_with` dirs match
    let p = p.as_str();
    let has = |frag: &str| p.contains(frag);
    let mut rules = Vec::new();
    if has("falcon-core/src/ops/") || has("falcon-dataflow/src/") || has("falcon-index/src/") {
        rules.push(Rule::NoPanic);
    }
    if has("falcon-core/src/") || has("falcon-dataflow/src/") || has("falcon-index/src/") {
        rules.push(Rule::NoNondeterminism);
    }
    let sim_time_exempt = has("falcon-dataflow/src/sim_time.rs/") || has("falcon-bench/");
    if !sim_time_exempt {
        rules.push(Rule::SimTime);
    }
    if !sim_time_exempt && (has("falcon-dataflow/src/") || has("falcon-crowd/src/")) {
        rules.push(Rule::WallClockRetry);
    }
    let deterministic_result_path = has("falcon-core/src/")
        || has("falcon-dataflow/src/")
        || has("falcon-forest/src/")
        || has("falcon-index/src/");
    if deterministic_result_path {
        rules.push(Rule::HashmapIterOrder);
        rules.push(Rule::FloatReduceOrder);
    }
    if has("falcon-dataflow/src/") || has("falcon-core/src/") || has("falcon-serve/src/") {
        rules.push(Rule::ErrorContext);
    }
    if !sim_time_exempt {
        rules.push(Rule::SimTimeTransitive);
    }
    rules
}

/// One file handed to [`scan_files`].
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (selects the rule set).
    pub path: PathBuf,
    /// Full source text.
    pub source: String,
}

/// A prepared file: lexed source, active rules and per-line waivers.
struct FileScan {
    path: PathBuf,
    rules: Vec<Rule>,
    lx: LexedFile,
    /// Per 1-based line: rules waived on it.
    waived: HashMap<usize, Vec<Rule>>,
    /// 1-based `#[cfg(test)]` line ranges.
    test_ranges: Vec<(usize, usize)>,
    /// `use` alias map.
    aliases: HashMap<String, String>,
    /// Function scopes.
    fns: Vec<FnDef>,
}

impl FileScan {
    fn prepare(path: PathBuf, source: &str, rules: Vec<Rule>) -> FileScan {
        let lx = lexer::lex(source);
        let mut waived: HashMap<usize, Vec<Rule>> = HashMap::new();
        for c in &lx.comments {
            let allows = parse_allows(&c.text);
            if allows.is_empty() {
                continue;
            }
            waived.entry(c.line).or_default().extend(allows.clone());
            // A standalone directive (nothing but the comment on its
            // line) covers the following statement: every line until one
            // whose masked text contains `;`, `{` or `}`.
            let own_line = lx
                .masked_lines
                .get(c.line - 1)
                .is_some_and(|m| m.trim().is_empty());
            if own_line {
                for ln in (c.line + 1)..=lx.masked_lines.len() {
                    waived.entry(ln).or_default().extend(allows.clone());
                    let m = &lx.masked_lines[ln - 1];
                    if m.contains(';') || m.contains('{') || m.contains('}') {
                        break;
                    }
                }
            }
        }
        let test_ranges = lx.cfg_test_lines();
        let aliases = lx.use_aliases();
        let fns = lx.functions();
        FileScan {
            path,
            rules,
            lx,
            waived,
            test_ranges,
            aliases,
            fns,
        }
    }

    fn in_test(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| line >= s && line <= e)
    }

    /// True when `rule` applies to this file and is not waived or inside
    /// a test region at `line`.
    fn active(&self, rule: Rule, line: usize) -> bool {
        self.rules.contains(&rule)
            && !self.in_test(line)
            && !self.waived.get(&line).is_some_and(|w| w.contains(&rule))
    }

    fn violation(
        &self,
        rule: Rule,
        line: usize,
        col: usize,
        token: impl Into<String>,
    ) -> Violation {
        Violation {
            file: self.path.clone(),
            line,
            col,
            rule,
            token: token.into(),
            snippet: self
                .lx
                .raw_lines
                .get(line - 1)
                .map(|s| s.trim().to_string())
                .unwrap_or_default(),
        }
    }

    /// Resolve the base of a `Base::now` path through `use` aliases to its
    /// final segment (`Instant`, `SystemTime`, ...).
    fn resolve_last(&self, base: &str) -> String {
        match self.aliases.get(base) {
            Some(full) => full.rsplit("::").next().unwrap_or(base).to_string(),
            None => base.to_string(),
        }
    }
}

/// Parse `falcon-lint: allow(a, b, ...)` directives out of comment text.
fn parse_allows(comment: &str) -> Vec<Rule> {
    let mut out = Vec::new();
    let Some(pos) = comment.find("falcon-lint:") else {
        return out;
    };
    let tail = &comment[pos + "falcon-lint:".len()..];
    let Some(open) = tail.find("allow(") else {
        return out;
    };
    let args = &tail[open + "allow(".len()..];
    let Some(close) = args.find(')') else {
        return out;
    };
    for name in args[..close].split(',') {
        if let Some(rule) = Rule::from_name(name.trim()) {
            if !out.contains(&rule) {
                out.push(rule);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Token-pattern passes
// ---------------------------------------------------------------------

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const NONDET_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "RandomState"];
const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
];
/// Constructs that make an iteration order-insensitive or ordered.
const BLESSED: [&str; 17] = [
    "group_in_arrival_order",
    "from_frequencies",
    "BTreeMap",
    "BTreeSet",
    "sum",
    "count",
    "len",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "any",
    "all",
    "contains",
    "contains_key",
];
/// Idents that look like calls but are control flow or constructors.
const NOT_CALLS: [&str; 10] = [
    "if", "while", "for", "match", "return", "loop", "Some", "Ok", "Err", "None",
];

fn is_blessed(text: &str) -> bool {
    BLESSED.contains(&text) || text.starts_with("sort")
}

/// Scan panic constructs.
fn pass_no_panic(fs: &FileScan, out: &mut Vec<Violation>) {
    let toks = &fs.lx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !fs.active(Rule::NoPanic, t.line) {
            continue;
        }
        if t.is(".") && fs.lx.matches(i + 1, &["unwrap", "(", ")"]) {
            out.push(fs.violation(
                Rule::NoPanic,
                toks[i + 1].line,
                toks[i + 1].col,
                ".unwrap()",
            ));
        } else if t.is(".") && fs.lx.matches(i + 1, &["expect", "("]) {
            out.push(fs.violation(Rule::NoPanic, toks[i + 1].line, toks[i + 1].col, ".expect("));
        } else if t.is_ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is("!"))
        {
            out.push(fs.violation(Rule::NoPanic, t.line, t.col, format!("{}!", t.text)));
        }
    }
}

/// Scan nondeterminism sources and wall-clock reads, with the
/// `wall-clock-retry` > `sim-time`/`no-nondeterminism` precedence.
fn pass_nondet_and_wall_clock(fs: &FileScan, out: &mut Vec<Violation>) {
    let toks = &fs.lx.toks;
    let on_retry_path = fs.rules.contains(&Rule::WallClockRetry);
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident {
            continue;
        }
        // `Base::now` with Base resolving to Instant / SystemTime.
        let is_now_path = fs.lx.matches(i + 1, &[":", ":", "now"]);
        if is_now_path {
            let last = fs.resolve_last(&t.text);
            let needle = match last.as_str() {
                "Instant" => Some("Instant::now"),
                "SystemTime" => Some("SystemTime::now"),
                _ => None,
            };
            if let Some(needle) = needle {
                let rule = if on_retry_path {
                    Rule::WallClockRetry
                } else if needle == "Instant::now" {
                    Rule::SimTime
                } else {
                    Rule::NoNondeterminism
                };
                if fs.active(rule, t.line) {
                    out.push(fs.violation(rule, t.line, t.col, needle));
                }
                continue; // exactly one rule per wall-clock read
            }
        }
        if NONDET_IDENTS.contains(&t.text.as_str()) && fs.active(Rule::NoNondeterminism, t.line) {
            out.push(fs.violation(Rule::NoNondeterminism, t.line, t.col, t.text.clone()));
        } else if t.is("SystemTime") && !is_now_path && fs.active(Rule::NoNondeterminism, t.line) {
            out.push(fs.violation(Rule::NoNondeterminism, t.line, t.col, "SystemTime"));
        }
    }
}

/// Names in this file bound to hash-container types: locals
/// (`let m: HashMap<...>` / `let m = HashMap::new()`), function
/// parameters and struct fields.
fn hash_container_names(fs: &FileScan) -> HashSet<String> {
    let toks = &fs.lx.toks;
    let mut names = HashSet::new();
    let stmt_has_hash_type = |from: usize, to: usize| {
        toks[from..to.min(toks.len())]
            .iter()
            .any(|t| HASH_TYPES.contains(&t.text.as_str()))
    };
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is("let") && t.is_ident {
            // `let [mut] name ...;` — plain bindings only.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.is_ident) {
                // Statement span: to the `;` closing this let.
                let mut depth = 0i32;
                let mut end = j;
                while end < toks.len() {
                    match toks[end].text.as_str() {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                if stmt_has_hash_type(j + 1, end) {
                    names.insert(name.text.clone());
                }
                i = end;
                continue;
            }
        } else if t.is("struct") && t.is_ident {
            // Record hash-typed field names: `name: HashMap<...>,`.
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is("{") {
                let close = fs.lx.matching_brace(j);
                let mut k = j + 1;
                while k < close {
                    if toks[k].is_ident && toks.get(k + 1).is_some_and(|t| t.is(":")) {
                        // Field span: to the `,` at depth 0.
                        let mut depth = 0i32;
                        let mut end = k + 2;
                        while end < close {
                            match toks[end].text.as_str() {
                                "{" | "(" | "[" | "<" => depth += 1,
                                "}" | ")" | "]" | ">" => depth -= 1,
                                "," if depth <= 0 => break,
                                _ => {}
                            }
                            end += 1;
                        }
                        if stmt_has_hash_type(k + 2, end) {
                            names.insert(toks[k].text.clone());
                        }
                        k = end;
                    }
                    k += 1;
                }
                i = close;
                continue;
            }
        }
        i += 1;
    }
    // Function parameters: `name: ... HashMap<...>` within signatures.
    for f in &fs.fns {
        let (sig_start, sig_end) = (f.kw, f.body.0);
        let mut k = sig_start;
        while k < sig_end {
            if toks[k].is_ident && toks.get(k + 1).is_some_and(|t| t.is(":")) {
                let mut depth = 0i32;
                let mut end = k + 2;
                while end < sig_end {
                    match toks[end].text.as_str() {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" | ">" => depth -= 1,
                        "," if depth <= 0 => break,
                        _ => {}
                    }
                    if depth < 0 {
                        break;
                    }
                    end += 1;
                }
                if stmt_has_hash_type(k + 2, end) {
                    names.insert(toks[k].text.clone());
                }
                k = end;
            }
            k += 1;
        }
    }
    names
}

/// Scan hash-container iteration sites; classify each as blessed,
/// `float-reduce-order` or `hashmap-iter-order`.
fn pass_hash_iteration(fs: &FileScan, out: &mut Vec<Violation>) {
    let toks = &fs.lx.toks;
    let hashes = hash_container_names(fs);
    if hashes.is_empty() {
        return;
    }

    // Method-chain iteration: `<hash> . <iter-method> (`.
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident && hashes.contains(&t.text)) {
            continue;
        }
        if !(toks.get(i + 1).is_some_and(|n| n.is("."))
            && toks
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| n.is("(")))
        {
            continue;
        }
        // Statement span: back to the previous `;`/`{`/`}`, forward to the
        // `;` that closes this statement (tracking nested braces). For a
        // `let` binding the span extends one statement further, so the
        // idiomatic `let v: Vec<_> = m.keys().collect(); v.sort();`
        // shape is seen as sorted.
        let start = (0..i)
            .rev()
            .find(|&k| matches!(toks[k].text.as_str(), ";" | "{" | "}"))
            .map_or(0, |k| k + 1);
        let is_let = toks.get(start).is_some_and(|t| t.is("let") && t.is_ident);
        let mut semis_wanted = if is_let { 2 } else { 1 };
        let mut depth = 0i32;
        let mut end = i;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" if depth <= 0 => {
                    semis_wanted -= 1;
                    if semis_wanted == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let span = &toks[start..end.min(toks.len())];
        classify_iteration(
            fs,
            span,
            t.line,
            t.col,
            &format!("{}.{}()", t.text, toks[i + 2].text),
            out,
        );
    }

    // `for ... in <hash-expr> {`: the loop header is the span (the body
    // cannot prove order-insensitivity; use a sorted view or a funnel).
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is("for") && toks[i].is_ident) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                ";" if depth <= 0 => break, // not a for-loop header after all
                _ => {}
            }
            j += 1;
        }
        let header = &toks[i..j.min(toks.len())];
        // An ident followed by `(` is a *call* that happens to share the
        // container's name (e.g. a `qgrams` local next to a `qgrams()`
        // tokenizer fn) — only a bare use of the name is the container.
        if let Some(h) = header.iter().enumerate().find_map(|(off, t)| {
            let next = toks.get(i + off + 1);
            (t.is_ident && hashes.contains(&t.text) && !next.is_some_and(|n| n.is("(")))
                .then_some(t)
        }) {
            classify_iteration(
                fs,
                header,
                toks[i].line,
                toks[i].col,
                &format!("for … in {}", h.text),
                out,
            );
        }
        i = j + 1;
    }
}

/// Decide what (if anything) to report for one hash-iteration span.
fn classify_iteration(
    fs: &FileScan,
    span: &[lexer::Tok],
    line: usize,
    col: usize,
    token: &str,
    out: &mut Vec<Violation>,
) {
    let has = |s: &str| span.iter().any(|t| t.is_ident && t.is(s));
    let float_sum = has("sum") && (has("f64") || has("f32"));
    let float_fold = has("fold")
        && span
            .iter()
            .any(|t| !t.is_ident && t.text.contains('.') && t.text.starts_with(char::is_numeric));
    if float_sum || float_fold {
        if fs.active(Rule::FloatReduceOrder, line) {
            let what = if float_sum {
                "sum::<float>"
            } else {
                "fold(0.0, …)"
            };
            out.push(fs.violation(
                Rule::FloatReduceOrder,
                line,
                col,
                format!("{token} → {what}"),
            ));
        }
        return; // float-reduce-order shadows hashmap-iter-order
    }
    if span.iter().any(|t| t.is_ident && is_blessed(&t.text)) {
        return;
    }
    if fs.active(Rule::HashmapIterOrder, line) {
        out.push(fs.violation(Rule::HashmapIterOrder, line, col, token.to_string()));
    }
}

/// Error types whose struct-variant constructions must carry location
/// coordinates, with the field names that count as context. A hands-off
/// service diagnoses failures from the error value alone, so every typed
/// error names where it happened: dataflow errors carry (job, phase),
/// service errors carry (tenant, round).
pub const ERROR_CONTEXT_TYPES: [(&str, [&str; 2]); 2] = [
    ("DataflowError", ["job", "phase"]),
    ("ServeError", ["tenant", "round"]),
];

/// Scan `DataflowError::Variant { ... }` / `ServeError::Variant { ... }`
/// constructions for missing coordinates (see [`ERROR_CONTEXT_TYPES`]).
/// Match-arm *patterns* (span followed by `=>` or `=`) are exempt — the
/// rule is about constructing errors with context, not destructuring
/// them.
fn pass_error_context(fs: &FileScan, out: &mut Vec<Violation>) {
    let toks = &fs.lx.toks;
    for i in 0..toks.len() {
        let Some((ty, required)) = ERROR_CONTEXT_TYPES
            .iter()
            .find(|(ty, _)| toks[i].is(ty) && toks[i].is_ident)
        else {
            continue;
        };
        if !fs.lx.matches(i + 1, &[":", ":"]) {
            continue;
        }
        let Some(variant) = toks.get(i + 3).filter(|t| t.is_ident) else {
            continue;
        };
        if !toks.get(i + 4).is_some_and(|t| t.is("{")) {
            continue;
        }
        let close = fs.lx.matching_brace(i + 4);
        if toks
            .get(close + 1)
            .is_some_and(|t| t.is("=") || t.text == ">")
        {
            continue; // pattern position, not a construction
        }
        let body = &toks[i + 5..close];
        let has = |s: &str| body.iter().any(|t| t.is_ident && t.is(s));
        if !required.iter().all(|f| has(f)) && fs.active(Rule::ErrorContext, toks[i].line) {
            out.push(fs.violation(
                Rule::ErrorContext,
                toks[i].line,
                toks[i].col,
                format!("{ty}::{}", variant.text),
            ));
        }
    }
}

/// Unwaived wall-clock read token indices in a file (taint sources for
/// the transitive pass). Reads inside `cfg(test)` or waived lines are
/// sanctioned and do not taint.
fn wall_clock_reads(fs: &FileScan) -> Vec<usize> {
    let toks = &fs.lx.toks;
    let mut reads = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident && fs.lx.matches(i + 1, &[":", ":", "now"])) {
            continue;
        }
        let last = fs.resolve_last(&t.text);
        if last != "Instant" && last != "SystemTime" {
            continue;
        }
        if fs.in_test(t.line) {
            continue;
        }
        let waived = fs.waived.get(&t.line).is_some_and(|w| {
            w.contains(&Rule::SimTime)
                || w.contains(&Rule::WallClockRetry)
                || w.contains(&Rule::NoNondeterminism)
        });
        if !waived {
            reads.push(i);
        }
    }
    reads
}

/// The call-graph-lite transitive sim-time pass over a set of prepared
/// files: functions containing an unwaived wall-clock read taint their
/// (transitive) callers; every call to a tainted function is flagged.
fn pass_sim_time_transitive(files: &[FileScan], out: &mut Vec<Violation>) {
    // Taint roots: functions with a direct read, in files where the
    // sim-time funnel applies (sim_time.rs and falcon-bench are exempt
    // and never taint — `wall_now` is the funnel everyone calls).
    let mut tainted: HashSet<String> = HashSet::new();
    for fs in files {
        if !fs.rules.contains(&Rule::SimTime) && !fs.rules.contains(&Rule::WallClockRetry) {
            continue;
        }
        let reads = wall_clock_reads(fs);
        for f in &fs.fns {
            if reads.iter().any(|&r| r > f.body.0 && r < f.body.1) {
                tainted.insert(f.name.clone());
            }
        }
    }

    // Call edges: (file idx, caller fn idx, callee name, call token idx).
    let mut edges: Vec<(usize, usize, String, usize)> = Vec::new();
    for (fi, fs) in files.iter().enumerate() {
        let toks = &fs.lx.toks;
        for (gi, f) in fs.fns.iter().enumerate() {
            for k in (f.body.0 + 1)..f.body.1 {
                let t = &toks[k];
                if !(t.is_ident && toks.get(k + 1).is_some_and(|n| n.is("("))) {
                    continue;
                }
                if NOT_CALLS.contains(&t.text.as_str()) {
                    continue;
                }
                if k > 0 && toks[k - 1].is("fn") {
                    continue; // nested fn definition, not a call
                }
                // `Instant::now()` / `SystemTime::now()` is the direct
                // read (already its own violation), not a workspace call.
                if t.is("now")
                    && k >= 3
                    && toks[k - 1].is(":")
                    && toks[k - 2].is(":")
                    && matches!(
                        fs.resolve_last(&toks[k - 3].text).as_str(),
                        "Instant" | "SystemTime"
                    )
                {
                    continue;
                }
                edges.push((fi, gi, t.text.clone(), k));
            }
        }
    }

    // Propagate taint to callers until fixpoint.
    loop {
        let mut changed = false;
        for (fi, gi, callee, _) in &edges {
            if tainted.contains(callee) {
                let caller = &files[*fi].fns[*gi].name;
                if !tainted.contains(caller) {
                    tainted.insert(caller.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for (fi, _, callee, k) in &edges {
        let fs = &files[*fi];
        if !tainted.contains(callee) {
            continue;
        }
        let t = &fs.lx.toks[*k];
        if fs.active(Rule::SimTimeTransitive, t.line) {
            out.push(fs.violation(
                Rule::SimTimeTransitive,
                t.line,
                t.col,
                format!("{callee}() reaches Instant::now"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

fn scan_prepared(files: &[FileScan]) -> Vec<Violation> {
    let mut out = Vec::new();
    for fs in files {
        if fs.rules.is_empty() {
            continue;
        }
        pass_no_panic(fs, &mut out);
        pass_nondet_and_wall_clock(fs, &mut out);
        pass_hash_iteration(fs, &mut out);
        pass_error_context(fs, &mut out);
    }
    pass_sim_time_transitive(files, &mut out);
    out.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule.name()).cmp(&(&b.file, b.line, b.col, b.rule.name()))
    });
    out
}

/// Lint a set of files together (rule sets derived from each path). The
/// transitive sim-time pass sees the whole set, so a function calling a
/// wall-clock reader in another file is still flagged.
pub fn scan_files(files: &[SourceFile]) -> Vec<Violation> {
    let prepared: Vec<FileScan> = files
        .iter()
        .map(|f| FileScan::prepare(f.path.clone(), &f.source, rules_for(&f.path)))
        .collect();
    scan_prepared(&prepared)
}

/// Lint one file's source under the rules its path selects (or an
/// explicit rule set). Cross-file taint is invisible here; use
/// [`scan_files`] / [`scan_workspace`] for the workspace-wide pass.
pub fn scan_source(path: &Path, source: &str, rules: &[Rule]) -> Vec<Violation> {
    let fs = FileScan::prepare(path.to_path_buf(), source, rules.to_vec());
    scan_prepared(std::slice::from_ref(&fs))
}

/// Recursively collect `.rs` files under `dir`, skipping test/bench/
/// example/fixture directories and anything outside library source.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP_DIRS: [&str; 5] = ["tests", "benches", "examples", "fixtures", "target"];
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every library source file under `<root>/crates/`.
///
/// `root` is the workspace root. Vendored stub crates (`vendor/`) are not
/// Falcon code and are not scanned.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let crates = root.join("crates");
    let mut paths = Vec::new();
    collect_rs(&crates, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let source = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path);
        files.push(SourceFile {
            path: rel.to_path_buf(),
            source,
        });
    }
    Ok(scan_files(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_path() -> PathBuf {
        PathBuf::from("crates/falcon-core/src/ops/example.rs")
    }

    fn core_path() -> PathBuf {
        PathBuf::from("crates/falcon-core/src/driver.rs")
    }

    #[test]
    fn unwrap_in_operator_code_is_flagged() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoPanic);
        assert_eq!(v[0].line, 2);
        assert!(v[0].col > 0);
    }

    #[test]
    fn unwrap_in_comment_or_string_is_ignored() {
        let src = concat!(
            "// calls .unwrap() somewhere\n",
            "/* panic! inside\n   block comment */\n",
            "pub fn f() -> &'static str {\n",
            "    \".unwrap() and panic! in a string\"\n",
            "}\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_or_and_expect_err_are_not_flagged() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_module_is_skipped() {
        let src = concat!(
            "pub fn f() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { Some(1).unwrap(); panic!(\"x\") }\n",
            "}\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn same_line_allow_directive_waives() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // falcon-lint: allow(no-panic)\n}\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn standalone_allow_covers_the_following_statement() {
        let src = concat!(
            "pub fn f(x: Option<u32>) -> u32 {\n",
            "    // falcon-lint: allow(no-panic)\n",
            "    x\n",
            "        .unwrap()\n",
            "}\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multi_rule_waiver_on_one_line() {
        let src = "pub fn f() -> u32 { let _ = std::time::Instant::now(); Some(1).unwrap() } // falcon-lint: allow(no-panic, sim-time)\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
        // ... and the multi-rule form still only waives what it names.
        let src = "pub fn f() -> u32 { let _ = rand::thread_rng(); Some(1).unwrap() } // falcon-lint: allow(no-panic, sim-time)\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoNondeterminism);
    }

    #[test]
    fn waiver_inside_a_string_literal_does_not_apply() {
        let src = concat!(
            "pub fn f(x: Option<u32>) -> u32 {\n",
            "    let _note = \"falcon-lint: allow(no-panic)\";\n",
            "    x.unwrap()\n",
            "}\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoPanic);
        // Same line as the violation: still not a waiver.
        let src = "pub fn f(x: Option<u32>) -> u32 { let _ = \"falcon-lint: allow(no-panic)\"; x.unwrap() }\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn allow_for_one_rule_does_not_waive_another() {
        let src =
            "pub fn f() { let _ = std::time::Instant::now(); } // falcon-lint: allow(no-panic)\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SimTime);
    }

    #[test]
    fn nondeterminism_tokens_flagged_in_core_but_not_elsewhere() {
        let src = "pub fn f() { let _ = rand::thread_rng(); }\n";
        let core = core_path();
        let v = scan_source(&core, src, &rules_for(&core));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoNondeterminism);
        // The CLI crate is not under the determinism contract.
        let cli = PathBuf::from("crates/falcon-cli/src/main.rs");
        let v = scan_source(&cli, src, &rules_for(&cli));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn sim_time_exemptions_hold() {
        let src = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
        let sanctioned = PathBuf::from("crates/falcon-dataflow/src/sim_time.rs");
        assert!(scan_source(&sanctioned, src, &rules_for(&sanctioned)).is_empty());
        let bench = PathBuf::from("crates/falcon-bench/src/lib.rs");
        assert!(scan_source(&bench, src, &rules_for(&bench)).is_empty());
        let elsewhere = PathBuf::from("crates/falcon-table/src/lib.rs");
        let v = scan_source(&elsewhere, src, &rules_for(&elsewhere));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SimTime);
    }

    #[test]
    fn use_alias_of_instant_is_still_a_wall_clock_read() {
        let src = concat!(
            "use std::time::Instant as Clock;\n",
            "pub fn f() -> Clock { Clock::now() }\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::SimTime);
        assert_eq!(v[0].token, "Instant::now");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn wall_clock_reads_in_retry_paths_report_exactly_one_rule() {
        // The precedence contract (shared WALL_CLOCK_NEEDLES): on the
        // retry path class a read is wall-clock-retry, and neither
        // sim-time nor no-nondeterminism double-report it.
        let dataflow = PathBuf::from("crates/falcon-dataflow/src/runner.rs");
        for needle in ["Instant", "SystemTime"] {
            let src = format!("pub fn f() {{ let _ = std::time::{needle}::now(); }}\n");
            let v = scan_source(&dataflow, &src, &rules_for(&dataflow));
            assert_eq!(v.len(), 1, "{needle}: {v:?}");
            assert_eq!(v[0].rule, Rule::WallClockRetry, "{needle}");
        }
        // Off the retry path, Instant::now is sim-time and
        // SystemTime::now is no-nondeterminism — still one rule each.
        let core = core_path();
        let src = "pub fn f() { let _ = std::time::Instant::now(); }\n";
        let v = scan_source(&core, src, &rules_for(&core));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::SimTime);
        let src = "pub fn f() { let _ = std::time::SystemTime::now(); }\n";
        let v = scan_source(&core, src, &rules_for(&core));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoNondeterminism);
    }

    #[test]
    fn wall_clock_retry_is_waivable() {
        let crowd = PathBuf::from("crates/falcon-crowd/src/vote.rs");
        let waived = "pub fn deadline() -> std::time::SystemTime { std::time::SystemTime::now() } // falcon-lint: allow(wall-clock-retry)\n";
        assert!(scan_source(&crowd, waived, &rules_for(&crowd)).is_empty());
        let core = core_path();
        assert!(!rules_for(&core).contains(&Rule::WallClockRetry));
    }

    #[test]
    fn raw_strings_and_lifetimes_do_not_confuse_the_lexer() {
        let src = concat!(
            "pub fn f<'a>(s: &'a str) -> &'a str {\n",
            "    let _ = r\"panic! .unwrap()\";\n",
            "    let _c = '\\'';\n",
            "    s\n",
            "}\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn windows_style_paths_select_the_same_rules() {
        let posix = PathBuf::from("crates/falcon-dataflow/src/runner.rs");
        let windows = PathBuf::from("crates\\falcon-dataflow\\src\\runner.rs");
        let dotted = PathBuf::from("./crates//falcon-dataflow/./src/runner.rs");
        assert_eq!(rules_for(&posix), rules_for(&windows));
        assert_eq!(rules_for(&posix), rules_for(&dotted));
        // The sim_time.rs exemption also canonicalizes.
        let w = PathBuf::from("crates\\falcon-dataflow\\src\\sim_time.rs");
        assert!(!rules_for(&w).contains(&Rule::SimTime));
    }

    #[test]
    fn hashmap_iteration_without_a_funnel_is_flagged() {
        let src = concat!(
            "use std::collections::HashMap;\n",
            "pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n",
            "    m.values().copied().collect()\n",
            "}\n",
        );
        let v = scan_source(&core_path(), src, &rules_for(&core_path()));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashmapIterOrder);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn sorted_and_order_insensitive_hash_iteration_is_blessed() {
        // The idiomatic collect-then-sort shape: a `let` binding's span
        // extends one statement forward, so the sort is visible. The
        // order-insensitive `sum` over `usize` is blessed outright.
        let src = concat!(
            "use std::collections::HashMap;\n",
            "pub fn f(m: &HashMap<u32, u32>) -> (Vec<u32>, usize) {\n",
            "    let mut v: Vec<u32> = m.keys().copied().collect::<Vec<_>>();\n",
            "    v.sort_unstable();\n",
            "    let n: usize = m.values().map(|x| *x as usize).sum();\n",
            "    (v, n)\n",
            "}\n",
        );
        let v = scan_source(&core_path(), src, &rules_for(&core_path()));
        assert!(v.is_empty(), "{v:?}");
        // Collecting without sorting stays flagged: the binding escapes
        // in hash order.
        let src = concat!(
            "use std::collections::HashMap;\n",
            "pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n",
            "    let v: Vec<u32> = m.keys().copied().collect::<Vec<_>>();\n",
            "    v\n",
            "}\n",
        );
        let v = scan_source(&core_path(), src, &rules_for(&core_path()));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashmapIterOrder);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn group_in_arrival_order_is_a_blessed_funnel() {
        let src = concat!(
            "use std::collections::HashMap;\n",
            "pub fn f(m: HashMap<u32, Vec<u32>>) -> Vec<(u32, Vec<u32>)> {\n",
            "    let mut out = Vec::new();\n",
            "    for (k, vs) in group_in_arrival_order(m.into_iter().collect()) { out.push((k, vs)); }\n",
            "    out\n",
            "}\n",
        );
        let v = scan_source(&core_path(), src, &rules_for(&core_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_sum_over_hash_iteration_is_flagged_as_float_reduce() {
        let src = concat!(
            "use std::collections::HashMap;\n",
            "pub fn f(m: &HashMap<u32, f64>) -> f64 {\n",
            "    m.values().sum::<f64>()\n",
            "}\n",
        );
        let v = scan_source(&core_path(), src, &rules_for(&core_path()));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatReduceOrder);
        // Integer sums stay blessed.
        let src = concat!(
            "use std::collections::HashMap;\n",
            "pub fn f(m: &HashMap<u32, usize>) -> usize {\n",
            "    m.values().sum::<usize>()\n",
            "}\n",
        );
        let v = scan_source(&core_path(), src, &rules_for(&core_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn error_context_requires_job_and_phase() {
        let path = PathBuf::from("crates/falcon-dataflow/src/runner.rs");
        let src =
            "pub fn f() -> DataflowError { DataflowError::PartitionMissing { partition: 3 } }\n";
        let v = scan_source(&path, src, &rules_for(&path));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ErrorContext);
        assert_eq!(v[0].token, "DataflowError::PartitionMissing");
        let src = "pub fn f() -> DataflowError { DataflowError::PartitionMissing { job: 1, phase: Phase::Reduce, partition: 3 } }\n";
        let v = scan_source(&path, src, &rules_for(&path));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn error_context_skips_match_patterns() {
        let path = PathBuf::from("crates/falcon-dataflow/src/runner.rs");
        let src = concat!(
            "pub fn f(e: &DataflowError) -> usize {\n",
            "    match e {\n",
            "        DataflowError::PartitionMissing { partition, .. } => *partition,\n",
            "        _ => 0,\n",
            "    }\n",
            "}\n",
        );
        let v = scan_source(&path, src, &rules_for(&path));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn transitive_sim_time_is_flagged_through_indirection() {
        let src = concat!(
            "pub fn hidden() -> std::time::Instant { std::time::Instant::now() }\n",
            "pub fn caller() { let _ = hidden(); }\n",
            "pub fn outer() { caller(); }\n",
        );
        let v = scan_source(&core_path(), src, &rules_for(&core_path()));
        let direct: Vec<_> = v.iter().filter(|v| v.rule == Rule::SimTime).collect();
        let transitive: Vec<_> = v
            .iter()
            .filter(|v| v.rule == Rule::SimTimeTransitive)
            .collect();
        assert_eq!(direct.len(), 1, "{v:?}");
        assert_eq!(transitive.len(), 2, "{v:?}"); // caller→hidden, outer→caller
        assert_eq!(transitive[0].line, 2);
        assert_eq!(transitive[1].line, 3);
    }

    #[test]
    fn transitive_sim_time_sees_across_files() {
        let files = [
            SourceFile {
                path: PathBuf::from("crates/falcon-core/src/a.rs"),
                source: "pub fn read_clock() -> std::time::Instant { std::time::Instant::now() }\n"
                    .into(),
            },
            SourceFile {
                path: PathBuf::from("crates/falcon-core/src/b.rs"),
                source: "pub fn indirect() { let _ = read_clock(); }\n".into(),
            },
        ];
        let v = scan_files(&files);
        assert!(
            v.iter().any(|v| v.rule == Rule::SimTimeTransitive
                && v.file.ends_with("b.rs")
                && v.token.contains("read_clock")),
            "{v:?}"
        );
    }

    #[test]
    fn calls_to_the_sanctioned_funnel_do_not_taint() {
        // wall_now lives in sim_time.rs, which is exempt: callers are
        // clean even though its body reads the wall clock.
        let files = [
            SourceFile {
                path: PathBuf::from("crates/falcon-dataflow/src/sim_time.rs"),
                source: "pub fn wall_now() -> std::time::Instant { std::time::Instant::now() }\n"
                    .into(),
            },
            SourceFile {
                path: PathBuf::from("crates/falcon-core/src/driver.rs"),
                source: "pub fn timed() { let _ = wall_now(); }\n".into(),
            },
        ];
        let v = scan_files(&files);
        assert!(v.is_empty(), "{v:?}");
    }
}
