//! Textual invariant linter for the Falcon workspace.
//!
//! The paper's system is a *hands-off cloud service*: once a job is
//! submitted nobody watches a terminal, so a worker panic is an outage and
//! nondeterminism makes simulated-time experiments unreproducible. Three
//! invariants are therefore enforced mechanically over the library source
//! (`syn` is unavailable offline, so this is a hand-rolled lexer over the
//! token-relevant subset of Rust — comments, strings and `cfg(test)`
//! regions are recognized and skipped):
//!
//! * **`no-panic`** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in operator
//!   (`falcon-core/src/ops/`), dataflow (`falcon-dataflow/src/`) or index
//!   (`falcon-index/src/`) library code. These paths run inside simulated
//!   cluster workers; a panic there kills a whole job.
//! * **`no-nondeterminism`** — no `thread_rng` / `from_entropy` /
//!   `SystemTime` / `RandomState` in any falcon library source. Identical
//!   seeds must give identical plans, candidates and timelines.
//! * **`sim-time`** — `Instant::now` only inside
//!   `falcon-dataflow/src/sim_time.rs` (the sanctioned [`wall_now`]
//!   funnel) and the `falcon-bench` harness. Everything else accounts time
//!   against the simulated cluster.
//! * **`wall-clock-retry`** — no `Instant::now` / `SystemTime::now` in
//!   `falcon-dataflow` or `falcon-crowd` library code (`sim_time.rs`
//!   excepted). Retry backoff, speculation and crowd re-post latency must
//!   be charged to the *simulated* clock; a wall-clock read in those
//!   paths silently breaks the fixed-seed ⇒ bit-identical-output
//!   invariant of fault-injected and resumed runs.
//!
//! A violation can be waived with a `// falcon-lint: allow(<rule>)`
//! comment on the same line, or on its own line immediately above the
//! offending *statement* (the waiver extends to the end of that
//! statement, so multi-line call chains need only one directive).
//!
//! [`wall_now`]: ../falcon_dataflow/sim_time/fn.wall_now.html

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No panicking constructs in operator/dataflow/index library code.
    NoPanic,
    /// No nondeterminism sources in library code.
    NoNondeterminism,
    /// `Instant::now` only in `sim_time.rs` and the bench harness.
    SimTime,
    /// No wall-clock reads in the fault-tolerant retry/re-post paths
    /// (`falcon-dataflow`, `falcon-crowd`).
    WallClockRetry,
}

impl Rule {
    /// The rule's name as written in `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoNondeterminism => "no-nondeterminism",
            Rule::SimTime => "sim-time",
            Rule::WallClockRetry => "wall-clock-retry",
        }
    }

    fn tokens(self) -> &'static [&'static str] {
        match self {
            Rule::NoPanic => &[
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ],
            Rule::NoNondeterminism => &["thread_rng", "from_entropy", "SystemTime", "RandomState"],
            Rule::SimTime => &["Instant::now"],
            Rule::WallClockRetry => &["Instant::now", "SystemTime::now"],
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in (as given to the scanner).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The matched token.
    pub token: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] `{}` — {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.token,
            self.snippet
        )
    }
}

/// Normalize a path to `/`-separated form for rule matching.
fn norm(path: &Path) -> String {
    path.to_string_lossy().replace('\\', "/")
}

/// Which rules apply to a file, by workspace-relative path.
pub fn rules_for(path: &Path) -> Vec<Rule> {
    let p = norm(path);
    let mut rules = Vec::new();
    if p.contains("falcon-core/src/ops/")
        || p.contains("falcon-dataflow/src/")
        || p.contains("falcon-index/src/")
    {
        rules.push(Rule::NoPanic);
    }
    if p.contains("falcon-core/src/")
        || p.contains("falcon-dataflow/src/")
        || p.contains("falcon-index/src/")
    {
        rules.push(Rule::NoNondeterminism);
    }
    let sim_time_exempt =
        p.ends_with("falcon-dataflow/src/sim_time.rs") || p.contains("falcon-bench/");
    if !sim_time_exempt {
        rules.push(Rule::SimTime);
    }
    if !sim_time_exempt && (p.contains("falcon-dataflow/src/") || p.contains("falcon-crowd/src/")) {
        rules.push(Rule::WallClockRetry);
    }
    rules
}

/// Per-line facts extracted by the lexer.
struct Line {
    /// Source with comments, string literals and char literals blanked.
    masked: String,
    /// Raw source (for snippets).
    raw: String,
    /// Rules waived on this line by `falcon-lint: allow(...)` directives.
    allows: Vec<Rule>,
    /// True when the directive comment was the only thing on the line, in
    /// which case the waiver extends through the following statement.
    standalone_allow: bool,
}

/// Lex `source` into masked lines plus allow-directive annotations.
///
/// Handles line comments, (nested) block comments, regular and raw string
/// literals, and char literals. Masked characters are replaced by spaces
/// so byte offsets and line numbers are preserved.
fn lex(source: &str) -> Vec<Line> {
    let bytes = source.as_bytes();
    let mut masked: Vec<u8> = Vec::with_capacity(bytes.len());
    // Comment spans, recorded so directives can be read back per line.
    let mut i = 0;
    while i < bytes.len() {
        let rest = &source[i..];
        if rest.starts_with("//") {
            let end = rest.find('\n').map_or(bytes.len(), |n| i + n);
            masked.extend(
                source[i..end]
                    .bytes()
                    .map(|b| if b == b'\n' { b } else { b' ' }),
            );
            i = end;
        } else if rest.starts_with("/*") {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if source[j..].starts_with("/*") {
                    depth += 1;
                    j += 2;
                } else if source[j..].starts_with("*/") {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            masked.extend(
                source[i..j]
                    .bytes()
                    .map(|b| if b == b'\n' { b } else { b' ' }),
            );
            i = j;
        } else if rest.starts_with("r#\"") || rest.starts_with("r\"") || rest.starts_with("r##\"") {
            // Raw string: count the hashes, find the closing quote+hashes.
            let hashes = rest[1..].bytes().take_while(|&b| b == b'#').count();
            let open = 1 + hashes + 1; // r + hashes + quote
            let close_pat: String = format!("\"{}", "#".repeat(hashes));
            let end = source[i + open..]
                .find(&close_pat)
                .map_or(bytes.len(), |n| i + open + n + close_pat.len());
            masked.extend(
                source[i..end]
                    .bytes()
                    .map(|b| if b == b'\n' { b } else { b' ' }),
            );
            i = end;
        } else if rest.starts_with('"') {
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let j = j.min(bytes.len());
            masked.extend(
                source[i..j]
                    .bytes()
                    .map(|b| if b == b'\n' { b } else { b' ' }),
            );
            i = j;
        } else if rest.starts_with('\'') {
            // Char literal or lifetime. A lifetime (`'a`) has no closing
            // quote within a couple of characters; a char literal does.
            let lit_end = source[i + 1..]
                .char_indices()
                .take(5)
                .find(|&(off, c)| c == '\'' && off != 0)
                .map(|(off, _)| i + 1 + off + 1);
            match lit_end {
                Some(j) if !rest.starts_with("'\\") || j > i + 2 => {
                    masked.extend(
                        source[i..j]
                            .bytes()
                            .map(|b| if b == b'\n' { b } else { b' ' }),
                    );
                    i = j;
                }
                _ => {
                    masked.push(bytes[i]);
                    i += 1;
                }
            }
        } else {
            masked.push(bytes[i]);
            i += 1;
        }
    }
    let masked = String::from_utf8_lossy(&masked).into_owned();

    let raw_lines: Vec<&str> = source.lines().collect();
    masked
        .lines()
        .enumerate()
        .map(|(n, m)| {
            let raw = raw_lines.get(n).copied().unwrap_or("");
            let mut allows = Vec::new();
            // Directives live in comments, so parse them from the raw line.
            if let Some(pos) = raw.find("falcon-lint:") {
                let tail = &raw[pos + "falcon-lint:".len()..];
                for rule in [
                    Rule::NoPanic,
                    Rule::NoNondeterminism,
                    Rule::SimTime,
                    Rule::WallClockRetry,
                ] {
                    if tail.contains(&format!("allow({})", rule.name())) {
                        allows.push(rule);
                    }
                }
            }
            let standalone_allow = !allows.is_empty() && m.trim().is_empty();
            Line {
                masked: m.to_string(),
                raw: raw.to_string(),
                allows,
                standalone_allow,
            }
        })
        .collect()
}

/// Line ranges (0-based, inclusive) covered by `#[cfg(test)]` items.
fn cfg_test_ranges(lines: &[Line]) -> Vec<(usize, usize)> {
    let masked: Vec<&str> = lines.iter().map(|l| l.masked.as_str()).collect();
    let joined = masked.join("\n");
    let mut ranges = Vec::new();
    let mut search_from = 0;
    while let Some(rel) = joined[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + rel;
        // Find the opening brace of the annotated item, then its match.
        let Some(open_rel) = joined[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0usize;
        let mut close = joined.len();
        for (off, b) in joined[open..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = open + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        let start_line = joined[..attr_at].bytes().filter(|&b| b == b'\n').count();
        let end_line = joined[..close].bytes().filter(|&b| b == b'\n').count();
        ranges.push((start_line, end_line));
        search_from = close.min(joined.len().saturating_sub(1)).max(attr_at + 1);
        if search_from >= joined.len() {
            break;
        }
    }
    ranges
}

/// Lint one file's source under the rules its path selects.
pub fn scan_source(path: &Path, source: &str, rules: &[Rule]) -> Vec<Violation> {
    if rules.is_empty() {
        return Vec::new();
    }
    let lines = lex(source);
    let test_ranges = cfg_test_ranges(&lines);
    let in_test = |n: usize| test_ranges.iter().any(|&(s, e)| n >= s && n <= e);

    // Resolve waivers: a standalone directive covers itself through the
    // end of the following statement (first subsequent line whose masked
    // text contains `;`, `{` or `}`).
    let mut waived: Vec<Vec<Rule>> = lines.iter().map(|l| l.allows.clone()).collect();
    for (n, line) in lines.iter().enumerate() {
        if !line.standalone_allow {
            continue;
        }
        for m in (n + 1)..lines.len() {
            for &r in &line.allows {
                if !waived[m].contains(&r) {
                    waived[m].push(r);
                }
            }
            let t = &lines[m].masked;
            if t.contains(';') || t.contains('{') || t.contains('}') {
                break;
            }
        }
    }

    let mut violations = Vec::new();
    for (n, line) in lines.iter().enumerate() {
        if in_test(n) {
            continue;
        }
        for &rule in rules {
            if waived[n].contains(&rule) {
                continue;
            }
            for &token in rule.tokens() {
                if line.masked.contains(token) {
                    violations.push(Violation {
                        file: path.to_path_buf(),
                        line: n + 1,
                        rule,
                        token,
                        snippet: line.raw.trim().to_string(),
                    });
                }
            }
        }
    }
    violations
}

/// Recursively collect `.rs` files under `dir`, skipping test/bench/
/// example/fixture directories and anything outside library source.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP_DIRS: [&str; 5] = ["tests", "benches", "examples", "fixtures", "target"];
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every library source file under `<root>/crates/`.
///
/// `root` is the workspace root. Vendored stub crates (`vendor/`) are not
/// Falcon code and are not scanned.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    collect_rs(&crates, &mut files)?;
    files.sort();
    let mut violations = Vec::new();
    for file in files {
        let source = fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let rules = rules_for(rel);
        violations.extend(scan_source(rel, &source, &rules));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_path() -> PathBuf {
        PathBuf::from("crates/falcon-core/src/ops/example.rs")
    }

    #[test]
    fn unwrap_in_operator_code_is_flagged() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoPanic);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_in_comment_or_string_is_ignored() {
        let src = concat!(
            "// calls .unwrap() somewhere\n",
            "/* panic! inside\n   block comment */\n",
            "pub fn f() -> &'static str {\n",
            "    \".unwrap() and panic! in a string\"\n",
            "}\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_module_is_skipped() {
        let src = concat!(
            "pub fn f() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { Some(1).unwrap(); panic!(\"x\") }\n",
            "}\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn same_line_allow_directive_waives() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // falcon-lint: allow(no-panic)\n}\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn standalone_allow_covers_the_following_statement() {
        let src = concat!(
            "pub fn f(x: Option<u32>) -> u32 {\n",
            "    // falcon-lint: allow(no-panic)\n",
            "    x\n",
            "        .unwrap()\n",
            "}\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_for_one_rule_does_not_waive_another() {
        let src =
            "pub fn f() { let _ = std::time::Instant::now(); } // falcon-lint: allow(no-panic)\n";
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SimTime);
    }

    #[test]
    fn nondeterminism_tokens_flagged_in_core_but_not_elsewhere() {
        let src = "pub fn f() { let _ = rand::thread_rng(); }\n";
        let core = PathBuf::from("crates/falcon-core/src/driver.rs");
        let v = scan_source(&core, src, &rules_for(&core));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoNondeterminism);
        // The CLI crate is not under the determinism contract.
        let cli = PathBuf::from("crates/falcon-cli/src/main.rs");
        let v = scan_source(&cli, src, &rules_for(&cli));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn sim_time_exemptions_hold() {
        let src = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
        let sanctioned = PathBuf::from("crates/falcon-dataflow/src/sim_time.rs");
        assert!(scan_source(&sanctioned, src, &rules_for(&sanctioned)).is_empty());
        let bench = PathBuf::from("crates/falcon-bench/src/lib.rs");
        assert!(scan_source(&bench, src, &rules_for(&bench)).is_empty());
        let elsewhere = PathBuf::from("crates/falcon-table/src/lib.rs");
        let v = scan_source(&elsewhere, src, &rules_for(&elsewhere));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::SimTime);
    }

    #[test]
    fn wall_clock_reads_in_retry_paths_are_flagged_and_waivable() {
        let src = "pub fn deadline() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
        let crowd = PathBuf::from("crates/falcon-crowd/src/vote.rs");
        let v = scan_source(&crowd, src, &rules_for(&crowd));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::WallClockRetry);
        let waived = "pub fn deadline() -> std::time::SystemTime { std::time::SystemTime::now() } // falcon-lint: allow(wall-clock-retry)\n";
        assert!(scan_source(&crowd, waived, &rules_for(&crowd)).is_empty());
        // The sanctioned wall-clock funnel stays exempt (checked with
        // `Instant::now`; `SystemTime` anywhere in falcon-dataflow is
        // already no-nondeterminism territory).
        let funnel = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
        let sanctioned = PathBuf::from("crates/falcon-dataflow/src/sim_time.rs");
        assert!(scan_source(&sanctioned, funnel, &rules_for(&sanctioned)).is_empty());
        // Outside the retry paths the rule does not apply (sim-time and
        // no-nondeterminism still govern those files).
        let core = PathBuf::from("crates/falcon-core/src/driver.rs");
        assert!(!rules_for(&core).contains(&Rule::WallClockRetry));
    }

    #[test]
    fn raw_strings_and_lifetimes_do_not_confuse_the_lexer() {
        let src = concat!(
            "pub fn f<'a>(s: &'a str) -> &'a str {\n",
            "    let _ = r\"panic! .unwrap()\";\n",
            "    let _c = '\\'';\n",
            "    s\n",
            "}\n",
        );
        let v = scan_source(&ops_path(), src, &rules_for(&ops_path()));
        assert!(v.is_empty(), "{v:?}");
    }
}
