//! Shared infrastructure for the benchmark binaries that regenerate the
//! paper's tables and figures (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).
//!
//! Every binary accepts:
//!
//! * `--scale <f>` — multiplier on each dataset's default laptop scale
//!   (1.0 ≈ a few thousand tuples; the paper's full sizes are reached
//!   with the per-dataset `paper_scale` noted below, at real cost in run
//!   time),
//! * `--runs <n>` — repetitions to average (the paper uses 3),
//! * `--seed <n>` — base RNG seed.

use falcon::prelude::*;
use std::time::Duration;

/// Default laptop-friendly scales per dataset, as a fraction of the
/// paper's full sizes. At `--scale 1.0` these give roughly
/// 128×1.1K (products), 2K×2K (songs), 2.7K×3.8K (citations).
pub fn base_scale(dataset: &str) -> f64 {
    match dataset {
        "products" => 0.05,
        "songs" => 0.002,
        "citations" => 0.0015,
        _ => panic!("unknown dataset {dataset}"),
    }
}

/// The three paper datasets in presentation order.
pub const DATASETS: [&str; 3] = ["products", "songs", "citations"];

/// Simple CLI flag parsing: `--key value` pairs.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parse from the process arguments.
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--key`, parsed.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        let flag = format!("--{key}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Presence of a bare `--flag`.
    pub fn has(&self, key: &str) -> bool {
        let flag = format!("--{key}");
        self.raw.iter().any(|a| a == &flag)
    }
}

/// Generate a dataset at `scale × base_scale(dataset)`.
pub fn dataset(name: &str, scale: f64, seed: u64) -> EmDataset {
    falcon::datagen::generate(name, base_scale(name) * scale, seed)
}

/// The benchmark-standard Falcon configuration: simulated 10-node
/// cluster, sample scaled to the workload, paper crowd parameters.
pub fn standard_config(sample_size: usize) -> FalconConfig {
    FalconConfig {
        sample_size,
        // The paper's y = 100 assumes million-tuple tables; at bench scale
        // a smaller fan-out lets the sample reach enough B tuples to
        // contain a healthy number of matches.
        sample_fanout: 20,
        force_plan: Some(PlanKind::BlockAndMatch),
        ..FalconConfig::default()
    }
}

/// One run with the paper's simulated crowd (5% error, 1.5 min/HIT).
pub fn run_once(
    data: &EmDataset,
    cfg: FalconConfig,
    error: f64,
    seed: u64,
) -> falcon::core::driver::RunReport {
    let truth = GroundTruth::new(data.truth.iter().copied());
    let crowd = RandomWorkerCrowd::new(truth, error, seed);
    Falcon::new(cfg).run(&data.a, &data.b, crowd)
}

/// Render a duration like the paper's tables (`2h 7m`, `52m`, `31m 52s`).
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs();
    if s >= 3600 {
        format!("{}h {}m {}s", s / 3600, (s % 3600) / 60, s % 60)
    } else if s >= 60 {
        format!("{}m {}s", s / 60, s % 60)
    } else if s > 0 {
        format!("{}s", s)
    } else {
        format!("{}ms", d.as_millis())
    }
}

/// Average of a slice of f64.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Print a separator-framed table title.
pub fn title(t: &str) {
    println!("\n{}", "=".repeat(t.len()));
    println!("{t}");
    println!("{}", "=".repeat(t.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_dur_shapes() {
        assert_eq!(fmt_dur(Duration::from_secs(7320)), "2h 2m 0s");
        assert_eq!(fmt_dur(Duration::from_secs(61)), "1m 1s");
        assert_eq!(fmt_dur(Duration::from_secs(9)), "9s");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12ms");
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn base_scales_known() {
        for d in DATASETS {
            assert!(base_scale(d) > 0.0);
        }
    }
}
