//! CSV ingest throughput: the streaming columnar reader vs the original
//! line-at-a-time row reader (replicated here as the baseline). Emits
//! `BENCH_ingest.json` with rows/sec, MB/sec and peak allocation bytes
//! for both paths, plus the speedup and peak-memory ratio.
//!
//! Peak memory is tracked with a counting wrapper around the system
//! allocator: `peak - live_before` over an ingest run is the transient
//! high-water mark that run added (table + reader scratch).
#![allow(unsafe_code)] // the GlobalAlloc wrapper below is the one sanctioned use

use falcon::table::csv::{self, parse_record};
use falcon::table::{AttrType, Schema, Table, TableRepr, Value};
use falcon_bench::{dataset, mean, title, Args};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{self, BufRead};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Counting allocator: tracks live bytes and the high-water mark.
struct TrackingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(grew: usize) {
    let live = LIVE.fetch_add(grew, Ordering::Relaxed) + grew;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Reset the high-water mark to the current live size and return the
/// baseline to subtract from later readings.
fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

/// Replica of the pre-columnar reader: `BufRead::lines()`, one
/// `parse_record` per line, one `Value` per cell, row-major storage.
fn read_table_rowwise<R: BufRead>(name: &str, reader: R) -> io::Result<Table> {
    let mut header: Option<Vec<String>> = None;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line);
        match &header {
            None => header = Some(fields),
            Some(h) => {
                if fields.len() != h.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("row arity {} != header {}", fields.len(), h.len()),
                    ));
                }
                rows.push(fields.iter().map(|f| Value::parse(f)).collect());
            }
        }
    }
    let names = header.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))?;
    let schema = Schema::new(names.into_iter().map(|n| (n, AttrType::Str)));
    Table::try_new_with(name, schema, rows, TableRepr::Legacy)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

struct ModeStats {
    wall: Vec<f64>,
    peak: usize,
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let runs: usize = args.get("runs", 3);
    let seed: u64 = args.get("seed", 1);
    let name: String = args.get("dataset", "songs".to_string());

    let d = dataset(&name, scale, seed);
    let mut a_csv = Vec::new();
    csv::write_table(&d.a, &mut a_csv).expect("write A");
    let mut b_csv = Vec::new();
    csv::write_table(&d.b, &mut b_csv).expect("write B");
    let total_rows = d.a.len() + d.b.len();
    let total_bytes = a_csv.len() + b_csv.len();
    drop(d);

    title(&format!(
        "csv ingest: {name} {total_rows} rows, {:.2} MB, {runs} runs",
        total_bytes as f64 / 1e6,
    ));

    let mut stats = Vec::new();
    let mut first_rows: Vec<Table> = Vec::new();
    for columnar in [false, true] {
        let mut wall = Vec::new();
        let mut peak = 0usize;
        for r in 0..runs {
            let baseline = reset_peak();
            let t0 = Instant::now();
            let (a, b) = if columnar {
                (
                    csv::read_table_with("a", a_csv.as_slice(), TableRepr::Columnar)
                        .expect("read A"),
                    csv::read_table_with("b", b_csv.as_slice(), TableRepr::Columnar)
                        .expect("read B"),
                )
            } else {
                (
                    read_table_rowwise("a", a_csv.as_slice()).expect("read A"),
                    read_table_rowwise("b", b_csv.as_slice()).expect("read B"),
                )
            };
            wall.push(t0.elapsed().as_secs_f64());
            peak = peak.max(PEAK.load(Ordering::Relaxed).saturating_sub(baseline));
            if r == 0 {
                first_rows.push(a);
                let _ = b;
            }
        }
        stats.push(ModeStats { wall, peak });
    }

    // Sanity: both paths parse the same rows.
    assert_eq!(
        first_rows[0].rows(),
        first_rows[1].rows(),
        "row and columnar ingest diverged"
    );

    let report = |s: &ModeStats| {
        (
            mean(&s.wall),
            total_rows as f64 / mean(&s.wall),
            total_bytes as f64 / 1e6 / mean(&s.wall),
        )
    };
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14}",
        "mode", "mean wall", "rows/sec", "MB/sec", "peak alloc"
    );
    for (label, s) in [("legacy", &stats[0]), ("columnar", &stats[1])] {
        let (w, rps, mbps) = report(s);
        println!(
            "{label:<10} {w:>11.3}s {rps:>12.0} {mbps:>12.1} {:>13.2}MB",
            s.peak as f64 / 1e6
        );
    }
    let (lw, lr, lm) = report(&stats[0]);
    let (cw, cr, cm) = report(&stats[1]);
    let speedup = lw / cw;
    let mem_ratio = stats[1].peak as f64 / stats[0].peak.max(1) as f64;
    println!("speedup: {speedup:.2}x, columnar peak memory: {mem_ratio:.2}x of legacy");

    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"dataset\": \"{name}\",\n  \"scale\": {scale},\n  \"runs\": {runs},\n  \"rows\": {total_rows},\n  \"input_bytes\": {total_bytes},\n  \"legacy\": {{ \"mean_wall_secs\": {lw:.6}, \"rows_per_sec\": {lr:.1}, \"mb_per_sec\": {lm:.2}, \"peak_alloc_bytes\": {} }},\n  \"columnar\": {{ \"mean_wall_secs\": {cw:.6}, \"rows_per_sec\": {cr:.1}, \"mb_per_sec\": {cm:.2}, \"peak_alloc_bytes\": {} }},\n  \"speedup\": {speedup:.3},\n  \"peak_mem_ratio\": {mem_ratio:.3},\n  \"rows_identical\": true\n}}\n",
        stats[0].peak, stats[1].peak,
    );
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("\nwrote BENCH_ingest.json");
}
