//! Table 4: per-operator run times, first run of each dataset. For the
//! masked operators (`apply_block_rules`, matching-stage `al_matcher`)
//! the unoptimized time is shown in parentheses, as in the paper.

use falcon::prelude::OptFlags;
use falcon_bench::{dataset, fmt_dur, run_once, standard_config, title, Args, DATASETS};
use std::time::Duration;

const OPS: [&str; 10] = [
    "sample_pairs",
    "gen_fvs_b",
    "al_matcher_b",
    "get_block_rules",
    "eval_rules",
    "sel_opt_seq",
    "apply_block_rules",
    "gen_fvs_m",
    "al_matcher_m",
    "apply_matcher",
];

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);

    title("Table 4: Falcon's run times per operator (first run per dataset)");
    println!(
        "{:<11} {}",
        "Dataset",
        OPS.map(|o| format!("{o:>18}")).join("")
    );
    for name in DATASETS {
        let d = dataset(name, scale, seed);
        // Optimized run.
        let opt = run_once(&d, standard_config(8_000), 0.05, seed);
        // Unoptimized twin (same seeds) for the parenthesized numbers.
        let mut cfg = standard_config(8_000);
        cfg.opt = OptFlags::none();
        let unopt = run_once(&d, cfg, 0.05, seed);
        let o_times = opt.op_times();
        let u_times = unopt.op_times();
        let mut row = format!("{name:<11}");
        for op in OPS {
            let o = o_times.get(op).copied().unwrap_or(Duration::ZERO);
            let u = u_times.get(op).copied().unwrap_or(Duration::ZERO);
            let cell = if u > o + Duration::from_millis(5) {
                format!("{} ({})", fmt_dur(o), fmt_dur(u))
            } else {
                fmt_dur(o)
            };
            row.push_str(&format!("{cell:>18}"));
        }
        println!("{row}");
        // Masked work moved off the critical path:
        let masked = opt
            .machine_time()
            .saturating_sub(opt.unmasked_machine_time());
        println!(
            "{:<11}   (machine {} of which {} masked; crowd {}; total {})",
            "",
            fmt_dur(opt.machine_time()),
            fmt_dur(masked),
            fmt_dur(opt.crowd_time()),
            fmt_dur(opt.total_time()),
        );
    }
}
