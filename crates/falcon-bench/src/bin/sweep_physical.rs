//! Section 11.2, `apply_blocking_rules`: compare the six physical
//! operators on the same learned rule sequence, and show how the
//! Section 10.1 selection rules react to shrinking mapper memory (the
//! paper's 2 GB / 1 GB / 500 MB experiment, scaled to the actual index
//! sizes of this run).

use falcon::core::features::generate_features;
use falcon::core::indexing::{predicate_key, BuiltIndexes, ConjunctSpecs};
use falcon::core::ops::al_matcher::{al_matcher, AlConfig};
use falcon::core::ops::eval_rules::{eval_rules, EvalConfig};
use falcon::core::ops::gen_fvs::gen_fvs;
use falcon::core::ops::get_blocking_rules::get_blocking_rules;
use falcon::core::ops::sample_pairs::sample_pairs;
use falcon::core::ops::select_opt_seq::{select_opt_seq, SeqConfig};
use falcon::core::physical::{self, estimate_table_bytes, PhysicalOp};
use falcon::core::timeline::Timeline;
use falcon::prelude::*;
use falcon_bench::{dataset, fmt_dur, title, Args};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);
    let name: String = args.get("dataset", "songs".to_string());

    let d = dataset(&name, scale, seed);
    let cluster = Cluster::new(ClusterConfig::default());
    let truth = GroundTruth::new(d.truth.iter().copied());
    let mut session = CrowdSession::new(OracleCrowd::new(truth));
    let mut tl = Timeline::new();

    // Learn a rule sequence hands-off (oracle crowd isolates machine
    // behaviour).
    let lib = generate_features(&d.a, &d.b);
    let sample = sample_pairs(&cluster, &d.a, &d.b, 8_000, 40, seed).expect("sample");
    let s_fvs = gen_fvs(&cluster, &d.a, &d.b, &sample.pairs, &lib.blocking).expect("gen_fvs");
    let higher: Vec<bool> = lib
        .blocking
        .features
        .iter()
        .map(|f| f.sim.higher_is_similar())
        .collect();
    let al = al_matcher(
        &cluster,
        &mut session,
        &mut tl,
        "al",
        &s_fvs.fvs,
        &higher,
        &AlConfig::default(),
    )
    .expect("al");
    let ranked = get_blocking_rules(&al.forest, &s_fvs.fvs, 20, &higher);
    let eval = eval_rules(
        &mut session,
        &mut tl,
        &ranked,
        &s_fvs.fvs,
        &EvalConfig::default(),
    );
    let seq = select_opt_seq(&ranked, &eval.retained, &s_fvs.fvs, &SeqConfig::default());
    println!(
        "dataset {name}: {}x{} tuples, sequence of {} rules",
        d.a.len(),
        d.b.len(),
        seq.seq.len()
    );

    let conjuncts = ConjunctSpecs::derive(&seq.seq, &lib.blocking);
    let mut built = BuiltIndexes::new();
    for spec in conjuncts.all_specs() {
        built.build_spec(&cluster, &d.a, &spec).expect("build");
    }

    title("Physical operator comparison (identical outputs; simulated 10-node times)");
    println!(
        "{:<16} {:>12} {:>14} {:>10}",
        "operator", "candidates", "sim time", "recall%"
    );
    let budget: u128 = args.get("max-pairs", 100_000_000u128);
    for op in [
        PhysicalOp::ApplyAll,
        PhysicalOp::ApplyGreedy,
        PhysicalOp::ApplyConjunct,
        PhysicalOp::ApplyPredicate,
        PhysicalOp::MapSide,
        PhysicalOp::ReduceSplit,
    ] {
        match physical::execute(
            op,
            &cluster,
            &d.a,
            &d.b,
            &lib.blocking,
            &seq.seq,
            &conjuncts,
            &built,
            &seq.rule_selectivities,
            budget,
        ) {
            Ok(out) => {
                let recall =
                    falcon::core::metrics::blocking_recall(&out.candidates, &d.truth) * 100.0;
                println!(
                    "{:<16} {:>12} {:>14} {:>9.1}",
                    out.op.name(),
                    out.candidates.len(),
                    fmt_dur(out.duration),
                    recall
                );
            }
            Err(e) => println!("{:<16} KILLED: {e}", op.name()),
        }
    }

    // Memory sweep: express budgets relative to the built index sizes so
    // the same selection transitions the paper saw (AA -> AC/AP -> base)
    // appear at any scale.
    let filterable = conjuncts.filterable();
    let conj_bytes: Vec<usize> = filterable
        .iter()
        .map(|&ci| {
            let keys: Vec<String> = conjuncts.specs[ci]
                .iter()
                .map(|s| predicate_key(&s.as_ref().unwrap().0))
                .collect();
            built.bytes_of(&keys)
        })
        .collect();
    let total: usize = conj_bytes.iter().sum();
    let max_conj = conj_bytes.iter().copied().max().unwrap_or(0);
    let min_conj = conj_bytes.iter().copied().min().unwrap_or(0);
    title("Mapper-memory sweep (Section 10.1 selection rules)");
    println!("index bytes: total {total}, largest conjunct {max_conj}, smallest {min_conj}");
    println!("{:>14} {:>16}", "mapper memory", "selected op");
    for (label, budget) in [
        ("4x total", total * 4),
        ("1x total", total),
        ("largest conj", max_conj),
        ("smallest conj", min_conj.max(1)),
        ("tiny", max_conj / 8),
        ("zero", 0),
    ] {
        let op = physical::select_physical(
            &conjuncts,
            &built,
            &seq.rule_selectivities,
            seq.selectivity,
            budget,
            estimate_table_bytes(&d.a),
            0.8,
        );
        println!("{label:>14} {:>16}", op.name());
    }
}
