//! Tables 2 & 3: overall Falcon performance on the three datasets —
//! accuracy, crowd cost, machine/crowd/total time, candidate-set size.
//! Default prints per-dataset averages over `--runs` (Table 2); pass
//! `--per-run` for every individual run (Table 3).

use falcon_bench::{dataset, fmt_dur, mean, run_once, standard_config, title, Args, DATASETS};
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let runs: u64 = args.get("runs", 3);
    let seed: u64 = args.get("seed", 1);
    let per_run = args.has("per-run");

    title(if per_run {
        "Table 3: All runs of Falcon on the data sets"
    } else {
        "Table 2: Overall performance of Falcon (averaged over runs)"
    });
    println!(
        "{:<11} {:>4} {:>6} {:>6} {:>6} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "Dataset", "run", "P%", "R%", "F1%", "Cost(#Q)", "Machine", "Crowd", "Total", "CandSet"
    );

    for name in DATASETS {
        let mut ps = vec![];
        let mut rs = vec![];
        let mut f1s = vec![];
        let mut costs = vec![];
        let mut qs = vec![];
        let mut machine = vec![];
        let mut crowd = vec![];
        let mut total = vec![];
        let mut cands: Vec<usize> = vec![];
        for r in 0..runs {
            let d = dataset(name, scale, seed + r);
            let cfg = standard_config(8_000);
            let report = run_once(&d, cfg, 0.05, seed * 100 + r);
            let q = report.quality(&d.truth);
            ps.push(q.precision * 100.0);
            rs.push(q.recall * 100.0);
            f1s.push(q.f1 * 100.0);
            costs.push(report.ledger.cost);
            qs.push(report.ledger.questions as f64);
            machine.push(report.machine_time().as_secs_f64());
            crowd.push(report.crowd_time().as_secs_f64());
            total.push(report.total_time().as_secs_f64());
            cands.push(report.candidate_size.unwrap_or(0));
            if per_run {
                println!(
                    "{:<11} {:>4} {:>6.1} {:>6.1} {:>6.1} {:>8.2} ({:>3}) {:>12} {:>12} {:>12} {:>10}",
                    name,
                    r + 1,
                    q.precision * 100.0,
                    q.recall * 100.0,
                    q.f1 * 100.0,
                    report.ledger.cost,
                    report.ledger.questions,
                    fmt_dur(report.machine_time()),
                    fmt_dur(report.crowd_time()),
                    fmt_dur(report.total_time()),
                    report.candidate_size.unwrap_or(0),
                );
            }
        }
        if !per_run {
            let cand_lo = cands.iter().min().copied().unwrap_or(0);
            let cand_hi = cands.iter().max().copied().unwrap_or(0);
            println!(
                "{:<11} {:>4} {:>6.1} {:>6.1} {:>6.1} {:>8.2} ({:>3}) {:>12} {:>12} {:>12} {:>10}",
                name,
                format!("x{runs}"),
                mean(&ps),
                mean(&rs),
                mean(&f1s),
                mean(&costs),
                mean(&qs) as usize,
                fmt_dur(Duration::from_secs_f64(mean(&machine))),
                fmt_dur(Duration::from_secs_f64(mean(&crowd))),
                fmt_dur(Duration::from_secs_f64(mean(&total))),
                format!("{cand_lo}-{cand_hi}"),
            );
        }
    }
    println!(
        "\nPaper (full scale): products P90.9 R74.5 F81.9 $57.6 | songs P96.0 R99.3 F97.6 $54.0 | citations P92.0 R98.5 F95.2 $65.5"
    );
    println!(
        "Crowd cost cap: ${:.2}",
        falcon::crowd::session::paper_cost_cap()
    );
}
