//! Figure 9: F1, total run time and crowd cost as the simulated crowd's
//! error rate varies (0%, 5%, 10%, 15%), averaged over `--runs`.

use falcon_bench::{dataset, fmt_dur, mean, run_once, standard_config, title, Args, DATASETS};
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let runs: u64 = args.get("runs", 3);
    let seed: u64 = args.get("seed", 1);

    title("Figure 9: Effect of crowd error rate on F1, run time and cost");
    println!(
        "{:<11} {:>7} {:>8} {:>12} {:>10}",
        "Dataset", "err%", "F1%", "Total", "Cost$"
    );
    for name in DATASETS {
        for err in [0.0, 0.05, 0.10, 0.15] {
            let mut f1s = vec![];
            let mut totals = vec![];
            let mut costs = vec![];
            for r in 0..runs {
                let d = dataset(name, scale, seed + r);
                let report = run_once(&d, standard_config(8_000), err, seed * 7 + r);
                f1s.push(report.quality(&d.truth).f1 * 100.0);
                totals.push(report.total_time().as_secs_f64());
                costs.push(report.ledger.cost);
            }
            println!(
                "{:<11} {:>7.0} {:>8.1} {:>12} {:>10.2}",
                name,
                err * 100.0,
                mean(&f1s),
                fmt_dur(Duration::from_secs_f64(mean(&totals))),
                mean(&costs),
            );
        }
    }
    println!("\nExpected shape (paper): F1 decreases and run time increases minimally/gracefully with error; no clear cost trend.");
}
