//! The full iterative workflow (Figure 1) vs the single-pass plan of
//! Figure 3.a: F1, crowd questions and cost per extra Matcher → Accuracy
//! Estimator → Difficult Pairs round.

use falcon::prelude::*;
use falcon_bench::{dataset, standard_config, title, Args, DATASETS};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);

    title("Iterative workflow: accuracy vs crowd budget per outer round");
    println!(
        "{:<11} {:>7} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "Dataset", "rounds", "F1%", "questions", "cost$", "estP%", "estR%"
    );
    for name in DATASETS {
        for max_outer in [1usize, 2, 3] {
            let d = dataset(name, scale, seed);
            let truth = GroundTruth::new(d.truth.iter().copied());
            let crowd = RandomWorkerCrowd::new(truth, 0.05, seed * 3 + max_outer as u64);
            let (report, estimates) =
                Falcon::new(standard_config(8_000)).run_workflow(&d.a, &d.b, crowd, max_outer);
            let q = report.quality(&d.truth);
            let last = estimates.last();
            println!(
                "{:<11} {:>7} {:>8.1} {:>10} {:>10.2} {:>8.1} {:>8.1}",
                name,
                format!("{}/{}", estimates.len(), max_outer),
                q.f1 * 100.0,
                report.ledger.questions,
                report.ledger.cost,
                last.map_or(0.0, |e| e.precision * 100.0),
                last.map_or(0.0, |e| e.recall * 100.0),
            );
        }
    }
    println!("\nExpected shape: extra rounds cost more questions; F1 holds or improves; the crowd-estimated P/R tracks the true quality.");
}
