//! Section 11.4, active-learning iteration-cap sensitivity: F1, crowd
//! time and cost as the cap `k` rises from 30 toward 100. The paper found
//! all runs converge before 100 and F1 barely moves, while time and cost
//! grow — justifying the cap at 30.

use falcon_bench::{dataset, fmt_dur, run_once, standard_config, title, Args, DATASETS};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);

    title("AL iteration-cap sweep: F1 / crowd time / cost vs k");
    println!(
        "{:<11} {:>5} {:>8} {:>9} {:>12} {:>10}",
        "Dataset", "k", "F1%", "questions", "Crowd", "Cost$"
    );
    for name in DATASETS {
        for k in [10usize, 30, 60, 100] {
            let d = dataset(name, scale, seed);
            let mut cfg = standard_config(8_000);
            cfg.al.max_iterations = k;
            let report = run_once(&d, cfg, 0.05, seed);
            let q = report.quality(&d.truth);
            println!(
                "{:<11} {:>5} {:>8.1} {:>9} {:>12} {:>10.2}",
                name,
                k,
                q.f1 * 100.0,
                report.ledger.questions,
                fmt_dur(report.crowd_time()),
                report.ledger.cost
            );
        }
    }
    println!("\nExpected shape (paper): F1 fluctuates in a small range; crowd time and cost grow with k until convergence kicks in.");
}
