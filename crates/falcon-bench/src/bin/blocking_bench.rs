//! Signature pre-filter benchmark: run `apply_blocking_rules` with the
//! pre-filter disabled (exact probes only) and enabled (Bloom-signature
//! popcount gate before the exact filters), on the same hand-built rule
//! sequence, and emit `BENCH_blocking.json` with the candidate-probe
//! reduction and the end-to-end blocking wall-time speedup. The final
//! candidate sets of the two paths are asserted byte-identical — the
//! pre-filter is provably lossless, so it may only change how much work
//! the probes and reducers do, never what survives.
//!
//! Runs at 10× the standard bench scale by default (`--scale` multiplies
//! further) so the probe volume is large enough for timing to be stable.

use falcon::core::features::generate_features;
use falcon::core::indexing::{BuiltIndexes, ConjunctSpecs, PreFilterConfig};
use falcon::core::physical::{self, BlockingStats, PhysicalOp};
use falcon::core::rules::{Predicate, Rule, RuleSequence};
use falcon::forest::SplitOp;
use falcon::prelude::*;
use falcon_bench::{dataset, mean, title, Args};
use std::time::Instant;

/// Build a drop-rule sequence from the dataset's set-similarity blocking
/// features: up to `n` single-predicate rules `sim(attr) <= t -> drop`,
/// whose complements are the signature-accelerated set-sim filters. The
/// default single-rule sequence sends every probe survivor straight to
/// exact rule evaluation, which is where the pre-filter's pruning pays;
/// longer sequences shift the balance toward the conjunct intersection.
fn fixture_rules(
    features: &falcon::core::features::FeatureSet,
    threshold: f64,
    n: usize,
) -> RuleSequence {
    let mut rules = Vec::new();
    let mut seen_attrs = std::collections::HashSet::new();
    for (i, f) in features.features.iter().enumerate() {
        if f.sim.is_set_based() && seen_attrs.insert(f.a_attr.clone()) {
            rules.push(Rule {
                predicates: vec![Predicate {
                    feature: i,
                    op: SplitOp::Le,
                    threshold,
                    nan_is_high: true,
                }],
            });
        }
        if rules.len() == n {
            break;
        }
    }
    assert!(!rules.is_empty(), "dataset has no set-similarity feature");
    RuleSequence::new(rules)
}

struct PathResult {
    wall: Vec<f64>,
    build_secs: f64,
    candidates: Vec<falcon::table::IdPair>,
    stats: BlockingStats,
}

#[allow(clippy::too_many_arguments)]
fn run_path(
    label: &str,
    cluster: &Cluster,
    a: &falcon::table::Table,
    b: &falcon::table::Table,
    features: &falcon::core::features::FeatureSet,
    seq: &RuleSequence,
    prefilter: &PreFilterConfig,
    runs: usize,
) -> PathResult {
    let conjuncts = ConjunctSpecs::derive(seq, features).with_signatures(prefilter);
    let t0 = Instant::now();
    let mut built = BuiltIndexes::new();
    for spec in conjuncts.all_specs() {
        built.build_spec(cluster, a, &spec).expect("build");
    }
    let build_secs = t0.elapsed().as_secs_f64();
    let mut wall = Vec::new();
    let mut out = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let r = physical::execute(
            PhysicalOp::ApplyAll,
            cluster,
            a,
            b,
            features,
            seq,
            &conjuncts,
            &built,
            &vec![0.5; seq.len()],
            1 << 60,
        )
        .unwrap_or_else(|e| panic!("{label}: {e}"));
        wall.push(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    let out = out.expect("at least one run");
    println!(
        "{label:<12} wall {:.3}s (build {build_secs:.3}s), {} candidates",
        mean(&wall),
        out.candidates.len()
    );
    for c in &out.blocking.conjuncts {
        println!(
            "  conjunct[{}] modes [{}]: {} examined, {} sig-pruned, {} exact-pruned, {} survived",
            c.conjunct,
            c.modes.join(", "),
            c.pairs_examined,
            c.pruned_by_signature,
            c.pruned_by_exact,
            c.survived
        );
    }
    PathResult {
        wall,
        build_secs,
        candidates: out.candidates,
        stats: out.blocking,
    }
}

fn main() {
    let args = Args::parse();
    // 10x the standard bench scale: probe volume large enough that the
    // popcount gate's savings dominate timing noise.
    let scale: f64 = args.get("scale", 1.0) * 10.0;
    let runs: usize = args.get("runs", 3);
    let seed: u64 = args.get("seed", 1);
    let name: String = args.get("dataset", "songs".to_string());
    let threshold: f64 = args.get("threshold", 0.4);
    let words: usize = args.get("words", PreFilterConfig::default().words);
    let n_rules: usize = args.get("rules", 1);

    let d = dataset(&name, scale, seed);
    let cluster = Cluster::new(ClusterConfig::default());
    let lib = generate_features(&d.a, &d.b);
    let seq = fixture_rules(&lib.blocking, threshold, n_rules);
    println!(
        "dataset {name}: {}x{} tuples, {} drop rules at threshold {threshold}, {words}-word signatures",
        d.a.len(),
        d.b.len(),
        seq.len()
    );

    title("Blocking with and without the signature pre-filter");
    let exact = run_path(
        "exact",
        &cluster,
        &d.a,
        &d.b,
        &lib.blocking,
        &seq,
        &PreFilterConfig {
            enabled: false,
            words: 0,
        },
        runs,
    );
    let pre = run_path(
        "prefiltered",
        &cluster,
        &d.a,
        &d.b,
        &lib.blocking,
        &seq,
        &PreFilterConfig {
            enabled: true,
            words,
        },
        runs,
    );

    // The load-bearing assertion: at the final post-rule-evaluation level
    // the two paths are equivalent — identical candidate pairs.
    assert_eq!(
        exact.candidates, pre.candidates,
        "pre-filtered candidates diverge from the exact path"
    );

    // Candidate-probe reduction: probes that had to run the exact filter
    // + reducer pipeline. Without signatures every examined probe pays
    // that cost; the popcount gate refutes `pruned_by_signature` of them
    // before any exact work.
    let exact_probes = exact.stats.pruned_by_exact() + exact.stats.survived();
    let pre_probes = pre.stats.pruned_by_exact() + pre.stats.survived();
    let probe_reduction = exact_probes as f64 / pre_probes.max(1) as f64;
    let wall_speedup = mean(&exact.wall) / mean(&pre.wall);
    println!(
        "\ncandidate probes reaching exact filters: {exact_probes} -> {pre_probes} ({probe_reduction:.2}x reduction)"
    );
    println!(
        "blocking wall time: {:.3}s -> {:.3}s ({wall_speedup:.2}x speedup)",
        mean(&exact.wall),
        mean(&pre.wall)
    );

    let modes: Vec<String> = pre
        .stats
        .conjuncts
        .iter()
        .map(|c| format!("\"{}\"", c.modes.join(",")))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"blocking\",\n  \"dataset\": \"{name}\",\n  \"scale\": {scale},\n  \"runs\": {runs},\n  \"rows_a\": {},\n  \"rows_b\": {},\n  \"rules\": {},\n  \"threshold\": {threshold},\n  \"signature_words\": {words},\n  \"planned_modes\": [{}],\n  \"exact\": {{ \"mean_wall_secs\": {:.6}, \"build_secs\": {:.6}, \"pairs_examined\": {}, \"pruned_by_exact\": {}, \"survived\": {} }},\n  \"prefiltered\": {{ \"mean_wall_secs\": {:.6}, \"build_secs\": {:.6}, \"pairs_examined\": {}, \"pruned_by_signature\": {}, \"pruned_by_exact\": {}, \"survived\": {} }},\n  \"candidate_probe_reduction\": {probe_reduction:.3},\n  \"wall_speedup\": {wall_speedup:.3},\n  \"final_sets_identical\": true\n}}\n",
        d.a.len(),
        d.b.len(),
        seq.len(),
        modes.join(", "),
        mean(&exact.wall),
        exact.build_secs,
        exact.stats.pairs_examined(),
        exact.stats.pruned_by_exact(),
        exact.stats.survived(),
        mean(&pre.wall),
        pre.build_secs,
        pre.stats.pairs_examined(),
        pre.stats.pruned_by_signature(),
        pre.stats.pruned_by_exact(),
        pre.stats.survived(),
    );
    std::fs::write("BENCH_blocking.json", &json).expect("write BENCH_blocking.json");
    println!("\nwrote BENCH_blocking.json");
}
