//! Chaos-matrix benchmark for the fault-tolerant service: sweep
//! {policy × kill round × crowd loss × pool shrink}, and for every cell
//! kill the service after the chosen round, resume it, and assert the
//! resume-identity contract (byte-identical reports, service journal and
//! crowd journals; zero re-asked crowd questions). Also measures the
//! degraded-mode cost of losing half the pool mid-run. Emits
//! `BENCH_chaos.json`.
//!
//! ```text
//! cargo run --release -p falcon-bench --bin serve_chaos -- \
//!     [--tenants 4] [--threads 8] [--nodes 10] [--scale 1.0] [--seed 1]
//! ```

use falcon::crowd::sim::UnreliableCrowd;
use falcon::prelude::*;
use falcon::serve::chaos::{run_cell, sweep, CellOutcome, ChaosCell};
use falcon::serve::{DegradedPolicy, PoolEvent};
use falcon_bench::{title, Args};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn em_config(seed: u64) -> FalconConfig {
    FalconConfig {
        sample_size: 200,
        sample_fanout: 20,
        cluster: ClusterConfig::small(4),
        force_plan: Some(PlanKind::BlockAndMatch),
        seed,
        ..FalconConfig::default()
    }
}

/// Fresh identically-seeded tenants; per-run crowd journals under `dir`.
fn make_jobs(tenants: usize, seed: u64, scale: f64, cell: &ChaosCell, dir: &Path) -> Vec<JobSpec> {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("scratch dir: {e}"));
    (0..tenants as u64)
        .map(|i| {
            let d = falcon::datagen::generate("products", 0.015 * scale, seed.wrapping_add(i));
            let truth = GroundTruth::new(d.truth.iter().copied());
            let base = RandomWorkerCrowd::new(truth, 0.05, seed.wrapping_mul(17).wrapping_add(i));
            let crowd: Arc<dyn falcon::crowd::Crowd> = if cell.crowd_loss > 0.0 {
                Arc::new(UnreliableCrowd::new(base, cell.crowd_loss, seed ^ (i + 9)))
            } else {
                Arc::new(base)
            };
            let mut config = em_config(seed.wrapping_mul(31).wrapping_add(i));
            if cell.fault_rate > 0.0 && i == 0 {
                config.fault =
                    Some(FaultPlan::seeded(seed ^ 0xfa).with_failure_rate(cell.fault_rate));
            }
            JobSpec::new(format!("tenant-{i}"), d.a, d.b, config, crowd)
                .with_priority(i as i32)
                .with_arrival(Duration::from_secs(i * 60))
                .with_journal(dir.join(format!("tenant-{i}.crowd.journal")))
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let tenants: usize = args.get("tenants", 4);
    let threads: usize = args.get("threads", 8);
    let nodes: usize = args.get("nodes", 10);
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);

    let scratch = std::env::temp_dir().join(format!("falcon_chaos_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let cells = sweep(
        &[Policy::FairShare, Policy::Priority],
        &[1, 3],
        &[0.0],
        &[0.0, 0.25],
        &[0.0, 0.5],
        &[threads],
    );
    title(&format!(
        "Chaos matrix: {} cells ({} tenants, {nodes}-node pool, kill+resume each)",
        cells.len(),
        tenants
    ));

    let base = ServeConfig {
        pool_nodes: nodes,
        seed,
        degraded: DegradedPolicy {
            threshold: 0.5,
            masked_node_cap: 1,
        },
        ..ServeConfig::default()
    };

    let mut outcomes: Vec<CellOutcome> = Vec::new();
    for cell in &cells {
        let out = run_cell(cell, &base, &scratch, |c, d| {
            make_jobs(tenants, seed, scale, c, d)
        })
        .unwrap_or_else(|e| panic!("cell {} failed: {e}", cell.label()));
        println!(
            "{:<28} identical={} reasked={:+} replayed={:>2} rounds, recovery {:.2}x wall",
            out.cell,
            out.holds(),
            (out.killed_live_questions + out.resumed_live_questions) as i64
                - out.ref_live_questions as i64,
            out.replayed_rounds,
            out.recovery_overhead(),
        );
        assert!(
            out.holds(),
            "cell {} violated resume identity: {:?}",
            out.cell,
            out.mismatch
        );
        outcomes.push(out);
    }
    println!("all {} cells hold resume identity", outcomes.len());

    // Degraded-mode cost: the same workload on a stable pool versus one
    // that loses half its nodes mid-run. Identity of the reports is
    // pinned by the tests; here we price the slowdown.
    let calm_cell = cells[0];
    let full_dir = scratch.join("degraded-full");
    let full = falcon::serve::serve(
        make_jobs(tenants, seed, scale, &calm_cell, &full_dir),
        &ServeConfig {
            threads,
            ..base.clone()
        },
    )
    .unwrap_or_else(|e| panic!("full-pool run failed: {e}"));
    let shrunk_dir = scratch.join("degraded-shrunk");
    let shrunk = falcon::serve::serve(
        make_jobs(tenants, seed, scale, &calm_cell, &shrunk_dir),
        &ServeConfig {
            threads,
            pool_events: vec![PoolEvent {
                at: Duration::from_secs(60),
                delta: -(nodes as i64 / 2),
            }],
            ..base.clone()
        },
    )
    .unwrap_or_else(|e| panic!("shrunken-pool run failed: {e}"));
    let slowdown = shrunk.makespan.as_secs_f64() / full.makespan.as_secs_f64().max(1e-9);
    println!(
        "degraded mode: full pool {:.0}s vs half pool {:.0}s makespan ({slowdown:.2}x)",
        full.makespan.as_secs_f64(),
        shrunk.makespan.as_secs_f64()
    );
    assert!(
        slowdown >= 1.0,
        "losing half the pool cannot speed the service up"
    );

    let worst_recovery = outcomes
        .iter()
        .map(CellOutcome::recovery_overhead)
        .fold(0.0_f64, f64::max);
    let cell_json: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "    {{ \"cell\": \"{}\", \"resume_identical\": {}, \"zero_reasked\": {}, \
                 \"replayed_rounds\": {}, \"killed_at_round\": {}, \"recovery_overhead\": {:.3} }}",
                o.cell,
                o.holds(),
                o.zero_reasked(),
                o.replayed_rounds,
                o.killed_at_round.map_or(-1, |r| r as i64),
                o.recovery_overhead()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"tenants\": {tenants},\n  \"pool_nodes\": {nodes},\n  \
         \"threads\": {threads},\n  \"cells\": [\n{}\n  ],\n  \
         \"all_cells_hold\": true,\n  \"worst_recovery_overhead\": {worst_recovery:.3},\n  \
         \"degraded_half_pool_slowdown\": {slowdown:.3}\n}}\n",
        cell_json.join(",\n")
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json");
    let _ = std::fs::remove_dir_all(&scratch);
}
