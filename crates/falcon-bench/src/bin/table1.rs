//! Table 1: dataset statistics, plus the Section 11 feature-count
//! commentary ("50/83 features for Products...").

use falcon_bench::{dataset, title, Args, DATASETS};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);

    title("Table 1: Data sets (paper sizes in parentheses)");
    println!(
        "{:<11} {:>9} {:>9} {:>12}   features (blocking/matching)",
        "Dataset", "Table A", "Table B", "# Matches"
    );
    let paper = [
        ("products", 2_554usize, 22_074usize, 1_154usize),
        ("songs", 1_000_000, 1_000_000, 1_292_023),
        ("citations", 1_823_978, 2_512_927, 558_787),
    ];
    for (name, (pname, pa, pb, pm)) in DATASETS.iter().zip(paper) {
        assert_eq!(*name, pname);
        let d = dataset(name, scale, seed);
        let lib = falcon::core::features::generate_features(&d.a, &d.b);
        println!(
            "{:<11} {:>9} {:>9} {:>12}   {}/{}",
            d.name,
            d.a.len(),
            d.b.len(),
            d.truth.len(),
            lib.blocking.len(),
            lib.matching.len(),
        );
        println!(
            "{:<11} ({:>8}) ({:>8}) ({:>10})   (paper: 50/83, 20/47, 22/30)",
            "", pa, pb, pm
        );
    }
}
