//! Forest train/score throughput: the sequential `Node`-walking baseline
//! (rescan split search, one tree at a time, per-vector prediction) vs the
//! optimized path (presorted-sweep split search on a worker pool + the
//! compiled `FlatForest` batch kernels). Emits `BENCH_forest.json` with
//! train wall-time, predictions/sec, and the combined train+score cycle
//! speedup; both paths are asserted bit-identical in-bench.

use falcon::forest::{Dataset, Forest, ForestConfig};
use falcon_bench::{mean, title, Args};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Deterministic pseudo-random stream (splitmix-style LCG keyed by seed).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn unit(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 31) as f64
    }
}

/// Synthetic labeled vectors: continuous features (many distinct split
/// candidates — the rescan path's worst case), sprinkled NaNs, and a noisy
/// linear decision rule.
fn synthetic(n: usize, arity: usize, seed: u64) -> Dataset {
    let mut lcg = Lcg::new(seed);
    let mut d = Dataset::new();
    for _ in 0..n {
        let mut fv = Vec::with_capacity(arity);
        let mut signal = 0.0;
        for f in 0..arity {
            let v = lcg.unit();
            if lcg.next().is_multiple_of(13) {
                fv.push(f64::NAN);
            } else {
                fv.push(v);
                signal += v * (f + 1) as f64;
            }
        }
        let noisy = lcg.next().is_multiple_of(20);
        let label = (signal > 0.55 * (arity * (arity + 1) / 2) as f64) != noisy;
        d.push(fv, label);
    }
    d
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let runs: usize = args.get("runs", 3);
    let seed: u64 = args.get("seed", 1);
    let threads: usize = args.get("threads", 8);
    let train_n: usize = ((args.get("train", 1500) as f64) * scale) as usize;
    let score_n: usize = ((args.get("score", 40_000) as f64) * scale) as usize;
    let arity: usize = args.get("arity", 8);

    let cfg = ForestConfig::default();
    let train_data = synthetic(train_n.max(10), arity, seed);
    let score_data = synthetic(score_n.max(10), arity, seed ^ 0x5eed);
    let queries = &score_data.features;

    title(&format!(
        "forest throughput: {} train x {arity} features, {} score vectors, {} trees, {runs} runs",
        train_data.len(),
        queries.len(),
        cfg.n_trees,
    ));

    let mut seq_train = Vec::new();
    let mut seq_score = Vec::new();
    let mut par_train = Vec::new();
    let mut par_score = Vec::new();
    let mut bit_identical = true;

    for run in 0..runs {
        let run_seed = seed.wrapping_add(run as u64);

        // Baseline: rescan split search, single thread, Node-pointer
        // prediction one vector at a time (the pre-optimization path).
        let t0 = Instant::now();
        let base_forest =
            Forest::train_reference(&train_data, &cfg, &mut SmallRng::seed_from_u64(run_seed));
        seq_train.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let base_dis: Vec<f64> = queries
            .iter()
            .map(|fv| base_forest.disagreement(fv))
            .collect();
        let base_pred: Vec<bool> = queries.iter().map(|fv| base_forest.predict(fv)).collect();
        seq_score.push(t0.elapsed().as_secs_f64());

        // Optimized: presorted sweep on a worker pool, then the compiled
        // flat forest's batch kernels (one vote pass feeds both metrics).
        let t0 = Instant::now();
        let fast_forest = Forest::train_threads(
            &train_data,
            &cfg,
            &mut SmallRng::seed_from_u64(run_seed),
            threads,
        );
        par_train.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let flat = fast_forest.flatten();
        let mut votes = Vec::new();
        flat.count_votes_into(queries.len(), |j| queries[j].as_slice(), &mut votes);
        let fast_dis: Vec<f64> = votes
            .iter()
            .map(|&v| flat.disagreement_from_votes(v))
            .collect();
        let fast_pred: Vec<bool> = votes.iter().map(|&v| flat.predict_from_votes(v)).collect();
        par_score.push(t0.elapsed().as_secs_f64());

        // Equivalence: identical forests, bit-identical scores.
        assert_eq!(base_forest, fast_forest, "trained forests diverged");
        assert_eq!(base_pred, fast_pred, "predictions diverged");
        for (x, y) in base_dis.iter().zip(&fast_dis) {
            assert_eq!(x.to_bits(), y.to_bits(), "disagreement diverged");
        }
        bit_identical &= base_forest == fast_forest;
    }

    let seq_cycle = mean(&seq_train) + mean(&seq_score);
    let par_cycle = mean(&par_train) + mean(&par_score);
    let preds_per_run = (queries.len() * 2) as f64; // disagreement + predict
    let seq_rate = preds_per_run / mean(&seq_score);
    let par_rate = preds_per_run / mean(&par_score);

    println!(
        "{:<18} {:>12} {:>12} {:>14}",
        "path", "train", "score", "preds/sec"
    );
    for (label, tr, sc, rate) in [
        ("sequential+node", &seq_train, &seq_score, seq_rate),
        ("parallel+flat", &par_train, &par_score, par_rate),
    ] {
        println!(
            "{label:<18} {:>11.3}s {:>11.3}s {:>14.0}",
            mean(tr),
            mean(sc),
            rate
        );
    }
    let train_speedup = mean(&seq_train) / mean(&par_train);
    let score_speedup = mean(&seq_score) / mean(&par_score);
    let cycle_speedup = seq_cycle / par_cycle;
    println!(
        "speedup: train {train_speedup:.2}x, score {score_speedup:.2}x, cycle {cycle_speedup:.2}x (bit-identical: {bit_identical})"
    );

    let json = format!(
        "{{\n  \"bench\": \"forest_throughput\",\n  \"train_examples\": {},\n  \"arity\": {arity},\n  \"score_vectors\": {},\n  \"trees\": {},\n  \"threads\": {threads},\n  \"runs\": {runs},\n  \"sequential\": {{ \"train_secs\": {:.6}, \"score_secs\": {:.6}, \"cycle_secs\": {:.6}, \"preds_per_sec\": {:.1} }},\n  \"parallel_flat\": {{ \"train_secs\": {:.6}, \"score_secs\": {:.6}, \"cycle_secs\": {:.6}, \"preds_per_sec\": {:.1} }},\n  \"speedup\": {{ \"train\": {:.3}, \"score\": {:.3}, \"cycle\": {:.3} }},\n  \"bit_identical\": {bit_identical}\n}}\n",
        train_data.len(),
        queries.len(),
        cfg.n_trees,
        mean(&seq_train),
        mean(&seq_score),
        seq_cycle,
        seq_rate,
        mean(&par_train),
        mean(&par_score),
        par_cycle,
        par_rate,
        train_speedup,
        score_speedup,
        cycle_speedup,
    );
    std::fs::write("BENCH_forest.json", &json).expect("write BENCH_forest.json");
    println!("\nwrote BENCH_forest.json");
}
