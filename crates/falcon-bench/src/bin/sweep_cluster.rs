//! Section 11.4, cluster-size sensitivity: machine time of a Songs run on
//! simulated clusters of 5, 10, 15 and 20 nodes (the paper observed
//! 31m / 11m / 7m / 6m — big gains to 10 nodes, flattening after).

use falcon::prelude::*;
use falcon_bench::{dataset, fmt_dur, run_once, standard_config, title, Args};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);
    let name: String = args.get("dataset", "songs".to_string());

    title("Cluster-size sweep: machine time vs simulated node count");
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "nodes", "machine", "unmasked", "speedup"
    );
    let mut base: Option<f64> = None;
    for nodes in [5usize, 10, 15, 20] {
        let d = dataset(&name, scale, seed);
        let mut cfg = standard_config(8_000);
        cfg.cluster = ClusterConfig {
            nodes,
            ..ClusterConfig::default()
        };
        let report = run_once(&d, cfg, 0.05, seed);
        let m = report.machine_time().as_secs_f64();
        let speedup = base.map_or(1.0, |b| b / m.max(1e-9));
        if base.is_none() {
            base = Some(m);
        }
        println!(
            "{:>6} {:>14} {:>14} {:>11.2}x",
            nodes,
            fmt_dur(report.machine_time()),
            fmt_dur(report.unmasked_machine_time()),
            speedup
        );
    }
    println!(
        "\nExpected shape (paper): largest drop from 5 to 10 nodes, diminishing returns beyond."
    );
}
