//! Feature-vector throughput: `gen_fvs` on the legacy
//! render-and-tokenize-per-feature path vs the token-profile path
//! (pre-tokenized sorted-id columns + rendered-value cache). Emits
//! `BENCH_fv.json` with pairs/sec for both modes and the speedup — the
//! repo's first recorded benchmark baseline.

use falcon::core::features::generate_features;
use falcon::core::ops::gen_fvs::{gen_fvs_with, FvMode};
use falcon::prelude::*;
use falcon::table::IdPair;
use falcon_bench::{dataset, mean, title, Args};
use std::time::Instant;

/// Deterministic pseudo-random pairs (splitmix-style LCG keyed by seed).
fn random_pairs(n: usize, a_len: usize, b_len: usize, seed: u64) -> Vec<IdPair> {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    };
    (0..n)
        .map(|_| {
            (
                (next() % a_len as u64) as u32,
                (next() % b_len as u64) as u32,
            )
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let runs: usize = args.get("runs", 3);
    let seed: u64 = args.get("seed", 1);
    let name: String = args.get("dataset", "songs".to_string());
    let n_pairs: usize = args.get("pairs", 20_000);

    let d = dataset(&name, scale, seed);
    let cluster = Cluster::new(ClusterConfig::default());
    let lib = generate_features(&d.a, &d.b);
    let pairs = random_pairs(
        n_pairs.min(d.a.len() * d.b.len()),
        d.a.len(),
        d.b.len(),
        seed,
    );

    title(&format!(
        "gen_fvs throughput: {name} {}x{} tuples, {} pairs, {runs} runs",
        d.a.len(),
        d.b.len(),
        pairs.len(),
    ));

    let mut sections = Vec::new();
    for (lib_name, features) in [("blocking", &lib.blocking), ("matching", &lib.matching)] {
        let mut wall = [Vec::new(), Vec::new()];
        let mut outputs = Vec::new();
        for (slot, mode) in [(0usize, FvMode::Legacy), (1, FvMode::TokenProfile)] {
            for r in 0..runs {
                let t0 = Instant::now();
                let out =
                    gen_fvs_with(&cluster, &d.a, &d.b, &pairs, features, mode).expect("gen_fvs");
                wall[slot].push(t0.elapsed().as_secs_f64());
                if r == 0 {
                    outputs.push(out);
                }
            }
        }

        // Sanity: both modes must produce bit-identical feature vectors.
        let (legacy, profiled) = (&outputs[0].fvs, &outputs[1].fvs);
        assert_eq!(legacy.pairs, profiled.pairs, "pair order diverged");
        for (l, p) in legacy.fvs.iter().zip(&profiled.fvs) {
            for (x, y) in l.iter().zip(p) {
                assert_eq!(x.to_bits(), y.to_bits(), "feature vectors diverged");
            }
        }

        let rate = |w: &[f64]| pairs.len() as f64 / mean(w);
        let (legacy_rate, profile_rate) = (rate(&wall[0]), rate(&wall[1]));
        let speedup = profile_rate / legacy_rate;
        println!(
            "\n{lib_name} feature set ({} features):",
            features.features.len()
        );
        println!("{:<14} {:>12} {:>14}", "mode", "mean wall", "pairs/sec");
        for (label, w) in [("legacy", &wall[0]), ("token-profile", &wall[1])] {
            println!(
                "{label:<14} {:>11.3}s {:>14.0}",
                mean(w),
                pairs.len() as f64 / mean(w)
            );
        }
        println!("speedup: {speedup:.2}x (vectors bit-identical across modes)");
        sections.push(format!(
            "  \"{lib_name}\": {{\n    \"features\": {},\n    \"legacy\": {{ \"mean_wall_secs\": {:.6}, \"pairs_per_sec\": {:.1} }},\n    \"token_profile\": {{ \"mean_wall_secs\": {:.6}, \"pairs_per_sec\": {:.1} }},\n    \"speedup\": {:.3}\n  }}",
            features.features.len(),
            mean(&wall[0]),
            legacy_rate,
            mean(&wall[1]),
            profile_rate,
            speedup,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fv_throughput\",\n  \"dataset\": \"{name}\",\n  \"scale\": {scale},\n  \"runs\": {runs},\n  \"pairs\": {},\n{},\n  \"bit_identical\": true\n}}\n",
        pairs.len(),
        sections.join(",\n"),
    );
    std::fs::write("BENCH_fv.json", &json).expect("write BENCH_fv.json");
    println!("\nwrote BENCH_fv.json");
}
