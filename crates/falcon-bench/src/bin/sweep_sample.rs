//! Section 11.4, sample-size sensitivity: F1, total time and cost as the
//! sampler's target `|S|` varies (the paper sweeps 500K-2M at full scale
//! and finds negligible F1 effect; we sweep the proportional range).

use falcon_bench::{dataset, fmt_dur, run_once, standard_config, title, Args};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);
    let name: String = args.get("dataset", "songs".to_string());

    title("Sample-size sweep: F1 / time / cost vs |S|");
    println!(
        "{:>9} {:>9} {:>8} {:>12} {:>10}",
        "target|S|", "drawn", "F1%", "Total", "Cost$"
    );
    for target in [2_000usize, 4_000, 8_000, 16_000, 32_000] {
        let d = dataset(&name, scale, seed);
        let cfg = standard_config(target);
        let report = run_once(&d, cfg, 0.05, seed);
        let q = report.quality(&d.truth);
        println!(
            "{:>9} {:>9} {:>8.1} {:>12} {:>10.2}",
            target,
            report.sample_size,
            q.f1 * 100.0,
            fmt_dur(report.total_time()),
            report.ledger.cost
        );
    }
    println!("\nExpected shape (paper): F1 roughly flat; time/cost grow only slightly with |S|.");
}
