//! Section 11.2, `sel_opt_seq`: compare the selected optimal rule
//! sequence against executing *all* retained rules, only the top-1, and
//! the top-3 (in `eval_rules` rank order) — recall, run time and
//! candidate-set size, per dataset.

use falcon::core::features::generate_features;
use falcon::core::indexing::{BuiltIndexes, ConjunctSpecs};
use falcon::core::ops::al_matcher::{al_matcher, AlConfig};
use falcon::core::ops::eval_rules::{eval_rules, EvalConfig};
use falcon::core::ops::gen_fvs::gen_fvs;
use falcon::core::ops::get_blocking_rules::get_blocking_rules;
use falcon::core::ops::sample_pairs::sample_pairs;
use falcon::core::ops::select_opt_seq::{select_opt_seq, SeqConfig};
use falcon::core::physical::{self, PhysicalOp};
use falcon::core::rules::RuleSequence;
use falcon::core::timeline::Timeline;
use falcon::prelude::*;
use falcon_bench::{dataset, fmt_dur, title, Args, DATASETS};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);

    title("Rule-sequence quality: optimal sequence vs all / top-1 / top-3 rules");
    println!(
        "{:<11} {:<10} {:>6} {:>12} {:>12} {:>9}",
        "Dataset", "variant", "rules", "candidates", "sim time", "recall%"
    );
    for name in DATASETS {
        let d = dataset(name, scale, seed);
        let cluster = Cluster::new(ClusterConfig::default());
        let truth = GroundTruth::new(d.truth.iter().copied());
        let mut session = CrowdSession::new(OracleCrowd::new(truth));
        let mut tl = Timeline::new();
        let lib = generate_features(&d.a, &d.b);
        let sample = sample_pairs(&cluster, &d.a, &d.b, 8_000, 40, seed).expect("sample");
        let s_fvs = gen_fvs(&cluster, &d.a, &d.b, &sample.pairs, &lib.blocking).expect("gen_fvs");
        let higher: Vec<bool> = lib
            .blocking
            .features
            .iter()
            .map(|f| f.sim.higher_is_similar())
            .collect();
        let al = al_matcher(
            &cluster,
            &mut session,
            &mut tl,
            "al",
            &s_fvs.fvs,
            &higher,
            &AlConfig::default(),
        )
        .expect("al");
        let ranked = get_blocking_rules(&al.forest, &s_fvs.fvs, 20, &higher);
        let eval = eval_rules(
            &mut session,
            &mut tl,
            &ranked,
            &s_fvs.fvs,
            &EvalConfig::default(),
        );
        let opt = select_opt_seq(&ranked, &eval.retained, &s_fvs.fvs, &SeqConfig::default());
        let retained_rules: Vec<_> = eval.retained.iter().map(|e| e.rule.clone()).collect();
        let variants: Vec<(&str, RuleSequence)> = vec![
            ("optimal", opt.seq.clone()),
            ("all", RuleSequence::new(retained_rules.clone())),
            (
                "top-1",
                RuleSequence::new(retained_rules.iter().take(1).cloned().collect()),
            ),
            (
                "top-3",
                RuleSequence::new(retained_rules.iter().take(3).cloned().collect()),
            ),
        ];
        for (label, seq) in variants {
            if seq.is_empty() {
                println!("{name:<11} {label:<10} (no rules retained)");
                continue;
            }
            let conjuncts = ConjunctSpecs::derive(&seq, &lib.blocking);
            let mut built = BuiltIndexes::new();
            for spec in conjuncts.all_specs() {
                built.build_spec(&cluster, &d.a, &spec).expect("build");
            }
            let sels = vec![0.5; seq.len()];
            match physical::execute(
                PhysicalOp::ApplyAll,
                &cluster,
                &d.a,
                &d.b,
                &lib.blocking,
                &seq,
                &conjuncts,
                &built,
                &sels,
                1 << 40,
            ) {
                Ok(out) => {
                    let recall =
                        falcon::core::metrics::blocking_recall(&out.candidates, &d.truth) * 100.0;
                    println!(
                        "{:<11} {:<10} {:>6} {:>12} {:>12} {:>8.1}",
                        name,
                        label,
                        seq.len(),
                        out.candidates.len(),
                        fmt_dur(out.duration),
                        recall
                    );
                }
                Err(e) => println!("{name:<11} {label:<10} failed: {e}"),
            }
        }
    }
    println!("\nExpected shape (paper): the optimal sequence has (near-)highest recall with (near-)lowest time and a small candidate set.");
}
