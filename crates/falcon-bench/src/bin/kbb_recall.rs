//! Section 3.2: key-based blocking (KBB) vs rule-based blocking (RBB)
//! recall on the three datasets. Paper numbers: KBB 72.6 / 98.6 / 38.8 vs
//! RBB 98.09 / 99.99 / 99.67 — KBB collapses on dirty Products/Citations
//! while RBB stays near-lossless.

use falcon::core::kbb::best_kbb;
use falcon::core::metrics::blocking_recall;
use falcon::core::snb::best_snb;
use falcon_bench::{dataset, run_once, standard_config, title, Args, DATASETS};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);

    title("KBB / SNB vs RBB blocking recall (paper KBB: 72.6/98.6/38.8; RBB: 98.09/99.99/99.67)");
    println!(
        "{:<11} {:>7} {:>18} {:>7} {:>12} {:>7} {:>10}",
        "Dataset", "KBB%", "best key", "SNB%", "snb key(w=10)", "RBB%", "RBB cands"
    );
    for name in DATASETS {
        let d = dataset(name, scale, seed);
        let kbb = best_kbb(&d.a, &d.b, &d.truth);
        // RBB: learn rules hands-off with an oracle crowd, then measure
        // the candidate set the driver produced.
        let report = run_once(&d, standard_config(8_000), 0.0, seed);
        // Recompute candidates exhaustively for exact recall.
        let lib = falcon::core::features::generate_features(&d.a, &d.b);
        let out = falcon::core::corleone::corleone_blocking(
            &d.a,
            &d.b,
            &lib.blocking,
            &report.rule_sequence,
            1 << 42,
        )
        .expect("bench scale is enumerable");
        let rbb = blocking_recall(&out.candidates, &d.truth);
        let snb = best_snb(&d.a, &d.b, &d.truth, 10);
        let snb_recall = blocking_recall(&snb.candidates, &d.truth);
        println!(
            "{:<11} {:>7.1} {:>18} {:>7.1} {:>12} {:>7.1} {:>10}",
            name,
            kbb.recall * 100.0,
            format!("{:?}", kbb.key),
            snb_recall * 100.0,
            snb.key,
            rbb * 100.0,
            out.candidates.len()
        );
    }
}
