//! Section 5 / 11.4: Falcon's match-aware sampler vs Corleone's original
//! strategy and plain uniform sampling. The metric that matters is how
//! many *true matches* land in the sample — learning blocking rules is
//! hopeless without positives.

use falcon::core::ops::sample_pairs::{corleone_sample, sample_pairs};
use falcon::prelude::*;
use falcon_bench::{dataset, title, Args, DATASETS};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

fn uniform_sample(a_len: usize, b_len: usize, n: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out: Vec<(u32, u32)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(0..a_len) as u32,
                rng.gen_range(0..b_len) as u32,
            )
        })
        .collect();
    out.shuffle(&mut rng);
    out
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);
    let n: usize = args.get("n", 8_000);

    title("Sampler comparison: true matches captured per sampler (|S| fixed)");
    println!(
        "{:<11} {:>9} {:>12} {:>14} {:>14} {:>12}",
        "Dataset", "|S|", "matches", "falcon", "corleone", "uniform"
    );
    let cluster = Cluster::new(ClusterConfig::default());
    for name in DATASETS {
        let d = dataset(name, scale, seed);
        let truth: HashSet<(u32, u32)> = d.truth.iter().copied().collect();
        let count = |pairs: &[(u32, u32)]| pairs.iter().filter(|p| truth.contains(p)).count();

        let falcon_s = sample_pairs(&cluster, &d.a, &d.b, n, 20, seed).expect("sample");
        let corleone_s = corleone_sample(&d.a, &d.b, n, seed);
        let uniform_s = uniform_sample(d.a.len(), d.b.len(), n, seed);
        println!(
            "{:<11} {:>9} {:>12} {:>14} {:>14} {:>12}",
            name,
            n,
            d.truth.len(),
            count(&falcon_s.pairs),
            count(&corleone_s),
            count(&uniform_s),
        );
    }
    println!("\nExpected shape (paper §5): Falcon's token-index sampler surfaces far more matches than Corleone's cross-with-random-B strategy (inapplicable/degenerate when |A| approaches |S|) and than uniform sampling.");
}
