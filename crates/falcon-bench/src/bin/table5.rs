//! Table 5: effect of the masking optimizations on (unmasked) machine
//! time — unoptimized `U`, fully optimized `O`, the percentage reduction,
//! and each ablation `O − O1/O2/O3` (index prebuilding, speculative
//! execution, masked pair selection).

use falcon::prelude::OptFlags;
use falcon_bench::{dataset, fmt_dur, run_once, standard_config, title, Args, DATASETS};
use std::time::Duration;

fn unmasked(data: &falcon::prelude::EmDataset, opt: OptFlags, seed: u64) -> Duration {
    let mut cfg = standard_config(8_000);
    cfg.opt = opt;
    // Make masked pair selection kick in at bench scale.
    cfg.mask_selection_threshold = 1_000;
    let r = run_once(data, cfg, 0.05, seed);
    r.unmasked_machine_time()
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);

    title("Table 5: Effect of optimizations on machine time (beyond crowd time)");
    println!(
        "{:<11} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Dataset", "U", "O", "Reduction", "O-O1", "O-O2", "O-O3"
    );
    for name in DATASETS {
        let d = dataset(name, scale, seed);
        let u = unmasked(&d, OptFlags::none(), seed);
        let o = unmasked(&d, OptFlags::default(), seed);
        let o1 = unmasked(
            &d,
            OptFlags {
                prebuild_indexes: false,
                ..OptFlags::default()
            },
            seed,
        );
        let o2 = unmasked(
            &d,
            OptFlags {
                speculative_execution: false,
                ..OptFlags::default()
            },
            seed,
        );
        let o3 = unmasked(
            &d,
            OptFlags {
                mask_pair_selection: false,
                ..OptFlags::default()
            },
            seed,
        );
        let reduction = if u > Duration::ZERO {
            100.0 * (1.0 - o.as_secs_f64() / u.as_secs_f64())
        } else {
            0.0
        };
        println!(
            "{:<11} {:>10} {:>10} {:>9.0}% {:>10} {:>10} {:>10}",
            name,
            fmt_dur(u),
            fmt_dur(o),
            reduction,
            fmt_dur(o1),
            fmt_dur(o2),
            fmt_dur(o3),
        );
    }
    println!("\nPaper: Products 18m→16m (11%), Songs 2h12m→39m (70%), Citations 1h46m→40m (62%)");
}
