//! Multi-tenant serving benchmark: hundreds of concurrent EM jobs on one
//! shared node pool versus running them serially, at a crowd-latency-
//! dominated setting. Emits `BENCH_serve.json` with aggregate throughput,
//! p50/p99 job latency and cluster utilization for both modes, and
//! asserts in-bench that every tenant's match set is bit-identical to a
//! solo run of the same job.
//!
//! ```text
//! cargo run --release -p falcon-bench --bin serve_bench -- \
//!     [--jobs 200] [--templates 8] [--latency 900] [--threads 8] \
//!     [--nodes 10] [--policy fair] [--error 0.05] [--scale 1.0] [--seed 1]
//! ```

use falcon::prelude::*;
use falcon::serve::match_digest;
use falcon_bench::{fmt_dur, title, Args};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The benchmark's per-tenant driver configuration: small simulated
/// cluster per tenant, sample sized to the tiny bench tables.
fn em_config(seed: u64) -> FalconConfig {
    FalconConfig {
        sample_size: 200,
        sample_fanout: 20,
        cluster: ClusterConfig::small(4),
        force_plan: Some(PlanKind::BlockAndMatch),
        seed,
        ..FalconConfig::default()
    }
}

/// One job template: dataset + seeds. Tenants are stamped out of
/// templates so the bench can check bit-identity against one solo run
/// per template instead of one per tenant.
struct Template {
    data_seed: u64,
    crowd_seed: u64,
    em_seed: u64,
    scale: f64,
}

impl Template {
    fn job(&self, name: String, latency: Duration, error: f64) -> JobSpec {
        let d = falcon::datagen::generate("products", 0.02 * self.scale, self.data_seed);
        let truth = GroundTruth::new(d.truth.iter().copied());
        let crowd = RandomWorkerCrowd::new(truth, error, self.crowd_seed).with_latency(latency);
        JobSpec::new(name, d.a, d.b, em_config(self.em_seed), Arc::new(crowd))
    }
}

fn main() {
    let args = Args::parse();
    let jobs_n: usize = args.get("jobs", 200);
    let templates_n: usize = args.get("templates", 8);
    let latency = Duration::from_secs_f64(args.get("latency", 900.0));
    let error: f64 = args.get("error", 0.05);
    let scale: f64 = args.get("scale", 1.0);
    let seed: u64 = args.get("seed", 1);
    let threads: usize = args.get("threads", 8);
    let nodes: usize = args.get("nodes", 10);
    let policy_name: String = args.get("policy", "fair".to_string());
    let policy = Policy::parse(&policy_name).unwrap_or(Policy::FairShare);

    let templates: Vec<Template> = (0..templates_n as u64)
        .map(|i| Template {
            data_seed: seed.wrapping_add(i),
            crowd_seed: seed.wrapping_mul(17).wrapping_add(i),
            em_seed: seed.wrapping_mul(31).wrapping_add(i),
            scale,
        })
        .collect();

    title(&format!(
        "Multi-tenant serving: {jobs_n} jobs ({templates_n} templates), \
         {nodes}-node pool, {policy_name} policy, crowd latency {}",
        fmt_dur(latency)
    ));

    // Solo references: one ungated run per template.
    let wall = Instant::now();
    let solo: Vec<Vec<(u32, u32)>> = templates
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let report = t
                .job(format!("solo-{i}"), latency, error)
                .run_solo()
                .unwrap_or_else(|e| panic!("solo run {i} failed: {e}"));
            report.matches
        })
        .collect();
    println!(
        "solo references: {} runs, {} total matches, {:.1}s wall",
        templates.len(),
        solo.iter().map(Vec::len).sum::<usize>(),
        wall.elapsed().as_secs_f64()
    );

    // The shared-pool run: jobs_n tenants round-robined over templates.
    let jobs: Vec<JobSpec> = (0..jobs_n)
        .map(|i| templates[i % templates_n].job(format!("tenant-{i}"), latency, error))
        .collect();
    let cfg = ServeConfig {
        pool_nodes: nodes,
        threads,
        policy,
        seed,
        ..ServeConfig::default()
    };
    let wall_serve = Instant::now();
    let rep = falcon::serve::serve(jobs, &cfg).unwrap_or_else(|e| panic!("service failed: {e}"));
    let serve_wall = wall_serve.elapsed();

    // Load-bearing assertion: every tenant's match set is bit-identical
    // to its template's solo run — sharing the pool changed nothing.
    for (i, o) in rep.outcomes.iter().enumerate() {
        let report = o
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("tenant {i} failed: {e}"));
        let reference = &solo[i % templates_n];
        assert_eq!(
            match_digest(&report.matches),
            match_digest(reference),
            "tenant {i} diverged from its solo run"
        );
        assert_eq!(&report.matches, reference);
    }
    println!(
        "all {} tenants bit-identical to solo runs",
        rep.outcomes.len()
    );

    let speedup = rep.throughput_speedup();
    println!(
        "shared: makespan {} | utilization {:.1}% | p50 {} | p99 {}",
        fmt_dur(rep.makespan),
        rep.utilization * 100.0,
        fmt_dur(rep.latency_percentile(50.0)),
        fmt_dur(rep.latency_percentile(99.0)),
    );
    println!(
        "serial: makespan {} | utilization {:.1}% | p50 {} | p99 {}",
        fmt_dur(rep.serial_makespan),
        rep.serial_utilization * 100.0,
        fmt_dur(rep.serial_latency_percentile(50.0)),
        fmt_dur(rep.serial_latency_percentile(99.0)),
    );
    println!(
        "aggregate throughput: {speedup:.2}x over serial ({} scheduler rounds, {:.1}s wall)",
        rep.rounds,
        serve_wall.as_secs_f64()
    );
    assert!(
        speedup >= 2.0,
        "expected >=2x aggregate throughput, measured {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"jobs\": {jobs_n},\n  \"templates\": {templates_n},\n  \
         \"pool_nodes\": {nodes},\n  \"threads\": {threads},\n  \"policy\": \"{policy_name}\",\n  \
         \"crowd_latency_secs\": {:.1},\n  \"crowd_error\": {error},\n  \
         \"shared\": {{ \"makespan_secs\": {:.3}, \"utilization\": {:.4}, \"p50_latency_secs\": {:.3}, \"p99_latency_secs\": {:.3} }},\n  \
         \"serial\": {{ \"makespan_secs\": {:.3}, \"utilization\": {:.4}, \"p50_latency_secs\": {:.3}, \"p99_latency_secs\": {:.3} }},\n  \
         \"throughput_speedup\": {speedup:.3},\n  \"scheduler_rounds\": {},\n  \
         \"tenants_bit_identical_to_solo\": true,\n  \"bench_wall_secs\": {:.1}\n}}\n",
        latency.as_secs_f64(),
        rep.makespan.as_secs_f64(),
        rep.utilization,
        rep.latency_percentile(50.0).as_secs_f64(),
        rep.latency_percentile(99.0).as_secs_f64(),
        rep.serial_makespan.as_secs_f64(),
        rep.serial_utilization,
        rep.serial_latency_percentile(50.0).as_secs_f64(),
        rep.serial_latency_percentile(99.0).as_secs_f64(),
        rep.rounds,
        serve_wall.as_secs_f64(),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
