//! Figure 10: Falcon's performance across table sizes — 25%, 50%, 75%
//! and 100% of the (scaled) Songs and Citations datasets, simulated crowd
//! with 5% error, averaged over `--runs`.

use falcon_bench::{dataset, fmt_dur, mean, run_once, standard_config, title, Args};
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let runs: u64 = args.get("runs", 3);
    let seed: u64 = args.get("seed", 1);

    title("Figure 10: Performance across varying sizes of Songs and Citations");
    println!(
        "{:<11} {:>6} {:>9} {:>8} {:>12} {:>12} {:>10}",
        "Dataset", "size%", "|A|", "F1%", "Machine", "Total", "Cost$"
    );
    for name in ["songs", "citations"] {
        for frac in [0.25, 0.5, 0.75, 1.0] {
            let mut f1s = vec![];
            let mut machines = vec![];
            let mut totals = vec![];
            let mut costs = vec![];
            let mut a_len = 0;
            for r in 0..runs {
                let full = dataset(name, scale, seed + r);
                let d = full.fraction(frac);
                a_len = d.a.len();
                let report = run_once(&d, standard_config(8_000), 0.05, seed * 13 + r);
                f1s.push(report.quality(&d.truth).f1 * 100.0);
                machines.push(report.machine_time().as_secs_f64());
                totals.push(report.total_time().as_secs_f64());
                costs.push(report.ledger.cost);
            }
            println!(
                "{:<11} {:>6.0} {:>9} {:>8.1} {:>12} {:>12} {:>10.2}",
                name,
                frac * 100.0,
                a_len,
                mean(&f1s),
                fmt_dur(Duration::from_secs_f64(mean(&machines))),
                fmt_dur(Duration::from_secs_f64(mean(&totals))),
                mean(&costs),
            );
        }
    }
    println!(
        "\nExpected shape (paper): F1 stable; run time and cost grow sublinearly with table size."
    );
}
