//! Criterion benchmarks for the blocking stage: the four index-based
//! physical operators against the two enumeration baselines on a fixed
//! products-like workload, plus index construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use falcon::core::features::generate_features;
use falcon::core::indexing::{BuiltIndexes, ConjunctSpecs};
use falcon::core::physical::{self, PhysicalOp};
use falcon::core::rules::{Predicate, Rule, RuleSequence};
use falcon::forest::SplitOp;
use falcon::prelude::*;
use falcon::textsim::{SimFunction, Tokenizer};

struct Fixture {
    a: Table,
    b: Table,
    features: falcon::core::features::FeatureSet,
    seq: RuleSequence,
    conjuncts: ConjunctSpecs,
    built: BuiltIndexes,
    cluster: Cluster,
}

fn fixture() -> Fixture {
    let d = falcon::datagen::products::generate(0.02, 3);
    let lib = generate_features(&d.a, &d.b);
    let find = |sim: SimFunction, attr: &str| {
        lib.blocking
            .features
            .iter()
            .position(|f| f.sim == sim && f.a_attr == attr)
            .expect("feature")
    };
    let seq = RuleSequence::new(vec![
        Rule {
            predicates: vec![Predicate {
                feature: find(SimFunction::Jaccard(Tokenizer::QGram(3)), "title"),
                op: SplitOp::Le,
                threshold: 0.3,
                nan_is_high: true,
            }],
        },
        Rule {
            predicates: vec![
                Predicate {
                    feature: find(SimFunction::ExactMatch, "brand"),
                    op: SplitOp::Le,
                    threshold: 0.5,
                    nan_is_high: true,
                },
                Predicate {
                    feature: find(SimFunction::AbsDiff, "price"),
                    op: SplitOp::Gt,
                    threshold: 50.0,
                    nan_is_high: false,
                },
            ],
        },
    ]);
    let cluster = Cluster::new(ClusterConfig::default());
    let conjuncts = ConjunctSpecs::derive(&seq, &lib.blocking);
    let mut built = BuiltIndexes::new();
    for spec in conjuncts.all_specs() {
        built.build_spec(&cluster, &d.a, &spec).expect("build");
    }
    Fixture {
        a: d.a,
        b: d.b,
        features: lib.blocking,
        seq,
        conjuncts,
        built,
        cluster,
    }
}

fn bench_operators(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("apply_blocking_rules");
    g.sample_size(10);
    for op in [
        PhysicalOp::ApplyAll,
        PhysicalOp::ApplyGreedy,
        PhysicalOp::ApplyConjunct,
        PhysicalOp::ApplyPredicate,
        PhysicalOp::MapSide,
        PhysicalOp::ReduceSplit,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(op.name()), &op, |bench, &op| {
            bench.iter(|| {
                physical::execute(
                    op,
                    &f.cluster,
                    &f.a,
                    &f.b,
                    &f.features,
                    &f.seq,
                    &f.conjuncts,
                    &f.built,
                    &[0.3, 0.5],
                    1 << 40,
                )
                .expect("execute")
            })
        });
    }
    g.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let d = falcon::datagen::products::generate(0.05, 4);
    let cluster = Cluster::new(ClusterConfig::default());
    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    g.bench_function("prefix_jaccard_title", |bench| {
        bench.iter(|| {
            let mut built = BuiltIndexes::new();
            built.build_spec(
                &cluster,
                &d.a,
                &falcon::index::FilterSpec::SetSim {
                    a_attr: "title".into(),
                    sim: SimFunction::Jaccard(Tokenizer::Word),
                    threshold: 0.5,
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_operators, bench_index_build);
criterion_main!(benches);
