//! Criterion micro-benchmarks for the hot primitives: similarity
//! functions, tokenization, index probes, forest training/prediction and
//! bitmap calculus.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use falcon::forest::{Dataset, Forest, ForestConfig};
use falcon::index::{FilterSpec, PredicateIndex};
use falcon::table::{AttrType, Schema, Table, Value};
use falcon::textsim::{SimContext, SimFunction, Tokenizer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_similarity(c: &mut Criterion) {
    let a = "sony wireless noise-canceling headphones wh-1000xm4 premium";
    let b = "sony wirelss noise canceling headphone wh-1000xm4";
    let ctx = SimContext::empty();
    let mut g = c.benchmark_group("similarity");
    for sim in [
        SimFunction::Jaccard(Tokenizer::Word),
        SimFunction::Jaccard(Tokenizer::QGram(3)),
        SimFunction::Dice(Tokenizer::Word),
        SimFunction::Cosine(Tokenizer::Word),
        SimFunction::Levenshtein,
        SimFunction::Jaro,
        SimFunction::JaroWinkler,
        SimFunction::MongeElkan,
        SimFunction::SmithWaterman,
        SimFunction::ExactMatch,
    ] {
        g.bench_function(sim.name(), |bench| {
            bench.iter(|| sim.score_str(black_box(a), black_box(b), &ctx))
        });
    }
    g.finish();
}

fn bench_index_probe(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let words = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    ];
    let schema = Schema::new([("x", AttrType::Str)]);
    let rows: Vec<Vec<Value>> = (0..5000)
        .map(|_| {
            let n = rng.gen_range(2..6);
            let s: Vec<&str> = (0..n)
                .map(|_| words[rng.gen_range(0..words.len())])
                .collect();
            vec![Value::str(s.join(" "))]
        })
        .collect();
    let table = Table::new("a", schema, rows);
    let idx = PredicateIndex::build(
        &table,
        &FilterSpec::SetSim {
            a_attr: "x".into(),
            sim: SimFunction::Jaccard(Tokenizer::Word),
            threshold: 0.6,
        },
        None,
    );
    let probe = Value::str("alpha beta gamma");
    c.bench_function("prefix_index_probe_5k", |b| {
        b.iter(|| idx.probe(black_box(&probe)))
    });

    let ridx = PredicateIndex::build(
        &table,
        &FilterSpec::EditSim {
            a_attr: "x".into(),
            threshold: 0.8,
        },
        None,
    );
    c.bench_function("edit_index_probe_5k", |b| {
        b.iter(|| ridx.probe(black_box(&probe)))
    });
}

fn bench_forest(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut data = Dataset::new();
    for _ in 0..1000 {
        let fv: Vec<f64> = (0..20).map(|_| rng.gen::<f64>()).collect();
        let label = fv[0] + fv[3] * 0.5 > 0.8;
        data.push(fv, label);
    }
    c.bench_function("forest_train_1k_x20", |b| {
        b.iter(|| {
            Forest::train(
                black_box(&data),
                &ForestConfig::default(),
                &mut SmallRng::seed_from_u64(3),
            )
        })
    });
    let forest = Forest::train(&data, &ForestConfig::default(), &mut rng);
    let fv: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
    c.bench_function("forest_predict", |b| {
        b.iter(|| forest.predict(black_box(&fv)))
    });
    c.bench_function("forest_disagreement", |b| {
        b.iter(|| forest.disagreement(black_box(&fv)))
    });
}

fn bench_bitmap(c: &mut Criterion) {
    use falcon::core::ops::bitmap::Bitmap;
    let mut a = Bitmap::zeros(1_000_000);
    let mut b = Bitmap::zeros(1_000_000);
    for i in (0..1_000_000).step_by(3) {
        a.set(i);
    }
    for i in (0..1_000_000).step_by(7) {
        b.set(i);
    }
    c.bench_function("bitmap_union_count_1m", |bench| {
        bench.iter(|| black_box(&a).union_count(black_box(&b)))
    });
}

criterion_group!(
    benches,
    bench_similarity,
    bench_index_probe,
    bench_forest,
    bench_bitmap
);
criterion_main!(benches);
