//! Property tests: any table survives a CSV write/read round trip, and
//! the columnar and legacy representations are indistinguishable through
//! every accessor — row ↔ columnar ↔ CSV equivalence over random dirty
//! tables (nulls, quotes, commas, unicode, embedded newlines, empty and
//! whitespace fields).

use falcon_table::{csv, AttrType, Schema, Table, TableRepr, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => "[a-zA-Z0-9 ,\"']{0,20}".prop_map(Value::str),
        2 => (-1000i64..1000).prop_map(|x| Value::Num(x as f64)),
        1 => Just(Value::Null),
    ]
}

/// Dirtier strategy for the cross-representation tests: embedded
/// newlines and CRs, unicode, doubled quotes, whitespace-only strings,
/// fractional and extreme numbers.
fn dirty_value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => "[a-zA-Z0-9 ,\"'\n\réüßλ]{0,16}".prop_map(Value::str),
        1 => Just(Value::Str("  ".to_string())),
        2 => (-1.0e6..1.0e6f64).prop_map(Value::Num),
        1 => (-1000i64..1000).prop_map(|x| Value::Num(x as f64)),
        1 => Just(Value::Null),
    ]
}

fn dirty_schema() -> Schema {
    Schema::new([
        ("alpha", AttrType::Str),
        ("beta", AttrType::Str),
        ("gamma", AttrType::Str),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_preserves_rendered_values(
        rows in proptest::collection::vec(
            proptest::collection::vec(value_strategy(), 3..=3),
            0..20,
        ),
    ) {
        let schema = dirty_schema();
        let table = Table::new("t", schema, rows);
        let mut buf = Vec::new();
        csv::write_table(&table, &mut buf).unwrap();
        let back = csv::read_table("t2", buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), table.len());
        for (orig, got) in table.rows().iter().zip(back.rows()) {
            for (ov, gv) in orig.values.iter().zip(&got.values) {
                // CSV stores rendered text, and reading re-parses it, so
                // compare after canonicalizing both sides through parse
                // ("007" and "7" are the same CSV value).
                prop_assert_eq!(
                    Value::parse(&ov.render()),
                    Value::parse(&gv.render())
                );
            }
        }
    }

    /// Row table ↔ columnar table: same rows, same per-cell views, same
    /// rendered scans, lossless conversion in both directions.
    #[test]
    fn columnar_and_legacy_tables_are_equivalent(
        rows in proptest::collection::vec(
            proptest::collection::vec(dirty_value_strategy(), 3..=3),
            0..20,
        ),
    ) {
        let col =
            Table::try_new_with("t", dirty_schema(), rows.clone(), TableRepr::Columnar).unwrap();
        let leg =
            Table::try_new_with("t", dirty_schema(), rows.clone(), TableRepr::Legacy).unwrap();
        prop_assert_eq!(col.len(), leg.len());

        // Cell-level views agree (value_ref never materializes rows on
        // the columnar side).
        for (rid, row) in rows.iter().enumerate() {
            for (idx, expect) in row.iter().enumerate() {
                let cv = col.value_ref(rid as u32, idx).unwrap().to_value();
                let lv = leg.value_ref(rid as u32, idx).unwrap().to_value();
                prop_assert_eq!(&cv, &lv);
                prop_assert_eq!(&cv, expect);
            }
        }

        // Columnar rendered scans agree with legacy per-row rendering.
        for idx in 0..3 {
            let mut rendered = Vec::new();
            col.for_each_rendered(idx, |id, s| rendered.push((id, s.to_string())));
            let expect: Vec<_> = leg
                .rows()
                .iter()
                .map(|t| (t.id, t.values[idx].render()))
                .collect();
            prop_assert_eq!(rendered, expect);
        }

        // Materialized row views are identical, and repr conversion is
        // lossless both ways.
        prop_assert_eq!(col.rows(), leg.rows());
        prop_assert_eq!(col.to_repr(TableRepr::Legacy).rows(), leg.rows());
        prop_assert_eq!(leg.to_repr(TableRepr::Columnar).rows(), col.rows());
    }

    /// Row table ↔ columnar table ↔ CSV: both representations write
    /// byte-identical CSV, and both readers parse it to identical rows —
    /// including quoted fields with embedded newlines.
    #[test]
    fn csv_roundtrip_is_representation_invariant(
        rows in proptest::collection::vec(
            proptest::collection::vec(dirty_value_strategy(), 3..=3),
            0..20,
        ),
    ) {
        let col =
            Table::try_new_with("t", dirty_schema(), rows.clone(), TableRepr::Columnar).unwrap();
        let leg = Table::try_new_with("t", dirty_schema(), rows, TableRepr::Legacy).unwrap();

        let mut col_csv = Vec::new();
        csv::write_table(&col, &mut col_csv).unwrap();
        let mut leg_csv = Vec::new();
        csv::write_table(&leg, &mut leg_csv).unwrap();
        prop_assert_eq!(&col_csv, &leg_csv);

        let back_col =
            csv::read_table_with("t2", col_csv.as_slice(), TableRepr::Columnar).unwrap();
        let back_leg = csv::read_table_with("t2", col_csv.as_slice(), TableRepr::Legacy).unwrap();
        prop_assert_eq!(back_col.rows(), back_leg.rows());

        // And the round trip itself preserves canonicalized values.
        prop_assert_eq!(back_col.len(), col.len());
        for (orig, got) in col.rows().iter().zip(back_col.rows()) {
            for (ov, gv) in orig.values.iter().zip(&got.values) {
                prop_assert_eq!(Value::parse(&ov.render()), Value::parse(&gv.render()));
            }
        }
    }
}
