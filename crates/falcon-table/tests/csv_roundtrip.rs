//! Property test: any table survives a CSV write/read round trip.

use falcon_table::{csv, AttrType, Schema, Table, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => "[a-zA-Z0-9 ,\"']{0,20}".prop_map(Value::str),
        2 => (-1000i64..1000).prop_map(|x| Value::Num(x as f64)),
        1 => Just(Value::Null),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_preserves_rendered_values(
        rows in proptest::collection::vec(
            proptest::collection::vec(value_strategy(), 3..=3),
            0..20,
        ),
    ) {
        let schema = Schema::new([
            ("alpha", AttrType::Str),
            ("beta", AttrType::Str),
            ("gamma", AttrType::Str),
        ]);
        let table = Table::new("t", schema, rows);
        let mut buf = Vec::new();
        csv::write_table(&table, &mut buf).unwrap();
        let back = csv::read_table("t2", buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), table.len());
        for (orig, got) in table.rows().iter().zip(back.rows()) {
            for (ov, gv) in orig.values.iter().zip(&got.values) {
                // CSV stores rendered text, and reading re-parses it, so
                // compare after canonicalizing both sides through parse
                // ("007" and "7" are the same CSV value).
                prop_assert_eq!(
                    Value::parse(&ov.render()),
                    Value::parse(&gv.render())
                );
            }
        }
    }
}
