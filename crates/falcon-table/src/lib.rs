//! Tabular data model for Falcon: typed values, schemas, tuples, tables,
//! attribute profiling (the "type and characteristics" analysis of Section 8)
//! and a small CSV reader/writer.
//!
//! Tables are in-memory stores with two physical representations: a
//! struct-of-arrays columnar layout (the default — string arenas, dense
//! numeric vectors, validity bitmaps; see [`column`]) and the original
//! row layout kept for differential testing. Falcon's input tables in
//! the paper are HDFS files; here a [`Table`] plays that role and the
//! dataflow engine splits it into partitions for mappers.

pub mod column;
pub mod csv;
pub mod profile;
pub mod schema;
pub mod table;
pub mod value;

pub use column::{Bitmap, Column, ColumnBuilder, ValueRef};
pub use profile::{AttrCharacteristic, AttrProfile, TableProfile};
pub use schema::{AttrType, Attribute, Schema};
pub use table::{Table, TableError, TableRepr, Tuple, TupleId};
pub use value::Value;

/// A pair of tuple ids, `(a_id, b_id)`, identifying one candidate match
/// between table A and table B. This is the unit that flows through
/// sampling, blocking, feature generation and matching.
pub type IdPair = (TupleId, TupleId);
