//! Tabular data model for Falcon: typed values, schemas, tuples, tables,
//! attribute profiling (the "type and characteristics" analysis of Section 8)
//! and a small CSV reader/writer.
//!
//! Tables are in-memory row stores. Falcon's input tables in the paper are
//! HDFS files; here a [`Table`] plays that role and the dataflow engine
//! splits it into partitions for mappers.

pub mod csv;
pub mod profile;
pub mod schema;
pub mod table;
pub mod value;

pub use profile::{AttrCharacteristic, AttrProfile, TableProfile};
pub use schema::{AttrType, Attribute, Schema};
pub use table::{Table, Tuple, TupleId};
pub use value::Value;

/// A pair of tuple ids, `(a_id, b_id)`, identifying one candidate match
/// between table A and table B. This is the unit that flows through
/// sampling, blocking, feature generation and matching.
pub type IdPair = (TupleId, TupleId);
