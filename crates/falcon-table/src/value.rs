//! Attribute values: nullable strings and numbers.

use crate::column::ValueRef;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// Append the canonical text form of a number to `out`: integral values
/// below 1e15 print without a fractional part, everything else uses the
/// default float formatting. Shared by [`Value::render`] and
/// [`ValueRef::render`] so both representations render bit-identically.
pub(crate) fn render_num_into(x: f64, out: &mut String) {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

/// A single attribute value. Real-world EM tables are dirty, so every value
/// is nullable and numeric-looking strings can be coerced lazily.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// Missing value.
    #[default]
    Null,
    /// Free-form string.
    Str(String),
    /// Numeric value (integer or float).
    Num(f64),
}

impl Value {
    /// Construct a string value, mapping empty/whitespace-only to `Null`.
    pub fn str(s: impl Into<String>) -> Self {
        let s = s.into();
        if s.trim().is_empty() {
            Value::Null
        } else {
            Value::Str(s)
        }
    }

    /// Construct a numeric value.
    pub fn num(x: f64) -> Self {
        if x.is_nan() {
            Value::Null
        } else {
            Value::Num(x)
        }
    }

    /// True iff the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View as a string slice, if present. Numbers are not stringified here;
    /// use [`Value::render`] for display conversion.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: numbers directly, strings via parsing.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Str(s) => s.trim().parse().ok(),
            Value::Null => None,
        }
    }

    /// Render to text for similarity computation / display. `Null` renders
    /// empty, which the similarity layer treats as missing.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Str(s) => s.clone(),
            Value::Num(x) => {
                let mut out = String::new();
                render_num_into(*x, &mut out);
                out
            }
        }
    }

    /// Append the rendered text to `out` (allocation-free for reused
    /// scratch buffers); same output as [`Value::render`].
    pub fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => {}
            Value::Str(s) => out.push_str(s),
            Value::Num(x) => render_num_into(*x, out),
        }
    }

    /// A borrowing [`ValueRef`] view of this value.
    pub fn as_value_ref(&self) -> ValueRef<'_> {
        ValueRef::from(self)
    }

    /// Parse a raw text field into the most specific value type.
    pub fn parse(raw: &str) -> Self {
        let t = raw.trim();
        if t.is_empty() {
            return Value::Null;
        }
        match t.parse::<f64>() {
            Ok(x) if x.is_finite() => Value::Num(x),
            _ => Value::Str(t.to_string()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::num(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Num(x as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_specializes() {
        assert_eq!(Value::parse("12.5"), Value::Num(12.5));
        assert_eq!(Value::parse("  42 "), Value::Num(42.0));
        assert_eq!(Value::parse("abc"), Value::Str("abc".into()));
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("   "), Value::Null);
    }

    #[test]
    fn empty_string_is_null() {
        assert!(Value::str("").is_null());
        assert!(Value::str("  ").is_null());
        assert!(!Value::str("x").is_null());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Str("3.5".into()).as_num(), Some(3.5));
        assert_eq!(Value::Num(2.0).as_num(), Some(2.0));
        assert_eq!(Value::Str("abc".into()).as_num(), None);
        assert_eq!(Value::Null.as_num(), None);
    }

    #[test]
    fn render_roundtrip() {
        assert_eq!(Value::Num(3.0).render(), "3");
        assert_eq!(Value::Num(3.25).render(), "3.25");
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::str("hi").render(), "hi");
    }

    #[test]
    fn nan_becomes_null() {
        assert!(Value::num(f64::NAN).is_null());
    }
}
