//! Schemas: named, typed attributes.

use serde::{Deserialize, Serialize};

/// Coarse attribute type, inferred by profiling when loading raw data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// Free-form text.
    Str,
    /// Numeric (integer or float).
    Num,
}

/// A named attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (unique within a schema).
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

/// An ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics if two attributes share a name.
    pub fn new(attrs: impl IntoIterator<Item = (impl Into<String>, AttrType)>) -> Self {
        let attrs: Vec<Attribute> = attrs
            .into_iter()
            .map(|(name, ty)| Attribute {
                name: name.into(),
                ty,
            })
            .collect();
        let mut names: Vec<&str> = attrs.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), attrs.len(), "duplicate attribute names");
        Self { attrs }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attributes in declaration order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Attribute at an index.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// Attribute names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| a.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new([("title", AttrType::Str), ("price", AttrType::Num)]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.attr(0).name, "title");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        Schema::new([("a", AttrType::Str), ("a", AttrType::Num)]);
    }
}
