//! Attribute profiling: the "scan through the tables to determine the
//! characteristics of every attribute" step of Section 8. Feature generation
//! (Figure 5) keys off the [`AttrCharacteristic`] inferred here.

use crate::schema::AttrType;
use crate::table::Table;
use falcon_textsim::tokenize::word_len;
use serde::{Deserialize, Serialize};

/// Attribute characteristic rows of Figure 5, ordered from most to least
/// specific. When two corresponded attributes differ, the paper picks "the
/// characteristic that is at a lower row in Figure 5" — i.e. the larger
/// variant in this ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AttrCharacteristic {
    /// Single-word strings (names, zip codes...).
    SingleWordString,
    /// 2-5 words (brand names, person names...).
    ShortString,
    /// 6-10 words (street addresses, short descriptions...).
    MediumString,
    /// 11+ words (long descriptions, reviews...).
    LongString,
    /// Numeric (age, price, weight...).
    Numeric,
}

impl AttrCharacteristic {
    /// Classify from a type and the average word count of non-null values.
    pub fn from_stats(ty: AttrType, avg_words: f64) -> Self {
        match ty {
            AttrType::Num => AttrCharacteristic::Numeric,
            AttrType::Str => {
                if avg_words <= 1.2 {
                    AttrCharacteristic::SingleWordString
                } else if avg_words <= 5.0 {
                    AttrCharacteristic::ShortString
                } else if avg_words <= 10.0 {
                    AttrCharacteristic::MediumString
                } else {
                    AttrCharacteristic::LongString
                }
            }
        }
    }

    /// Figure 5 tie-breaking: the "lower row" (more general) of the two.
    pub fn lower_row(self, other: Self) -> Self {
        self.max(other)
    }
}

/// Profile of one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrProfile {
    /// Attribute name.
    pub name: String,
    /// Declared/inferred type.
    pub ty: AttrType,
    /// Figure 5 characteristic.
    pub characteristic: AttrCharacteristic,
    /// Fraction of non-null values.
    pub fill_rate: f64,
    /// Average word count among non-null string values.
    pub avg_words: f64,
}

/// Profile of a whole table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableProfile {
    /// Per-attribute profiles, aligned with the table schema.
    pub attrs: Vec<AttrProfile>,
    /// Number of rows scanned.
    pub rows: usize,
}

impl TableProfile {
    /// Scan a table and profile every attribute. For string attributes the
    /// type may be *narrowed* to numeric when ≥95% of non-null values parse
    /// as numbers (dirty numeric columns are common in EM inputs).
    pub fn scan(table: &Table) -> Self {
        let arity = table.schema().arity();
        let mut non_null = vec![0usize; arity];
        let mut word_sums = vec![0usize; arity];
        let mut numeric_like = vec![0usize; arity];
        let mut scratch = String::new();
        for i in 0..arity {
            // Column-at-a-time: one linear sweep per attribute.
            table.for_each_value(i, |_, v| {
                if v.is_null() {
                    return;
                }
                non_null[i] += 1;
                if v.as_num().is_some() {
                    numeric_like[i] += 1;
                }
                scratch.clear();
                v.render_into(&mut scratch);
                word_sums[i] += word_len(&scratch);
            });
        }
        let rows = table.len();
        let attrs = (0..arity)
            .map(|i| {
                let attr = table.schema().attr(i);
                let nn = non_null[i];
                let avg_words = if nn > 0 {
                    word_sums[i] as f64 / nn as f64
                } else {
                    0.0
                };
                let ty = if attr.ty == AttrType::Num
                    || (nn > 0 && numeric_like[i] as f64 >= 0.95 * nn as f64)
                {
                    AttrType::Num
                } else {
                    AttrType::Str
                };
                AttrProfile {
                    name: attr.name.clone(),
                    ty,
                    characteristic: AttrCharacteristic::from_stats(ty, avg_words),
                    fill_rate: if rows > 0 {
                        nn as f64 / rows as f64
                    } else {
                        0.0
                    },
                    avg_words,
                }
            })
            .collect();
        Self { attrs, rows }
    }

    /// Profile of an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&AttrProfile> {
        self.attrs.iter().find(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn table() -> Table {
        let schema = Schema::new([
            ("zip", AttrType::Str),
            ("title", AttrType::Str),
            ("descr", AttrType::Str),
            ("price", AttrType::Num),
        ]);
        let rows = (0..10).map(|i| {
            vec![
                Value::str(format!("5370{i}")),
                Value::str("quick brown fox jumps"),
                Value::str(
                    "a very long descriptive paragraph about a product with \
                     many many words in it indeed",
                ),
                Value::num(10.0 + i as f64),
            ]
        });
        Table::new("t", schema, rows)
    }

    #[test]
    fn characteristics_inferred() {
        let p = TableProfile::scan(&table());
        // zip is numeric-looking strings -> narrowed to numeric.
        assert_eq!(p.attr("zip").unwrap().ty, AttrType::Num);
        assert_eq!(
            p.attr("title").unwrap().characteristic,
            AttrCharacteristic::ShortString
        );
        assert_eq!(
            p.attr("descr").unwrap().characteristic,
            AttrCharacteristic::LongString
        );
        assert_eq!(
            p.attr("price").unwrap().characteristic,
            AttrCharacteristic::Numeric
        );
    }

    #[test]
    fn fill_rate_counts_nulls() {
        let schema = Schema::new([("a", AttrType::Str)]);
        let t = Table::new(
            "t",
            schema,
            vec![
                vec![Value::str("x")],
                vec![Value::Null],
                vec![Value::str("y z")],
            ],
        );
        let p = TableProfile::scan(&t);
        assert!((p.attr("a").unwrap().fill_rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lower_row_picks_more_general() {
        use AttrCharacteristic::*;
        assert_eq!(SingleWordString.lower_row(MediumString), MediumString);
        assert_eq!(LongString.lower_row(ShortString), LongString);
        assert_eq!(Numeric.lower_row(SingleWordString), Numeric);
    }

    #[test]
    fn single_word_detection() {
        assert_eq!(
            AttrCharacteristic::from_stats(AttrType::Str, 1.0),
            AttrCharacteristic::SingleWordString
        );
        assert_eq!(
            AttrCharacteristic::from_stats(AttrType::Str, 7.0),
            AttrCharacteristic::MediumString
        );
    }
}
