//! Minimal CSV reader/writer (RFC-4180-ish: quoted fields, embedded commas,
//! doubled quotes). Enough to persist/load the synthetic datasets without an
//! external dependency.

use crate::schema::{AttrType, Schema};
use crate::table::Table;
use crate::value::Value;
use std::io::{self, BufRead, Write};

/// Parse one CSV record from a line (no embedded newlines).
pub fn parse_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    fields.push(cur);
    fields
}

/// Escape a field for CSV output.
pub fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Read a table from CSV with a header row. All columns load as `Str`;
/// numeric-looking fields are parsed to numbers via [`Value::parse`].
pub fn read_table(name: &str, reader: impl BufRead) -> io::Result<Table> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))??;
    let names = parse_record(&header);
    let schema = Schema::new(names.iter().map(|n| (n.clone(), AttrType::Str)));
    let mut rows = Vec::new();
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line);
        if fields.len() != schema.arity() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("row arity {} != header {}", fields.len(), schema.arity()),
            ));
        }
        rows.push(fields.iter().map(|f| Value::parse(f)).collect());
    }
    Ok(Table::new(name, schema, rows))
}

/// Write a table as CSV with a header row.
pub fn write_table(table: &Table, mut w: impl Write) -> io::Result<()> {
    let header: Vec<String> = table.schema().names().map(escape).collect();
    writeln!(w, "{}", header.join(","))?;
    for row in table.rows() {
        let fields: Vec<String> = row.values.iter().map(|v| escape(&v.render())).collect();
        writeln!(w, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_handles_quotes() {
        assert_eq!(parse_record("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(parse_record(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(parse_record(r#""say ""hi""",x"#), vec![r#"say "hi""#, "x"]);
        assert_eq!(parse_record(""), vec![""]);
        assert_eq!(parse_record("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn roundtrip() {
        let csv = "title,price\n\"laptop, 15in\",999.5\nmouse,25\n";
        let t = read_table("t", csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value_of(0, "title"), Some(&Value::str("laptop, 15in")));
        assert_eq!(t.value_of(1, "price"), Some(&Value::Num(25.0)));
        let mut out = Vec::new();
        write_table(&t, &mut out).unwrap();
        let t2 = read_table("t2", out.as_slice()).unwrap();
        assert_eq!(t2.rows(), t.rows());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let csv = "a,b\n1\n";
        assert!(read_table("t", csv.as_bytes()).is_err());
    }

    #[test]
    fn escape_roundtrips() {
        for s in ["plain", "with,comma", "with \"quote\"", ""] {
            let line = escape(s);
            assert_eq!(parse_record(&line), vec![s.to_string()]);
        }
    }
}
